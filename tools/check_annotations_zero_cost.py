#!/usr/bin/env python3
"""Prove sim/lane_annotations.hpp is free: zero object-code delta.

Compiles one probe TU — exercising all four lane macros in every sanctioned
position (class, data member, method declaration, out-of-line definition,
free function) — twice with the build's own compiler: once as-is, once with
-DDPAR_NO_LANE_ANNOTATIONS. The two object files must describe the same
program:

  1. byte-identical objects        -> trivially zero-cost (the GCC path:
                                      the macros expand to nothing), or
  2. identical disassembly AND     -> zero-cost (the clang path: annotate
     identical allocatable            attributes live in IR-only metadata
     section sizes                    and must be dropped at emission; only
                                      non-allocatable noise may differ).

Anything else — a code byte, a symbol, an allocated data byte — fails the
test: the "annotations are pure metadata" claim in the header would be a
lie, and every hot path that includes it would be paying for documentation.

Wired as ctest AnnotationsZeroCost. Exit 0 pass (or SKIP without a
compiler), 1 the annotations cost something, 2 harness error.
"""

import argparse
import os
import shutil
import subprocess
import sys
import tempfile

PROBE = r"""
#include <cstdint>

#include "sim/lane_annotations.hpp"

namespace probe {

class DPAR_LANE_OWNED(lane_) Client {
 public:
  DPAR_CROSS_LANE_API std::uint64_t bump(std::uint64_t v);
  DPAR_EXCLUSIVE_LANE void fold();

  DPAR_EXCLUSIVE_LANE std::uint64_t tracked_ = 0;
  DPAR_LANE_SAFE std::uint32_t lane_ = 0;
};

std::uint64_t Client::bump(std::uint64_t v) {
  tracked_ += v * 3 + 1;
  return tracked_;
}

void Client::fold() { tracked_ = 0; }

DPAR_CROSS_LANE_API std::uint64_t drive(Client& c, std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) acc ^= c.bump(i);
  c.fold();
  return acc;
}

}  // namespace probe
"""


def run(cmd, **kw):
    return subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, **kw)


def compile_probe(cxx, src_dir, probe_cpp, out, extra):
    cmd = [cxx, "-std=c++20", "-O2", "-I", src_dir, "-c", probe_cpp,
           "-o", out] + extra
    proc = run(cmd)
    if proc.returncode != 0:
        print(f"zero-cost: probe failed to compile: {' '.join(cmd)}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return False
    return True


def disassembly(objdump, obj):
    """Normalized `objdump -d` text, or None when objdump is unusable."""
    proc = run([objdump, "-d", obj])
    if proc.returncode != 0:
        return None
    # Drop the path-bearing header line so tmpdir names cannot differ.
    return "\n".join(l for l in proc.stdout.splitlines()
                     if ":     file format " not in l)


def alloc_sections(readelf, obj):
    """(name, size) of allocatable sections, or None when readelf is
    unusable. Non-alloc sections (.comment, debug, clang's metadata leftovers)
    cost nothing at runtime and are ignored."""
    proc = run([readelf, "-S", "-W", obj])
    if proc.returncode != 0:
        return None
    rows = []
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line.startswith("["):
            continue
        parts = line.split("]", 1)[-1].split()
        # Name Type Address Off Size ES Flg Lk Inf Al
        if len(parts) >= 7 and "A" in parts[6]:
            rows.append((parts[0], parts[4]))
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--cxx", default=None,
                    help="compiler to probe with (default: $CXX, then c++)")
    args = ap.parse_args()

    cxx = args.cxx or os.environ.get("CXX")
    if not cxx:
        for cand in ("c++", "g++", "clang++"):
            if shutil.which(cand):
                cxx = cand
                break
    if not cxx or not shutil.which(cxx):
        print("zero-cost: SKIP — no C++ compiler found")
        return 0

    src_dir = os.path.join(args.root, "src")
    header = os.path.join(src_dir, "sim", "lane_annotations.hpp")
    if not os.path.isfile(header):
        print(f"zero-cost: {header} missing", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="dpar_zero_cost_") as tmp:
        probe_cpp = os.path.join(tmp, "probe.cpp")
        with open(probe_cpp, "w") as f:
            f.write(PROBE)
        on = os.path.join(tmp, "annotated.o")
        off = os.path.join(tmp, "plain.o")
        if not compile_probe(cxx, src_dir, probe_cpp, on, []):
            return 2
        if not compile_probe(cxx, src_dir, probe_cpp, off,
                             ["-DDPAR_NO_LANE_ANNOTATIONS"]):
            # The opt-out path MUST build everywhere; a failure here is a
            # finding, not a harness problem.
            print("zero-cost: FAIL — probe does not compile with "
                  "-DDPAR_NO_LANE_ANNOTATIONS", file=sys.stderr)
            return 1

        with open(on, "rb") as f:
            a = f.read()
        with open(off, "rb") as f:
            b = f.read()
        if a == b:
            print(f"zero-cost: PASS — byte-identical objects "
                  f"({len(a)} bytes, {cxx})")
            return 0

        # Objects differ somewhere; the annotations are only acceptable if
        # every *allocatable* byte and every instruction agree.
        objdump = shutil.which("objdump")
        readelf = shutil.which("readelf")
        dis_a = disassembly(objdump, on) if objdump else None
        dis_b = disassembly(objdump, off) if objdump else None
        sec_a = alloc_sections(readelf, on) if readelf else None
        sec_b = alloc_sections(readelf, off) if readelf else None
        if dis_a is not None and dis_a == dis_b and \
                sec_a is not None and sec_a == sec_b:
            print(f"zero-cost: PASS — identical code and allocatable "
                  f"sections; only non-allocatable metadata differs ({cxx})")
            return 0
        print("zero-cost: FAIL — the annotations changed the object code",
              file=sys.stderr)
        if dis_a is not None and dis_a != dis_b:
            print("zero-cost: disassembly differs", file=sys.stderr)
        if sec_a is not None and sec_a != sec_b:
            print(f"zero-cost: allocatable sections differ:\n"
                  f"  with annotations: {sec_a}\n"
                  f"  without:          {sec_b}", file=sys.stderr)
        if dis_a is None or sec_a is None:
            print("zero-cost: (no objdump/readelf to localize the delta)",
                  file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
