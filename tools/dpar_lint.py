#!/usr/bin/env python3
"""dpar-lint — determinism-contract static analysis for the DualPar tree.

The whole reproduction rests on one invariant: every figure/table bench is
byte-identical across runs, machines, and DPAR_JOBS settings. This linter
enforces the constructs that contract bans (see DESIGN.md "Determinism
contract"):

  wall-clock      Wall-clock time sources: std::chrono::system_clock,
                  time(NULL)/std::time, gettimeofday, clock_gettime,
                  localtime/gmtime. Simulated time comes from sim::Engine;
                  *monotonic* steady_clock is permitted because it only feeds
                  the perf-accounting side channel, never simulator state.
  raw-random      rand()/srand(), std::random_device, std::mt19937 and
                  friends. All randomness must come from sim::Rng
                  (xoshiro256**, seeded, byte-stable across platforms).
  unordered-iter  Iteration over std::unordered_{map,set,multimap,multiset}.
                  Hash-table walk order is an implementation detail that can
                  silently leak into metrics/bench/CSV emission. Point
                  lookups (find/count/[]/erase-by-key) are fine; walks must
                  be proven order-independent and annotated, or replaced by
                  sort-before-emit / flat sorted vectors.
  pointer-key     std::map/std::set keyed on raw pointers (and pointer-keyed
                  unordered maps that are later iterated). Pointer order is
                  allocator order — different every run under ASLR.
  uninit-config   Scalar POD members of *Config/*Params structs without an
                  initializer. An uninitialized parameter silently picks up
                  stack garbage and changes results run to run.
  pdes-lane-channel
                  Direct Engine at()/after() calls in a designated cross-LP
                  file (PDES_CHANNEL_FILES). Those paths schedule work that
                  can land in another logical process's lane; they must go
                  through the lane-channel API (at_in/after_in, or
                  at_all/after_all for fan-out) so the conservative-PDES
                  lookahead contract is enforced at the call site. A plain
                  at()/after() that provably stays in the current lane takes
                  the allow() escape with a justification.
  event-queue     std::priority_queue / make_heap / push_heap / pop_heap in
                  src/. Hand-rolled timer queues bypass the engine's tiered
                  event queue (sim::EventQueue): cancels degrade to O(n) and
                  the (time, seq) total order the byte-identical-output
                  contract rests on is easy to get subtly wrong. Schedule
                  through sim::Engine; the engine's own queue files are
                  exempt. (bench/ is out of scope — the frozen LegacyEngine
                  baseline in bench_micro keeps its priority_queue.)

  stale-allow     A `dpar-lint: allow(<rule>)` comment that suppresses no
                  finding. Allows rot: the offending line gets refactored
                  away and the suppression lingers, silently masking the
                  next real violation at that site. Every allow must still
                  be load-bearing; remove it (or re-justify it against the
                  line it now covers) when the code it excused is gone.
                  Allows naming rules this linter does not own — e.g.
                  dpar_analyze's cross-lane-post / lane-capture /
                  exclusive-lane-write / nondet-feeds-post — are skipped,
                  not flagged: the comment namespace is shared across tools.

Escape hatch: a finding is suppressed by `dpar-lint: allow(<rule>)` in a
comment on the offending line or in the contiguous //-comment block directly
above it. Every allow is expected to carry a justification.

Modes:
  dpar_lint.py [paths...]      lint files/directories (default: src bench
                               tests examples, relative to --root)
  dpar_lint.py --self-test     run the golden fixture corpus under
                               tools/lint_fixtures/ (bad.cpp must produce
                               exactly its `// expect(rule)` findings,
                               good.cpp must produce none)
  dpar_lint.py --use-libclang  additionally resolve range-for loops through
                               libclang for exact types (optional: falls
                               back to the regex engine with a note when
                               python clang bindings are not installed)

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error.
"""

import argparse
import os
import re
import sys

RULES = {
    "wall-clock": "wall-clock time source (use sim::Engine::now(); "
                  "steady_clock is allowed for perf accounting only)",
    "raw-random": "raw randomness outside sim::rng (use sim::Rng)",
    "unordered-iter": "iteration over a std::unordered_* container "
                      "(hash order can leak into deterministic output)",
    "pointer-key": "pointer-keyed ordered container (pointer order is "
                   "allocator order, different every run)",
    "uninit-config": "uninitialized POD member in a *Config/*Params struct",
    "pdes-lane-channel": "direct Engine at()/after() in a cross-LP path "
                         "(route through at_in/after_in or at_all/after_all)",
    "event-queue": "hand-rolled heap/priority-queue in src/ "
                   "(schedule through sim::Engine / sim::EventQueue)",
    "stale-allow": "dpar-lint: allow() comment that suppresses no finding "
                   "(remove it or re-justify it)",
}

# Files exempt from a rule (relative to the repo root, forward slashes).
RULE_EXEMPT_FILES = {
    "raw-random": {"src/sim/rng.hpp"},
    # The engine's own queue layer is the one sanctioned home for heap
    # primitives: the tiered queue's front heap and the frozen differential
    # oracle.
    "event-queue": {
        "src/sim/event_queue.hpp",
        "src/sim/event_queue.cpp",
        "src/sim/queue_reference.cpp",
    },
}

# Files where a rule applies at all (relative to the repo root). Entries
# ending in "/" are directory prefixes; the rest are exact paths. Rules not
# listed here apply everywhere. pdes-lane-channel covers every tree that
# schedules events across logical-process boundaries now that compute nodes
# are per-node lanes: the MPI runtime (barriers, P2P), the MPI-IO client
# stack, DualPar's scheduler/CRM, and the fault injector's timeout/retry
# protocol. The fixtures are listed so the self-test corpus exercises the
# rule.
RULE_ONLY_FILES = {
    "pdes-lane-channel": {
        "src/net/network.cpp",
        "src/metrics/monitor.cpp",
        "src/mpi/",
        "src/mpiio/",
        "src/dualpar/",
        "src/fault/",
        "src/replica/",
        "tools/lint_fixtures/bad.cpp",
        "tools/lint_fixtures/good.cpp",
    },
    # event-queue only polices the simulator tree: bench/ keeps its frozen
    # LegacyEngine priority_queue baseline, and tests may build ad-hoc heaps
    # as oracles.
    "event-queue": {
        "src/",
        "tools/lint_fixtures/bad.cpp",
        "tools/lint_fixtures/good.cpp",
    },
}


def rule_in_scope(rule, rel):
    """True when `rule` applies to file `rel`: not scoped at all, listed
    exactly, or under a listed directory prefix (entries ending in '/')."""
    if rule not in RULE_ONLY_FILES:
        return True
    scope = RULE_ONLY_FILES[rule]
    return rel in scope or any(
        rel.startswith(p) for p in scope if p.endswith("/"))

SOURCE_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
DEFAULT_SCAN_DIRS = ("src", "bench", "tests", "examples")

ALLOW_RE = re.compile(r"dpar-lint:\s*allow\(\s*([\w-]+)\s*\)")
EXPECT_RE = re.compile(r"//\s*expect\(\s*([\w-]+)\s*\)")
LINE_COMMENT_RE = re.compile(r"^\s*//")

WALL_CLOCK_PATTERNS = [
    re.compile(r"std\s*::\s*chrono\s*::\s*system_clock"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
    re.compile(r"\bstd\s*::\s*time\s*\("),
    re.compile(r"\b(?:localtime|gmtime|mktime)(?:_r)?\s*\("),
]

RAW_RANDOM_PATTERNS = [
    re.compile(r"(?<![\w:])s?rand\s*\(\s*\)"),
    re.compile(r"(?<![\w:])srand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bmt19937(?:_64)?\b"),
    re.compile(r"\bminstd_rand0?\b"),
    re.compile(r"\branlux(?:24|48)\b"),
    re.compile(r"\barc4random\b"),
    re.compile(r"\bdefault_random_engine\b"),
]

# Declaration of a std::unordered_* variable/member. The template argument
# list may span lines; [^;{}()] keeps the match inside one declaration and
# rejects function signatures. Captures the declared name.
UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*"
    r"(\w+)\s*[;={]",
    re.DOTALL,
)

# Pointer-keyed ordered containers: std::map<T*, ...> / std::set<T*>.
# A custom comparator does not rescue the ordering (it still usually compares
# the pointers), so any pointer key needs an explicit allow + justification.
POINTER_KEY_RE = re.compile(
    r"std\s*::\s*(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+"
    r"(?:\s*<[^<>]*>)?\s*\*",
)

# Scalar member without an initializer inside a Config/Params struct, e.g.
# `std::uint64_t chunk_bytes;`. Arrays, references, functions are excluded by
# requiring `name;` directly after the type.
POD_TYPES = (
    r"(?:std\s*::\s*)?(?:u?int(?:8|16|32|64)?_t|size_t|ptrdiff_t|uint_fast\d+_t)"
    r"|double|float|bool|(?:unsigned\s+)?(?:int|long|short|char)(?:\s+long)?"
    r"|sim\s*::\s*Time|net\s*::\s*NodeId|pfs\s*::\s*FileId"
)
UNINIT_MEMBER_RE = re.compile(
    r"^\s*(?:" + POD_TYPES + r")\s+(\w+)\s*;\s*(?://.*)?$"
)
CONFIG_STRUCT_RE = re.compile(r"\bstruct\s+(\w*(?:Config|Params))\b")

# Heap primitives outside the engine's queue layer: the container adapter and
# the <algorithm> heap family (std-qualified or ADL-bare with iterator args).
EVENT_QUEUE_PATTERNS = [
    re.compile(r"\bstd\s*::\s*priority_queue\b"),
    re.compile(r"(?:\bstd\s*::\s*|(?<![\w:]))(?:make|push|pop|sort)_heap\s*\("),
]

# Direct Engine scheduling in a cross-LP file: an engine-named receiver
# (`eng_`, `engine()`, ...) followed by `.at(` or `.after(`. The lane-routed
# variants (`at_in`, `after_in`) and the batch variants (`at_all`,
# `after_all`) do not match because the call name must end at the `(`.
PDES_CHANNEL_RE = re.compile(
    r"\beng\w*\s*(?:\(\s*\))?\s*(?:\.|->)\s*(?:at|after)\s*\("
)


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


def strip_strings_and_comments(line):
    """Blank out string/char literals and // comments so patterns never match
    inside them. Keeps column positions stable."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed(lines, idx, rule):
    """0-based line index of the `dpar-lint: allow(rule)` comment covering
    line idx — the line itself or the contiguous //-comment block directly
    above it — or None when the finding is not suppressed. (Truthiness is a
    trap here: index 0 is a valid answer. Compare against None.)"""
    m = ALLOW_RE.search(lines[idx])
    if m and m.group(1) == rule:
        return idx
    j = idx - 1
    while j >= 0 and LINE_COMMENT_RE.match(lines[j]):
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) == rule:
            return j
        j -= 1
    return None


def collect_unordered_names(text):
    """Names declared with a std::unordered_* type anywhere in `text`."""
    return {m.group(1) for m in UNORDERED_DECL_RE.finditer(text)}


def iteration_patterns(name):
    """Compile the iteration forms over container `name` the linter flags:
    range-for, explicit iterator walks, and iterator-pair algorithms."""
    escaped = re.escape(name)
    return [
        # for (auto& kv : name)
        re.compile(r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))?" + escaped + r"\s*\)"),
        # name.begin() / name.cbegin() / name.end() as an iteration anchor
        re.compile(r"\b" + escaped + r"\s*\.\s*c?begin\s*\("),
    ]


def lint_file(path, rel, text, project_unordered, use_libclang=False):
    findings = []
    lines = text.split("\n")
    clean = [strip_strings_and_comments(l) for l in lines]
    # (allow_line_idx, rule) pairs whose allow() suppressed a finding this
    # pass — everything else carrying a known rule name is stale.
    used_allows = set()

    def emit(idx, rule, detail):
        if rel in RULE_EXEMPT_FILES.get(rule, ()):
            return
        if not rule_in_scope(rule, rel):
            return
        a = allowed(lines, idx, rule)
        if a is not None:
            used_allows.add((a, rule))
            return
        findings.append(Finding(rel, idx + 1, rule, detail))

    # wall-clock + raw-random + pdes-lane-channel: line-local patterns.
    for idx, line in enumerate(clean):
        for pat in WALL_CLOCK_PATTERNS:
            if pat.search(line):
                emit(idx, "wall-clock", RULES["wall-clock"])
                break
        for pat in RAW_RANDOM_PATTERNS:
            if pat.search(line):
                emit(idx, "raw-random", RULES["raw-random"])
                break
        if PDES_CHANNEL_RE.search(line):
            emit(idx, "pdes-lane-channel", RULES["pdes-lane-channel"])
        for pat in EVENT_QUEUE_PATTERNS:
            if pat.search(line):
                emit(idx, "event-queue", RULES["event-queue"])
                break

    # pointer-key: declarations may span lines; report at the declaration's
    # first line.
    clean_text = "\n".join(clean)
    for m in POINTER_KEY_RE.finditer(clean_text):
        idx = clean_text.count("\n", 0, m.start())
        emit(idx, "pointer-key", RULES["pointer-key"])

    # unordered-iter: iteration over any name declared unordered in this file
    # or anywhere else in the project (members declared in headers are walked
    # from .cpp files).
    local = collect_unordered_names(clean_text)
    names = local | project_unordered
    hazard_patterns = [(n, p) for n in sorted(names) for p in iteration_patterns(n)]
    for idx, line in enumerate(clean):
        seen = set()
        for name, pat in hazard_patterns:
            if name in seen:
                continue
            if pat.search(line):
                seen.add(name)
                emit(idx, "unordered-iter",
                     f"iteration over std::unordered_* container '{name}' "
                     "(hash order can leak into deterministic output)")

    # Range-for directly over an unordered-typed temporary/expression is
    # caught by the libclang pass when available.
    if use_libclang:
        findings.extend(libclang_range_for_findings(path, rel, lines,
                                                    used_allows))

    # uninit-config: walk struct blocks named *Config/*Params.
    depth = 0
    in_struct_depth = None
    for idx, line in enumerate(clean):
        if in_struct_depth is None and CONFIG_STRUCT_RE.search(line):
            # Struct body may open on this line or a later one.
            in_struct_depth = depth + 1 if "{" in line else -1
        if in_struct_depth == -1 and "{" in line:
            in_struct_depth = depth + 1
        depth += line.count("{") - line.count("}")
        if in_struct_depth is not None and in_struct_depth != -1:
            if depth < in_struct_depth:
                in_struct_depth = None
                continue
            if depth == in_struct_depth:
                m = UNINIT_MEMBER_RE.match(clean[idx])
                if m and "operator" not in line and "(" not in line:
                    emit(idx, "uninit-config",
                         f"member '{m.group(1)}' of a Config/Params struct "
                         "has no initializer")

    # stale-allow: runs last, once every other rule has recorded which
    # allow() comments it actually leaned on. Rule names this linter does not
    # own (dpar_analyze's families share the comment namespace) and rules out
    # of scope / exempt for this file are skipped, never flagged.
    for idx, line in enumerate(lines):
        for m in ALLOW_RE.finditer(line):
            rule = m.group(1)
            if rule not in RULES or rule == "stale-allow":
                continue
            if rel in RULE_EXEMPT_FILES.get(rule, ()):
                continue
            if not rule_in_scope(rule, rel):
                continue
            if (idx, rule) not in used_allows:
                emit(idx, "stale-allow",
                     f"allow({rule}) suppresses no [{rule}] finding "
                     "(remove it, or move it back onto the offending line)")
    return findings


def libclang_range_for_findings(path, rel, lines, used_allows=None):
    """AST pass: flag range-for statements whose range expression has an
    unordered container type. Requires python clang bindings + libclang;
    silently skipped (with a note once) when unavailable. Allows that
    suppress an AST finding are recorded in `used_allows` so the stale-allow
    pass does not flag them."""
    cursor_kind, index = _libclang_handle()
    if index is None:
        return []
    try:
        tu = index.parse(path, args=["-std=c++20", "-I", "src"])
    except Exception:
        return []
    found = []
    def walk(node):
        if node.kind == cursor_kind.CXX_FOR_RANGE_STMT:
            children = list(node.get_children())
            if children:
                t = children[0].type.get_canonical().spelling
                if "unordered_" in t and node.location.file and \
                        os.path.samefile(node.location.file.name, path):
                    idx = node.location.line - 1
                    if 0 <= idx < len(lines):
                        a = allowed(lines, idx, "unordered-iter")
                        if a is not None:
                            if used_allows is not None:
                                used_allows.add((a, "unordered-iter"))
                        else:
                            found.append(Finding(
                                rel, node.location.line, "unordered-iter",
                                f"range-for over unordered type '{t}' "
                                "(libclang)"))
        for c in node.get_children():
            walk(c)
    walk(tu.cursor)
    return found


_LIBCLANG = None


def _libclang_handle():
    global _LIBCLANG
    if _LIBCLANG is None:
        try:
            from clang.cindex import CursorKind, Index  # type: ignore
            _LIBCLANG = (CursorKind, Index.create())
        except Exception as e:  # ImportError or missing libclang.so
            print(f"note: libclang unavailable ({e.__class__.__name__}); "
                  "regex engine only", file=sys.stderr)
            _LIBCLANG = (None, None)
    return _LIBCLANG


def gather_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
        elif os.path.isfile(full):
            files.append(full)
        else:
            raise SystemExit(f"dpar-lint: no such file or directory: {p}")
    return files


def run_lint(root, paths, use_libclang):
    files = gather_files(root, paths)
    texts = {}
    project_unordered = set()
    for f in files:
        with open(f, encoding="utf-8", errors="replace") as fh:
            texts[f] = fh.read()
        project_unordered |= collect_unordered_names(
            "\n".join(strip_strings_and_comments(l)
                      for l in texts[f].split("\n")))
    findings = []
    for f in files:
        rel = os.path.relpath(f, root).replace(os.sep, "/")
        findings.extend(lint_file(f, rel, texts[f], project_unordered,
                                  use_libclang))
    return findings


def self_test(root, use_libclang):
    """Golden corpus: bad.cpp's findings must match its `// expect(rule)`
    annotations exactly (same line, same rule); good.cpp must be clean."""
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    bad = os.path.join(fixtures, "bad.cpp")
    good = os.path.join(fixtures, "good.cpp")
    for f in (bad, good):
        if not os.path.isfile(f):
            print(f"self-test: missing fixture {f}", file=sys.stderr)
            return 2
    ok = True

    with open(bad, encoding="utf-8") as fh:
        bad_lines = fh.read().split("\n")
    expected = set()
    for idx, line in enumerate(bad_lines):
        for m in EXPECT_RE.finditer(line):
            expected.add((idx + 1, m.group(1)))
    if not expected:
        print("self-test: bad.cpp has no expect() annotations", file=sys.stderr)
        return 2
    got = {(f.line, f.rule)
           for f in run_lint(root, [os.path.relpath(bad, root)], use_libclang)}
    for miss in sorted(expected - got):
        print(f"self-test: bad.cpp:{miss[0]} expected [{miss[1]}] "
              "but the linter stayed silent", file=sys.stderr)
        ok = False
    for extra in sorted(got - expected):
        print(f"self-test: bad.cpp:{extra[0]} unexpected [{extra[1]}]",
              file=sys.stderr)
        ok = False

    good_findings = run_lint(root, [os.path.relpath(good, root)], use_libclang)
    for f in good_findings:
        print(f"self-test: good.cpp should be clean, got: {f}", file=sys.stderr)
        ok = False

    print("self-test: " + ("PASS" if ok else "FAIL")
          + f" ({len(expected)} seeded violations, "
            f"{len(good_findings)} false positives)")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description="determinism-contract linter (see module docstring)")
    ap.add_argument("paths", nargs="*",
                    help=f"files/dirs to lint (default: {' '.join(DEFAULT_SCAN_DIRS)})")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the golden fixture corpus")
    ap.add_argument("--use-libclang", action="store_true",
                    help="enable the libclang AST pass when available")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:<15} {desc}")
        return 0
    if args.self_test:
        return self_test(args.root, args.use_libclang)

    paths = args.paths or [d for d in DEFAULT_SCAN_DIRS
                           if os.path.isdir(os.path.join(args.root, d))]
    findings = run_lint(args.root, paths, args.use_libclang)
    for f in findings:
        print(f)
    n_files = len(gather_files(args.root, paths))
    if findings:
        print(f"dpar-lint: {len(findings)} finding(s) in {n_files} file(s)",
              file=sys.stderr)
        return 1
    print(f"dpar-lint: clean ({n_files} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
