// dpar-lint golden fixture: determinism-contract-clean counterparts of every
// bad.cpp pattern, plus the allow-comment escape hatch and the known
// look-alikes the linter must NOT flag. The self-test fails on any finding
// in this file. This file is never compiled.
#include <chrono>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

// Monotonic perf accounting is permitted: it feeds the perf JSON side
// channel, never simulator state.
inline double perf_elapsed() {
  const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Identifiers containing banned words are not calls of them.
inline long runtime(long x) { return x; }        // not time(
inline long wall_time(long x) { return x; }      // not time(
inline int randomize_nothing() { return 0; }     // not rand()
struct BrandConfig {
  int brand = 1;  // initialized; name contains "rand"
};

// Point lookups into unordered containers are fine — only iteration leaks
// hash order.
struct Table {
  std::unordered_map<int, double> cells_;

  double lookup(int k) const {
    auto it = cells_.find(k);
    return it != cells_.end() ? it->second : 0.0;
  }
  bool has(int k) const { return cells_.count(k) != 0; }
};

// Sort-before-emit: collecting keys then sorting is the sanctioned pattern,
// with the walk itself annotated as order-independent.
inline std::vector<int> sorted_keys(const Table& t) {
  std::vector<int> keys;
  keys.reserve(t.cells_.size());
  // dpar-lint: allow(unordered-iter) keys are collected then sorted before use
  for (const auto& [k, v] : t.cells_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Value-keyed ordered containers order deterministically.
inline std::map<std::string, int> by_name_;
inline int walk_by_name() {
  int n = 0;
  for (const auto& kv : by_name_) n += kv.second;
  return n;
}

// Smart-pointer values (not keys) are fine; iteration over a std::map of
// them is deterministic.
inline std::map<int, std::unique_ptr<int>> owned_;

// Fully initialized Params struct.
struct TunableParams {
  std::uint64_t chunk_bytes = 64 * 1024;
  double slack = 2.0;
  bool enabled = true;
  std::vector<int> weights;  // non-POD members need no "= ..." to be defined
};

// Heap-adjacent identifiers and sanctioned orderings the event-queue rule
// must not flag: sorting is fine (only the heap family is banned), names
// merely containing "heap" are not calls of it, and a genuinely lane-local
// scratch heap takes the allow escape with a justification.
struct ScratchRanking {
  std::vector<int> scores_;
  long heap_bytes_ = 0;  // member named *heap* is not a heap primitive
  void order() { std::sort(scores_.begin(), scores_.end()); }
  long measure_heap_usage() { return heap_bytes_; }  // not make_heap(
  void top_k() {
    // dpar-lint: allow(event-queue) transient scratch ranking, never holds
    // simulator events — the engine's queue is not bypassed
    std::make_heap(scores_.begin(), scores_.end());
  }
};

// Cross-LP file (this fixture stands in for one via RULE_ONLY_FILES): the
// lane-routed and batch scheduling calls are the sanctioned channel, and a
// provably lane-local call takes the allow escape with a justification.
struct FakeEngine {
  template <class F> void at(long, F) {}
  template <class F> void after(long, F) {}
  template <class F> void at_in(int, long, F) {}
  template <class F> void after_in(int, long, F) {}
  template <class F> void at_all(long, F) {}
  template <class F> void after_all(long, F) {}
};
struct CrossLaneSite {
  FakeEngine eng_;
  void deliver() {
    eng_.at_in(2, 10, [] {});
    eng_.after_in(2, 5, [] {});
    eng_.after_all(5, [] {});
    // dpar-lint: allow(pdes-lane-channel) loopback stays in the sender's lane
    eng_.after(5, [] {});
  }
};

// The sanctioned timeout arm/cancel idiom for the robust I/O retry protocol:
// the timeout is armed in the *client node's own lane* via after_in, tagged
// with an attempt generation, and the server's reply — itself delivered to
// the client's lane through the network channel — cancels it from that same
// lane. Both event and cancel live in one lane, so the race is resolved by
// simulated time alone at every worker count.
struct RetryClient {
  FakeEngine eng_;
  int lane_ = 3;
  long timeout_ev_ = 0;
  unsigned attempt_ = 0;
  void start_attempt() {
    const unsigned gen = ++attempt_;
    eng_.after_in(lane_, 1000, [this, gen] { on_timeout(gen); });
  }
  void on_reply() {
    // In-lane cancel: Engine::cancel asserts the event belongs to the
    // calling lane, which this idiom guarantees by construction.
    timeout_ev_ = 0;
  }
  void on_timeout(unsigned gen) {
    if (gen == attempt_) start_attempt();  // stale generations are no-ops
  }
};

// Allows the stale-allow pass must NOT flag: rule names owned by other
// tools sharing the `dpar-lint:` comment namespace (here dpar_analyze's
// cross-lane-post) are skipped rather than reported, and a used allow —
// like every one above in this file — is load-bearing by definition.
struct OtherToolEscape {
  FakeEngine eng_;
  // dpar-lint: allow(cross-lane-post) self-delivery, never leaves the lane
  void loopback() { eng_.at_in(2, 10, [] {}); }
};

}  // namespace fixture
