// dpar-analyze golden fixture: contract-clean counterparts of every
// analyze_bad.cpp pattern, the allow-comment escapes, and the look-alikes
// the analyzer must NOT flag. The self-test fails on any finding in this
// file. Never compiled; macros stood in textually (real code includes
// src/sim/lane_annotations.hpp).
#include <chrono>
#include <map>
#include <unordered_map>
#include <vector>

#define DPAR_LANE_OWNED(...)
#define DPAR_EXCLUSIVE_LANE
#define DPAR_LANE_SAFE
#define DPAR_CROSS_LANE_API

namespace fixture {

struct FakeEngine {
  template <class F> void at(long, F) {}
  template <class F> void after(long, F) {}
  template <class F> void at_in(int, long, F) {}
  template <class F> void after_in(int, long, F) {}
  template <class F> void at_all(long, F) {}
  template <class F> void after_all(long, F) {}
  int exclusive_lane() const { return 0; }
};

// ---- cross-lane-post: the sanctioned channels -----------------------------
struct Mailbox {
  FakeEngine eng_;

  // Helpers on the path from a cross-LP entry point use the lane-routed or
  // batch channels; both are window-barrier controlled.
  void routed_helper(int lane, long t) {
    eng_.at_in(lane, t, [] {});
    eng_.after_all(t, [] {});
  }

  DPAR_CROSS_LANE_API void deliver(int lane, long t) { routed_helper(lane, t); }

  // A deliberate raw post on a cross-LP path takes the reviewed escape —
  // either rule name works, since dpar-lint's pdes-lane-channel guards the
  // same invariant.
  DPAR_CROSS_LANE_API void loopback(long t) {
    // dpar-lint: allow(pdes-lane-channel) loopback stays in the sender's lane
    eng_.after(t, [] {});
  }

  DPAR_CROSS_LANE_API void loopback2(long t) {
    // dpar-lint: allow(cross-lane-post) self-delivery, never leaves the lane
    eng_.after(t, [] {});
  }

  // Raw posts are fine in functions no cross-LP entry point reaches: the
  // driver's own schedule is single-lane by construction.
  void local_schedule(long t) { eng_.at(t, [] {}); }

  // std::map::at is not Engine::at — the receiver is not an engine.
  std::map<int, long> files_;
  long lookup(int id) { return files_.at(id); }
};

// ---- lane-capture: ownership-clean callbacks ------------------------------
class DPAR_LANE_OWNED(lane_) Client {
 public:
  // Stack state crosses into a deferred callback by value.
  void arm() {
    long deadline = 100;
    eng_.after_in(lane_, 10, [deadline] { (void)deadline; });
  }

  // Enumerated captures on a cross-lane post; values only.
  void broadcast() {
    eng_.at_in(peer_, 10, [n = hits_] { (void)n; });
  }

  // `this` into the lane that owns it (matches DPAR_LANE_OWNED(lane_)).
  void reschedule() {
    eng_.at_in(lane_, 10, [this] { ++hits_; });
  }

  // `this` into the exclusive lane: exclusive events run with every lane
  // quiescent, so any ownership is safe to touch.
  void fold() {
    eng_.after_in(eng_.exclusive_lane(), 10, [this] { ++hits_; });
  }

  // A named callback variable is resolved to its lambda and checked the
  // same way as an inline one.
  void named() {
    auto cb = [this] { ++hits_; };
    eng_.after_in(lane_, 10, cb);
  }

  // Capturing a reference *parameter* by reference is not a stack-local
  // dangle: the referent outlives the frame by the caller's contract.
  void tag(long& slot) {
    eng_.after_in(lane_, 10, [this, &slot] { slot = hits_; });
  }

 private:
  FakeEngine eng_;
  int lane_ = 1;
  int peer_ = 2;
  long hits_ = 0;
};

// ---- exclusive-lane-write: the three sanctioned contexts ------------------
struct Ledger {
  FakeEngine eng_;
  DPAR_EXCLUSIVE_LANE std::vector<long> tracked_;
  DPAR_LANE_SAFE std::vector<long> shards_;  // per-lane sharded: any lane
  long scratch_ = 0;

  // Setup runs before the engine does: constructors are exclusive-safe.
  Ledger() { tracked_.push_back(0); }

  // An annotated note handler.
  DPAR_EXCLUSIVE_LANE void on_note(long v) { tracked_.push_back(v); }

  // A callback posted into the exclusive lane.
  void defer(long v) {
    eng_.after_in(eng_.exclusive_lane(), 5, [this, v] { tracked_.push_back(v); });
  }

  // Unannotated / lane-safe state mutates anywhere.
  void touch(int lane) {
    scratch_ += 1;
    shards_.push_back(lane);
  }

  // Reads of exclusive state are not writes.
  long size() const { return static_cast<long>(tracked_.size()); }

  // A reviewed escape for a provably-quiescent mutation path.
  void reset_between_runs() {
    // dpar-lint: allow(exclusive-lane-write) called only between engine runs,
    // when no window is executing
    tracked_.clear();
  }
};

// ---- nondet-feeds-post: determinism-clean posting contexts ----------------
struct Sampler {
  FakeEngine eng_;
  std::unordered_map<int, long> stats_;

  // Monotonic perf clocks, point lookups, and sorted emission are all fine
  // in a posting context.
  void kick() {
    const auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    long acc = stats_.count(7) ? stats_.find(7)->second : 0;
    std::vector<int> keys;
    // dpar-lint: allow(unordered-iter) keys are collected then sorted before use
    for (const auto& kv : stats_) keys.push_back(kv.first);
    std::sort(keys.begin(), keys.end());
    for (int k : keys) acc += stats_.find(k)->second;
    eng_.at(acc, [] {});
  }

  // Hazards in a context that never posts feed no event schedule (dpar-lint
  // still audits them tree-wide; the analyzer's job is the posting path).
  long report_only() {
    long n = 0;
    for (const auto& kv : stats_) n += kv.second;  // order-independent sum
    return n;
  }
};

}  // namespace fixture
