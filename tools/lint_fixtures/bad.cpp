// dpar-lint golden fixture: every seeded violation below carries an expect
// marker naming its rule. The self-test requires the linter to
// produce exactly this finding set — a missed line means a rule regressed, an
// extra line means a new false positive. This file is never compiled.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <queue>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Widget {
  int v = 0;
};

// ---- wall-clock ----------------------------------------------------------
inline long wall_now() {
  auto t = std::chrono::system_clock::now();  // expect(wall-clock)
  (void)t;
  long a = time(nullptr);                     // expect(wall-clock)
  long b = std::time(nullptr);                // expect(wall-clock)
  return a + b;
}

// ---- raw-random ----------------------------------------------------------
inline int roll() {
  std::random_device rd;        // expect(raw-random)
  std::mt19937 gen(rd());       // expect(raw-random)
  srand(42);                    // expect(raw-random)
  return rand() % 6;            // expect(raw-random)
}

// ---- unordered-iter ------------------------------------------------------
struct Table {
  std::unordered_map<int, double> cells_;
  std::unordered_set<int> keys_;

  double sum_in_hash_order() const {
    double s = 0;
    for (const auto& [k, v] : cells_) s += v;  // expect(unordered-iter)
    for (auto it = keys_.begin(); it != keys_.end(); ++it)  // expect(unordered-iter)
      s += *it;
    return s;
  }
};

// Multi-line declaration + iteration from another function.
inline std::unordered_map<long, std::map<int, int>>
    by_file_;
inline long walk_by_file() {
  long n = 0;
  for (const auto& kv : by_file_) n += kv.first;  // expect(unordered-iter)
  return n;
}

// ---- pointer-key ---------------------------------------------------------
inline std::map<Widget*, int> ranks_;        // expect(pointer-key)
inline std::set<const Widget*> live_;        // expect(pointer-key)

// ---- uninit-config -------------------------------------------------------
struct TunableParams {
  std::uint64_t chunk_bytes;  // expect(uninit-config)
  double slack;               // expect(uninit-config)
  bool enabled;               // expect(uninit-config)
  int initialized_fine = 3;
};

struct RunConfig {
  std::size_t workers;        // expect(uninit-config)
  std::uint32_t seed = 7;
};

// ---- event-queue ---------------------------------------------------------
// A hand-rolled timer queue beside the engine: cancels degrade to O(n) pile-up
// and the (time, seq) pop order is easy to get subtly wrong.
struct AdHocTimerQueue {
  std::priority_queue<long> pending_;          // expect(event-queue)
  std::vector<long> heap_;
  void rebuild() {
    std::make_heap(heap_.begin(), heap_.end());  // expect(event-queue)
    push_heap(heap_.begin(), heap_.end());       // expect(event-queue)
    std::pop_heap(heap_.begin(), heap_.end());   // expect(event-queue)
  }
};

// ---- pdes-lane-channel ---------------------------------------------------
// This fixture file is in RULE_ONLY_FILES for the rule, standing in for a
// cross-LP path like src/net/network.cpp.
struct FakeEngine {
  template <class F> void at(long, F) {}
  template <class F> void after(long, F) {}
  template <class F> void at_in(int, long, F) {}
};
struct CrossLaneSite {
  FakeEngine eng_;
  FakeEngine& engine() { return eng_; }
  void deliver() {
    eng_.at(10, [] {});                 // expect(pdes-lane-channel)
    eng_.after(5, [] {});               // expect(pdes-lane-channel)
    engine().after(5, [] {});           // expect(pdes-lane-channel)
  }
};

// Timeout arm/cancel idiom gone wrong: the retry timeout for a robust I/O
// attempt is armed with a plain after(), so on a partitioned engine it lands
// in whatever lane happens to be running — the server's reply (delivered to
// the client's lane) then races the timeout instead of deterministically
// cancelling it.
struct BadRetryClient {
  FakeEngine eng_;
  long timeout_ev_ = 0;
  void start_attempt() {
    eng_.after(1000, [this] { on_timeout(); });  // expect(pdes-lane-channel)
  }
  void on_reply() { timeout_ev_ = 0; }
  void on_timeout() { start_attempt(); }
};

// ---- stale-allow ----------------------------------------------------------
// A suppression whose offending line was refactored away: nothing on or
// under this comment matches [raw-random] any more, so the allow is inert —
// and silently masks the next raw_random landing here.
struct ReformedSampler {
  // dpar-lint: allow(raw-random) seeded generator for jitter  // expect(stale-allow)
  long next() { return 4; }  // chosen by fair dice roll, offline
};

}  // namespace fixture
