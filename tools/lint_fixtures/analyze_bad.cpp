// dpar-analyze golden fixture: one planted violation per analyzer rule
// family, each tagged `// expect(<rule>)` on the exact line the finding must
// anchor to. The self-test (tools/dpar_analyze.py --self-test, wired as
// ctest DparAnalyze.SelfTest) fails if any seeded violation is missed OR if
// anything else in this file is flagged. This file is never compiled, so the
// annotation macros are stood in for textually — real code gets them from
// src/sim/lane_annotations.hpp.
#include <chrono>
#include <random>
#include <unordered_map>
#include <vector>

#define DPAR_LANE_OWNED(...)
#define DPAR_EXCLUSIVE_LANE
#define DPAR_LANE_SAFE
#define DPAR_CROSS_LANE_API

namespace fixture {

struct FakeEngine {
  template <class F> void at(long, F) {}
  template <class F> void after(long, F) {}
  template <class F> void at_in(int, long, F) {}
  template <class F> void after_in(int, long, F) {}
  template <class F> void at_all(long, F) {}
  template <class F> void after_all(long, F) {}
  int exclusive_lane() const { return 0; }
};

// ---- rule: cross-lane-post ------------------------------------------------
// A cross-LP entry point reaching a raw post through a helper — exactly the
// indirection the line-local pdes-lane-channel regex cannot see.
struct Mailbox {
  FakeEngine eng_;

  void raw_post_helper(long t) {
    eng_.at(t, [] {});  // expect(cross-lane-post)
  }

  DPAR_CROSS_LANE_API void deliver(long t) {
    raw_post_helper(t);  // the violation is reported at the post, via here
  }

  DPAR_CROSS_LANE_API void deliver_direct(long t) {
    eng_.after(t, [] {});  // expect(cross-lane-post)
  }
};

// ---- rule: lane-capture ---------------------------------------------------
class DPAR_LANE_OWNED(lane_) Client {
 public:
  // A by-reference capture of a stack-local in a deferred callback: the
  // frame is gone when the event fires.
  void arm() {
    long deadline = 100;
    eng_.after_in(lane_, 10, [&deadline] { (void)deadline; });  // expect(lane-capture)
  }

  // Default [&] on a cross-lane post hides every ownership question.
  void broadcast() {
    eng_.at_in(peer_, 10, [&] { (void)hits_; });  // expect(lane-capture)
  }

  // `this` is owned by lane_ (per DPAR_LANE_OWNED) but the callback is
  // posted into peer_'s lane.
  void wrong_lane() {
    eng_.at_in(peer_, 10, [this] { ++hits_; });  // expect(lane-capture)
  }

 private:
  FakeEngine eng_;
  int lane_ = 1;
  int peer_ = 2;
  long hits_ = 0;
};

// ---- rule: exclusive-lane-write -------------------------------------------
struct Ledger {
  FakeEngine eng_;
  DPAR_EXCLUSIVE_LANE std::vector<long> tracked_;
  long scratch_ = 0;  // unannotated: writable anywhere

  // Mutation from a plain method that is not an exclusive-lane handler.
  void on_note() {
    tracked_.push_back(1);  // expect(exclusive-lane-write)
    scratch_ += 1;          // fine: not DPAR_EXCLUSIVE_LANE
  }

  // Mutation from a callback posted into a *data* lane, not the exclusive
  // lane.
  void defer() {
    eng_.after_in(3, 5, [this] { tracked_.pop_back(); });  // expect(exclusive-lane-write)
  }
};

// ---- rule: nondet-feeds-post ----------------------------------------------
struct Sampler {
  FakeEngine eng_;
  std::unordered_map<int, long> stats_;

  // Wall clock, raw randomness, and hash-order iteration all computed in a
  // context that posts events: any of them can steer the schedule.
  void kick() {
    long seed = std::chrono::system_clock::now().time_since_epoch().count();  // expect(nondet-feeds-post)
    std::mt19937 rng(42);  // expect(nondet-feeds-post)
    long acc = static_cast<long>(rng());
    for (const auto& kv : stats_) acc += kv.second;  // expect(nondet-feeds-post)
    eng_.at(seed + acc, [] {});
  }
};

}  // namespace fixture
