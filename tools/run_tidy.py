#!/usr/bin/env python3
"""clang-tidy driver over the CMake compilation database.

Runs the repo's .clang-tidy profile (determinism & concurrency checks; see
DESIGN.md "Determinism contract") across every first-party translation unit
in compile_commands.json, in parallel, and fails on any diagnostic
(WarningsAsErrors: '*' in .clang-tidy).

The container/CI image provides clang-tidy; a developer box without it gets
a clear SKIP (exit 0) rather than a traceback, so `ctest` stays green
locally — pass --require to turn a missing binary into a failure (CI does).

A stale database is an error, not a silent partial run: if any
CMakeLists.txt is newer than compile_commands.json, or a first-party TU on
disk has no database entry (a new source added without re-configuring),
run_tidy fails with a regenerate hint (exit 2) instead of tidying yesterday's
target list and reporting "clean".

Usage:
  tools/run_tidy.py [--build-dir build] [--jobs N] [--require]
                    [--filter REGEX] [files...]

Exit status: 0 clean/skip, 1 diagnostics, 2 stale or missing database,
3 --require with no clang-tidy installed.
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

# Versioned fallbacks cover distros that ship only clang-tidy-NN.
TIDY_CANDIDATES = ("clang-tidy", "clang-tidy-20", "clang-tidy-19",
                   "clang-tidy-18", "clang-tidy-17", "clang-tidy-16",
                   "clang-tidy-15", "clang-tidy-14")

# First-party code only: system headers, gtest, and google-benchmark TUs are
# not ours to clean.
FIRST_PARTY_RE = re.compile(r"/(src|bench|examples|tests)/[^/]+.*\.(cpp|cc)$")


def find_tidy():
    env = os.environ.get("CLANG_TIDY")
    if env:
        path = shutil.which(env)
        if path:
            return path
        raise SystemExit(f"run_tidy: $CLANG_TIDY={env!r} not found in PATH")
    for cand in TIDY_CANDIDATES:
        path = shutil.which(cand)
        if path:
            return path
    return None


def load_database(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"run_tidy: {db_path} not found — configure with "
              "`cmake -B build -S .` first (CMAKE_EXPORT_COMPILE_COMMANDS is "
              "already ON in CMakeLists.txt)", file=sys.stderr)
        sys.exit(2)
    with open(db_path) as f:
        return json.load(f), db_path


# The trees whose TUs the database must cover (they match FIRST_PARTY_RE and
# are all wired into always-built targets).
FIRST_PARTY_DIRS = ("src", "bench", "tests", "examples")


def database_staleness(root, db_path, db):
    """List of reasons compile_commands.json can no longer be trusted, empty
    when it is fresh.

    Two signals, both of which have bitten in practice:
      * mtime — some CMakeLists.txt was edited after the last configure.
        Targets, sources, or flags may have changed; tidying the old command
        lines silently checks the wrong build.
      * coverage — a first-party .cpp/.cc on disk has no database entry: a
        source was added (or a target dropped) without re-configuring, so a
        "clean" run never looked at it.
    """
    reasons = []
    db_mtime = os.path.getmtime(db_path)
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if not d.startswith(".") and d != "build"
                             and not os.path.isfile(
                                 os.path.join(root, d, "CMakeCache.txt")))
        for fn in filenames:
            if fn == "CMakeLists.txt":
                full = os.path.join(dirpath, fn)
                if os.path.getmtime(full) > db_mtime:
                    reasons.append(
                        f"{os.path.relpath(full, root)} is newer than "
                        "compile_commands.json")
    covered = {os.path.realpath(e["file"]) for e in db}
    for tree in FIRST_PARTY_DIRS:
        top = os.path.join(root, tree)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith((".cpp", ".cc")):
                    full = os.path.realpath(os.path.join(dirpath, fn))
                    if full not in covered:
                        reasons.append(
                            f"{os.path.relpath(full, root)} has no database "
                            "entry")
    return reasons


def tidy_one(args):
    tidy, build_dir, path = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    # clang-tidy prints "N warnings generated." noise to stderr even when
    # everything those warnings belong to is suppressed; keep only real
    # diagnostics.
    noise = re.compile(
        r"^\d+ warnings? generated\.$|^Suppressed \d+ warnings?.*|"
        r"^Use -header-filter=.*|^\s*$")
    err = "\n".join(l for l in proc.stderr.splitlines() if not noise.match(l))
    return path, proc.returncode, proc.stdout.strip(), err.strip()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*",
                    help="restrict to these sources (default: all first-party "
                         "TUs in the database)")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count()))
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 3) when clang-tidy is not installed "
                         "instead of skipping")
    ap.add_argument("--filter", default=None,
                    help="only TUs whose path matches this regex")
    args = ap.parse_args()

    tidy = find_tidy()
    if tidy is None:
        msg = ("run_tidy: SKIP — no clang-tidy in PATH (tried: "
               + ", ".join(TIDY_CANDIDATES)
               + "); set $CLANG_TIDY or install clang-tidy")
        if args.require:
            print(msg.replace("SKIP", "FAIL (--require)"), file=sys.stderr)
            return 3
        print(msg)
        return 0

    db, db_path = load_database(args.build_dir)
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    stale = database_staleness(root, db_path, db)
    if stale:
        for r in stale:
            print(f"run_tidy: stale database: {r}", file=sys.stderr)
        print("run_tidy: compile_commands.json is out of date — re-run "
              f"`cmake -B {args.build_dir} -S .` and retry", file=sys.stderr)
        return 2

    sources = sorted({e["file"] for e in db if FIRST_PARTY_RE.search(e["file"])})
    if args.files:
        wanted = {os.path.abspath(f) for f in args.files}
        sources = [s for s in sources if os.path.abspath(s) in wanted]
    if args.filter:
        pat = re.compile(args.filter)
        sources = [s for s in sources if pat.search(s)]
    if not sources:
        raise SystemExit("run_tidy: no matching translation units")

    print(f"run_tidy: {tidy} over {len(sources)} TUs, {args.jobs} jobs")
    failures = 0
    with multiprocessing.Pool(args.jobs) as pool:
        for path, rc, out, err in pool.imap_unordered(
                tidy_one, [(tidy, args.build_dir, s) for s in sources]):
            rel = os.path.relpath(path)
            if rc != 0 or out:
                failures += 1
                print(f"== {rel}: FAIL")
                if out:
                    print(out)
                if err:
                    print(err, file=sys.stderr)
            else:
                print(f"   {rel}: ok")
    if failures:
        print(f"run_tidy: {failures}/{len(sources)} TUs with findings",
              file=sys.stderr)
        return 1
    print(f"run_tidy: clean ({len(sources)} TUs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
