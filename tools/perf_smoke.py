#!/usr/bin/env python3
"""CI perf-smoke gate over bench_micro's perf accounting.

Reads the dpar-bench-perf-v1 JSON that bench_micro appends to
BENCH_sim_core.json (or DPAR_BENCH_JSON) and applies two checks:

1. Machine-independent ratio gates: the flat schedulers must sustain at
   least MIN_DUTY_RATIO x the events/sec of their retained multimap
   references on the enqueue/next/completed duty cycle. NOOP is reported
   but not gated -- its reference is already a flat std::deque, not a
   multimap, so there is no node-based baseline to beat.
2. Machine-dependent absolute floor: every benchmark present in the
   checked-in baseline must reach (1 - MAX_REGRESSION) x its baseline
   events/sec. This catches large regressions on comparable hardware;
   the ratio gates above are the authoritative cross-machine signal.
3. PDES worker sweep: BM_PdesSweep/N reports engine events per wall
   second at N workers. The workers=4 rate must reach
   MIN_PDES_SPEEDUP x the workers=1 rate -- but only when the machine
   actually has >= 4 hardware threads (the sweep also records
   PdesSweep/hw_threads); on smaller machines the per-worker rates are
   printed as tracked-only.

On a fresh clone the baseline file may not exist yet; in that case this
script seeds it from the current run's rates and reports success, so the
first CI run establishes the floor instead of erroring.

Exit status is non-zero on any failure unless --warn-only is given
(sanitizer legs: instrumentation skews timings far beyond 30%).
"""

import argparse
import json
import os
import sys

MAX_REGRESSION = 0.30
MIN_DUTY_RATIO = 1.3
MIN_DECOMPOSE_SPEEDUP = 2.0
MIN_PDES_SPEEDUP = 2.0
MIN_QUEUE_SPEEDUP = 1.5
MIN_HW_THREADS_FOR_PDES_GATE = 4
# Figure/table bench sections are gated as whole-suite events/sec rates
# (total engine events / total wall): per-experiment walls at DPAR_SCALE=64
# are sub-second and noisy, the suite aggregate is stable — especially under
# DPAR_BENCH_REPEAT median timing. 5% guards the ladder queue's promise that
# the tiered structure never taxes the mainline simulation benches.
MAX_FIGURE_REGRESSION = 0.05
FIGURE_PREFIX = "figures/"
GATED_POLICIES = ("deadline", "cscan", "cfq", "anticipatory")
UNGATED_POLICIES = ("noop",)
# Benchmarks that must be present in every bench_micro run: a silently
# dropped benchmark would otherwise keep passing on its stale baseline row.
# Each entry is gated by the absolute floor below once the auto-seeded
# baseline picks it up (extend_baseline on the first run after landing).
REQUIRED_LABELS = ("BM_RepairThroughput",
                   "BM_EventQueueSweep/cancel_heavy_ladder",
                   "BM_EventQueueSweep/cancel_heavy_heap",
                   "BM_EventQueueTimerChurn/ladder",
                   "BM_EventQueueTimerChurn/heap")


def label_config(label):
    """Human description of the engine configuration behind a benchmark
    label, so a gated regression names the lane/worker setup that produced
    it instead of just an aggregate events/sec number."""
    if label.startswith("BM_PdesSweep/"):
        try:
            workers = int(label.split("/")[1])
        except (ValueError, IndexError):
            return None
        return f"PDES workers={workers}, 3x BTIO @ 256 procs"
    if label.startswith("BM_LaneOutboxDrain"):
        return "256 lanes, fan-8 cross-lane posts per window, workers=1"
    if label.startswith("BM_LpChannelHandoff"):
        return "2 lanes ping-pong at lookahead, workers=1"
    if label.startswith("BM_RepairThroughput"):
        return ("rf=3 repair after a 5-40 ms server crash, 400 MB/s repair "
                "cap, 32 MB foreground demo job")
    if label.startswith("BM_EventQueueSweep/"):
        kind = label.rsplit("_", 1)[-1]
        return (f"DPAR_ENGINE_QUEUE={kind}: 32k standing timeout timers, "
                "64 rounds of 512 cancel+re-arm churn")
    if label.startswith("BM_EventQueueTimerChurn/"):
        kind = label.rsplit("/", 1)[-1]
        return (f"DPAR_ENGINE_QUEUE={kind}: 4096 self-re-arming timers, "
                "64k fired events")
    if label.startswith(FIGURE_PREFIX):
        return ("whole figure/table bench suite at DPAR_SCALE: total engine "
                "events / total wall seconds")
    return None


def load_micro(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "dpar-bench-perf-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    micro = doc.get("benches", {}).get("bench_micro")
    if micro is None:
        raise SystemExit(f"{path}: no bench_micro section")
    return {e["label"]: float(e["value"]) for e in micro["experiments"]}


def load_figure_rates(path):
    """Aggregate events/sec per figure/table bench section, keyed
    'figures/<section>'. Sections the run did not produce simply yield no
    label (the release leg runs every bench before this gate; local partial
    runs just gate what they ran)."""
    rates = {}
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError):
        return rates
    for name, section in doc.get("benches", {}).items():
        if not name.startswith(("bench_fig", "bench_table")):
            continue
        events = sum(int(e.get("events", 0)) for e in section["experiments"])
        wall = sum(float(e.get("wall_s", 0.0)) for e in section["experiments"])
        if events > 0 and wall > 0:
            rates[FIGURE_PREFIX + name] = events / wall
    return rates


def gate_queue(current, failures):
    """Gate the tiered event queue against its frozen heap oracle. The
    cancel-heavy sweep is the workload the ladder exists for (O(1)
    generation-kill cancels, no sift/compaction storms) and must show >=
    MIN_QUEUE_SPEEDUP; the steady-state re-arm churn is printed for trend
    visibility only — both queue kinds are near-optimal there."""
    print("== tiered event queue: ladder vs heap oracle ==")
    lad = current.get("BM_EventQueueSweep/cancel_heavy_ladder")
    heap = current.get("BM_EventQueueSweep/cancel_heavy_heap")
    if lad is None or heap is None or heap <= 0:
        failures.append("BM_EventQueueSweep ladder/heap pair missing")
    else:
        r = lad / heap
        ok = r >= MIN_QUEUE_SPEEDUP
        print(f"  cancel-heavy ladder/heap {r:6.2f}x  "
              f"{'ok' if ok else f'FAIL (< {MIN_QUEUE_SPEEDUP}x)'}")
        if not ok:
            failures.append(
                f"BM_EventQueueSweep: ladder only {r:.2f}x the heap oracle "
                f"on the cancel-heavy sweep (limit {MIN_QUEUE_SPEEDUP}x)")
    churn_l = current.get("BM_EventQueueTimerChurn/ladder")
    churn_h = current.get("BM_EventQueueTimerChurn/heap")
    if churn_l is not None and churn_h is not None and churn_h > 0:
        print(f"  re-arm churn ladder/heap {churn_l / churn_h:6.2f}x  "
              "(tracked, not gated)")


def report_faults(path):
    """Warn-only tracking of the fault sweep: print DualPar-vs-vanilla
    throughput per fault level so trends are visible in CI logs, but never
    gate on them -- faulted throughput is dominated by the injected plan, not
    by code performance."""
    try:
        with open(path) as f:
            doc = json.load(f)
        faults = doc.get("benches", {}).get("bench_faults")
    except (OSError, ValueError):
        faults = None
    print("== bench_faults throughput (MB/s; tracked, never gated) ==")
    if faults is None:
        print("  (no bench_faults section in this run)")
        return
    for e in faults["experiments"]:
        print(f"  {e['label']:<20} {float(e['value']):10.2f}")


def gate_scaleout(path, failures, required):
    """Gate the bench_scaleout section: the closed-form striping
    decomposition must beat the frozen per-chunk reference loop by
    MIN_DECOMPOSE_SPEEDUP on wall time at every swept server count
    (machine-independent -- both paths run the same segment stream in the
    same process). Sweep throughputs are printed for trend visibility but
    never gated: they are deterministic simulator outputs, not timings."""
    try:
        with open(path) as f:
            doc = json.load(f)
        scaleout = doc.get("benches", {}).get("bench_scaleout")
    except (OSError, ValueError):
        scaleout = None
    print("== bench_scaleout ==")
    if scaleout is None:
        print("  (no bench_scaleout section in this run)")
        if required:
            failures.append("bench_scaleout section missing (--require-scaleout)")
        return
    entries = {e["label"]: e for e in scaleout["experiments"]}
    closed = {l.rsplit("=", 1)[1]: e for l, e in entries.items()
              if l.startswith("decompose/closed")}
    ref = {l.rsplit("=", 1)[1]: e for l, e in entries.items()
           if l.startswith("decompose/ref")}
    if not closed or closed.keys() != ref.keys():
        failures.append("bench_scaleout: decompose closed/ref pairs incomplete")
    for servers in sorted(closed, key=int):
        if servers not in ref:
            continue
        cw = float(closed[servers]["wall_s"])
        rw = float(ref[servers]["wall_s"])
        if cw <= 0:
            failures.append(f"decompose servers={servers}: zero closed wall time")
            continue
        speedup = rw / cw
        ok = speedup >= MIN_DECOMPOSE_SPEEDUP
        print(f"  decompose servers={servers:<4} closed/ref speedup "
              f"{speedup:6.1f}x  {'ok' if ok else f'FAIL (< {MIN_DECOMPOSE_SPEEDUP}x)'}")
        if not ok:
            failures.append(
                f"decompose servers={servers}: closed form only {speedup:.2f}x "
                f"faster than reference (limit {MIN_DECOMPOSE_SPEEDUP}x)")
    rss = entries.get("peak_rss_mb")
    tracked = [(l, e) for l, e in entries.items()
               if l.startswith(("weak/", "strong/"))]
    for label, e in tracked:
        print(f"  {label:<45} {float(e['value']):10.1f} MB/s "
              f"({e['events']} events; tracked, never gated)")
    if rss is not None:
        print(f"  peak RSS {float(rss['value']):.1f} MB (tracked, never gated)")


def gate_pdes(current, failures):
    """Gate the conservative-PDES worker sweep. BM_PdesSweep/N's value is
    engine events per wall second (the event count is deterministic across
    worker counts, so the rate is directly comparable). The speedup gate
    only fires on machines with enough hardware threads to express
    parallelism; everywhere else the sweep is tracked for trend
    visibility."""
    sweep = {}
    for label, value in current.items():
        # Label shape: BM_PdesSweep/<workers>/real_time (wall-time rates —
        # CPU-time rates would cancel the worker pool's speedup).
        if label.startswith("BM_PdesSweep/"):
            try:
                sweep[int(label.split("/")[1])] = value
            except (ValueError, IndexError):
                continue
    print("== conservative PDES: events/sec by worker count ==")
    if not sweep:
        print("  (no BM_PdesSweep entries in this run)")
        return
    hw = int(current.get("PdesSweep/hw_threads", 0))
    for workers in sorted(sweep):
        rate = sweep[workers]
        print(f"  workers={workers:<3} {rate:12.3g} ev/s "
              f"({rate / workers:10.3g} ev/s per worker)")
    if 1 not in sweep or 4 not in sweep or sweep[1] <= 0:
        failures.append(
            "BM_PdesSweep: workers=1/4 pair missing from sweep "
            f"(have workers={sorted(sweep)}, hw_threads={hw})")
        return
    speedup = sweep[4] / sweep[1]
    # Failure messages carry the full per-worker rate table: a CI log that
    # says only "speedup too low" forces a rerun to learn whether workers=4
    # collapsed or workers=1 inflated.
    per_worker = ", ".join(
        f"workers={w}: {sweep[w]:.3g} ev/s" for w in sorted(sweep))
    if hw >= MIN_HW_THREADS_FOR_PDES_GATE:
        ok = speedup >= MIN_PDES_SPEEDUP
        print(f"  workers 4 vs 1 speedup {speedup:6.2f}x  "
              f"{'ok' if ok else f'FAIL (< {MIN_PDES_SPEEDUP}x)'}")
        if not ok:
            failures.append(
                f"BM_PdesSweep: workers=4 only {speedup:.2f}x faster than "
                f"workers=1 (limit {MIN_PDES_SPEEDUP}x; hw_threads={hw}; "
                f"{per_worker})")
    else:
        print(f"  workers 4 vs 1 speedup {speedup:6.2f}x  "
              f"(tracked only: machine has {hw} hw threads, "
              f"gate needs >= {MIN_HW_THREADS_FOR_PDES_GATE})")


def seed_baseline(path, current):
    """First run on a fresh clone: write the baseline from the current
    rates so later runs have an absolute floor to compare against."""
    rates = {label: value for label, value in sorted(current.items())
             if not label.startswith("PdesSweep/")}
    with open(path, "w") as f:
        json.dump(rates, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-smoke: baseline {path!r} was missing; seeded it with "
          f"{len(rates)} rates from this run (no gate applied)")


def extend_baseline(path, baseline, current):
    """A new benchmark (e.g. BM_LaneOutboxDrain on its first run after
    landing) has no checked-in floor yet: append its current rate to the
    baseline file so the *next* run gates it. The current run is not gated
    against the rate it just produced."""
    fresh = {label: value for label, value in sorted(current.items())
             if label not in baseline and not label.startswith("PdesSweep/")}
    if not fresh:
        return
    merged = dict(baseline)
    merged.update(fresh)
    with open(path, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"perf-smoke: added {len(fresh)} new benchmark(s) to {path!r}: "
          + ", ".join(sorted(fresh)))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--current", default="BENCH_sim_core.json",
                    help="perf JSON written by a fresh bench_micro run")
    ap.add_argument("--baseline", default="bench/perf_baseline.json",
                    help="checked-in {label: events_per_sec} baseline")
    ap.add_argument("--warn-only", action="store_true",
                    help="report failures but exit 0 (sanitizer legs)")
    ap.add_argument("--require-scaleout", action="store_true",
                    help="fail if the perf JSON has no bench_scaleout section")
    args = ap.parse_args()

    try:
        current = load_micro(args.current)
    except OSError as e:
        raise SystemExit(
            f"perf_smoke: cannot read current perf JSON {args.current!r}: "
            f"{e.strerror or e} — run build/bench/bench_micro first (it writes "
            "the dpar-bench-perf-v1 report this gate consumes)")
    # Figure/table suite rates join the same auto-seeded baseline flow as the
    # micros, but with the tighter MAX_FIGURE_REGRESSION floor below.
    current.update(load_figure_rates(args.current))
    if os.path.exists(args.baseline):
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except OSError as e:
            raise SystemExit(
                f"perf_smoke: baseline file {args.baseline!r} unreadable "
                f"({e.strerror or e})")
        except ValueError as e:
            raise SystemExit(
                f"perf_smoke: baseline file {args.baseline!r} is not valid JSON: {e}")
    else:
        seed_baseline(args.baseline, current)
        baseline = {}
    extend_baseline(args.baseline, baseline, current)

    failures = []

    print("== required benchmarks present ==")
    for label in REQUIRED_LABELS:
        present = label in current
        print(f"  {label:<45} {'ok' if present else 'MISSING'}")
        if not present:
            failures.append(
                f"{label}: required benchmark absent from this run "
                "(was it filtered out or did registration break?)")

    def ratio(policy):
        flat = current.get(f"BM_SchedDutyCycle/{policy}_flat")
        ref = current.get(f"BM_SchedDutyCycle/{policy}_ref")
        if flat is None or ref is None or ref <= 0:
            return None
        return flat / ref

    print("== scheduler duty-cycle: flat vs reference ==")
    for policy in GATED_POLICIES + UNGATED_POLICIES:
        r = ratio(policy)
        gated = policy in GATED_POLICIES
        if r is None:
            if gated:
                failures.append(f"duty-cycle pair missing for {policy}")
            continue
        verdict = ""
        if gated:
            ok = r >= MIN_DUTY_RATIO
            verdict = "ok" if ok else f"FAIL (< {MIN_DUTY_RATIO}x)"
            if not ok:
                failures.append(
                    f"{policy}: flat/ref duty-cycle {r:.2f}x < {MIN_DUTY_RATIO}x")
        else:
            verdict = "tracked, not gated"
        print(f"  {policy:<13} {r:6.2f}x  {verdict}")

    print("== striping decomposition: closed form vs reference loop ==")
    dec = current.get("BM_StripeDecompose")
    dec_ref = current.get("BM_StripeDecomposeRef")
    if dec is None or dec_ref is None or dec_ref <= 0:
        failures.append("BM_StripeDecompose/BM_StripeDecomposeRef pair missing")
    else:
        r = dec / dec_ref
        ok = r >= MIN_DECOMPOSE_SPEEDUP
        print(f"  closed/ref   {r:6.2f}x  "
              f"{'ok' if ok else f'FAIL (< {MIN_DECOMPOSE_SPEEDUP}x)'}")
        if not ok:
            failures.append(
                f"BM_StripeDecompose: {r:.2f}x vs reference "
                f"(limit {MIN_DECOMPOSE_SPEEDUP}x)")

    gate_queue(current, failures)
    gate_pdes(current, failures)
    report_faults(args.current)
    gate_scaleout(args.current, failures, args.require_scaleout)

    print("== absolute events/sec vs checked-in baseline ==")
    for label in sorted(baseline):
        base = float(baseline[label])
        if base <= 0:
            print(f"  {label:<45} skipped (no baseline rate)")
            continue
        cur = current.get(label)
        if cur is None:
            if label.startswith(FIGURE_PREFIX):
                # A figure section absent from this run (filtered local
                # invocation) is not an error; the release leg always runs
                # the full suite.
                print(f"  {label:<45} skipped (section not in this run)")
                continue
            failures.append(f"{label}: present in baseline, missing from run")
            print(f"  {label:<45} MISSING")
            continue
        limit = (MAX_FIGURE_REGRESSION if label.startswith(FIGURE_PREFIX)
                 else MAX_REGRESSION)
        delta = cur / base - 1.0
        bad = cur < base * (1.0 - limit)
        if bad:
            cfg = label_config(label)
            failures.append(
                f"{label}: {cur:.3g} ev/s is {-delta:.0%} below baseline "
                f"{base:.3g} (limit {limit:.0%})"
                + (f" [{cfg}]" if cfg else ""))
        print(f"  {label:<45} {delta:+7.1%}{'  FAIL' if bad else ''}")

    if failures:
        print(f"\nperf-smoke: {len(failures)} failure(s)")
        for f in failures:
            print(f"  - {f}")
        if args.warn_only:
            print("perf-smoke: --warn-only set; not failing the build")
            return 0
        return 1
    print("\nperf-smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
