#!/usr/bin/env python3
"""dpar-analyze — AST-grounded lane-ownership & determinism analyzer.

Where tools/dpar_lint.py enforces the determinism contract with line-local
patterns, this tool checks the *structural* half of the conservative-PDES
lane contract (DESIGN.md "Lane-ownership annotations"): it builds a model of
records, members, functions, call edges, event-post sites and lambda
captures, reads the capability annotations of src/sim/lane_annotations.hpp
(DPAR_LANE_OWNED / DPAR_EXCLUSIVE_LANE / DPAR_LANE_SAFE /
DPAR_CROSS_LANE_API), and proves four rule families over real call paths —
including through helper functions that line-local regexes cannot see:

  cross-lane-post     No synchronous call path from a DPAR_CROSS_LANE_API
                      function may reach a raw Engine::at()/after() post.
                      Cross-LP scheduling must go through the lane-routed
                      channel (at_in/after_in/at_all_in) or the batch
                      variants (at_all/after_all), whose sequence numbering
                      the window barrier controls. Replaces (and sees
                      through helpers missed by) dpar-lint's line-local
                      pdes-lane-channel rule.
  lane-capture        Event callbacks (lambdas handed to at*/after*) may
                      capture by reference only state owned by the posting
                      lane or marked DPAR_LANE_SAFE: a by-reference capture
                      of a stack-local, a default [&] capture on a
                      cross-lane post, or `this` posted into a lane other
                      than the owner declared by DPAR_LANE_OWNED is flagged.
                      Posts into the exclusive lane are exempt — exclusive
                      events run with every lane quiescent.
  exclusive-lane-write
                      Members marked DPAR_EXCLUSIVE_LANE (EMC fold state,
                      the repair tracker, the durability ledger) are mutated
                      only inside DPAR_EXCLUSIVE_LANE note handlers or
                      lambdas posted into the exclusive lane.
  nondet-feeds-post   AST-grounded version of the wall-clock / raw-random /
                      unordered-iter rules, scoped to where they can corrupt
                      the event schedule: inside a function (or posted
                      callback) that posts events. Honors the corresponding
                      dpar-lint allow() names, so one reviewed escape covers
                      both tools.

Frontends:
  libclang            Preferred: parses every TU in the exported
                      compile_commands.json (like tools/run_tidy.py) and
                      reads [[clang::annotate]] attributes from the AST.
  internal            Fallback: a bundled C++ structural scanner that
                      recognizes the annotation macros textually. Used
                      automatically when the python clang bindings or
                      libclang.so are unavailable, so the contract is
                      checked on every box. --require-libclang turns the
                      fallback into a hard failure (the pinned CI runner).

Escapes: `// dpar-lint: allow(<rule>)` on the finding line or the contiguous
//-comment block above it, exactly as for dpar-lint; every allow carries a
justification.

Modes:
  dpar_analyze.py [paths...]         analyze files/directories (default: src)
  dpar_analyze.py --self-test        run the golden corpus under
                                     tools/lint_fixtures/analyze_{bad,good}.cpp
  dpar_analyze.py --sarif out.sarif  additionally emit SARIF 2.1.0

Exit status: 0 clean, 1 findings, 2 usage/self-test harness error,
3 --require-libclang with no libclang available.
"""

import argparse
import json
import os
import re
import sys

RULES = {
    "cross-lane-post": (
        "synchronous path from a DPAR_CROSS_LANE_API entry point reaches raw "
        "Engine::at()/after() (route through at_in/after_in/at_all_in)"),
    "lane-capture": (
        "event callback captures state not owned by the posting lane "
        "(capture by value, mark DPAR_LANE_SAFE, or post into the owner lane)"),
    "exclusive-lane-write": (
        "DPAR_EXCLUSIVE_LANE member mutated outside an exclusive-lane "
        "handler (annotate the handler or post the write into the exclusive "
        "lane)"),
    "nondet-feeds-post": (
        "nondeterminism source (wall clock / raw randomness / unordered-"
        "container iteration) inside an event-posting context"),
}

# A finding is also suppressed by the dpar-lint rule that guards the same
# invariant: the justification was already reviewed once.
ALLOW_ALIASES = {
    "cross-lane-post": ("cross-lane-post", "pdes-lane-channel"),
    "lane-capture": ("lane-capture",),
    "exclusive-lane-write": ("exclusive-lane-write",),
    "nondet-feeds-post": ("nondet-feeds-post", "unordered-iter",
                          "wall-clock", "raw-random"),
}

# The engine and its queues are the mechanism the contract protects, not a
# client of it; lane_annotations.hpp is pure macros.
EXEMPT_FILES = {
    "src/sim/engine.hpp",
    "src/sim/engine.cpp",
    "src/sim/event_queue.hpp",
    "src/sim/event_queue.cpp",
    "src/sim/queue_reference.cpp",
    "src/sim/lane_annotations.hpp",
}

SOURCE_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
DEFAULT_SCAN_DIRS = ("src",)

ALLOW_RE = re.compile(r"dpar-lint:\s*allow\(\s*([\w-]+)\s*\)")
EXPECT_RE = re.compile(r"//\s*expect\(\s*([\w-]+)\s*\)")
LINE_COMMENT_RE = re.compile(r"^\s*//")

POST_METHODS = ("at", "after", "at_in", "after_in", "at_all", "after_all",
                "at_all_in")
RAW_POSTS = ("at", "after")
LANE_TARGETED = ("at_in", "after_in", "at_all_in")

# Engine-ish receiver directly before a post-method call: eng_, eng, engine().
POST_RE = re.compile(
    r"\b(eng\w*|engine\s*\(\s*\))\s*(?:\.|->)\s*"
    r"(at|after|at_in|after_in|at_all|after_all|at_all_in)\s*\(")

# Annotation macro tokens (internal frontend) / annotate strings (libclang).
ANN_CROSS = "cross_lane_api"
ANN_EXCL = "exclusive_lane"
ANN_SAFE = "lane_safe"
ANN_OWNED = "lane_owned"
MACRO_TOKENS = {
    "DPAR_CROSS_LANE_API": ANN_CROSS,
    "DPAR_EXCLUSIVE_LANE": ANN_EXCL,
    "DPAR_LANE_SAFE": ANN_SAFE,
}
OWNED_MACRO_RE = re.compile(r"DPAR_LANE_OWNED\s*\(([^()]*(?:\([^()]*\)[^()]*)*)\)")

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "catch",
    "new", "delete", "throw", "static_cast", "dynamic_cast", "const_cast",
    "reinterpret_cast", "decltype", "noexcept", "assert", "case", "default",
    "do", "else", "try", "operator", "template", "typename", "static_assert",
    "co_await", "co_return", "co_yield", "alignas", "defined",
}

WALL_CLOCK_PATTERNS = [
    re.compile(r"std\s*::\s*chrono\s*::\s*system_clock"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
    re.compile(r"\bstd\s*::\s*time\s*\("),
    re.compile(r"\b(?:localtime|gmtime|mktime)(?:_r)?\s*\("),
]
RAW_RANDOM_PATTERNS = [
    re.compile(r"(?<![\w:])s?rand\s*\(\s*\)"),
    re.compile(r"(?<![\w:])srand\s*\("),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bmt19937(?:_64)?\b"),
    re.compile(r"\bminstd_rand0?\b"),
    re.compile(r"\branlux(?:24|48)\b"),
    re.compile(r"\barc4random\b"),
    re.compile(r"\bdefault_random_engine\b"),
]
UNORDERED_DECL_RE = re.compile(
    r"std\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s*"
    r"(\w+)\s*[;={]",
    re.DOTALL,
)

MUTATING_METHODS = (
    "push_back|pop_back|emplace_back|emplace|insert|erase|clear|resize|"
    "assign|push_front|pop_front|push|pop|swap|reserve|append|add|record|"
    "merge|extract|splice|sort|reset|emplace_front|store")

LAMBDA_HEAD_RE = re.compile(
    r"\[(?P<caps>[^\[\]]*)\]\s*(?:\([^()]*\))?\s*"
    r"(?:mutable\b|constexpr\b|noexcept\b|->\s*[\w:<>&*,\s]+)*\s*$")

NAMED_LAMBDA_RE = re.compile(
    r"(?:auto|std\s*::\s*function\s*<[^;{}]*>|sim\s*::\s*UniqueFunction|"
    r"UniqueFunction)\s*&?\s*(\w+)\s*=\s*$")


class Finding:
    def __init__(self, path, line, rule, detail):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


def strip_strings_and_comments(line):
    """Blank out string/char literals and // comments, preserving columns
    (same treatment as dpar_lint)."""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            out.append(" " * (n - i))
            break
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def strip_block_comments(text):
    """Blank /* ... */ runs, preserving newlines and columns."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        if text[i] == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                j = n - 2
            chunk = text[i:j + 2]
            out.append("".join(c if c == "\n" else " " for c in chunk))
            i = j + 2
            continue
        out.append(text[i])
        i += 1
    return "".join(out)


def allowed(lines, idx, rule):
    """True when line idx (0-based) or the contiguous //-comment block above
    carries an allow() for `rule` or one of its aliases."""
    names = set(ALLOW_ALIASES.get(rule, (rule,)))

    def line_allows(s):
        return any(m.group(1) in names for m in ALLOW_RE.finditer(s))

    if idx < len(lines) and line_allows(lines[idx]):
        return True
    j = idx - 1
    while j >= 0 and LINE_COMMENT_RE.match(lines[j]):
        if line_allows(lines[j]):
            return True
        j -= 1
    return False


# --------------------------------------------------------------------------
# Model
# --------------------------------------------------------------------------

class Capture:
    """One entry of a lambda capture list."""
    def __init__(self, name, by_ref, is_default=False, is_this=False,
                 is_init=False):
        self.name = name
        self.by_ref = by_ref
        self.is_default = is_default
        self.is_this = is_this
        self.is_init = is_init


class PostSite:
    def __init__(self, method, line, lane_expr=None, lam=None,
                 callback_name=None):
        self.method = method          # at / after / at_in / ...
        self.line = line              # 1-based
        self.lane_expr = lane_expr    # text of the lane argument, or None
        self.lam = lam                # LambdaScope posted here, or None
        self.callback_name = callback_name  # identifier posted, or None

    @property
    def raw(self):
        return self.method in RAW_POSTS

    @property
    def exclusive_target(self):
        return self.lane_expr is not None and "exclusive_lane" in self.lane_expr


class Func:
    """A function (or lambda) context: the unit every rule reasons over."""
    def __init__(self, name, qualname, record, file, line, is_lambda=False):
        self.name = name              # simple name ('' for lambdas)
        self.qualname = qualname
        self.record = record          # owning record qualname or None
        self.file = file
        self.line = line
        self.is_lambda = is_lambda
        self.annotations = set()
        self.posts = []               # [PostSite] — sync posts in own body
        self.lambdas = []             # [Func] — lambdas defined in own body
        self.captures = []            # [Capture] — when is_lambda
        self.posted_via = None        # PostSite when posted as a callback
        self.callees = set()          # simple callee names (sync calls only)
        self.hazards = []             # [(line, kind, detail)]
        self.value_locals = set()     # by-value params/locals
        self.ref_locals = set()       # reference params/locals
        self.parent = None            # enclosing Func for lambdas
        self.end_line = None          # last body line (internal frontend)
        self.chunks = []              # [(first_line, own-body text)]
        self.var_name = None          # variable a lambda was assigned to


class Record:
    def __init__(self, name, qualname, file, line):
        self.name = name
        self.qualname = qualname
        self.file = file
        self.line = line
        self.annotations = set()
        self.lane_expr = None               # DPAR_LANE_OWNED argument text
        self.members = {}                   # name -> set of annotations
        self.method_annotations = {}        # simple method name -> set


class Model:
    def __init__(self):
        self.records = {}      # qualname -> Record
        self.functions = []    # [Func] (lambdas included, flagged)
        self.files = {}        # rel -> (lines, clean_lines)

    def record_by_simple_name(self, name):
        hits = [r for r in self.records.values() if r.name == name]
        return hits[0] if len(hits) == 1 else None

    def exclusive_members(self):
        out = {}
        for r in self.records.values():
            for m, anns in r.members.items():
                if ANN_EXCL in anns:
                    out.setdefault(m, set()).add(r.qualname)
        return out


# --------------------------------------------------------------------------
# Internal frontend: structural C++ scanner
# --------------------------------------------------------------------------

class Scope:
    def __init__(self, kind, name, header, start, parent):
        self.kind = kind      # namespace / record / function / lambda /
                              # block / enum / init
        self.name = name
        self.header = header
        self.start = start    # offset of '{'
        self.end = None       # offset of matching '}'
        self.parent = parent
        self.children = []


FUNC_NAME_RE = re.compile(r"([~\w][\w:~]*)\s*\($")
CTOR_INIT_TAIL_RE = re.compile(r"[:,]\s*[~\w][\w:]*(?:<[^<>]*>)?\s*$")
RECORD_RE = re.compile(
    r"\b(?:struct|class|union)\s+"
    r"(?:DPAR_\w+\s*(?:\([^()]*\))?\s+)*"
    r"(\w+)\s*(?:final\s*)?(?::[^;{]*)?$")
NAMESPACE_RE = re.compile(r"\bnamespace\s+([\w:]*)\s*$")
ENUM_RE = re.compile(r"\benum\b")


def classify_header(header):
    """Decide what kind of scope a '{' opens given the statement text before
    it. Returns (kind, name)."""
    h = header.strip()
    if LAMBDA_HEAD_RE.search(h):
        return "lambda", ""
    m = NAMESPACE_RE.search(h)
    if m is not None and "=" not in h:
        return "namespace", m.group(1)
    if ENUM_RE.search(h) and "(" not in h:
        return "enum", ""
    m = RECORD_RE.search(h)
    if m is not None and "(" not in h.split(m.group(1))[-1]:
        return "record", m.group(1)
    # Function definition: a name directly before a balanced top-level (...)
    # group, with only qualifiers / a ctor-init-list between ')' and '{'.
    fname = function_name_of(h)
    if fname is not None:
        return "function", fname
    if h.endswith("=") or h.endswith("return") or re.search(r"=\s*$", h):
        return "init", ""
    if CTOR_INIT_TAIL_RE.search(h):
        return "init", ""
    return "block", ""


def function_name_of(header):
    """The function name when `header` reads as a definition header,
    else None."""
    # Find the last balanced top-level (...) group; the name precedes the
    # FIRST one (the parameter list) — later groups are ctor-init entries or
    # noexcept(...) etc.
    depth = 0
    first_open = None
    for i, c in enumerate(header):
        if c == "(":
            if depth == 0 and first_open is None:
                first_open = i
            depth += 1
        elif c == ")":
            depth -= 1
    if first_open is None or depth != 0:
        return None
    before = header[:first_open].rstrip()
    m = re.search(r"(operator\s*(?:\(\)|\[\]|[^\s\w(]+))\s*$", before)
    if m:
        return m.group(1).replace(" ", "")
    m = FUNC_NAME_RE.search(before + "(")
    if m is None:
        return None
    name = m.group(1)
    simple = name.rsplit("::", 1)[-1].lstrip("~")
    if simple in CPP_KEYWORDS or not re.match(r"[A-Za-z_~]", name):
        return None
    # `for (...)`, `if (...)`: keyword check above catches these; a macro
    # call statement `FOO(x) { ... }` is indistinguishable from a definition
    # and treated as one (harmless: empty signature).
    return name


def parse_scopes(text):
    """One pass over cleaned text building the scope tree."""
    root = Scope("root", "", "", -1, None)
    cur = root
    stmt_start = 0
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "{":
            header = text[stmt_start:i]
            kind, name = classify_header(header)
            sc = Scope(kind, name, header, i, cur)
            cur.children.append(sc)
            if kind in ("enum", "init"):
                # Skip the balanced region; an init brace does not end the
                # surrounding statement.
                depth = 1
                j = i + 1
                while j < n and depth:
                    if text[j] == "{":
                        depth += 1
                    elif text[j] == "}":
                        depth -= 1
                    j += 1
                sc.end = j - 1
                i = j
                if kind == "enum":
                    stmt_start = i
                continue
            cur = sc
            stmt_start = i + 1
        elif c == "}":
            if cur is not root:
                cur.end = i
                cur = cur.parent
            stmt_start = i + 1
        elif c == ";":
            stmt_start = i + 1
        i += 1
    # Unclosed scopes (parse slip): close at EOF so spans stay usable.
    sc = cur
    while sc is not root:
        if sc.end is None:
            sc.end = n - 1
        sc = sc.parent
    return root


def own_spans(scope):
    """Spans of `scope`'s body excluding nested function/lambda/record
    bodies (blocks and inits stay — they execute inline)."""
    holes = []

    def collect(s):
        for ch in s.children:
            if ch.kind in ("function", "lambda", "record"):
                holes.append((ch.start, ch.end + 1))
            elif ch.kind in ("block", "init", "enum", "namespace"):
                collect(ch)

    collect(scope)
    holes.sort()
    spans = []
    pos = scope.start + 1
    for a, b in holes:
        if a > pos:
            spans.append((pos, a))
        pos = max(pos, b)
    if scope.end > pos:
        spans.append((pos, scope.end))
    return spans


def span_text(text, spans):
    return "".join(text[a:b] for a, b in spans)


class LineMap:
    def __init__(self, text):
        self.starts = [0]
        for m in re.finditer(r"\n", text):
            self.starts.append(m.end())

    def line_of(self, offset):
        lo, hi = 0, len(self.starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1


def parse_captures(caps):
    out = []
    depth = 0
    cur = ""
    items = []
    for c in caps:
        if c in "(<[":
            depth += 1
        elif c in ")>]":
            depth -= 1
        if c == "," and depth == 0:
            items.append(cur)
            cur = ""
        else:
            cur += c
    if cur.strip():
        items.append(cur)
    for item in items:
        s = item.strip()
        if not s:
            continue
        if s == "&":
            out.append(Capture("", True, is_default=True))
        elif s == "=":
            out.append(Capture("", False, is_default=True))
        elif s in ("this",):
            out.append(Capture("this", True, is_this=True))
        elif s in ("*this",):
            out.append(Capture("this", False, is_this=True))
        elif "=" in s:
            name = s.split("=", 1)[0].strip()
            by_ref = name.startswith("&")
            out.append(Capture(name.lstrip("&").strip(), by_ref,
                               is_init=True))
        elif s.startswith("&"):
            out.append(Capture(s[1:].strip(), True))
        else:
            out.append(Capture(s, False))
    return out


def split_top_args(text):
    """Split the argument text of a call at top-level commas."""
    args = []
    cur_start = 0
    depth_paren = depth_brace = depth_brack = depth_angle = 0
    for i, c in enumerate(text):
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == "{":
            depth_brace += 1
        elif c == "}":
            depth_brace -= 1
        elif c == "[":
            depth_brack += 1
        elif c == "]":
            depth_brack -= 1
        elif c == "," and depth_paren == depth_brace == depth_brack == 0:
            args.append((cur_start, i))
            cur_start = i + 1
    if text[cur_start:].strip():
        args.append((cur_start, len(text)))
    return args


def match_paren(text, open_idx):
    """Offset of the ')' matching text[open_idx] == '('; -1 on failure."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")


class InternalFrontend:
    """Builds the Model from source text alone (no compiler needed)."""

    def __init__(self, root):
        self.root = root

    def build(self, files):
        model = Model()
        texts = {}
        for f in files:
            rel = os.path.relpath(f, self.root).replace(os.sep, "/")
            with open(f, encoding="utf-8", errors="replace") as fh:
                raw = fh.read()
            lines = raw.split("\n")
            clean_lines = [strip_strings_and_comments(l) for l in lines]
            clean = strip_block_comments("\n".join(clean_lines))
            model.files[rel] = (lines, clean.split("\n"))
            texts[rel] = clean
        # Project-wide unordered names: members declared in headers are
        # iterated from .cpp files.
        unordered = set()
        for clean in texts.values():
            unordered |= {m.group(1)
                          for m in UNORDERED_DECL_RE.finditer(clean)}
        for rel, clean in sorted(texts.items()):
            self._scan_file(model, rel, clean, unordered)
        self._merge_declared_annotations(model)
        return model

    # -- per-file scan -----------------------------------------------------

    def _scan_file(self, model, rel, clean, unordered):
        lmap = LineMap(clean)
        tree = parse_scopes(clean)
        self._walk(model, rel, clean, lmap, tree, [], None, None, unordered)

    def _walk(self, model, rel, clean, lmap, scope, ns, record, func,
              unordered):
        for ch in scope.children:
            if ch.kind == "namespace":
                sub = ns + ([ch.name] if ch.name else [])
                self._walk(model, rel, clean, lmap, ch, sub, record, func,
                           unordered)
            elif ch.kind == "record":
                rec = self._make_record(model, rel, clean, lmap, ch, ns,
                                        record)
                self._walk(model, rel, clean, lmap, ch, ns, rec, None,
                           unordered)
            elif ch.kind == "function":
                fn = self._make_function(model, rel, clean, lmap, ch, ns,
                                         record, unordered)
                self._walk(model, rel, clean, lmap, ch, ns, record, fn,
                           unordered)
            elif ch.kind == "lambda":
                lam = self._make_lambda(model, rel, clean, lmap, ch, func,
                                        record, unordered)
                self._walk(model, rel, clean, lmap, ch, ns, record, lam,
                           unordered)
            elif ch.kind in ("block", "init", "enum"):
                self._walk(model, rel, clean, lmap, ch, ns, record, func,
                           unordered)

    def _make_record(self, model, rel, clean, lmap, sc, ns, outer):
        prefix = "::".join(ns + ([outer.name] if outer else []))
        qual = (prefix + "::" if prefix else "") + sc.name
        rec = model.records.get(qual)
        if rec is None:
            rec = Record(sc.name, qual, rel, lmap.line_of(sc.start))
            model.records[qual] = rec
        header = sc.header
        for tok, ann in MACRO_TOKENS.items():
            if tok in header:
                rec.annotations.add(ann)
        m = OWNED_MACRO_RE.search(header)
        if m:
            rec.annotations.add(ANN_OWNED)
            rec.lane_expr = re.sub(r"\s+", "", m.group(1))
        # Member declarations + in-class method declarations with macros.
        body = span_text(clean, own_spans(sc))
        for m in re.finditer(
                r"(DPAR_EXCLUSIVE_LANE|DPAR_LANE_SAFE)\b([^;{}()]*?)(\w+)\s*"
                r"(?:=[^;]*|\{[^{}]*\})?\s*;", body, re.DOTALL):
            rec.members.setdefault(m.group(3), set()).add(
                MACRO_TOKENS[m.group(1)])
        for m in re.finditer(
                r"(DPAR_CROSS_LANE_API|DPAR_EXCLUSIVE_LANE)\b[^;{}=]*?"
                r"([A-Za-z_]\w*)\s*\(", body):
            name = m.group(2)
            if name in CPP_KEYWORDS:
                continue
            rec.method_annotations.setdefault(name, set()).add(
                MACRO_TOKENS[m.group(1)])
        return rec

    def _make_function(self, model, rel, clean, lmap, sc, ns, record,
                       unordered):
        simple = sc.name.rsplit("::", 1)[-1]
        rec_qual = record.qualname if record else None
        if "::" in sc.name and record is None:
            # Out-of-line definition Klass::method — bind to the record.
            owner = sc.name.rsplit("::", 1)[0].rsplit("::", 1)[-1]
            rec = None
            for r in model.records.values():
                if r.name == owner:
                    rec = r
                    break
            rec_qual = rec.qualname if rec else owner
        prefix = "::".join(ns)
        qual = ((prefix + "::" if prefix else "") +
                (record.name + "::" if record else "") + simple)
        fn = Func(simple, qual, rec_qual, rel, lmap.line_of(sc.start))
        for tok, ann in MACRO_TOKENS.items():
            if tok in sc.header:
                fn.annotations.add(ann)
        self._scan_body(model, fn, clean, lmap, sc, unordered)
        self._scan_locals(fn, sc, clean)
        model.functions.append(fn)
        return fn

    def _make_lambda(self, model, rel, clean, lmap, sc, func, record,
                     unordered):
        lam = Func("", (func.qualname if func else "<file>") + "::<lambda>",
                   record.qualname if record else
                   (func.record if func else None),
                   rel, lmap.line_of(sc.start), is_lambda=True)
        lam.parent = func
        m = LAMBDA_HEAD_RE.search(sc.header)
        if m:
            lam.captures = parse_captures(m.group("caps"))
            nm = NAMED_LAMBDA_RE.search(sc.header[:m.start()])
            if nm:
                lam.var_name = nm.group(1)
        if func is not None:
            func.lambdas.append(lam)
        self._scan_body(model, lam, clean, lmap, sc, unordered)
        # Locals declared in the lambda's own parameter list / body.
        self._scan_locals(lam, sc, clean)
        model.functions.append(lam)
        return lam

    def _scan_body(self, model, fn, clean, lmap, sc, unordered):
        fn.end_line = lmap.line_of(sc.end)
        spans = own_spans(sc)
        for a, b in spans:
            body = clean[a:b]
            fn.chunks.append((lmap.line_of(a), body))
            # Synchronous callees: free functions and same-object methods
            # only. A call through another object (`shard.push_back(...)`)
            # is not followed — cross-object entry points carry their own
            # DPAR_CROSS_LANE_API root, and following untyped receivers by
            # simple name manufactures false paths through unrelated
            # records' same-named methods.
            for m in CALL_RE.finditer(body):
                name = m.group(1)
                if name in CPP_KEYWORDS or name in POST_METHODS:
                    continue
                j = m.start() - 1
                while j >= 0 and body[j] in " \t\n":
                    j -= 1
                if j >= 0 and (body[j] == "." or
                               (body[j] == ">" and j > 0
                                and body[j - 1] == "-")):
                    recv_end = j - (1 if body[j] == "." else 2) + 1
                    recv = body[max(0, recv_end - 8):recv_end]
                    if not re.search(r"\bthis\s*$", recv):
                        continue
                fn.callees.add(name)
            # Event posts (with argument structure out of the full text, so
            # lambda arguments keep their offsets).
            for m in POST_RE.finditer(body):
                open_idx = a + m.end() - 1
                close_idx = match_paren(clean, open_idx)
                if close_idx < 0:
                    continue
                method = m.group(2)
                argtext = clean[open_idx + 1:close_idx]
                args = split_top_args(argtext)
                lane_expr = None
                if method in LANE_TARGETED and args:
                    s, e = args[0]
                    lane_expr = re.sub(r"\s+", "",
                                       argtext[s:e])
                post = PostSite(method, lmap.line_of(a + m.start()),
                                lane_expr)
                if args:
                    s, e = args[-1]
                    cb = argtext[s:e].strip()
                    cb_start = open_idx + 1 + s
                    if cb.startswith("["):
                        post.lam = ("offset", cb_start)
                    else:
                        cm = re.match(
                            r"(?:std\s*::\s*move\s*\(\s*)?([A-Za-z_]\w*)",
                            cb)
                        if cm:
                            post.callback_name = cm.group(1)
                fn.posts.append(post)
            # Determinism hazards.
            base_line = lmap.line_of(a)
            for off, line in enumerate(body.split("\n")):
                for pat in WALL_CLOCK_PATTERNS:
                    if pat.search(line):
                        fn.hazards.append((base_line + off, "wall-clock",
                                           "wall-clock time source"))
                        break
                for pat in RAW_RANDOM_PATTERNS:
                    if pat.search(line):
                        fn.hazards.append((base_line + off, "raw-random",
                                           "raw randomness"))
                        break
                for name in unordered:
                    if name not in line:
                        continue
                    esc = re.escape(name)
                    if (re.search(r"for\s*\([^;()]*:\s*(?:\w+(?:\.|->))?"
                                  + esc + r"\s*\)", line)
                            or re.search(r"\b" + esc
                                         + r"\s*\.\s*c?begin\s*\(", line)):
                        fn.hazards.append(
                            (base_line + off, "unordered-iter",
                             f"iteration over unordered container '{name}'"))
        # Resolve lambda-argument posts to lambda scopes by offset.
        lam_children = [ch for ch in self._descend_lambdas(sc)]
        for post in fn.posts:
            if isinstance(post.lam, tuple):
                target_off = post.lam[1]
                post.lam = None
                best = None
                for ch in lam_children:
                    if ch.start >= target_off and \
                            (best is None or ch.start < best.start):
                        best = ch
                if best is not None:
                    post.lam = best
        sc._fn = fn

    def _descend_lambdas(self, sc):
        for ch in sc.children:
            if ch.kind == "lambda":
                yield ch
            elif ch.kind in ("block", "init"):
                yield from self._descend_lambdas(ch)

    def _scan_locals(self, fn, sc, clean):
        # Parameters from the signature.
        header = sc.header
        depth = 0
        first_open = None
        for i, c in enumerate(header):
            if c == "(":
                if depth == 0 and first_open is None:
                    first_open = i
                depth += 1
            elif c == ")":
                depth -= 1
        if first_open is not None:
            close = match_paren(header, first_open)
            if close > 0:
                params = header[first_open + 1:close]
                for s, e in split_top_args(params):
                    p = params[s:e].strip()
                    m = re.search(r"(\w+)\s*(?:=[^,]*)?$", p)
                    if not m:
                        continue
                    if "&" in p or "*" in p:
                        fn.ref_locals.add(m.group(1))
                    else:
                        fn.value_locals.add(m.group(1))
        # Body-local declarations (own text only).
        body = span_text(clean, own_spans(sc))
        for m in re.finditer(
                r"(?:^|[;{}])\s*(?:const\s+|static\s+)*"
                r"(auto|[A-Za-z_][\w:]*(?:<[^<>;]*>)?)"
                r"\s*(&{1,2}|\*)?\s+(\w+)\s*(?:=|;|\{)",
                body):
            type_tok, name = m.group(1), m.group(3)
            if name in CPP_KEYWORDS or type_tok in CPP_KEYWORDS:
                continue
            if m.group(2):
                fn.ref_locals.add(name)
            else:
                fn.value_locals.add(name)

    def _merge_declared_annotations(self, model):
        """Out-of-line definitions inherit the annotations their in-class
        declarations carry (the macro usually lives in the header)."""
        for fn in model.functions:
            if fn.is_lambda or fn.record is None:
                continue
            for rec in model.records.values():
                if rec.qualname == fn.record or rec.name == fn.record:
                    fn.annotations |= rec.method_annotations.get(fn.name,
                                                                 set())


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

class LibclangFrontend:
    """Model extraction via the clang python bindings over the exported
    compile_commands.json. Structure (functions, records, annotations,
    posts, lambdas) comes from the AST; the textual helpers shared with the
    internal frontend fill in captures / hazards / writes from precise
    extents, which keeps the two frontends' findings aligned."""

    def __init__(self, root, build_dir):
        self.root = root
        self.build_dir = build_dir
        from clang import cindex  # noqa: F401 — caller checked availability
        self.cindex = cindex
        self.index = cindex.Index.create()

    @staticmethod
    def available():
        try:
            from clang.cindex import Index
            Index.create()
            return True
        except Exception:
            return False

    def compile_args(self, path):
        db_path = os.path.join(self.build_dir, "compile_commands.json")
        if os.path.isfile(db_path):
            with open(db_path) as f:
                for entry in json.load(f):
                    if os.path.samefile(entry["file"], path) \
                            if os.path.exists(entry["file"]) else False:
                        args = entry.get("arguments")
                        if args is None:
                            args = entry.get("command", "").split()
                        # Drop compiler, -c, -o and the file itself.
                        out = []
                        skip = False
                        for a in args[1:]:
                            if skip:
                                skip = False
                                continue
                            if a in ("-c", path):
                                continue
                            if a == "-o":
                                skip = True
                                continue
                            out.append(a)
                        return out
        return ["-std=c++20", "-I", os.path.join(self.root, "src"),
                "-DDPAR_ANALYZE=1"]

    def build(self, files):
        ck = self.cindex.CursorKind
        internal = InternalFrontend(self.root)
        model = internal.build(files)  # baseline structure + text facts
        # Refine annotations + unordered iteration from the AST where a TU
        # parses: AnnotateAttr is authoritative for the macro set, and
        # range-fors over unordered types need no name heuristics.
        for f in files:
            rel = os.path.relpath(f, self.root).replace(os.sep, "/")
            if not f.endswith((".cpp", ".cc", ".cxx")):
                continue
            try:
                tu = self.index.parse(f, args=self.compile_args(f))
            except Exception:
                continue
            self._refine(model, rel, f, tu.cursor, ck)
        return model

    def _refine(self, model, rel, path, cursor, ck):
        fn_by_line = {}
        for fn in model.functions:
            fn_by_line[(fn.file, fn.line)] = fn

        def annotate_from(node, into):
            for ch in node.get_children():
                if ch.kind == ck.ANNOTATE_ATTR:
                    s = ch.spelling or ""
                    if s.startswith("dpar::"):
                        tag = s[len("dpar::"):]
                        if tag.startswith(ANN_OWNED + "="):
                            into.add(ANN_OWNED)
                        else:
                            into.add(tag)

        def walk(node):
            try:
                loc_file = node.location.file
            except Exception:
                loc_file = None
            if loc_file is not None:
                nrel = os.path.relpath(loc_file.name,
                                       self.root).replace(os.sep, "/")
            else:
                nrel = None
            if node.kind in (ck.FUNCTION_DECL, ck.CXX_METHOD,
                             ck.CONSTRUCTOR, ck.DESTRUCTOR) and nrel:
                fn = fn_by_line.get((nrel, node.location.line))
                if fn is not None:
                    annotate_from(node, fn.annotations)
            elif node.kind == ck.FIELD_DECL and nrel:
                rec = node.semantic_parent
                if rec is not None:
                    r = model.record_by_simple_name(rec.spelling)
                    if r is not None:
                        anns = r.members.setdefault(node.spelling, set())
                        annotate_from(node, anns)
            elif node.kind in (ck.STRUCT_DECL, ck.CLASS_DECL) and nrel:
                r = model.record_by_simple_name(node.spelling)
                if r is not None:
                    annotate_from(node, r.annotations)
            elif node.kind == ck.CXX_FOR_RANGE_STMT and nrel:
                kids = list(node.get_children())
                if kids:
                    t = kids[0].type.get_canonical().spelling
                    if "unordered_" in t:
                        fn = self._enclosing(model, nrel,
                                             node.location.line)
                        if fn is not None:
                            fn.hazards.append(
                                (node.location.line, "unordered-iter",
                                 f"range-for over unordered type '{t}'"))
            for chd in node.get_children():
                walk(chd)

        walk(cursor)

    @staticmethod
    def _enclosing(model, rel, line):
        best = None
        for fn in model.functions:
            if fn.file == rel and fn.line <= line and \
                    (best is None or fn.line > best.line):
                best = fn
        return best


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

class Analyzer:
    def __init__(self, model, root):
        self.model = model
        self.root = root
        self.findings = []

    def emit(self, rel, line, rule, detail):
        if rel in EXEMPT_FILES:
            return
        lines = self.model.files.get(rel, ([], []))[0]
        if allowed(lines, line - 1, rule):
            return
        f = Finding(rel, line, rule, detail)
        if f.key() not in {x.key() for x in self.findings}:
            self.findings.append(f)

    def run(self):
        # Prepass: link every posted lambda to its post site.
        for fn in self.model.functions:
            for post in fn.posts:
                lam = self._lambda_for(fn, post)
                if lam is not None and lam.posted_via is None:
                    lam.posted_via = post
        self.rule_cross_lane_post()
        self.rule_lane_capture()
        self.rule_exclusive_lane_write()
        self.rule_nondet_feeds_post()
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    # -- rule 1: cross-lane-post ------------------------------------------

    def rule_cross_lane_post(self):
        by_name = {}
        for fn in self.model.functions:
            if not fn.is_lambda and fn.name:
                by_name.setdefault(fn.name, []).append(fn)
        roots = [fn for fn in self.model.functions
                 if ANN_CROSS in fn.annotations and not fn.is_lambda]
        for root_fn in roots:
            seen = {id(root_fn)}
            stack = [(root_fn, [root_fn.qualname])]
            while stack:
                fn, path = stack.pop()
                for post in fn.posts:
                    if post.raw:
                        self.emit(
                            fn.file, post.line, "cross-lane-post",
                            f"raw Engine::{post.method}() reachable from "
                            f"DPAR_CROSS_LANE_API entry point "
                            f"'{root_fn.qualname}' via "
                            + " -> ".join(path))
                for callee in sorted(fn.callees):
                    for target in by_name.get(callee, []):
                        if id(target) in seen:
                            continue
                        seen.add(id(target))
                        stack.append((target, path + [target.qualname]))

    # -- rule 2: lane-capture ---------------------------------------------

    def _lambda_for(self, fn, post):
        """The Func of the lambda a post schedules, resolving named-lambda
        variables, or None."""
        lam_scope = post.lam
        if lam_scope is not None and not isinstance(lam_scope, tuple):
            lam_fn = getattr(lam_scope, "_fn", None)
            if lam_fn is not None:
                return lam_fn
        if post.callback_name:
            # auto cb = [..]{..};  eng_.after_in(lane, d, cb);
            for lam in fn.lambdas:
                if lam.var_name == post.callback_name:
                    return lam
        return None

    def rule_lane_capture(self):
        for fn in self.model.functions:
            owner = self.model.records.get(fn.record) if fn.record else None
            for post in fn.posts:
                lam = self._lambda_for(fn, post)
                if lam is None:
                    continue
                cross = (post.method in LANE_TARGETED
                         and not post.exclusive_target)
                for cap in lam.captures:
                    if cap.is_default and cap.by_ref and cross:
                        self.emit(
                            fn.file, lam.line, "lane-capture",
                            "default [&] capture in a callback posted "
                            f"cross-lane via {post.method}(" +
                            (post.lane_expr or "?") +
                            ", ...): enumerate the captures so ownership "
                            "is checkable")
                        continue
                    if cap.is_this and cross and owner is not None \
                            and owner.lane_expr is not None \
                            and post.lane_expr is not None \
                            and post.lane_expr != owner.lane_expr:
                        self.emit(
                            fn.file, lam.line, "lane-capture",
                            f"'this' ({owner.qualname}, owned by lane "
                            f"'{owner.lane_expr}') captured into a callback "
                            f"posted to lane '{post.lane_expr}'")
                        continue
                    if cap.by_ref and not cap.is_this and not cap.is_init \
                            and cap.name and cap.name in fn.value_locals:
                        self.emit(
                            fn.file, lam.line, "lane-capture",
                            f"stack-local '{cap.name}' captured by "
                            "reference into a deferred event callback "
                            "(dangles unless it provably outlives the "
                            "run; capture by value or move)")

    # -- rule 3: exclusive-lane-write -------------------------------------

    def _exclusive_context(self, fn):
        """True when `fn` may mutate DPAR_EXCLUSIVE_LANE state: annotated as
        a handler, or a lambda posted into the exclusive lane (directly or
        transitively through its definition context)."""
        f = fn
        while f is not None:
            if ANN_EXCL in f.annotations:
                return True
            if f.is_lambda and f.posted_via is not None \
                    and f.posted_via.exclusive_target:
                return True
            f = f.parent
        return False

    def rule_exclusive_lane_write(self):
        excl = self.model.exclusive_members()
        if not excl:
            return
        names = sorted(excl)
        alt = "|".join(re.escape(n) for n in names)
        pat = re.compile(
            r"(?:(?:\+\+|--)\s*(?:this\s*->\s*)?(" + alt + r")\b"
            r"|\b(" + alt + r")\s*"
            r"(?:\[[^\[\]]*\]\s*)?"
            r"(?:=(?!=)|\+=|-=|\*=|/=|%=|\|=|&=|\^=|<<=|>>=|\+\+|--"
            r"|\.\s*(?:" + MUTATING_METHODS + r")\s*\())")
        for fn in self.model.functions:
            # Only methods of (or lambdas defined within) a record owning
            # the member are candidates — a same-named name elsewhere is
            # not the annotated state.
            rec_q = fn.record
            f = fn
            while rec_q is None and f is not None:
                f = f.parent
                rec_q = f.record if f else None
            if rec_q is None:
                continue
            rec_simple = rec_q.split("::")[-1]
            # Constructors/destructors run during setup/teardown, with no
            # window executing: always an exclusive-safe context.
            base = fn
            while base.parent is not None:
                base = base.parent
            if base.name.lstrip("~") == rec_simple:
                continue
            if self._exclusive_context(fn):
                continue
            for first_line, body in fn.chunks:
                for off, line in enumerate(body.split("\n")):
                    m = pat.search(line)
                    if not m:
                        continue
                    name = m.group(1) or m.group(2)
                    owners = excl[name]
                    if not any(o.split("::")[-1] == rec_simple
                               or o == rec_q for o in owners):
                        continue
                    if name in fn.value_locals or name in fn.ref_locals:
                        continue
                    self.emit(
                        fn.file, first_line + off, "exclusive-lane-write",
                        f"DPAR_EXCLUSIVE_LANE member '{name}' mutated in "
                        f"'{fn.qualname}', which is neither a "
                        "DPAR_EXCLUSIVE_LANE handler nor a callback "
                        "posted into the exclusive lane")

    # -- rule 4: nondet-feeds-post ----------------------------------------

    def rule_nondet_feeds_post(self):
        for fn in self.model.functions:
            posting = bool(fn.posts) or (
                fn.is_lambda and fn.posted_via is not None)
            if not posting:
                continue
            for line, kind, detail in fn.hazards:
                self.emit(fn.file, line, "nondet-feeds-post",
                          f"{detail} [{kind}] inside event-posting context "
                          f"'{fn.qualname}'")


# --------------------------------------------------------------------------
# Harness
# --------------------------------------------------------------------------

def gather_files(root, paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(root, p)
        if os.path.isdir(full):
            for dirpath, dirnames, filenames in os.walk(full):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(SOURCE_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
        elif os.path.isfile(full):
            files.append(full)
        else:
            raise SystemExit(f"dpar-analyze: no such file or directory: {p}")
    return files


def build_model(root, files, frontend, build_dir):
    if frontend == "libclang":
        fe = LibclangFrontend(root, build_dir)
    else:
        fe = InternalFrontend(root)
    return fe.build(files)


def run_analyze(root, paths, frontend, build_dir):
    files = gather_files(root, paths)
    model = build_model(root, files, frontend, build_dir)
    return Analyzer(model, root).run()


def write_sarif(findings, out_path):
    rules = [{
        "id": rid,
        "shortDescription": {"text": desc},
        "defaultConfiguration": {"level": "error"},
    } for rid, desc in RULES.items()]
    results = [{
        "ruleId": f.rule,
        "level": "error",
        "message": {"text": f.detail},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path},
                "region": {"startLine": f.line},
            },
        }],
    } for f in findings]
    doc = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "dpar-analyze",
                "informationUri":
                    "https://github.com/dualpar/dualpar_repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")


def self_test(root, frontend, build_dir):
    fixtures = os.path.join(root, "tools", "lint_fixtures")
    bad = os.path.join(fixtures, "analyze_bad.cpp")
    good = os.path.join(fixtures, "analyze_good.cpp")
    for f in (bad, good):
        if not os.path.isfile(f):
            print(f"self-test: missing fixture {f}", file=sys.stderr)
            return 2
    ok = True
    with open(bad, encoding="utf-8") as fh:
        bad_lines = fh.read().split("\n")
    expected = set()
    for idx, line in enumerate(bad_lines):
        for m in EXPECT_RE.finditer(line):
            expected.add((idx + 1, m.group(1)))
    if not expected:
        print("self-test: analyze_bad.cpp has no expect() annotations",
              file=sys.stderr)
        return 2
    got = {(f.line, f.rule)
           for f in run_analyze(root, [os.path.relpath(bad, root)],
                                frontend, build_dir)}
    for miss in sorted(expected - got):
        print(f"self-test: analyze_bad.cpp:{miss[0]} expected [{miss[1]}] "
              "but the analyzer stayed silent", file=sys.stderr)
        ok = False
    for extra in sorted(got - expected):
        print(f"self-test: analyze_bad.cpp:{extra[0]} unexpected "
              f"[{extra[1]}]", file=sys.stderr)
        ok = False
    good_findings = run_analyze(root, [os.path.relpath(good, root)],
                                frontend, build_dir)
    for f in good_findings:
        print(f"self-test: analyze_good.cpp should be clean, got: {f}",
              file=sys.stderr)
        ok = False
    print("self-test: " + ("PASS" if ok else "FAIL")
          + f" ({len(expected)} seeded violations, "
            f"{len(good_findings)} false positives)")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(
        description="lane-ownership & determinism analyzer "
                    "(see module docstring)")
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to analyze (default: "
                         + " ".join(DEFAULT_SCAN_DIRS) + ")")
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repo root (default: parent of this script)")
    ap.add_argument("--build-dir", default="build",
                    help="build dir holding compile_commands.json "
                         "(libclang frontend)")
    ap.add_argument("--frontend", choices=("auto", "internal", "libclang"),
                    default="auto")
    ap.add_argument("--require-libclang", action="store_true",
                    help="fail (exit 3) when the libclang frontend is "
                         "unavailable instead of falling back")
    ap.add_argument("--self-test", action="store_true",
                    help="run the golden analyze fixture corpus")
    ap.add_argument("--sarif", metavar="FILE",
                    help="write findings as SARIF 2.1.0")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for rule, desc in RULES.items():
            print(f"{rule:<22} {desc}")
        return 0

    frontend = args.frontend
    if frontend in ("auto", "libclang"):
        if LibclangFrontend.available():
            frontend = "libclang"
        elif args.frontend == "libclang" or args.require_libclang:
            print("dpar-analyze: FAIL — libclang frontend requested but the "
                  "python clang bindings / libclang.so are unavailable "
                  "(apt: python3-clang libclang-dev)", file=sys.stderr)
            return 3
        else:
            print("dpar-analyze: note: libclang unavailable; using the "
                  "internal structural frontend", file=sys.stderr)
            frontend = "internal"
    elif args.require_libclang:
        print("dpar-analyze: FAIL — --require-libclang with "
              "--frontend=internal", file=sys.stderr)
        return 3

    if args.self_test:
        return self_test(args.root, frontend, args.build_dir)

    paths = args.paths or [d for d in DEFAULT_SCAN_DIRS
                           if os.path.isdir(os.path.join(args.root, d))]
    findings = run_analyze(args.root, paths, frontend, args.build_dir)
    for f in findings:
        print(f)
    if args.sarif:
        write_sarif(findings, args.sarif)
    n_files = len(gather_files(args.root, paths))
    if findings:
        print(f"dpar-analyze: {len(findings)} finding(s) in {n_files} "
              f"file(s) [{frontend} frontend]", file=sys.stderr)
        return 1
    print(f"dpar-analyze: clean ({n_files} files, {frontend} frontend)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
