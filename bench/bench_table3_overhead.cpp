// Table III — worst-case overhead: a program whose every next request
// depends on the data just read, so pre-execution mis-predicts everything.
// All prefetched data is wasted; DualPar must detect the mis-prefetching and
// turn the data-driven mode off after a bounded number of cycles.
//
// Paper shape: execution-time increase stays small (7.2% at a 4 MB cache) —
// a one-time overhead because the high mis-prefetch ratio latches the mode
// off.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

bench::PerfLog g_perf;

struct Result {
  double seconds;
  bool latched;
  std::uint64_t cycles;
  std::uint64_t events;
};

Result run_dependent(std::uint64_t quota, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  if (quota > 0) cfg.dualpar.cache_quota = quota;
  harness::Testbed tb(cfg);
  wl::DependentConfig dc;
  dc.file_size = (2ull << 30) / scale;
  dc.file = tb.create_file("dep.dat", dc.file_size);
  dc.request_size = 64 * 1024;
  dc.requests = dc.file_size / dc.request_size / 4;
  mpi::Job& job =
      quota == 0 ? tb.add_job("dep", 8, tb.vanilla(),
                              [dc](std::uint32_t) { return wl::make_dependent(dc); },
                              dualpar::Policy::kForcedNormal)
                 : tb.add_job("dep", 8, tb.dualpar(),
                              [dc](std::uint32_t) { return wl::make_dependent(dc); },
                              dualpar::Policy::kForcedDataDriven);
  auto tm = g_perf.start(quota == 0 ? "no DualPar"
                                     : "DualPar cache " +
                                           std::to_string(quota >> 10) + "KB");
  const std::uint64_t events = tb.run();
  Result r{sim::to_seconds(job.completion_time() - job.start_time()),
           quota > 0 && tb.emc().latched_off(job.id()),
           tb.dualpar().stats().cycles, events};
  g_perf.finish(tm, r.seconds, events);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Table III reproduction (data-dependent reads; all prefetches "
              "wasted; scale 1/%llu)\n", static_cast<unsigned long long>(scale));
  const Result base = run_dependent(0, scale);
  bench::Table t("Table III: execution time (s) of an unpredictable program");
  t.set_headers({"config", "time (s)", "overhead %", "mode latched off", "cycles"});
  t.add_text_row("no DualPar", {std::to_string(base.seconds).substr(0, 6), "-", "-", "-"});
  Result last{};
  for (std::uint64_t kb : {512u, 1024u, 2048u, 4096u}) {
    const Result r = run_dependent(kb * 1024ull, scale);
    last = r;
    char time_s[32], ovh[32];
    std::snprintf(time_s, sizeof time_s, "%.2f", r.seconds);
    std::snprintf(ovh, sizeof ovh, "%.1f%%", (r.seconds / base.seconds - 1.0) * 100.0);
    t.add_text_row("DualPar, cache " + std::to_string(kb) + " KB",
                   {time_s, ovh, r.latched ? "yes" : "NO", std::to_string(r.cycles)});
  }
  t.add_note("paper: worst-case increase is small (7.2% at 4 MB cache) and "
             "one-time — the mis-prefetch gate turns the mode off");
  t.print();
  // Event-count overhead of the vanilla path vs DualPar (same program, same
  // data volume): the headline the event-coalescing work moves. Tracked in
  // BENCH_sim_core.json; value = vanilla events per DualPar event.
  if (last.events > 0) {
    auto tm = g_perf.start("event_count_ratio/vanilla_vs_dualpar");
    g_perf.finish(tm, static_cast<double>(base.events) / static_cast<double>(last.events),
                  base.events);
  }
  g_perf.write("bench_table3_overhead");
  return 0;
}
