#include "harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace dpar::bench {

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kVanilla: return "vanilla MPI-IO";
    case Variant::kCollective: return "collective IO";
    case Variant::kDualPar: return "DualPar";
    case Variant::kPreexec: return "preexec-prefetch";
  }
  return "?";
}

mpi::IoDriver& driver_for(harness::Testbed& tb, Variant v) {
  switch (v) {
    case Variant::kVanilla: return tb.vanilla();
    case Variant::kCollective: return tb.collective();
    case Variant::kDualPar: return tb.dualpar();
    case Variant::kPreexec: return tb.preexec();
  }
  return tb.vanilla();
}

dualpar::Policy policy_for(Variant v) {
  // §V-B: "For execution with DualPar, programs stay in the data-driven
  // mode." Fig 7 overrides this with kAdaptive explicitly.
  return v == Variant::kDualPar ? dualpar::Policy::kForcedDataDriven
                                : dualpar::Policy::kForcedNormal;
}

harness::TestbedConfig paper_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 9;
  cfg.compute_nodes = 4;
  cfg.cores_per_node = 48;
  cfg.stripe_unit = 64 * 1024;
  cfg.raid0 = true;
  cfg.scheduler = disk::SchedulerKind::kCfq;
  return cfg;
}

std::uint64_t scale_divisor(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--full") == 0) return 1;
  if (const char* env = std::getenv("DPAR_SCALE")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<std::uint64_t>(v);
  }
  return 16;
}

bool label_selected(const std::string& label) {
  const char* f = std::getenv("DPAR_BENCH_FILTER");
  if (f == nullptr || *f == '\0') return true;
  return label.find(f) != std::string::npos;
}

unsigned bench_repeat() {
  const char* s = std::getenv("DPAR_BENCH_REPEAT");
  if (s == nullptr || *s == '\0') return 1;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1 || v > 64)
    throw std::invalid_argument("DPAR_BENCH_REPEAT must be an integer in [1, 64]");
  return static_cast<unsigned>(v);
}

std::uint64_t peak_rss_bytes() {
  std::FILE* fp = std::fopen("/proc/self/status", "r");
  if (fp == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, fp) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(fp);
  return kb * 1024;
}

std::string write_perf_json(const std::string& bench_name, ExperimentPool& pool) {
  const std::vector<ExperimentRecord>& records = pool.wait_all();
  std::vector<metrics::PerfEntry> entries;
  entries.reserve(records.size());
  for (const ExperimentRecord& r : records)
    entries.push_back(metrics::PerfEntry{r.label, r.stats.value, r.stats.events,
                                         r.wall_s});
  return write_perf_json(bench_name, entries, pool.suite_wall_s(), pool.jobs());
}

std::string write_perf_json(const std::string& bench_name,
                            const std::vector<metrics::PerfEntry>& entries,
                            double suite_wall_s, unsigned jobs) {
  const char* env = std::getenv("DPAR_BENCH_JSON");
  const std::string path = env ? env : "BENCH_sim_core.json";
  if (!metrics::write_bench_perf_json(path, bench_name, entries, suite_wall_s,
                                      jobs)) {
    // stderr so stdout stays byte-comparable across runs.
    std::fprintf(stderr, "warning: could not write perf accounting to %s\n",
                 path.c_str());
    return "";
  }
  return path;
}

void Table::add_row(const std::string& label, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells{label};
  char buf[64];
  for (double v : values) {
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    cells.emplace_back(buf);
  }
  rows_.push_back(std::move(cells));
}

void Table::add_text_row(const std::string& label, const std::vector<std::string>& cells) {
  std::vector<std::string> row{label};
  row.insert(row.end(), cells.begin(), cells.end());
  rows_.push_back(std::move(row));
}

void Table::print() const {
  std::printf("\n== %s ==\n", title_.c_str());
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
      width[c] = std::max(width[c], row[c].size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    std::printf("%-*s  ", static_cast<int>(width[c]), headers_[c].c_str());
  std::printf("\n");
  for (std::size_t c = 0; c < headers_.size(); ++c)
    std::printf("%s  ", std::string(width[c], '-').c_str());
  std::printf("\n");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      if (c == 0) {
        std::printf("%-*s  ", static_cast<int>(width[c]), row[c].c_str());
      } else {
        std::printf("%*s  ", static_cast<int>(width[c]), row[c].c_str());
      }
    }
    std::printf("\n");
  }
  for (const auto& n : notes_) std::printf("  note: %s\n", n.c_str());
}

std::uint64_t trace_reversals(const std::vector<disk::TraceEvent>& events) {
  std::uint64_t reversals = 0;
  for (std::size_t i = 1; i < events.size(); ++i)
    if (events[i].lba < events[i - 1].lba) ++reversals;
  return reversals;
}

void print_trace_sample(const std::string& title,
                        const std::vector<disk::TraceEvent>& events,
                        std::size_t max_lines) {
  std::printf("\n-- %s (%zu dispatches, %llu reversals) --\n", title.c_str(),
              events.size(),
              static_cast<unsigned long long>(trace_reversals(events)));
  const std::size_t step = events.size() > max_lines ? events.size() / max_lines : 1;
  for (std::size_t i = 0; i < events.size(); i += step) {
    std::printf("  t=%8.4fs  LBN=%10llu  %s\n", sim::to_seconds(events[i].time),
                static_cast<unsigned long long>(events[i].lba),
                events[i].is_write ? "W" : "R");
  }
}

}  // namespace dpar::bench
