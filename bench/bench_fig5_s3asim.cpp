// Figure 5 — three concurrent S3asim instances (sequence-similarity search),
// total I/O time vs number of queries, under vanilla MPI-IO, collective I/O
// and DualPar.
//
// Paper shape: DualPar's I/O times are smaller by up to 25% (17% on
// average); the advantage is modest because S3asim's requests are much
// larger than BTIO's.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

double run_s3asim(std::uint32_t queries, Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  const std::uint32_t instances = 3;
  const std::uint32_t procs = 16;
  for (std::uint32_t i = 0; i < instances; ++i) {
    wl::S3asimConfig cfg;
    cfg.database_size = (4ull << 30) / scale;
    cfg.fragments = 16;
    cfg.queries = queries;
    cfg.min_size = 100;
    cfg.max_size = 100'000;
    cfg.seed = 17 + i;
    cfg.database_file = tb.create_file("db" + std::to_string(i), cfg.database_size);
    cfg.result_file = tb.create_file(
        "res" + std::to_string(i),
        std::uint64_t{procs} * cfg.queries * cfg.max_size + (1 << 20));
    tb.add_job("s3asim" + std::to_string(i), procs, bench::driver_for(tb, v),
               [cfg](std::uint32_t) { return wl::make_s3asim(cfg); },
               bench::policy_for(v));
  }
  auto tm = g_perf.start(std::string(bench::variant_name(v)) + " q=" +
                         std::to_string(queries));
  const std::uint64_t events = tb.run();
  const double io_s = tb.total_io_time_s();
  g_perf.finish(tm, io_s, events);
  return io_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Figure 5 reproduction (3 concurrent S3asim, 16 procs each, "
              "scale 1/%llu)\n", static_cast<unsigned long long>(scale));
  bench::Table t("Fig 5: total I/O time (s) vs #queries, 3 concurrent S3asim");
  t.set_headers({"queries", "vanilla", "collective", "DualPar", "DP saving vs best"});
  double savings = 0;
  int n = 0;
  for (std::uint32_t q : {16u, 24u, 32u}) {
    const double a = run_s3asim(q, Variant::kVanilla, scale);
    const double b = run_s3asim(q, Variant::kCollective, scale);
    const double c = run_s3asim(q, Variant::kDualPar, scale);
    const double best_other = std::min(a, b);
    const double save = 1.0 - c / best_other;
    savings += save;
    ++n;
    t.add_row(std::to_string(q), {a, b, c, save * 100.0}, 1);
  }
  t.add_note("paper: DualPar I/O times smaller by up to 25%, 17% on average "
             "(modest: S3asim's requests are large)");
  t.print();
  std::printf("mean DualPar I/O-time saving: %.0f%% (paper: 17%%)\n",
              savings / n * 100.0);
  g_perf.write("bench_fig5_s3asim");
  return 0;
}
