// Figure 3 — system I/O throughput with a single program instance under
// vanilla MPI-IO, collective I/O and DualPar; (a) reads, (b) writes.
//
// Workloads (§V-B): mpi-io-test (sequential 16 KB requests, barrier per
// call), noncontig (vector-derived column access) and ior-mpi-io (per-rank
// sequential blocks, random across ranks). 64 processes each.
//
// Paper reference points (MB/s):
//   reads : mpi-io-test 115/117/263, noncontig ~25 coll -> 39 DualPar,
//           ior-mpi-io: DualPar well above both
//   writes: mpi-io-test: DualPar ~2x vanilla; ior: +35% over vanilla
// Expected shape: DualPar highest everywhere; collective helps noncontig a
// lot, mpi-io-test little, ior-mpi-io not at all.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::ExperimentStats run_workload(const std::string& which, bool is_write,
                                    Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  const std::uint32_t procs = 64;
  mpi::Job::ProgramFactory factory;

  if (which == "mpi-io-test") {
    wl::MpiIoTestConfig cfg;
    cfg.file_size = (2ull << 30) / scale;
    cfg.file = tb.create_file("mpiio.dat", cfg.file_size);
    cfg.request_size = 16 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    factory = [cfg](std::uint32_t) { return wl::make_mpi_io_test(cfg); };
  } else if (which == "noncontig") {
    wl::NoncontigConfig cfg;
    cfg.columns = 64;
    cfg.elmt_count = 128;  // 512-byte elements
    cfg.rows = (1ull << 30) / scale / (cfg.columns * cfg.elmt_count * 4);
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    const std::uint64_t fsize = cfg.columns * cfg.elmt_count * 4 * cfg.rows;
    cfg.file = tb.create_file("noncontig.dat", fsize);
    factory = [cfg](std::uint32_t) { return wl::make_noncontig(cfg); };
  } else {  // ior-mpi-io
    wl::IorConfig cfg;
    cfg.file_size = (16ull << 30) / scale;
    cfg.file = tb.create_file("ior.dat", cfg.file_size);
    cfg.request_size = 32 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    factory = [cfg](std::uint32_t) { return wl::make_ior(cfg); };
  }

  mpi::Job& job = tb.add_job(which, procs, bench::driver_for(tb, v), factory,
                             bench::policy_for(v));
  const std::uint64_t events = tb.run();
  return {tb.job_throughput_mbs(job), events, {}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Figure 3 reproduction (single application, 64 procs, scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  const std::vector<std::string> workloads{"mpi-io-test", "noncontig", "ior-mpi-io"};
  bench::ExperimentPool pool;
  // runs[is_write][workload][variant]
  std::size_t runs[2][3][3];
  for (bool is_write : {false, true})
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      std::size_t vi = 0;
      for (Variant v : {Variant::kVanilla, Variant::kCollective, Variant::kDualPar})
        runs[is_write][wi][vi++] = pool.submit(
            workloads[wi] + (is_write ? " write " : " read ") + bench::variant_name(v),
            [w = workloads[wi], is_write, v, scale] {
              return run_workload(w, is_write, v, scale);
            });
    }

  for (bool is_write : {false, true}) {
    bench::Table t(is_write ? "Fig 3(b): system WRITE throughput (MB/s)"
                            : "Fig 3(a): system READ throughput (MB/s)");
    t.set_headers({"workload", "vanilla", "collective", "DualPar", "DP/vanilla",
                   "DP/collective"});
    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
      const double a = pool.value(runs[is_write][wi][0]);
      const double b = pool.value(runs[is_write][wi][1]);
      const double c = pool.value(runs[is_write][wi][2]);
      t.add_row(workloads[wi], {a, b, c, c / a, c / b}, 1);
    }
    if (!is_write) {
      t.add_note("paper Fig 3(a): mpi-io-test 115/117/263; noncontig DualPar 39 "
                 "(+57% over collective); ior DualPar >> both");
    } else {
      t.add_note("paper Fig 3(b): DualPar highest on all three (mpi-io-test ~2x "
                 "vanilla, ior +35%)");
    }
    t.print();
  }
  bench::write_perf_json("bench_fig3_single_app", pool);
  return 0;
}
