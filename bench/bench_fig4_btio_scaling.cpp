// Figure 4 — three concurrent BTIO instances, process count swept over
// {16, 64, 256}, under vanilla MPI-IO, collective I/O and DualPar.
//
// Paper shape: vanilla collapses (request size shrinks to tens of bytes as
// the process count grows — 40 B at 256 procs); collective I/O and DualPar
// gain up to 24x and 35x; collective's advantage *shrinks* with more
// processes (its per-call exchange grows), DualPar keeps scaling.
#include <array>
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::ExperimentStats run_btio(std::uint32_t procs, Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  const std::uint32_t instances = 3;
  // Class C is 6.8 GB per instance; tiny vanilla requests make full scale
  // infeasible to simulate, so the data volume is scaled further for this
  // bench while request sizes stay exact (10240/procs bytes).
  const std::uint64_t per_instance = (6800ull << 20) / scale / 16;
  std::vector<mpi::Job*> jobs;
  for (std::uint32_t i = 0; i < instances; ++i) {
    wl::BtioConfig cfg;
    cfg.total_bytes = per_instance;
    cfg.write_steps = 10;
    cfg.read_back = true;
    cfg.collective = (v == Variant::kCollective);
    cfg.file = tb.create_file("btio" + std::to_string(i), cfg.total_bytes * 2);
    jobs.push_back(&tb.add_job("btio" + std::to_string(i), procs,
                               bench::driver_for(tb, v),
                               [cfg](std::uint32_t) { return wl::make_btio(cfg); },
                               bench::policy_for(v)));
  }
  const std::uint64_t events = tb.run();
  return {tb.system_throughput_mbs(), events, {}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Figure 4 reproduction (3 concurrent BTIO, scale 1/%llu of class C/16)\n",
              static_cast<unsigned long long>(scale));
  bench::ExperimentPool pool;
  const std::vector<std::uint32_t> proc_counts{16, 64, 256};
  std::vector<std::array<std::size_t, 3>> runs;
  for (std::uint32_t procs : proc_counts) {
    std::array<std::size_t, 3> row{};
    std::size_t i = 0;
    for (Variant v : {Variant::kVanilla, Variant::kCollective, Variant::kDualPar})
      row[i++] = pool.submit(
          std::string(bench::variant_name(v)) + " procs=" + std::to_string(procs),
          [procs, v, scale] { return run_btio(procs, v, scale); });
    runs.push_back(row);
  }
  bench::Table t("Fig 4: system I/O throughput (MB/s), 3 concurrent BTIO");
  t.set_headers({"procs", "vanilla", "collective", "DualPar", "coll/vanilla",
                 "DP/vanilla"});
  for (std::size_t i = 0; i < proc_counts.size(); ++i) {
    const double a = pool.value(runs[i][0]);
    const double b = pool.value(runs[i][1]);
    const double c = pool.value(runs[i][2]);
    t.add_row(std::to_string(proc_counts[i]), {a, b, c, b / a, c / a}, 1);
  }
  t.add_note("paper: gains up to 24x (collective) and 35x (DualPar) over vanilla;"
             " collective's edge shrinks as procs grow, DualPar's keeps growing");
  t.print();
  bench::write_perf_json("bench_fig4_btio_scaling", pool);
  return 0;
}
