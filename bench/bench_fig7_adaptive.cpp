// Figure 7 — opportunistic mode switching under a varying workload.
//
// mpi-io-test starts alone at t=0 reading its own file; hpio joins later,
// reading another file with the same request size. Both jobs run DualPar in
// *adaptive* policy. While mpi-io-test is alone, its sequential requests
// keep disk efficiency high and EMC leaves it in the normal
// computation-driven mode; the moment hpio joins, the two request streams
// interfere, the per-server seek distance explodes while ReqDist stays at
// the request size, and EMC flips both programs into data-driven mode.
//
// Outputs: (a) system throughput per second; (b) mean seek distance on data
// server 1 per second — for both the vanilla baseline and DualPar.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

struct Timeline {
  sim::TimeSeries throughput;
  sim::TimeSeries seek;
  std::uint64_t mode_switches = 0;
  double join_time_s = 0;
  double phase1_mbs = 0, phase2_mbs = 0;
};

Timeline run(bool use_dualpar, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  // Sized so the solo phase lasts well past the join point at every scale.
  const std::uint64_t fsize = (24ull << 30) / scale;
  const sim::Time join_at = sim::secs(5);

  wl::MpiIoTestConfig mc;
  mc.file = tb.create_file("mpiio.dat", fsize);
  mc.file_size = fsize;
  mc.request_size = 16 * 1024;
  // The benchmark's per-call barrier also bounds how far ranks drift apart,
  // which keeps the solo phase's service order sequential — the reason EMC
  // leaves the lone program in computation-driven mode.
  mc.barrier_every_call = true;

  wl::HpioConfig hc;
  hc.region_size = 16 * 1024;
  hc.region_spacing = 0;
  hc.regions_per_call = 1;
  hc.region_count = fsize / 64 / hc.region_size;  // 64 ranks cover the file
  hc.file = tb.create_file("hpio.dat", fsize);

  mpi::IoDriver& drv = use_dualpar ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                   : static_cast<mpi::IoDriver&>(tb.vanilla());
  const auto policy =
      use_dualpar ? dualpar::Policy::kAdaptive : dualpar::Policy::kForcedNormal;
  auto& j1 = tb.add_job("mpi-io-test", 64, drv,
                        [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); }, policy);
  tb.add_job("hpio", 64, drv, [hc](std::uint32_t) { return wl::make_hpio(hc); },
             policy, join_at);
  auto tm = g_perf.start(use_dualpar ? "DualPar adaptive" : "vanilla MPI-IO");
  const std::uint64_t events = tb.run();

  Timeline out;
  out.throughput = tb.monitor().throughput_series();
  out.seek = tb.monitor().seek_series();
  out.mode_switches = tb.emc().mode_switches();
  out.join_time_s = sim::to_seconds(join_at);
  out.phase1_mbs = metrics::series_mean(out.throughput, sim::secs(1), join_at);
  out.phase2_mbs = metrics::series_mean(out.throughput, join_at + sim::secs(1),
                                        join_at + sim::secs(60));
  (void)j1;
  g_perf.finish(tm, out.phase2_mbs, events);
  return out;
}

void print_timeline(const char* name, const Timeline& t) {
  std::printf("\n-- %s --\n", name);
  std::printf("  %6s  %14s  %16s\n", "t(s)", "MB/s", "seek(sectors)");
  for (std::size_t i = 0; i < t.throughput.points.size(); ++i) {
    const double secs = sim::to_seconds(t.throughput.points[i].first);
    const double seek = i < t.seek.points.size() ? t.seek.points[i].second : 0;
    std::printf("  %6.0f  %14.1f  %16.0f%s\n", secs, t.throughput.points[i].second,
                seek, secs == t.join_time_s ? "   <- hpio joins" : "");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Figure 7 reproduction (hpio joins mpi-io-test at t=5s, "
              "scale 1/%llu)\n", static_cast<unsigned long long>(scale));

  const Timeline vanilla = run(false, scale);
  const Timeline dualpar = run(true, scale);
  print_timeline("Fig 7(a)/(b) timeline: vanilla MPI-IO", vanilla);
  print_timeline("Fig 7(a)/(b) timeline: DualPar (adaptive)", dualpar);

  bench::Table t("Fig 7 summary");
  t.set_headers({"phase", "vanilla MB/s", "DualPar MB/s", "gain"});
  t.add_row("solo (t<5s)", {vanilla.phase1_mbs, dualpar.phase1_mbs,
                            dualpar.phase1_mbs / vanilla.phase1_mbs}, 2);
  t.add_row("interfering", {vanilla.phase2_mbs, dualpar.phase2_mbs,
                            dualpar.phase2_mbs / vanilla.phase2_mbs}, 2);
  t.add_note("paper: DualPar matches vanilla while mpi-io-test runs alone "
             "(stays computation-driven), then +46% once hpio joins; seek "
             "distances drop when data-driven mode engages");
  t.print();
  std::printf("EMC mode switches during the DualPar run: %llu (expect >= 2: "
              "both jobs flip to data-driven after t=5s)\n",
              static_cast<unsigned long long>(dualpar.mode_switches));
  g_perf.write("bench_fig7_adaptive");
  return 0;
}
