// Replication sweep — durability cost and recovery behaviour of N-way chunk
// replication.
//
// Three experiments, fully deterministic for a given (seed, plan):
//  1. Foreground cost of redundancy: rf x placement sweep on a clean run —
//     write/read latency p50/p99 and job throughput. Writing rf copies costs
//     NIC and disk bandwidth even when nothing fails; placement decides whose
//     disks pay.
//  2. Crash plans: one data server crashes mid-run and restarts. Reads whose
//     primary is down fail over to surviving replicas (degraded reads) and
//     the repair manager re-copies everything the crash invalidated,
//     competing with the foreground through the same disks and NICs. Reported
//     per cell: foreground percentiles plus the durability ledger (degraded
//     reads, failover shards, repair progress, lost chunks).
//  3. Write fan-out shape: star vs chain at the largest rf, clean run.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "harness.hpp"
#include "metrics/replica_report.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

constexpr replica::Placement kPlacements[] = {
    replica::Placement::kNodeLocal,
    replica::Placement::kRotational,
    replica::Placement::kRackAware,
};

struct CellResult {
  double write_p50 = 0, write_p99 = 0;  ///< microseconds
  double read_p50 = 0, read_p99 = 0;
  double degraded = 0, failover = 0;
  double repair_done = 0, repair_issued = 0, repair_mb = 0;
  double under_now = 0, lost = 0;
};

/// aux layout of one experiment (indices into ExperimentStats::aux).
enum Aux {
  kWriteP50, kWriteP99, kReadP50, kReadP99,
  kDegraded, kFailover, kRepairDone, kRepairIssued, kRepairMb,
  kUnderNow, kLost, kAuxCount,
};

bench::ExperimentStats run_one(std::uint32_t rf, replica::Placement placement,
                               replica::WriteFanout fanout, bool crash,
                               std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.keep_traces = false;
  cfg.replica.replication_factor = rf;
  cfg.replica.placement = placement;
  cfg.replica.fanout = fanout;
  if (crash) {
    // The outage must outlast a read shard's failover patience (timeout +
    // backoff + second timeout, ~250 ms under the default retry policy) or
    // every retry would land after the restart and no degraded read could
    // ever happen. Fixed in simulated time so any DPAR_SCALE sees the crash
    // mid-run.
    cfg.fault.server.crashes.push_back(
        {/*server=*/4, sim::msec(30), sim::msec(480)});
  }
  harness::Testbed tb(cfg);
  mpi::IoDriver& drv = bench::driver_for(tb, bench::Variant::kVanilla);
  const dualpar::Policy pol = bench::policy_for(bench::Variant::kVanilla);
  mpi::Job* job;
  if (crash) {
    // Crash cells read throughout the run: a read whose primary is down
    // blocks until it fails over (or the server restarts), so the workload
    // is guaranteed to overlap the outage and exercise degraded reads.
    wl::DemoConfig dc;
    dc.file_size = (1ull << 30) / scale;
    dc.file = tb.create_file("replica.dat", dc.file_size);
    dc.segment_size = 64 * 1024;
    job = &tb.add_job("replica", 16, drv,
                      [dc](std::uint32_t) { return wl::make_demo(dc); }, pol);
  } else {
    // Clean cells run BTIO (write steps + read-back): the writes pay the
    // rf-way fan-out this table prices.
    wl::BtioConfig bc;
    bc.total_bytes = (1ull << 30) / scale;
    bc.row_bytes = 1 << 20;  // 64 KB per rank per row, not BT's tiny cells
    bc.write_steps = 5;
    bc.read_back = true;
    bc.file = tb.create_file("replica.dat", bc.total_bytes * 2);
    job = &tb.add_job("replica", 16, drv,
                      [bc](std::uint32_t) { return wl::make_btio(bc); }, pol);
  }
  bench::ExperimentStats st;
  st.events = tb.run();
  st.value = tb.job_throughput_mbs(*job);
  const sim::Histogram w = job->write_latency();
  const sim::Histogram r = job->read_latency();
  st.aux.assign(kAuxCount, 0.0);
  st.aux[kWriteP50] = w.percentile(0.50);
  st.aux[kWriteP99] = w.percentile(0.99);
  st.aux[kReadP50] = r.percentile(0.50);
  st.aux[kReadP99] = r.percentile(0.99);
  if (replica::RepairManager* mgr = tb.replica_manager()) {
    const replica::DurabilityReport rep = mgr->report();
    st.aux[kDegraded] = static_cast<double>(rep.counters.degraded_reads);
    st.aux[kFailover] = static_cast<double>(rep.counters.failover_shards);
    st.aux[kRepairDone] = static_cast<double>(rep.counters.repair_ops_completed);
    st.aux[kRepairIssued] = static_cast<double>(rep.counters.repair_ops_issued);
    st.aux[kRepairMb] =
        static_cast<double>(rep.counters.repair_bytes_copied) / 1e6;
    st.aux[kUnderNow] = static_cast<double>(rep.under_replicated_now);
    st.aux[kLost] = static_cast<double>(rep.lost_chunks);
  }
  return st;
}

std::string cell_label(std::uint32_t rf, replica::Placement p, bool crash) {
  return "rf" + std::to_string(rf) + "/" + replica::to_string(p) + "/" +
         (crash ? "crash" : "clean");
}

char* fmt(char (&buf)[32], const char* f, double v) {
  std::snprintf(buf, sizeof buf, f, v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Replication sweep (N-way chunks, degraded reads, repair; "
              "scale 1/%llu)\n", static_cast<unsigned long long>(scale));
  // Engine-mode banner so bench rows are attributable to a worker count; the
  // CI 1-vs-4 byte-diff filters this line out before comparing.
  const unsigned pdes_workers = harness::pdes_workers_from_env();
  std::printf("# engine: %s (DPAR_PDES_WORKERS=%u)\n",
              pdes_workers >= 1 ? "pdes" : "serial", pdes_workers);
  // Plan banner: pure config (identical at every worker count), so the
  // byte-diff keeps it in the comparison on purpose.
  std::printf("# plan: seed=0x%llx crash=server4@30-480ms\n",
              static_cast<unsigned long long>(fault::FaultPlan{}.seed));

  bench::ExperimentPool pool;

  // rf 1 has no placement choice; rf {2,3} sweep all three policies, clean
  // and crashed. Fan-out is star except for the dedicated chain rows.
  struct Cell {
    std::uint32_t rf;
    replica::Placement placement;
    bool crash;
    std::size_t idx = 0;
  };
  std::vector<Cell> cells;
  for (const bool crash : {false, true}) {
    cells.push_back({1, replica::Placement::kRotational, crash});
    for (const std::uint32_t rf : {2u, 3u})
      for (const replica::Placement p : kPlacements)
        cells.push_back({rf, p, crash});
  }
  for (Cell& c : cells) {
    c.idx = pool.submit(cell_label(c.rf, c.placement, c.crash),
                        [c, scale] {
                          return run_one(c.rf, c.placement,
                                         replica::WriteFanout::kStar, c.crash,
                                         scale);
                        });
  }
  // cells[5] is rf3/rotational/clean (the star twin of the chain row below).
  const std::size_t star_idx = cells[5].idx;
  const std::size_t chain_idx =
      pool.submit("rf3/rotational/chain", [scale] {
        return run_one(3, replica::Placement::kRotational,
                       replica::WriteFanout::kChain, false, scale);
      });
  pool.wait_all();

  bench::Table cost("Foreground cost of redundancy (clean runs, star fan-out)");
  cost.set_headers({"cell", "MB/s", "wr p50 (us)", "wr p99", "rd p50",
                    "rd p99"});
  for (const Cell& c : cells) {
    if (c.crash) continue;
    const auto& rec = pool.record(c.idx);
    char a[32], b[32], d[32], e[32], f[32];
    cost.add_text_row(cell_label(c.rf, c.placement, c.crash),
                      {fmt(a, "%.1f", rec.stats.value),
                       fmt(b, "%.0f", rec.stats.aux[kWriteP50]),
                       fmt(d, "%.0f", rec.stats.aux[kWriteP99]),
                       fmt(e, "%.0f", rec.stats.aux[kReadP50]),
                       fmt(f, "%.0f", rec.stats.aux[kReadP99])});
  }
  cost.add_note("rf1 is the pre-replication baseline; every extra copy is "
                "foreground NIC + disk traffic");
  cost.print();

  bench::Table rec_t("Crash plans (server 4 down 30-480 ms): degraded reads "
                     "and repair");
  rec_t.set_headers({"cell", "MB/s", "rd p99", "degraded", "failover",
                     "repaired", "repair MB", "under now", "lost"});
  for (const Cell& c : cells) {
    if (!c.crash) continue;
    const auto& rec = pool.record(c.idx);
    char a[32], b[32], d[32], e[32], f[32], g[32], h[32], i[32];
    std::snprintf(f, sizeof f, "%.0f/%.0f", rec.stats.aux[kRepairDone],
                  rec.stats.aux[kRepairIssued]);
    rec_t.add_text_row(cell_label(c.rf, c.placement, c.crash),
                       {fmt(a, "%.1f", rec.stats.value),
                        fmt(b, "%.0f", rec.stats.aux[kReadP99]),
                        fmt(d, "%.0f", rec.stats.aux[kDegraded]),
                        fmt(e, "%.0f", rec.stats.aux[kFailover]), f,
                        fmt(g, "%.1f", rec.stats.aux[kRepairMb]),
                        fmt(h, "%.0f", rec.stats.aux[kUnderNow]),
                        fmt(i, "%.0f", rec.stats.aux[kLost])});
  }
  rec_t.add_note("rf1 has no replicas: reads of the down server's chunks can "
                 "only retry, and nothing is repairable");
  rec_t.add_note("rf>=2: repair restores full redundancy (under now = 0) and "
                 "no chunk is lost");
  rec_t.print();

  bench::Table fan("Write fan-out shape at rf=3 (rotational, clean)");
  fan.set_headers({"fan-out", "MB/s", "wr p50 (us)", "wr p99"});
  for (const auto& [name, idx] :
       {std::pair<const char*, std::size_t>{"star", star_idx},
        std::pair<const char*, std::size_t>{"chain", chain_idx}}) {
    const auto& rec = pool.record(idx);
    char a[32], b[32], d[32];
    fan.add_text_row(name, {fmt(a, "%.1f", rec.stats.value),
                            fmt(b, "%.0f", rec.stats.aux[kWriteP50]),
                            fmt(d, "%.0f", rec.stats.aux[kWriteP99])});
  }
  fan.add_note("star: client sends all copies itself; chain: each copy relays "
               "through the previous copy's server, serialising the stages");
  fan.print();

  bench::write_perf_json("bench_replication", pool);
  return 0;
}
