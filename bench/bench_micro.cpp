// Microbenchmarks (google-benchmark) of the simulator's hot primitives:
// event-engine throughput, disk-scheduler operations (flat vs retained
// multimap reference), network send/deliver churn, range-set bookkeeping,
// striping decomposition, and end-to-end simulated-seconds-per-wall-second.
//
// Unlike the figure/table benches this binary has no ExperimentPool, so a
// custom main (bottom of file) captures every run from the benchmark
// reporter and merges a "bench_micro" section into BENCH_sim_core.json —
// the file the CI perf-smoke job diffs against its checked-in baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "cache/rangeset.hpp"
#include "disk/device.hpp"
#include "disk/scheduler.hpp"
#include "harness.hpp"
#include "harness/testbed.hpp"
#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

/// The pre-overhaul event engine (std::function callbacks, binary
/// priority_queue, pending_/cancelled_ hash sets), kept verbatim as the
/// baseline the slab-heap engine is measured against.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;
  struct LegacyEventId {
    std::uint64_t seq = 0;
    explicit operator bool() const { return seq != 0; }
  };

  LegacyEventId at(sim::Time t, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Item{t, seq, std::move(cb)});
    pending_.insert(seq);
    return LegacyEventId{seq};
  }
  LegacyEventId after(sim::Time delay, Callback cb) {
    return at(now_ + delay, std::move(cb));
  }
  bool cancel(LegacyEventId id) {
    if (!id) return false;
    if (pending_.erase(id.seq) == 0) return false;
    cancelled_.insert(id.seq);
    return true;
  }
  bool step() {
    while (!heap_.empty()) {
      Item item = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      if (auto it = cancelled_.find(item.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      pending_.erase(item.seq);
      now_ = item.t;
      item.cb();
      return true;
    }
    return false;
  }
  void run() {
    while (step()) {
    }
  }
  sim::Time now() const { return now_; }

 private:
  struct Item {
    sim::Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 1;
};

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) eng.after(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_LegacyEngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine eng;
    for (int i = 0; i < 1000; ++i) eng.after(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyEngineScheduleFire);

// The engine's real-world duty cycle: schedule with realistic captures (three
// pointer-sized values — beyond std::function's inline buffer), cancel half
// (the disk layer cancels plug/anticipation timers constantly), fire the rest.
// Acceptance gate for the slab-heap engine: >= 2x legacy events/sec here.
template <class Eng>
void schedule_cancel_fire(Eng& eng, std::uint64_t& sink) {
  using Id = decltype(eng.at(0, [] {}));
  std::vector<Id> ids;
  ids.reserve(1024);
  std::uint64_t a = 1, b = 2, c = 3;
  for (int i = 0; i < 1024; ++i)
    ids.push_back(eng.after(i & 255, [&a, &b, &c] { a += b + c; }));
  for (int i = 0; i < 1024; i += 2) eng.cancel(ids[static_cast<std::size_t>(i)]);
  eng.run();
  sink = a;
}

void BM_EngineScheduleCancelFire(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine eng;
    schedule_cancel_fire(eng, sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineScheduleCancelFire);

void BM_LegacyEngineScheduleCancelFire(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    LegacyEngine eng;
    schedule_cancel_fire(eng, sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LegacyEngineScheduleCancelFire);

// ---- Tiered event queue vs the frozen heap oracle ------------------------
// The cancel-heavy timeout pattern the ladder queue was built for: a
// standing population of far-future guard timers (I/O timeouts, plug and
// anticipation timers) that is continuously re-armed, with only a trickle
// ever firing. The heap pays a deep sift per push into the big queue; the
// ladder files each key into a bucket in O(1) and never re-sorts on cancel.
// One item = one schedule or cancel. perf_smoke gates ladder >= 1.5x heap.
void BM_EventQueueSweep(benchmark::State& state, sim::QueueKind kind) {
  constexpr int kPending = 1 << 15;
  constexpr int kRounds = 64;
  constexpr int kChurn = 512;
  for (auto _ : state) {
    sim::Engine eng;
    eng.set_queue_kind(kind);
    sim::Rng rng(41);
    const auto timeout = [&rng]() -> sim::Time {
      return sim::msec(1) + static_cast<sim::Time>(rng.uniform(sim::msec(50)));
    };
    std::vector<sim::EventId> ids;
    ids.reserve(kPending);
    for (int i = 0; i < kPending; ++i)
      ids.push_back(eng.after(timeout(), [] {}));
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kChurn; ++i) {
        const std::size_t at = rng.uniform(ids.size());
        eng.cancel(ids[at]);  // the guarded I/O completed; the timer dies
        ids[at] = eng.after(timeout(), [] {});
      }
      // A few expirations slip through between churn bursts.
      eng.run_until(eng.now() + sim::usec(800));
    }
    for (const sim::EventId id : ids) eng.cancel(id);
    benchmark::DoNotOptimize(eng.events_fired());
  }
  state.SetItemsProcessed(state.iterations() *
                          (kPending + 2 * kRounds * kChurn + kPending));
}
BENCHMARK_CAPTURE(BM_EventQueueSweep, cancel_heavy_ladder,
                  sim::QueueKind::kLadder);
BENCHMARK_CAPTURE(BM_EventQueueSweep, cancel_heavy_heap, sim::QueueKind::kHeap);

// Steady-state timer churn: every fired timer immediately re-arms itself
// (heartbeats, periodic monitors), so the queue holds a constant population
// while events pour through pop+push. One item = one fired timer.
void BM_EventQueueTimerChurn(benchmark::State& state, sim::QueueKind kind) {
  constexpr int kTimers = 4096;
  constexpr std::uint64_t kBudget = 1 << 16;
  for (auto _ : state) {
    sim::Engine eng;
    eng.set_queue_kind(kind);
    std::uint64_t fired = 0;
    std::function<void(sim::Time)> arm = [&](sim::Time period) {
      eng.after(period, [&arm, &fired, period] {
        if (++fired < kBudget) arm(period);
      });
    };
    for (int i = 0; i < kTimers; ++i)
      arm(1024 + static_cast<sim::Time>((i * 37) & 4095));
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kBudget));
}
BENCHMARK_CAPTURE(BM_EventQueueTimerChurn, ladder, sim::QueueKind::kLadder);
BENCHMARK_CAPTURE(BM_EventQueueTimerChurn, heap, sim::QueueKind::kHeap);

void BM_EngineSelfChaining(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int depth = 0;
    std::function<void()> chain = [&] {
      if (++depth < 1000) eng.after(1, chain);
    };
    eng.after(1, chain);
    eng.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineSelfChaining);

void BM_CfqEnqueueDispatch(benchmark::State& state) {
  const auto contexts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto sched = disk::make_cfq_scheduler();
    sim::Rng rng(7);
    for (int i = 0; i < 512; ++i) {
      disk::Request r;
      r.id = static_cast<std::uint64_t>(i);
      r.lba = rng.uniform(1 << 24);
      r.sectors = 32;
      r.context = rng.uniform(contexts);
      sched->enqueue(std::move(r), 0);
    }
    std::uint64_t head = 0;
    sim::Time now = 0;
    while (sched->pending() > 0) {
      auto d = sched->next(head, now);
      if (d.kind == disk::Decision::Kind::kWaitUntil) {
        now = d.wait_until;
        continue;
      }
      if (d.kind == disk::Decision::Kind::kIdle) break;
      head = d.request.end_lba();
      sched->completed(d.request, now);
      now += sim::usec(100);
    }
    benchmark::DoNotOptimize(head);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CfqEnqueueDispatch)->Arg(1)->Arg(16)->Arg(64);

// ---- Scheduler duty cycle: flat rewrites vs the retained multimap
// references. One item = one request taken through enqueue -> next ->
// completed under a PFS-server-like load: bursty arrivals from a handful of
// contexts, partial drains, and periodic time jumps large enough to trip the
// deadline scheduler's expiry FIFOs. The perf-smoke CI gate requires
// flat >= 1.3x reference events/sec per policy.
using SchedFactory = std::unique_ptr<disk::IoScheduler> (*)();

constexpr int kSchedRounds = 16;
constexpr int kSchedBurst = 64;

void sched_duty_cycle(disk::IoScheduler& sched, std::uint64_t contexts,
                      std::uint64_t& sink) {
  sim::Rng rng(7);
  sim::Time now = 0;
  std::uint64_t head = 0;
  std::uint64_t next_id = 1;
  auto serve = [&](int limit) {
    for (int served = 0; sched.pending() > 0 && served < limit;) {
      auto d = sched.next(head, now);
      if (d.kind == disk::Decision::Kind::kWaitUntil) {
        now = d.wait_until;
        continue;
      }
      if (d.kind == disk::Decision::Kind::kIdle) break;
      head = d.request.end_lba();
      now += sim::usec(80);
      sched.completed(d.request, now);
      ++served;
    }
  };
  for (int round = 0; round < kSchedRounds; ++round) {
    for (int i = 0; i < kSchedBurst; ++i) {
      disk::Request r;
      r.id = next_id++;
      r.lba = rng.uniform(1 << 24);
      r.sectors = 32;
      r.is_write = rng.uniform(4) == 0;
      r.context = rng.uniform(contexts);
      sched.enqueue(std::move(r), now);
      now += sim::usec(10);
    }
    serve(kSchedBurst / 2);
    // Jump far enough that several rounds in, queued reads blow their 500 ms
    // deadline and the expiry path gets exercised.
    now += sim::msec(120);
  }
  serve(1 << 30);
  sink = head;
}

void BM_SchedDutyCycle(benchmark::State& state, SchedFactory make) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    auto sched = make();
    sched_duty_cycle(*sched, 16, sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kSchedRounds * kSchedBurst);
}
BENCHMARK_CAPTURE(BM_SchedDutyCycle, noop_flat,
                  +[] { return disk::make_noop_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, noop_ref,
                  +[] { return disk::make_reference_noop_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, deadline_flat,
                  +[] { return disk::make_deadline_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, deadline_ref,
                  +[] { return disk::make_reference_deadline_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, cscan_flat,
                  +[] { return disk::make_cscan_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, cscan_ref,
                  +[] { return disk::make_reference_cscan_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, cfq_flat,
                  +[] { return disk::make_cfq_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, cfq_ref,
                  +[] { return disk::make_reference_cfq_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, anticipatory_flat,
                  +[] { return disk::make_anticipatory_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedDutyCycle, anticipatory_ref,
                  +[] { return disk::make_reference_anticipatory_scheduler(); });

// The batch hand-off a PFS server uses for a decomposed list-I/O request:
// enqueue_batch on the flat scheduler merges one sorted run; the reference
// falls back to per-request enqueue.
void BM_SchedEnqueueBatch(benchmark::State& state, SchedFactory make) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    auto sched = make();
    sim::Rng rng(13);
    std::vector<disk::Request> batch(64);
    std::uint64_t next_id = 1;
    for (int round = 0; round < 8; ++round) {
      // An ascending run, like decompose_segment emits.
      std::uint64_t lba = rng.uniform(1 << 20);
      for (auto& r : batch) {
        r = disk::Request{};
        r.id = next_id++;
        r.lba = lba;
        lba += 64 + rng.uniform(64);
        r.sectors = 32;
        r.context = 5;
      }
      sched->enqueue_batch(batch.data(), batch.size(), 0);
    }
    std::uint64_t head = 0;
    while (sched->pending() > 0) {
      auto d = sched->next(head, 0);
      if (d.kind != disk::Decision::Kind::kDispatch) break;
      head = d.request.end_lba();
    }
    sink = head;
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64);
}
BENCHMARK_CAPTURE(BM_SchedEnqueueBatch, cscan_flat,
                  +[] { return disk::make_cscan_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedEnqueueBatch, cscan_ref,
                  +[] { return disk::make_reference_cscan_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedEnqueueBatch, deadline_flat,
                  +[] { return disk::make_deadline_scheduler(); });
BENCHMARK_CAPTURE(BM_SchedEnqueueBatch, deadline_ref,
                  +[] { return disk::make_reference_deadline_scheduler(); });

// Network send/deliver churn: the per-message path is one Transit control
// block + two FifoResource hops; one item = one delivered message.
void BM_NetworkSendDeliver(benchmark::State& state) {
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    sim::Engine eng;
    net::Network net(eng, 16);
    sim::Rng rng(23);
    for (int i = 0; i < 1024; ++i) {
      const auto from = static_cast<net::NodeId>(rng.uniform(16));
      auto to = static_cast<net::NodeId>(rng.uniform(16));
      if (to == from) to = (to + 1) % 16;
      net.send(from, to, 4096 + rng.uniform(1 << 16),
               [&delivered] { ++delivered; });
    }
    eng.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_NetworkSendDeliver);

void BM_RangeSetAddCovers(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) {
    cache::RangeSet rs;
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.add(b, b + 4096);
    }
    benchmark::DoNotOptimize(rs.covers(1000, 5000));
    benchmark::DoNotOptimize(rs.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RangeSetAddCovers);

// CRM's write-back pattern: build a fragmented set, punch holes, query gaps.
void BM_RangeSetRemoveGaps(benchmark::State& state) {
  sim::Rng rng(11);
  for (auto _ : state) {
    cache::RangeSet rs;
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.add(b, b + 8192);
    }
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.remove(b, b + 4096);
    }
    benchmark::DoNotOptimize(rs.gaps_within(0, 1 << 20).size());
    benchmark::DoNotOptimize(rs.intersects(500'000, 600'000));
  }
  state.SetItemsProcessed(state.iterations() * 320);
}
BENCHMARK(BM_RangeSetRemoveGaps);

// The sequential-append fast path every server-cache fill takes.
void BM_RangeSetSequentialAdd(benchmark::State& state) {
  for (auto _ : state) {
    cache::RangeSet rs;
    for (std::uint64_t i = 0; i < 1024; ++i) rs.add(i * 65536, i * 65536 + 65536);
    benchmark::DoNotOptimize(rs.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RangeSetSequentialAdd);

void BM_StripeDecompose(benchmark::State& state) {
  pfs::StripeLayout layout{64 * 1024, 9};
  for (auto _ : state) {
    std::vector<std::vector<pfs::ServerRun>> per_server;
    pfs::decompose_segment(layout, pfs::Segment{12345, 8 << 20}, per_server);
    benchmark::DoNotOptimize(per_server.size());
  }
}
BENCHMARK(BM_StripeDecompose);

/// The frozen per-chunk reference loop on the same segment, for a direct
/// closed-form-vs-loop comparison in one report.
void BM_StripeDecomposeRef(benchmark::State& state) {
  pfs::StripeLayout layout{64 * 1024, 9};
  layout.reference_decompose = true;
  for (auto _ : state) {
    std::vector<std::vector<pfs::ServerRun>> per_server;
    pfs::decompose_segment(layout, pfs::Segment{12345, 8 << 20}, per_server);
    benchmark::DoNotOptimize(per_server.size());
  }
}
BENCHMARK(BM_StripeDecomposeRef);

/// End-to-end: how much simulated work one wall-clock iteration buys.
void BM_EndToEndMpiIoTest(benchmark::State& state) {
  for (auto _ : state) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 9;
    cfg.compute_nodes = 4;
    harness::Testbed tb(cfg);
    wl::MpiIoTestConfig mc;
    mc.file_size = 16 << 20;
    mc.file = tb.create_file("f", mc.file_size);
    mc.request_size = 16 * 1024;
    auto& job = tb.add_job("m", 64, tb.dualpar(),
                           [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                           dualpar::Policy::kForcedDataDriven);
    const std::uint64_t events = tb.run();
    benchmark::DoNotOptimize(job.completion_time());
    state.counters["events"] = static_cast<double>(events);
  }
}
BENCHMARK(BM_EndToEndMpiIoTest)->Unit(benchmark::kMillisecond);

// Cost of one cross-lane event handoff through the conservative-PDES outbox
// channel: two lanes ping-pong a message at exactly the lookahead distance,
// so every event is a cross-lane post plus a window barrier.
void BM_LpChannelHandoff(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    const sim::LaneId a = eng.add_lane();
    const sim::LaneId b = eng.add_lane();
    eng.set_lookahead(sim::usec(50));
    eng.set_pdes_workers(1);
    int hops = 0;
    std::function<void(sim::LaneId, sim::LaneId)> hop = [&](sim::LaneId cur,
                                                            sim::LaneId nxt) {
      if (++hops >= 1000) return;
      eng.after_in(nxt, sim::usec(50), [&hop, nxt, cur] { hop(nxt, cur); });
    };
    eng.at_in(a, 0, [&hop, a, b] { hop(a, b); });
    eng.run();
    benchmark::DoNotOptimize(hops);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LpChannelHandoff);

// Window-barrier outbox drain at high lane counts: 256 lanes each fan out
// kFan cross-lane posts per window, so every barrier merges 256 non-empty
// per-(source,target) queues. Exercises the batched queue drain (one bulk
// heap insert per touched pair) that replaces the per-event sift — the
// structure that dominates barrier cost at 256+ lanes.
void BM_LaneOutboxDrain(benchmark::State& state) {
  constexpr int kLanes = 256;
  constexpr int kRounds = 40;
  constexpr int kFan = 8;
  for (auto _ : state) {
    sim::Engine eng;
    std::vector<sim::LaneId> lanes;
    for (int i = 0; i < kLanes; ++i) lanes.push_back(eng.add_lane());
    eng.set_lookahead(sim::usec(50));
    eng.set_pdes_workers(1);
    int rounds = 0;
    std::function<void(int)> round = [&](int src) {
      // Every lane posts kFan events into its neighbour's heap; one of them
      // continues the chain so each window re-fills the outboxes.
      if (++rounds > kRounds * kLanes) return;
      const int nxt = (src + 1) % kLanes;
      for (int f = 0; f < kFan - 1; ++f)
        eng.after_in(lanes[nxt], sim::usec(50), [] {});
      eng.after_in(lanes[nxt], sim::usec(50), [&round, nxt] { round(nxt); });
    };
    eng.at_in(lanes[0], 0, [&round] { round(0); });
    eng.run();
    benchmark::DoNotOptimize(rounds);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kLanes) *
                          kRounds * kFan);
}
BENCHMARK(BM_LaneOutboxDrain);

// Fig-4-at-256-procs wall time swept over PDES worker counts. Simulated
// output is byte-identical at every worker count; only the wall time moves.
// perf_smoke gates workers=4 vs workers=1 when the host has >= 4 hardware
// threads (see the PdesSweep/hw_threads entry appended in main).
void BM_PdesSweep(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  std::uint64_t last_events = 0;
  for (auto _ : state) {
    harness::TestbedConfig cfg = bench::paper_config();
    cfg.pdes_workers = workers;
    harness::Testbed tb(cfg);
    // The fig4 shape (3 concurrent BTIO instances, 256 procs, 40 B vanilla
    // requests), data volume scaled for a micro-bench iteration.
    const std::uint64_t per_instance = (6800ull << 20) / 1024 / 16;
    for (std::uint32_t i = 0; i < 3; ++i) {
      wl::BtioConfig bc;
      bc.total_bytes = per_instance;
      bc.write_steps = 10;
      bc.read_back = true;
      bc.file = tb.create_file("btio" + std::to_string(i), bc.total_bytes * 2);
      tb.add_job("btio" + std::to_string(i), 256, tb.vanilla(),
                 [bc](std::uint32_t) { return wl::make_btio(bc); },
                 dualpar::Policy::kForcedNormal);
    }
    last_events = tb.run();
    state.counters["events"] = static_cast<double>(last_events);
  }
  // The event count is deterministic across iterations and worker counts,
  // so items/sec is engine events per wall second — the rate perf_smoke
  // compares across worker counts.
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(last_events));
}
// UseRealTime: the worker pool spreads the same work over more threads, so
// the speedup only shows up in wall time — CPU-time rates would cancel it.
BENCHMARK(BM_PdesSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Repair-pipeline micro: a server crash invalidates every copy it hosts, and
// after the restart the repair manager re-copies them from surviving replicas
// through the foreground disk schedulers and NIC paths. The repair byte count
// is deterministic across iterations, so items/sec = repair bytes per wall
// second — the recovery-path rate perf_smoke gates.
void BM_RepairThroughput(benchmark::State& state) {
  std::uint64_t last_bytes = 0;
  for (auto _ : state) {
    harness::TestbedConfig cfg = bench::paper_config();
    cfg.keep_traces = false;
    cfg.replica.replication_factor = 3;
    cfg.replica.repair_bandwidth = 400e6;  // let repair, not the cap, dominate
    cfg.fault.server.crashes.push_back(
        {/*server=*/4, sim::msec(5), sim::msec(40)});
    harness::Testbed tb(cfg);
    wl::DemoConfig dc;
    dc.file_size = 32 << 20;
    dc.file = tb.create_file("repair", dc.file_size);
    dc.segment_size = 64 * 1024;
    tb.add_job("repair", 16, tb.vanilla(),
               [dc](std::uint32_t) { return wl::make_demo(dc); },
               dualpar::Policy::kForcedNormal);
    tb.run();
    last_bytes = tb.replica_manager()->total().repair_bytes_copied;
    state.counters["repair_bytes"] = static_cast<double>(last_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(last_bytes));
}
BENCHMARK(BM_RepairThroughput)->Unit(benchmark::kMillisecond);

// Forward every run to the normal console output while collecting one
// PerfEntry per benchmark, so bench_micro lands in BENCH_sim_core.json like
// the figure/table benches. value = items/sec (the duty-cycle rate the CI
// perf-smoke gate compares), events = total items processed.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  /// With DPAR_BENCH_REPEAT > 1 every benchmark runs N repetitions and only
  /// the median aggregate is recorded (under the plain benchmark name), so
  /// the JSON schema and the perf-smoke labels are identical either way.
  explicit RecordingReporter(unsigned repeats) : repeats_(repeats) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      if (repeats_ > 1) {
        if (run.run_type != Run::RT_Aggregate || run.aggregate_name != "median")
          continue;
      } else if (run.run_type != Run::RT_Iteration) {
        continue;
      }
      metrics::PerfEntry e;
      e.label = run.benchmark_name();
      const std::string suffix = "_median";
      if (repeats_ > 1 && e.label.size() > suffix.size() &&
          e.label.compare(e.label.size() - suffix.size(), suffix.size(),
                          suffix) == 0)
        e.label.erase(e.label.size() - suffix.size());
      auto it = run.counters.find("items_per_second");
      // Benches without SetItemsProcessed still need a comparable rate:
      // fall back to iterations/sec.
      e.value = it != run.counters.end() ? static_cast<double>(it->second)
                : run.real_accumulated_time > 0
                    ? static_cast<double>(run.iterations) / run.real_accumulated_time
                    : 0;
      e.events = run.iterations;
      e.wall_s = run.real_accumulated_time;
      entries_.push_back(std::move(e));
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<metrics::PerfEntry>& entries() const { return entries_; }

 private:
  std::vector<metrics::PerfEntry> entries_;
  unsigned repeats_ = 1;
};

}  // namespace

int main(int argc, char** argv) {
  const auto suite_start = std::chrono::steady_clock::now();
  // DPAR_BENCH_REPEAT=N rides on google-benchmark's repetition machinery:
  // each benchmark runs N times and the reporter keeps only the median
  // aggregate, so one noisy CI neighbour cannot fail a perf gate.
  const unsigned repeats = bench::bench_repeat();
  std::vector<char*> args(argv, argv + argc);
  std::string rep_flag;
  if (repeats > 1) {
    rep_flag = "--benchmark_repetitions=" + std::to_string(repeats);
    args.push_back(rep_flag.data());
  }
  int args_n = static_cast<int>(args.size());
  benchmark::Initialize(&args_n, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_n, args.data())) return 1;
  RecordingReporter reporter(repeats);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - suite_start)
          .count();
  if (!reporter.entries().empty()) {
    std::vector<metrics::PerfEntry> entries = reporter.entries();
    // The PDES sweep's speedup gate is only meaningful on hardware with
    // enough cores; record the host's parallelism next to the timings so
    // perf_smoke can decide whether to gate or just track.
    metrics::PerfEntry hw;
    hw.label = "PdesSweep/hw_threads";
    hw.value = static_cast<double>(std::thread::hardware_concurrency());
    hw.events = 0;
    hw.wall_s = 0;
    entries.push_back(std::move(hw));
    bench::write_perf_json("bench_micro", entries, wall_s, 1);
  }
  return 0;
}
