// Microbenchmarks (google-benchmark) of the simulator's hot primitives:
// event-engine throughput, disk-scheduler operations, range-set bookkeeping,
// striping decomposition, and end-to-end simulated-seconds-per-wall-second.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/rangeset.hpp"
#include "disk/device.hpp"
#include "disk/scheduler.hpp"
#include "harness/testbed.hpp"
#include "pfs/layout.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) eng.after(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_EngineSelfChaining(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int depth = 0;
    std::function<void()> chain = [&] {
      if (++depth < 1000) eng.after(1, chain);
    };
    eng.after(1, chain);
    eng.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineSelfChaining);

void BM_CfqEnqueueDispatch(benchmark::State& state) {
  const auto contexts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto sched = disk::make_cfq_scheduler();
    sim::Rng rng(7);
    for (int i = 0; i < 512; ++i) {
      disk::Request r;
      r.id = static_cast<std::uint64_t>(i);
      r.lba = rng.uniform(1 << 24);
      r.sectors = 32;
      r.context = rng.uniform(contexts);
      sched->enqueue(std::move(r), 0);
    }
    std::uint64_t head = 0;
    sim::Time now = 0;
    while (sched->pending() > 0) {
      auto d = sched->next(head, now);
      if (d.kind == disk::Decision::Kind::kWaitUntil) {
        now = d.wait_until;
        continue;
      }
      if (d.kind == disk::Decision::Kind::kIdle) break;
      head = d.request.end_lba();
      sched->completed(d.request, now);
      now += sim::usec(100);
    }
    benchmark::DoNotOptimize(head);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CfqEnqueueDispatch)->Arg(1)->Arg(16)->Arg(64);

void BM_RangeSetAddCovers(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) {
    cache::RangeSet rs;
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.add(b, b + 4096);
    }
    benchmark::DoNotOptimize(rs.covers(1000, 5000));
    benchmark::DoNotOptimize(rs.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RangeSetAddCovers);

void BM_StripeDecompose(benchmark::State& state) {
  pfs::StripeLayout layout{64 * 1024, 9};
  for (auto _ : state) {
    std::vector<std::vector<pfs::ServerRun>> per_server;
    pfs::decompose_segment(layout, pfs::Segment{12345, 8 << 20}, per_server);
    benchmark::DoNotOptimize(per_server.size());
  }
}
BENCHMARK(BM_StripeDecompose);

/// End-to-end: how much simulated work one wall-clock iteration buys.
void BM_EndToEndMpiIoTest(benchmark::State& state) {
  for (auto _ : state) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 9;
    cfg.compute_nodes = 4;
    harness::Testbed tb(cfg);
    wl::MpiIoTestConfig mc;
    mc.file_size = 16 << 20;
    mc.file = tb.create_file("f", mc.file_size);
    mc.request_size = 16 * 1024;
    auto& job = tb.add_job("m", 64, tb.dualpar(),
                           [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                           dualpar::Policy::kForcedDataDriven);
    const std::uint64_t events = tb.run();
    benchmark::DoNotOptimize(job.completion_time());
    state.counters["events"] = static_cast<double>(events);
  }
}
BENCHMARK(BM_EndToEndMpiIoTest)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
