// Microbenchmarks (google-benchmark) of the simulator's hot primitives:
// event-engine throughput, disk-scheduler operations, range-set bookkeeping,
// striping decomposition, and end-to-end simulated-seconds-per-wall-second.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>

#include "cache/rangeset.hpp"
#include "disk/device.hpp"
#include "disk/scheduler.hpp"
#include "harness/testbed.hpp"
#include "pfs/layout.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

/// The pre-overhaul event engine (std::function callbacks, binary
/// priority_queue, pending_/cancelled_ hash sets), kept verbatim as the
/// baseline the slab-heap engine is measured against.
class LegacyEngine {
 public:
  using Callback = std::function<void()>;
  struct LegacyEventId {
    std::uint64_t seq = 0;
    explicit operator bool() const { return seq != 0; }
  };

  LegacyEventId at(sim::Time t, Callback cb) {
    const std::uint64_t seq = next_seq_++;
    heap_.push(Item{t, seq, std::move(cb)});
    pending_.insert(seq);
    return LegacyEventId{seq};
  }
  LegacyEventId after(sim::Time delay, Callback cb) {
    return at(now_ + delay, std::move(cb));
  }
  bool cancel(LegacyEventId id) {
    if (!id) return false;
    if (pending_.erase(id.seq) == 0) return false;
    cancelled_.insert(id.seq);
    return true;
  }
  bool step() {
    while (!heap_.empty()) {
      Item item = std::move(const_cast<Item&>(heap_.top()));
      heap_.pop();
      if (auto it = cancelled_.find(item.seq); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      pending_.erase(item.seq);
      now_ = item.t;
      item.cb();
      return true;
    }
    return false;
  }
  void run() {
    while (step()) {
    }
  }
  sim::Time now() const { return now_; }

 private:
  struct Item {
    sim::Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  sim::Time now_ = 0;
  std::uint64_t next_seq_ = 1;
};

void BM_EngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    for (int i = 0; i < 1000; ++i) eng.after(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineScheduleFire);

void BM_LegacyEngineScheduleFire(benchmark::State& state) {
  for (auto _ : state) {
    LegacyEngine eng;
    for (int i = 0; i < 1000; ++i) eng.after(i, [] {});
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LegacyEngineScheduleFire);

// The engine's real-world duty cycle: schedule with realistic captures (three
// pointer-sized values — beyond std::function's inline buffer), cancel half
// (the disk layer cancels plug/anticipation timers constantly), fire the rest.
// Acceptance gate for the slab-heap engine: >= 2x legacy events/sec here.
template <class Eng>
void schedule_cancel_fire(Eng& eng, std::uint64_t& sink) {
  using Id = decltype(eng.at(0, [] {}));
  std::vector<Id> ids;
  ids.reserve(1024);
  std::uint64_t a = 1, b = 2, c = 3;
  for (int i = 0; i < 1024; ++i)
    ids.push_back(eng.after(i & 255, [&a, &b, &c] { a += b + c; }));
  for (int i = 0; i < 1024; i += 2) eng.cancel(ids[static_cast<std::size_t>(i)]);
  eng.run();
  sink = a;
}

void BM_EngineScheduleCancelFire(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sim::Engine eng;
    schedule_cancel_fire(eng, sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineScheduleCancelFire);

void BM_LegacyEngineScheduleCancelFire(benchmark::State& state) {
  std::uint64_t sink = 0;
  for (auto _ : state) {
    LegacyEngine eng;
    schedule_cancel_fire(eng, sink);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LegacyEngineScheduleCancelFire);

void BM_EngineSelfChaining(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    int depth = 0;
    std::function<void()> chain = [&] {
      if (++depth < 1000) eng.after(1, chain);
    };
    eng.after(1, chain);
    eng.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineSelfChaining);

void BM_CfqEnqueueDispatch(benchmark::State& state) {
  const auto contexts = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto sched = disk::make_cfq_scheduler();
    sim::Rng rng(7);
    for (int i = 0; i < 512; ++i) {
      disk::Request r;
      r.id = static_cast<std::uint64_t>(i);
      r.lba = rng.uniform(1 << 24);
      r.sectors = 32;
      r.context = rng.uniform(contexts);
      sched->enqueue(std::move(r), 0);
    }
    std::uint64_t head = 0;
    sim::Time now = 0;
    while (sched->pending() > 0) {
      auto d = sched->next(head, now);
      if (d.kind == disk::Decision::Kind::kWaitUntil) {
        now = d.wait_until;
        continue;
      }
      if (d.kind == disk::Decision::Kind::kIdle) break;
      head = d.request.end_lba();
      sched->completed(d.request, now);
      now += sim::usec(100);
    }
    benchmark::DoNotOptimize(head);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_CfqEnqueueDispatch)->Arg(1)->Arg(16)->Arg(64);

void BM_RangeSetAddCovers(benchmark::State& state) {
  sim::Rng rng(3);
  for (auto _ : state) {
    cache::RangeSet rs;
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.add(b, b + 4096);
    }
    benchmark::DoNotOptimize(rs.covers(1000, 5000));
    benchmark::DoNotOptimize(rs.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_RangeSetAddCovers);

// CRM's write-back pattern: build a fragmented set, punch holes, query gaps.
void BM_RangeSetRemoveGaps(benchmark::State& state) {
  sim::Rng rng(11);
  for (auto _ : state) {
    cache::RangeSet rs;
    for (int i = 0; i < 256; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.add(b, b + 8192);
    }
    for (int i = 0; i < 64; ++i) {
      const std::uint64_t b = rng.uniform(1 << 20);
      rs.remove(b, b + 4096);
    }
    benchmark::DoNotOptimize(rs.gaps_within(0, 1 << 20).size());
    benchmark::DoNotOptimize(rs.intersects(500'000, 600'000));
  }
  state.SetItemsProcessed(state.iterations() * 320);
}
BENCHMARK(BM_RangeSetRemoveGaps);

// The sequential-append fast path every server-cache fill takes.
void BM_RangeSetSequentialAdd(benchmark::State& state) {
  for (auto _ : state) {
    cache::RangeSet rs;
    for (std::uint64_t i = 0; i < 1024; ++i) rs.add(i * 65536, i * 65536 + 65536);
    benchmark::DoNotOptimize(rs.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RangeSetSequentialAdd);

void BM_StripeDecompose(benchmark::State& state) {
  pfs::StripeLayout layout{64 * 1024, 9};
  for (auto _ : state) {
    std::vector<std::vector<pfs::ServerRun>> per_server;
    pfs::decompose_segment(layout, pfs::Segment{12345, 8 << 20}, per_server);
    benchmark::DoNotOptimize(per_server.size());
  }
}
BENCHMARK(BM_StripeDecompose);

/// End-to-end: how much simulated work one wall-clock iteration buys.
void BM_EndToEndMpiIoTest(benchmark::State& state) {
  for (auto _ : state) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 9;
    cfg.compute_nodes = 4;
    harness::Testbed tb(cfg);
    wl::MpiIoTestConfig mc;
    mc.file_size = 16 << 20;
    mc.file = tb.create_file("f", mc.file_size);
    mc.request_size = 16 * 1024;
    auto& job = tb.add_job("m", 64, tb.dualpar(),
                           [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                           dualpar::Policy::kForcedDataDriven);
    const std::uint64_t events = tb.run();
    benchmark::DoNotOptimize(job.completion_time());
    state.counters["events"] = static_cast<double>(events);
  }
}
BENCHMARK(BM_EndToEndMpiIoTest)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
