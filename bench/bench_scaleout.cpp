// Cluster-scale sweeps beyond the paper's 9-server testbed: weak scaling
// (per-server data held constant as servers grow 9 -> 256 and processes grow
// proportionally to 4096), strong scaling (fixed dataset, processes swept
// 64 -> 4096), DualPar vs vanilla MPI-IO — plus a decomposition-heavy weak-
// scaling sweep that times the closed-form striping decomposition against
// the frozen per-chunk reference loop (the pre-change code path).
//
// Simulated metrics (events, MB/s) are deterministic and go to stdout; wall
// times, events/sec, the closed/ref decomposition timings and the process's
// peak RSS go to the shared perf report (BENCH_sim_core.json). Labels
// respect DPAR_BENCH_FILTER (substring): filtered-out sweep points print "-".
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

constexpr std::size_t kSkipped = static_cast<std::size_t>(-1);

harness::TestbedConfig scaleout_config(std::uint32_t servers, std::uint32_t nodes) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.data_servers = servers;
  cfg.compute_nodes = nodes;
  cfg.keep_traces = false;  // full event lists are prohibitive at 256 servers
  return cfg;
}

/// IOR-style read job: every rank sequentially reads its 1/N block.
bench::ExperimentStats run_ior(std::uint32_t servers, std::uint32_t nodes,
                               std::uint32_t procs, std::uint64_t file_size,
                               Variant v) {
  harness::Testbed tb(scaleout_config(servers, nodes));
  wl::IorConfig cfg;
  cfg.file_size = file_size;
  // Per-rank block must hold at least one request at 4096 processes under
  // aggressive DPAR_SCALE divisors.
  cfg.request_size = std::max<std::uint64_t>(
      4096, std::min<std::uint64_t>(64 * 1024, file_size / procs));
  cfg.file = tb.create_file("ior", cfg.file_size);
  tb.add_job("ior", procs, bench::driver_for(tb, v),
             [cfg](std::uint32_t) { return wl::make_ior(cfg); },
             bench::policy_for(v));
  const std::uint64_t events = tb.run();
  return {tb.system_throughput_mbs(), events, {}};
}

/// One decomposition sweep point: `iters` randomized segments against a
/// layout of `servers` servers, per-server share held constant (64 stripes
/// per server per segment), on either the closed form or the frozen loop.
/// The headline value and the run/byte totals are identical for both paths
/// (that is the differential guarantee); only the wall time differs.
struct DecomposeTotals {
  std::uint64_t runs = 0;
  std::uint64_t bytes = 0;
};

DecomposeTotals run_decompose(std::uint32_t servers, std::uint64_t iters,
                              bool reference) {
  pfs::StripeLayout layout{64 * 1024, servers};
  layout.reference_decompose = reference;
  const std::uint64_t span = layout.unit_bytes * servers * 64;  // 64 units/server
  const std::uint64_t extent = span * 16;
  pfs::DecomposeScratch scratch;
  DecomposeTotals totals;
  for (std::uint64_t i = 0; i < iters; ++i) {
    // Unaligned offsets and lengths; edge-straddling by construction.
    const std::uint64_t offset = sim::splitmix64(i * 2 + 1) % extent;
    const std::uint64_t length = 1 + sim::splitmix64(i * 2 + 2) % span;
    scratch.reset(servers);
    decompose_segment(layout, pfs::Segment{offset, length}, scratch);
    for (std::uint32_t s : scratch.touched) {
      totals.runs += scratch.per_server[s].size();
      for (const auto& r : scratch.per_server[s]) totals.bytes += r.length;
    }
  }
  return totals;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Scale-out sweeps (DualPar vs vanilla, data scaled 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  struct SweepPoint {
    std::uint32_t servers;
    std::uint32_t nodes;
    std::uint32_t procs;
    std::uint64_t file_size;
  };

  // Weak scaling: 256 MB (pre-scale) and 16 processes per server.
  std::vector<SweepPoint> weak;
  for (std::uint32_t s : {9u, 32u, 128u, 256u})
    weak.push_back({s, std::max(4u, s / 16), s * 16,
                    std::uint64_t{256 << 20} * s / scale});
  // Strong scaling: fixed 64-server cluster and dataset, processes swept.
  std::vector<SweepPoint> strong;
  for (std::uint32_t p : {64u, 256u, 1024u, 4096u})
    strong.push_back({64, 16, p, (32ull << 30) / scale});

  bench::ExperimentPool pool;
  auto submit_pair = [&pool](const char* sweep, const SweepPoint& pt) {
    std::array<std::size_t, 2> ids{kSkipped, kSkipped};
    std::size_t i = 0;
    for (Variant v : {Variant::kVanilla, Variant::kDualPar}) {
      const std::string label = std::string(sweep) + "/" +
                                bench::variant_name(v) +
                                " servers=" + std::to_string(pt.servers) +
                                " procs=" + std::to_string(pt.procs);
      if (bench::label_selected(label))
        ids[i] = pool.submit(label, [pt, v] {
          return run_ior(pt.servers, pt.nodes, pt.procs, pt.file_size, v);
        });
      ++i;
    }
    return ids;
  };

  std::vector<std::array<std::size_t, 2>> weak_ids, strong_ids;
  for (const auto& pt : weak) weak_ids.push_back(submit_pair("weak", pt));
  for (const auto& pt : strong) strong_ids.push_back(submit_pair("strong", pt));

  auto print_sweep = [&](const char* title, const std::vector<SweepPoint>& pts,
                         const std::vector<std::array<std::size_t, 2>>& ids) {
    bench::Table t(title);
    t.set_headers({"servers", "procs", "vanilla MB/s", "DualPar MB/s",
                   "DP/van", "events(van)", "events(DP)"});
    for (std::size_t i = 0; i < pts.size(); ++i) {
      std::vector<std::string> cells{std::to_string(pts[i].procs)};
      if (ids[i][0] == kSkipped || ids[i][1] == kSkipped) {
        cells.insert(cells.end(), {"-", "-", "-", "-", "-"});
        t.add_text_row(std::to_string(pts[i].servers), cells);
        continue;
      }
      const auto& van = pool.record(ids[i][0]);
      const auto& dp = pool.record(ids[i][1]);
      char buf[64];
      auto fmt = [&buf](const char* f, double v) {
        std::snprintf(buf, sizeof buf, f, v);
        return std::string(buf);
      };
      cells.push_back(fmt("%.1f", van.stats.value));
      cells.push_back(fmt("%.1f", dp.stats.value));
      cells.push_back(fmt("%.2f", dp.stats.value / van.stats.value));
      cells.push_back(std::to_string(van.stats.events));
      cells.push_back(std::to_string(dp.stats.events));
      t.add_text_row(std::to_string(pts[i].servers), cells);
    }
    t.print();
  };

  print_sweep("Weak scaling: 256 MB and 16 procs per server, IOR read", weak,
              weak_ids);
  print_sweep("Strong scaling: 64 servers, 32 GB dataset, IOR read", strong,
              strong_ids);

  // Decomposition-heavy weak scaling: closed form vs the frozen reference
  // loop, per-server share constant. Timed inline (pure CPU, no simulator);
  // totals must match exactly — the bench doubles as a differential check.
  bench::PerfLog log;
  bench::Table dt("Striping decomposition: closed form vs reference loop");
  dt.set_headers({"servers", "segments", "runs", "bytes", "match"});
  for (std::uint32_t s : {9u, 64u, 256u}) {
    const std::uint64_t iters = std::max<std::uint64_t>(2000, 500000 / s);
    const std::string closed_label =
        "decompose/closed servers=" + std::to_string(s);
    const std::string ref_label = "decompose/ref servers=" + std::to_string(s);
    if (!bench::label_selected(closed_label) ||
        !bench::label_selected(ref_label)) {
      dt.add_text_row(std::to_string(s), {"-", "-", "-", "-"});
      continue;
    }
    // Median-of-DPAR_BENCH_REPEAT walls: the decompose timings feed the
    // closed-vs-ref perf gate, so they get the noise-resistant clock.
    double closed_wall = 0, ref_wall = 0;
    const DecomposeTotals closed = bench::timed_median(
        closed_wall, [&] { return run_decompose(s, iters, /*reference=*/false); });
    log.add(closed_label, static_cast<double>(closed.runs), closed.runs,
            closed_wall);
    const DecomposeTotals ref = bench::timed_median(
        ref_wall, [&] { return run_decompose(s, iters, /*reference=*/true); });
    log.add(ref_label, static_cast<double>(ref.runs), ref.runs, ref_wall);
    const bool match = closed.runs == ref.runs && closed.bytes == ref.bytes;
    dt.add_text_row(std::to_string(s),
                    {std::to_string(iters), std::to_string(closed.runs),
                     std::to_string(closed.bytes), match ? "yes" : "NO"});
    if (!match) {
      std::fprintf(stderr, "decomposition mismatch at %u servers\n", s);
      return 1;
    }
  }
  dt.add_note("closed/ref wall times and speedups are in the perf report");
  dt.print();

  // Merge everything into one perf section: pool records, the inline
  // decomposition timings, and the process peak RSS.
  const std::vector<bench::ExperimentRecord>& records = pool.wait_all();
  std::vector<metrics::PerfEntry> entries;
  for (const auto& r : records)
    entries.push_back(metrics::PerfEntry{r.label, r.stats.value, r.stats.events,
                                         r.wall_s});
  log.append_to(entries);
  entries.push_back(metrics::PerfEntry{
      "peak_rss_mb", static_cast<double>(bench::peak_rss_bytes()) / 1e6, 0, 0});
  bench::write_perf_json("bench_scaleout", entries, pool.suite_wall_s(),
                         pool.jobs());
  return 0;
}
