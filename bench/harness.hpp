// Shared harness for the paper-reproduction benches: the paper's testbed
// configuration, driver/variant selection, table formatting, and scaling.
//
// Every bench accepts `--full` to run at the paper's data sizes; the default
// divides file sizes by DPAR_SCALE (env, default 16) so the whole suite runs
// in seconds while preserving every trend (request sizes, process counts and
// thresholds are never scaled — only total data volume).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment_pool.hpp"
#include "harness/testbed.hpp"
#include "metrics/perf.hpp"

namespace dpar::bench {

enum class Variant { kVanilla, kCollective, kDualPar, kPreexec };

const char* variant_name(Variant v);
mpi::IoDriver& driver_for(harness::Testbed& tb, Variant v);
dualpar::Policy policy_for(Variant v);

/// The §V platform: 9 data servers (RAID-0 pairs, CFQ), one metadata server,
/// 4 compute nodes with 48 cores, 64 KB striping, Gigabit Ethernet.
harness::TestbedConfig paper_config();

/// Data-size divisor: 1 with --full, else DPAR_SCALE env (default 16).
std::uint64_t scale_divisor(int argc, char** argv);

/// Substring label filter from the DPAR_BENCH_FILTER env var: true when the
/// variable is unset/empty or `label` contains it. Sweep benches consult
/// this to run a subset of their experiments; filtering changes stdout, so
/// runs meant for byte-comparison leave the variable unset.
bool label_selected(const std::string& label);

/// Repetitions for wall-clock timings from the DPAR_BENCH_REPEAT env var
/// (default 1, max 64). Benches that honour it run each timed section N
/// times and report the median wall time, so one noisy neighbour on a busy
/// CI host cannot fail a perf gate; simulated outputs are deterministic
/// across repeats, so stdout is unaffected. bench_micro maps it onto
/// google-benchmark repetitions (median aggregate); inline timings use
/// timed_median(). Throws std::invalid_argument on garbage.
unsigned bench_repeat();

/// Peak resident set size of this process (VmHWM from /proc/self/status),
/// in bytes; 0 when unavailable (non-Linux).
std::uint64_t peak_rss_bytes();

/// Wait for every experiment in `pool` and merge this bench's perf section
/// (per-experiment wall time + events, suite totals, events/sec) into the
/// shared perf report. Path from the DPAR_BENCH_JSON env var, default
/// "BENCH_sim_core.json". Returns the path written (empty on failure).
std::string write_perf_json(const std::string& bench_name, ExperimentPool& pool);

/// Merge a hand-built entry list (benches that run inline, without a pool or
/// with extra per-run outputs a pool Task cannot return). Same path rules as
/// the pool overload; nothing is written to stdout, so bench output stays
/// byte-comparable across runs.
std::string write_perf_json(const std::string& bench_name,
                            const std::vector<metrics::PerfEntry>& entries,
                            double suite_wall_s, unsigned jobs = 1);

/// Perf accounting for benches whose experiments run inline on the main
/// thread: time each run, collect one PerfEntry per experiment, then merge a
/// section into the shared report at exit.
class PerfLog {
 public:
  using Clock = std::chrono::steady_clock;

  PerfLog() : suite_start_(Clock::now()) {}

  class Timer {
   public:
    explicit Timer(std::string label) : label_(std::move(label)), start_(Clock::now()) {}

   private:
    friend class PerfLog;
    std::string label_;
    Clock::time_point start_;
  };

  Timer start(std::string label) { return Timer(std::move(label)); }

  /// Stop `t` and file its entry (headline metric + engine events fired).
  void finish(const Timer& t, double value, std::uint64_t events) {
    const double wall_s = std::chrono::duration<double>(Clock::now() - t.start_).count();
    entries_.push_back(metrics::PerfEntry{t.label_, value, events, wall_s});
  }

  /// File an entry with an externally measured wall time (e.g. the median
  /// of DPAR_BENCH_REPEAT runs from timed_median()).
  void add(std::string label, double value, std::uint64_t events, double wall_s) {
    entries_.push_back(
        metrics::PerfEntry{std::move(label), value, events, wall_s});
  }

  /// Append this log's entries to `out` (benches that combine pool records
  /// with inline timings into one section).
  void append_to(std::vector<metrics::PerfEntry>& out) const {
    out.insert(out.end(), entries_.begin(), entries_.end());
  }

  /// Merge this bench's section into the shared report; see write_perf_json.
  std::string write(const std::string& bench_name) const {
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - suite_start_).count();
    return write_perf_json(bench_name, entries_, wall_s);
  }

 private:
  std::vector<metrics::PerfEntry> entries_;
  Clock::time_point suite_start_;
};

/// Run `fn` bench_repeat() times, writing the median wall seconds to
/// `wall_s`, and return the last run's result. For deterministic timed
/// sections (every repeat computes the identical result) whose wall time
/// feeds a perf gate.
template <class Fn>
auto timed_median(double& wall_s, Fn&& fn) {
  std::vector<double> walls;
  const unsigned reps = bench_repeat();
  walls.reserve(reps);
  for (unsigned r = 0; r + 1 < reps; ++r) {
    const auto t0 = PerfLog::Clock::now();
    (void)fn();
    walls.push_back(
        std::chrono::duration<double>(PerfLog::Clock::now() - t0).count());
  }
  const auto t0 = PerfLog::Clock::now();
  auto result = fn();
  walls.push_back(
      std::chrono::duration<double>(PerfLog::Clock::now() - t0).count());
  std::sort(walls.begin(), walls.end());
  wall_s = walls[walls.size() / 2];
  return result;
}

/// Simple aligned table with a title, headers, numeric rows and footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}
  void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 1);
  void add_text_row(const std::string& label, const std::vector<std::string>& cells);
  void add_note(const std::string& note) { notes_.push_back(note); }
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// Count service-order direction reversals in a trace window — the
/// quantitative signature of Figs 1(c)/1(d) and 6(a)/6(b) ("short sequences
/// growing in opposite directions" vs "moving mostly in one direction").
std::uint64_t trace_reversals(const std::vector<disk::TraceEvent>& events);

/// Render a small LBN-vs-time sample of a trace window, blktrace style.
void print_trace_sample(const std::string& title,
                        const std::vector<disk::TraceEvent>& events,
                        std::size_t max_lines = 16);

}  // namespace dpar::bench
