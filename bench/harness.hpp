// Shared harness for the paper-reproduction benches: the paper's testbed
// configuration, driver/variant selection, table formatting, and scaling.
//
// Every bench accepts `--full` to run at the paper's data sizes; the default
// divides file sizes by DPAR_SCALE (env, default 16) so the whole suite runs
// in seconds while preserving every trend (request sizes, process counts and
// thresholds are never scaled — only total data volume).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/experiment_pool.hpp"
#include "harness/testbed.hpp"
#include "metrics/perf.hpp"

namespace dpar::bench {

enum class Variant { kVanilla, kCollective, kDualPar, kPreexec };

const char* variant_name(Variant v);
mpi::IoDriver& driver_for(harness::Testbed& tb, Variant v);
dualpar::Policy policy_for(Variant v);

/// The §V platform: 9 data servers (RAID-0 pairs, CFQ), one metadata server,
/// 4 compute nodes with 48 cores, 64 KB striping, Gigabit Ethernet.
harness::TestbedConfig paper_config();

/// Data-size divisor: 1 with --full, else DPAR_SCALE env (default 16).
std::uint64_t scale_divisor(int argc, char** argv);

/// Wait for every experiment in `pool` and merge this bench's perf section
/// (per-experiment wall time + events, suite totals, events/sec) into the
/// shared perf report. Path from the DPAR_BENCH_JSON env var, default
/// "BENCH_sim_core.json". Returns the path written (empty on failure).
std::string write_perf_json(const std::string& bench_name, ExperimentPool& pool);

/// Simple aligned table with a title, headers, numeric rows and footnotes.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}
  void set_headers(std::vector<std::string> headers) { headers_ = std::move(headers); }
  void add_row(const std::string& label, const std::vector<double>& values,
               int precision = 1);
  void add_text_row(const std::string& label, const std::vector<std::string>& cells);
  void add_note(const std::string& note) { notes_.push_back(note); }
  void print() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// Count service-order direction reversals in a trace window — the
/// quantitative signature of Figs 1(c)/1(d) and 6(a)/6(b) ("short sequences
/// growing in opposite directions" vs "moving mostly in one direction").
std::uint64_t trace_reversals(const std::vector<disk::TraceEvent>& events);

/// Render a small LBN-vs-time sample of a trace window, blktrace style.
void print_trace_sample(const std::string& title,
                        const std::vector<disk::TraceEvent>& events,
                        std::size_t max_lines = 16);

}  // namespace dpar::bench
