// Ablations of the design choices DESIGN.md calls out (§IV):
//   A. CRM request transformations: sorting / merging / hole filling
//   B. kernel disk scheduler under DualPar and vanilla
//   C. T_improvement sensitivity (the paper states performance is not
//      sensitive to it)
//   D. cache chunk size (stripe-unit alignment)
//   E. memcached placement: consumer-local vs round-robin homes
//   F. per-origin I/O contexts at the disks (kernel-visible submitters)
//      instead of the PVFS2 single server context
//
// Workload: the Table II interference scenario (two mpi-io-test instances),
// which exercises every mechanism at once.
#include <cstdio>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

struct Knobs {
  bool sort = true;
  bool merge = true;
  bool holes = true;
  disk::SchedulerKind sched = disk::SchedulerKind::kCfq;
  double t_improvement = 3.0;
  std::uint64_t chunk = 64 * 1024;
  bool round_robin_cache = false;
  bool per_origin_context = false;
  std::uint64_t server_page_cache = 0;  ///< bytes; 0 = paper's flushed caches
  Variant variant = Variant::kDualPar;
};

bench::ExperimentStats run(const Knobs& k, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.dualpar.sort_batch = k.sort;
  cfg.dualpar.merge_batch = k.merge;
  cfg.dualpar.fill_holes = k.holes;
  cfg.dualpar.t_improvement = k.t_improvement;
  cfg.scheduler = k.sched;
  cfg.stripe_unit = k.chunk;
  cfg.server.single_disk_context = !k.per_origin_context;
  cfg.server.page_cache.capacity_bytes = k.server_page_cache;
  harness::Testbed tb(cfg);
  tb.cache().set_round_robin_only(k.round_robin_cache);
  for (int i = 0; i < 2; ++i) {
    wl::MpiIoTestConfig mc;
    mc.file_size = (2ull << 30) / scale;
    mc.file = tb.create_file("f" + std::to_string(i), mc.file_size);
    mc.request_size = 16 * 1024;
    tb.add_job("job" + std::to_string(i), 64, bench::driver_for(tb, k.variant),
               [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
               bench::policy_for(k.variant));
  }
  const std::uint64_t events = tb.run();
  return {tb.system_throughput_mbs(), events, {}};
}

/// Section C: adaptive policy at threshold T (two concurrent mpi-io-tests).
bench::ExperimentStats run_adaptive(double T, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.dualpar.t_improvement = T;
  harness::Testbed tb(cfg);
  for (int i = 0; i < 2; ++i) {
    wl::MpiIoTestConfig mc;
    mc.file_size = (2ull << 30) / scale;
    mc.file = tb.create_file("f" + std::to_string(i), mc.file_size);
    mc.request_size = 16 * 1024;
    tb.add_job("job" + std::to_string(i), 64, tb.dualpar(),
               [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
               dualpar::Policy::kAdaptive);
  }
  const std::uint64_t events = tb.run();
  return {tb.system_throughput_mbs(), events, {}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Ablations (2 concurrent mpi-io-test reads, scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  // Every cell is an independent experiment: submit them all up front, then
  // assemble the tables in submission order (output is byte-identical at any
  // DPAR_JOBS).
  bench::ExperimentPool pool;
  auto submit = [&](const std::string& label, const Knobs& k) {
    return pool.submit(label, [k, scale] { return run(k, scale); });
  };

  // A: CRM request transformations, knobs removed cumulatively.
  std::vector<std::pair<std::string, std::size_t>> a_rows;
  {
    Knobs k;
    k.sched = disk::SchedulerKind::kNoop;
    a_rows.emplace_back("full (sort+merge+holes)", submit("A full", k));
    k.holes = false;
    a_rows.emplace_back("no hole filling", submit("A no-holes", k));
    k.merge = false;
    a_rows.emplace_back("no merging", submit("A no-merge", k));
    k.sort = false;
    a_rows.emplace_back("no sorting either", submit("A no-sort", k));
  }

  // B: kernel disk scheduler, vanilla vs DualPar.
  const std::initializer_list<std::pair<const char*, disk::SchedulerKind>>
      schedulers{{"noop", disk::SchedulerKind::kNoop},
                 {"deadline", disk::SchedulerKind::kDeadline},
                 {"cscan", disk::SchedulerKind::kCscan},
                 {"cfq", disk::SchedulerKind::kCfq}};
  std::vector<std::pair<std::size_t, std::size_t>> b_rows;
  for (auto [name, sched] : schedulers) {
    Knobs kv;
    kv.sched = sched;
    kv.variant = Variant::kVanilla;
    Knobs kd;
    kd.sched = sched;
    b_rows.emplace_back(submit(std::string("B vanilla ") + name, kv),
                        submit(std::string("B dualpar ") + name, kd));
  }

  // C: T_improvement sensitivity (adaptive policy).
  const std::vector<double> thresholds{1.0, 3.0, 6.0, 10.0};
  std::vector<std::size_t> c_rows;
  for (double T : thresholds)
    c_rows.push_back(pool.submit("C T=" + std::to_string(T).substr(0, 4),
                                 [T, scale] { return run_adaptive(T, scale); }));

  // D: cache chunk / stripe unit size.
  const std::vector<std::uint64_t> chunks_kb{16, 64, 256};
  std::vector<std::size_t> d_rows;
  for (std::uint64_t kb : chunks_kb) {
    Knobs k;
    k.chunk = kb * 1024;
    d_rows.push_back(submit("D chunk=" + std::to_string(kb) + "KB", k));
  }

  // E: memcached chunk placement.
  std::size_t e_local, e_rr;
  {
    Knobs k;
    e_local = submit("E consumer-local", k);
    k.round_robin_cache = true;
    e_rr = submit("E round-robin", k);
  }

  // G: server page cache + read-ahead.
  const std::vector<std::uint64_t> page_cache_mb{0, 64, 512};
  std::vector<std::pair<std::size_t, std::size_t>> g_rows;
  for (std::uint64_t mb : page_cache_mb) {
    Knobs kv;
    kv.variant = Variant::kVanilla;
    kv.server_page_cache = mb << 20;
    Knobs kd;
    kd.server_page_cache = mb << 20;
    g_rows.emplace_back(submit("G vanilla " + std::to_string(mb) + "MB", kv),
                        submit("G dualpar " + std::to_string(mb) + "MB", kd));
  }

  // F: disk I/O context granularity.
  std::size_t f_rows[2][2];
  {
    Knobs kv;
    kv.variant = Variant::kVanilla;
    Knobs kd;
    f_rows[0][0] = submit("F vanilla single-context", kv);
    f_rows[0][1] = submit("F dualpar single-context", kd);
    kv.per_origin_context = kd.per_origin_context = true;
    f_rows[1][0] = submit("F vanilla per-origin", kv);
    f_rows[1][1] = submit("F dualpar per-origin", kd);
  }

  {
    // Under CFQ the kernel elevator re-sorts DualPar's deep queue anyway, so
    // CRM's own ordering is measured under NOOP, where the disks see exactly
    // the application-level issue order.
    bench::Table t("A: CRM request transformations (DualPar, NOOP disks)");
    t.set_headers({"config", "MB/s"});
    for (const auto& [label, idx] : a_rows) t.add_row(label, {pool.value(idx)});
    t.add_note("sorting carries most of the benefit (§IV-D); with CFQ disks the "
               "kernel elevator masks it on a single deep queue");
    t.print();
  }
  {
    bench::Table t("B: kernel disk scheduler");
    t.set_headers({"scheduler", "vanilla MB/s", "DualPar MB/s", "DualPar gain"});
    std::size_t i = 0;
    for (auto [name, sched] : schedulers) {
      (void)sched;
      const double v = pool.value(b_rows[i].first);
      const double d = pool.value(b_rows[i].second);
      ++i;
      t.add_row(name, {v, d, d / v}, 1);
    }
    t.add_note("application-level ordering helps under every kernel scheduler; "
               "most under noop, least under cscan");
    t.print();
  }
  {
    bench::Table t("C: T_improvement sensitivity (adaptive policy)");
    t.set_headers({"T", "MB/s"});
    for (std::size_t i = 0; i < thresholds.size(); ++i)
      t.add_row(std::to_string(thresholds[i]).substr(0, 4),
                {pool.value(c_rows[i])});
    t.add_note("paper §IV-B: 'system performance is not sensitive to this "
               "threshold'");
    t.print();
  }
  {
    bench::Table t("D: cache chunk / stripe unit size (DualPar)");
    t.set_headers({"chunk", "MB/s"});
    for (std::size_t i = 0; i < chunks_kb.size(); ++i)
      t.add_row(std::to_string(chunks_kb[i]) + "KB", {pool.value(d_rows[i])});
    t.print();
  }
  {
    bench::Table t("E: memcached chunk placement (DualPar)");
    t.set_headers({"placement", "MB/s"});
    t.add_row("consumer-local (ours)", {pool.value(e_local)});
    t.add_row("round-robin (paper)", {pool.value(e_rr)});
    t.add_note("consumer-local placement halves the memcached network hops");
    t.print();
  }
  {
    bench::Table t("G: server page cache + read-ahead (paper flushed caches)");
    t.set_headers({"page cache", "vanilla MB/s", "DualPar MB/s", "DualPar gain"});
    for (std::size_t i = 0; i < page_cache_mb.size(); ++i) {
      const std::uint64_t mb = page_cache_mb[i];
      const double v = pool.value(g_rows[i].first);
      const double d = pool.value(g_rows[i].second);
      t.add_row(mb == 0 ? "off (paper)" : std::to_string(mb) + "MB/server",
                {v, d, d / v}, 1);
    }
    t.add_note("two interleaved programs defeat the per-file stream detector: "
               "read-ahead fetches data nobody consumes and costs both "
               "variants; DualPar stays ~1.6x ahead");
    t.print();
  }
  {
    bench::Table t("F: disk I/O context granularity");
    t.set_headers({"context", "vanilla MB/s", "DualPar MB/s"});
    t.add_row("single server context (PVFS2)",
              {pool.value(f_rows[0][0]), pool.value(f_rows[0][1])}, 1);
    t.add_row("per-origin contexts (kernel path)",
              {pool.value(f_rows[1][0]), pool.value(f_rows[1][1])}, 1);
    t.add_note("CFQ with per-process contexts recovers some vanilla efficiency "
               "via anticipation, narrowing but not closing the gap");
    t.print();
  }
  bench::write_perf_json("bench_ablation", pool);
  return 0;
}
