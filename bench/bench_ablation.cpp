// Ablations of the design choices DESIGN.md calls out (§IV):
//   A. CRM request transformations: sorting / merging / hole filling
//   B. kernel disk scheduler under DualPar and vanilla
//   C. T_improvement sensitivity (the paper states performance is not
//      sensitive to it)
//   D. cache chunk size (stripe-unit alignment)
//   E. memcached placement: consumer-local vs round-robin homes
//   F. per-origin I/O contexts at the disks (kernel-visible submitters)
//      instead of the PVFS2 single server context
//
// Workload: the Table II interference scenario (two mpi-io-test instances),
// which exercises every mechanism at once.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

struct Knobs {
  bool sort = true;
  bool merge = true;
  bool holes = true;
  disk::SchedulerKind sched = disk::SchedulerKind::kCfq;
  double t_improvement = 3.0;
  std::uint64_t chunk = 64 * 1024;
  bool round_robin_cache = false;
  bool per_origin_context = false;
  std::uint64_t server_page_cache = 0;  ///< bytes; 0 = paper's flushed caches
  Variant variant = Variant::kDualPar;
};

double run(const Knobs& k, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.dualpar.sort_batch = k.sort;
  cfg.dualpar.merge_batch = k.merge;
  cfg.dualpar.fill_holes = k.holes;
  cfg.dualpar.t_improvement = k.t_improvement;
  cfg.scheduler = k.sched;
  cfg.stripe_unit = k.chunk;
  cfg.server.single_disk_context = !k.per_origin_context;
  cfg.server.page_cache.capacity_bytes = k.server_page_cache;
  harness::Testbed tb(cfg);
  tb.cache().set_round_robin_only(k.round_robin_cache);
  for (int i = 0; i < 2; ++i) {
    wl::MpiIoTestConfig mc;
    mc.file_size = (2ull << 30) / scale;
    mc.file = tb.create_file("f" + std::to_string(i), mc.file_size);
    mc.request_size = 16 * 1024;
    tb.add_job("job" + std::to_string(i), 64, bench::driver_for(tb, k.variant),
               [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
               bench::policy_for(k.variant));
  }
  tb.run();
  return tb.system_throughput_mbs();
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Ablations (2 concurrent mpi-io-test reads, scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  {
    // Under CFQ the kernel elevator re-sorts DualPar's deep queue anyway, so
    // CRM's own ordering is measured under NOOP, where the disks see exactly
    // the application-level issue order.
    bench::Table t("A: CRM request transformations (DualPar, NOOP disks)");
    t.set_headers({"config", "MB/s"});
    Knobs k;
    k.sched = disk::SchedulerKind::kNoop;
    t.add_row("full (sort+merge+holes)", {run(k, scale)});
    k.holes = false;
    t.add_row("no hole filling", {run(k, scale)});
    k.merge = false;
    t.add_row("no merging", {run(k, scale)});
    k.sort = false;
    t.add_row("no sorting either", {run(k, scale)});
    t.add_note("sorting carries most of the benefit (§IV-D); with CFQ disks the "
               "kernel elevator masks it on a single deep queue");
    t.print();
  }
  {
    bench::Table t("B: kernel disk scheduler");
    t.set_headers({"scheduler", "vanilla MB/s", "DualPar MB/s", "DualPar gain"});
    for (auto [name, sched] :
         std::initializer_list<std::pair<const char*, disk::SchedulerKind>>{
             {"noop", disk::SchedulerKind::kNoop},
             {"deadline", disk::SchedulerKind::kDeadline},
             {"cscan", disk::SchedulerKind::kCscan},
             {"cfq", disk::SchedulerKind::kCfq}}) {
      Knobs kv;
      kv.sched = sched;
      kv.variant = Variant::kVanilla;
      const double v = run(kv, scale);
      Knobs kd;
      kd.sched = sched;
      const double d = run(kd, scale);
      t.add_row(name, {v, d, d / v}, 1);
    }
    t.add_note("application-level ordering helps under every kernel scheduler; "
               "most under noop, least under cscan");
    t.print();
  }
  {
    bench::Table t("C: T_improvement sensitivity (adaptive policy)");
    t.set_headers({"T", "MB/s"});
    for (double T : {1.0, 3.0, 6.0, 10.0}) {
      harness::TestbedConfig cfg = bench::paper_config();
      cfg.dualpar.t_improvement = T;
      harness::Testbed tb(cfg);
      for (int i = 0; i < 2; ++i) {
        wl::MpiIoTestConfig mc;
        mc.file_size = (2ull << 30) / scale;
        mc.file = tb.create_file("f" + std::to_string(i), mc.file_size);
        mc.request_size = 16 * 1024;
        tb.add_job("job" + std::to_string(i), 64, tb.dualpar(),
                   [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                   dualpar::Policy::kAdaptive);
      }
      tb.run();
      t.add_row(std::to_string(T).substr(0, 4), {tb.system_throughput_mbs()});
    }
    t.add_note("paper §IV-B: 'system performance is not sensitive to this "
               "threshold'");
    t.print();
  }
  {
    bench::Table t("D: cache chunk / stripe unit size (DualPar)");
    t.set_headers({"chunk", "MB/s"});
    for (std::uint64_t kb : {16u, 64u, 256u}) {
      Knobs k;
      k.chunk = kb * 1024;
      t.add_row(std::to_string(kb) + "KB", {run(k, scale)});
    }
    t.print();
  }
  {
    bench::Table t("E: memcached chunk placement (DualPar)");
    t.set_headers({"placement", "MB/s"});
    Knobs k;
    t.add_row("consumer-local (ours)", {run(k, scale)});
    k.round_robin_cache = true;
    t.add_row("round-robin (paper)", {run(k, scale)});
    t.add_note("consumer-local placement halves the memcached network hops");
    t.print();
  }
  {
    bench::Table t("G: server page cache + read-ahead (paper flushed caches)");
    t.set_headers({"page cache", "vanilla MB/s", "DualPar MB/s", "DualPar gain"});
    for (std::uint64_t mb : {0u, 64u, 512u}) {
      Knobs kv;
      kv.variant = Variant::kVanilla;
      kv.server_page_cache = mb << 20;
      Knobs kd;
      kd.server_page_cache = mb << 20;
      const double v = run(kv, scale);
      const double d = run(kd, scale);
      t.add_row(mb == 0 ? "off (paper)" : std::to_string(mb) + "MB/server",
                {v, d, d / v}, 1);
    }
    t.add_note("two interleaved programs defeat the per-file stream detector: "
               "read-ahead fetches data nobody consumes and costs both "
               "variants; DualPar stays ~1.6x ahead");
    t.print();
  }
  {
    bench::Table t("F: disk I/O context granularity");
    t.set_headers({"context", "vanilla MB/s", "DualPar MB/s"});
    Knobs kv;
    kv.variant = Variant::kVanilla;
    Knobs kd;
    t.add_row("single server context (PVFS2)", {run(kv, scale), run(kd, scale)}, 1);
    kv.per_origin_context = kd.per_origin_context = true;
    t.add_row("per-origin contexts (kernel path)", {run(kv, scale), run(kd, scale)}, 1);
    t.add_note("CFQ with per-process contexts recovers some vanilla efficiency "
               "via anticipation, narrowing but not closing the gap");
    t.print();
  }
  return 0;
}
