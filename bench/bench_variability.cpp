// Extension experiment: I/O performance variability (the setting of
// Lofstead et al., the paper's [11]): one of the nine data servers is
// degraded — half the media rate and slower seeks. Stragglers hurt
// synchronous round-based I/O far more than batched I/O, so DualPar's
// data-driven batches should tolerate the slow server better than vanilla
// MPI-IO does.
//
// Not a figure from the paper — an extension the paper's related-work
// discussion motivates.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

double run(Variant v, double degrade_factor, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  if (degrade_factor < 1.0) {
    disk::DiskParams slow = cfg.disk;
    slow.sustained_mb_s *= degrade_factor;
    slow.settle_ms /= degrade_factor;
    slow.full_stroke_ms /= degrade_factor;
    cfg.per_server_disk.assign(cfg.data_servers, cfg.disk);
    cfg.per_server_disk[4] = slow;  // one straggler in the middle
  }
  harness::Testbed tb(cfg);
  wl::MpiIoTestConfig mc;
  mc.file_size = (2ull << 30) / scale;
  mc.file = tb.create_file("f", mc.file_size);
  mc.request_size = 16 * 1024;
  mc.collective = (v == Variant::kCollective);
  mpi::Job& job = tb.add_job("job", 64, bench::driver_for(tb, v),
                             [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                             bench::policy_for(v));
  auto tm = g_perf.start(std::string(bench::variant_name(v)) + " speed=" +
                         std::to_string(static_cast<int>(degrade_factor * 100)) +
                         "%");
  const std::uint64_t events = tb.run();
  const double mbs = tb.job_throughput_mbs(job);
  g_perf.finish(tm, mbs, events);
  return mbs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Extension: one degraded data server (variability tolerance), "
              "scale 1/%llu\n", static_cast<unsigned long long>(scale));
  bench::Table t("mpi-io-test read throughput (MB/s) with a straggler server");
  t.set_headers({"configuration", "vanilla", "collective", "DualPar",
                 "retained % (DP)"});
  const double v0 = run(Variant::kVanilla, 1.0, scale);
  const double c0 = run(Variant::kCollective, 1.0, scale);
  const double d0 = run(Variant::kDualPar, 1.0, scale);
  t.add_row("all servers healthy", {v0, c0, d0, 100.0}, 1);
  for (double f : {0.5, 0.25}) {
    const double v = run(Variant::kVanilla, f, scale);
    const double c = run(Variant::kCollective, f, scale);
    const double d = run(Variant::kDualPar, f, scale);
    char label[48];
    std::snprintf(label, sizeof label, "server 4 at %.0f%% speed", f * 100);
    t.add_row(label, {v, c, d, d / d0 * 100.0}, 1);
  }
  t.add_note("synchronous per-call I/O is gated by the straggler every round; "
             "DualPar's deep batches keep the healthy disks busy meanwhile");
  t.print();

  std::printf("\nretained throughput with a 4x-degraded server: vanilla %.0f%%, "
              "collective %.0f%%, DualPar %.0f%%\n",
              run(Variant::kVanilla, 0.25, scale) / v0 * 100.0,
              run(Variant::kCollective, 0.25, scale) / c0 * 100.0,
              run(Variant::kDualPar, 0.25, scale) / d0 * 100.0);
  g_perf.write("bench_variability");
  return 0;
}
