// Fault sweep — DualPar vs vanilla under injected faults.
//
// Two experiments, both fully deterministic for a given (seed, plan):
//  1. Throughput vs fault severity: sweep combined network-loss / disk
//     media-error rates and compare vanilla and DualPar system throughput.
//     DualPar's prefetching issues more requests, so the interesting question
//     is whether its advantage survives a lossy fabric and flaky disks.
//  2. Crash recovery: one data server crashes mid-run and restarts after a
//     fixed outage; the recovery cost is the completion-time increase over
//     the clean run. DualPar must fall back to independent execution during
//     the outage and re-engage after the restart.
#include <cstdio>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;

namespace {

struct FaultLevel {
  const char* name;
  double drop_rate;
  double media_error_rate;
  double stall_rate;
};

constexpr FaultLevel kLevels[] = {
    {"none", 0.0, 0.0, 0.0},
    {"light", 0.005, 0.001, 0.01},
    {"moderate", 0.02, 0.005, 0.05},
    {"heavy", 0.05, 0.02, 0.10},
};

struct RunResult {
  double throughput_mbs = 0;
  double completion_s = 0;
  std::uint64_t retries = 0;
  std::uint64_t failures = 0;
};

bench::ExperimentStats run_one(bench::Variant v, const fault::FaultPlan& plan,
                               std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  cfg.keep_traces = false;
  cfg.fault = plan;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file_size = (2ull << 30) / scale;
  dc.file = tb.create_file("fault.dat", dc.file_size);
  dc.segment_size = 64 * 1024;
  mpi::Job& job = tb.add_job("fault", 16, bench::driver_for(tb, v),
                             [dc](std::uint32_t) { return wl::make_demo(dc); },
                             bench::policy_for(v));
  bench::ExperimentStats st;
  st.events = tb.run();
  st.value = tb.job_throughput_mbs(job);
  double retries = 0, failures = 0;
  if (const auto* inj = tb.fault_injector()) {
    const fault::Counters c = inj->total();
    retries = static_cast<double>(c.client_retries);
    failures = static_cast<double>(c.client_failures);
  }
  st.aux = {sim::to_seconds(job.completion_time() - job.start_time()), retries,
            failures};
  return st;
}

fault::FaultPlan plan_for(const FaultLevel& lv) {
  fault::FaultPlan plan;
  plan.net.drop_rate = lv.drop_rate;
  plan.disk.media_error_rate = lv.media_error_rate;
  plan.disk.stall_rate = lv.stall_rate;
  return plan;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Fault sweep (DualPar vs vanilla under injected faults, "
              "scale 1/%llu)\n", static_cast<unsigned long long>(scale));
  // Engine-mode banner so bench rows are attributable to a worker count; the
  // CI 1-vs-4 byte-diff filters this line out before comparing.
  const unsigned pdes_workers = harness::pdes_workers_from_env();
  std::printf("# engine: %s (DPAR_PDES_WORKERS=%u)\n",
              pdes_workers >= 1 ? "pdes" : "serial", pdes_workers);
  // Plan banner: seed and replication factor are pure config — identical at
  // every worker count — so the CI byte-diff (which strips only the engine
  // line) keeps this one in the comparison on purpose.
  std::printf("# plan: seed=0x%llx rf=%u\n",
              static_cast<unsigned long long>(fault::FaultPlan{}.seed),
              bench::paper_config().replica.replication_factor);

  bench::ExperimentPool pool;

  // --- Experiment 1: throughput vs fault severity --------------------------
  std::vector<std::size_t> vanilla_idx, dualpar_idx;
  for (const FaultLevel& lv : kLevels) {
    vanilla_idx.push_back(pool.submit(std::string("vanilla/") + lv.name,
                                      [lv, scale] {
                                        return run_one(bench::Variant::kVanilla,
                                                       plan_for(lv), scale);
                                      }));
    dualpar_idx.push_back(pool.submit(std::string("dualpar/") + lv.name,
                                      [lv, scale] {
                                        return run_one(bench::Variant::kDualPar,
                                                       plan_for(lv), scale);
                                      }));
  }

  // --- Experiment 2: crash + restart recovery ------------------------------
  // The outage window is fixed in simulated time, placed inside the run for
  // any scale the suite is run at.
  auto crash_plan = [] {
    fault::FaultPlan plan;
    plan.server.crashes.push_back({/*server=*/4, sim::msec(30), sim::msec(180)});
    return plan;
  };
  const std::size_t v_clean = pool.submit("vanilla/clean", [scale] {
    return run_one(bench::Variant::kVanilla, {}, scale);
  });
  const std::size_t v_crash = pool.submit("vanilla/crash", [scale, crash_plan] {
    return run_one(bench::Variant::kVanilla, crash_plan(), scale);
  });
  const std::size_t d_clean = pool.submit("dualpar/clean", [scale] {
    return run_one(bench::Variant::kDualPar, {}, scale);
  });
  const std::size_t d_crash = pool.submit("dualpar/crash", [scale, crash_plan] {
    return run_one(bench::Variant::kDualPar, crash_plan(), scale);
  });
  pool.wait_all();

  bench::Table t("Throughput (MB/s) vs injected fault severity");
  t.set_headers({"fault level", "vanilla", "DualPar", "speedup",
                 "retries (v/d)"});
  for (std::size_t i = 0; i < std::size(kLevels); ++i) {
    const auto& rv = pool.record(vanilla_idx[i]);
    const auto& rd = pool.record(dualpar_idx[i]);
    char speedup[32], retries[48];
    std::snprintf(speedup, sizeof speedup, "%.2fx",
                  rd.stats.value / rv.stats.value);
    std::snprintf(retries, sizeof retries, "%.0f/%.0f", rv.stats.aux[1],
                  rd.stats.aux[1]);
    t.add_text_row(kLevels[i].name,
                   {std::to_string(rv.stats.value).substr(0, 6),
                    std::to_string(rd.stats.value).substr(0, 6), speedup,
                    retries});
  }
  t.add_note("drop/media/stall rates per level: light .005/.001/.01, "
             "moderate .02/.005/.05, heavy .05/.02/.10");
  t.print();

  bench::Table rec("Crash recovery (server 4 down 30-180 ms)");
  rec.set_headers({"variant", "clean (s)", "crashed (s)", "recovery cost (s)"});
  for (auto [name, ci, xi] :
       {std::tuple{"vanilla", v_clean, v_crash},
        std::tuple{"DualPar", d_clean, d_crash}}) {
    const double clean_s = pool.record(ci).stats.aux[0];
    const double crash_s = pool.record(xi).stats.aux[0];
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof a, "%.3f", clean_s);
    std::snprintf(b, sizeof b, "%.3f", crash_s);
    std::snprintf(c, sizeof c, "%.3f", crash_s - clean_s);
    rec.add_text_row(name, {a, b, c});
  }
  rec.add_note("recovery cost = completion-time increase over the clean run; "
               "DualPar falls back to independent execution during the outage");
  rec.print();

  bench::write_perf_json("bench_faults", pool);
  return 0;
}
