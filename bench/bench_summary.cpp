// Headline claim (§Abstract / §VI): "DualPar can increase system I/O
// throughput by 31% on average, compared to existing MPI-IO with or without
// using collective I/O."
//
// This bench runs the evaluation workloads (the Fig 3 single-application
// scenarios, read and write, plus the Table II interference scenario) and
// reports DualPar's improvement over the *better* of vanilla and collective
// I/O for each — then the geometric mean.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::ExperimentStats run_single(const std::string& which, bool is_write,
                                  Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  mpi::Job::ProgramFactory factory;
  if (which == "mpi-io-test") {
    wl::MpiIoTestConfig cfg;
    cfg.file_size = (2ull << 30) / scale;
    cfg.file = tb.create_file("f", cfg.file_size);
    cfg.request_size = 16 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    factory = [cfg](std::uint32_t) { return wl::make_mpi_io_test(cfg); };
  } else if (which == "noncontig") {
    wl::NoncontigConfig cfg;
    cfg.columns = 64;
    cfg.elmt_count = 128;
    cfg.rows = (1ull << 30) / scale / (cfg.columns * cfg.elmt_count * 4);
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    cfg.file = tb.create_file("f", cfg.columns * cfg.elmt_count * 4 * cfg.rows);
    factory = [cfg](std::uint32_t) { return wl::make_noncontig(cfg); };
  } else {
    wl::IorConfig cfg;
    cfg.file_size = (16ull << 30) / scale;
    cfg.file = tb.create_file("f", cfg.file_size);
    cfg.request_size = 32 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    factory = [cfg](std::uint32_t) { return wl::make_ior(cfg); };
  }
  mpi::Job& job =
      tb.add_job(which, 64, bench::driver_for(tb, v), factory, bench::policy_for(v));
  const std::uint64_t events = tb.run();
  return {tb.job_throughput_mbs(job), events, {}};
}

bench::ExperimentStats run_pair(bool is_write, Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  for (int i = 0; i < 2; ++i) {
    wl::MpiIoTestConfig cfg;
    cfg.file_size = (2ull << 30) / scale;
    cfg.file = tb.create_file("f" + std::to_string(i), cfg.file_size);
    cfg.request_size = 16 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    tb.add_job("j" + std::to_string(i), 64, bench::driver_for(tb, v),
               [cfg](std::uint32_t) { return wl::make_mpi_io_test(cfg); },
               bench::policy_for(v));
  }
  const std::uint64_t events = tb.run();
  return {tb.system_throughput_mbs(), events, {}};
}

/// Per-call read latency of one variant: value = mean ms, aux = {p50, p99}.
bench::ExperimentStats run_latency(Variant v, std::uint64_t scale) {
  harness::Testbed tb(bench::paper_config());
  wl::MpiIoTestConfig cfg;
  cfg.file_size = (2ull << 30) / scale;
  cfg.file = tb.create_file("f", cfg.file_size);
  cfg.request_size = 16 * 1024;
  cfg.collective = (v == Variant::kCollective);
  mpi::Job& job = tb.add_job("lat", 64, bench::driver_for(tb, v),
                             [cfg](std::uint32_t) { return wl::make_mpi_io_test(cfg); },
                             bench::policy_for(v));
  const std::uint64_t events = tb.run();
  const auto& h = job.read_latency();
  return {h.mean() / 1000.0, events,
          {h.percentile(0.5) / 1000.0, h.percentile(0.99) / 1000.0}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Headline summary (scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  const std::vector<std::string> workloads{"mpi-io-test", "noncontig", "ior-mpi-io"};
  const Variant variants[] = {Variant::kVanilla, Variant::kCollective,
                              Variant::kDualPar};
  bench::ExperimentPool pool;

  struct Scenario {
    std::string name;
    std::size_t run[3];  ///< submission index per variant
  };
  std::vector<Scenario> scenarios;
  for (const std::string& w : workloads)
    for (bool is_write : {false, true}) {
      Scenario s;
      s.name = w + (is_write ? " write" : " read");
      for (int vi = 0; vi < 3; ++vi) {
        const Variant v = variants[vi];
        s.run[vi] = pool.submit(s.name + " " + bench::variant_name(v),
                                [w, is_write, v, scale] {
                                  return run_single(w, is_write, v, scale);
                                });
      }
      scenarios.push_back(std::move(s));
    }
  for (bool is_write : {false, true}) {
    Scenario s;
    s.name = std::string("2x mpi-io-test ") + (is_write ? "write" : "read");
    for (int vi = 0; vi < 3; ++vi) {
      const Variant v = variants[vi];
      s.run[vi] = pool.submit(s.name + " " + bench::variant_name(v),
                              [is_write, v, scale] {
                                return run_pair(is_write, v, scale);
                              });
    }
    scenarios.push_back(std::move(s));
  }
  std::size_t lat_runs[3];
  for (int vi = 0; vi < 3; ++vi) {
    const Variant v = variants[vi];
    lat_runs[vi] = pool.submit(std::string("latency ") + bench::variant_name(v),
                               [v, scale] { return run_latency(v, scale); });
  }

  bench::Table t("DualPar vs best(vanilla, collective) across the evaluation suite");
  t.set_headers({"scenario", "best other MB/s", "DualPar MB/s", "improvement %"});

  std::vector<double> improvements;
  for (const Scenario& s : scenarios) {
    const double a = pool.value(s.run[0]);
    const double b = pool.value(s.run[1]);
    const double d = pool.value(s.run[2]);
    const double best = std::max(a, b);
    improvements.push_back(d / best);
    t.add_row(s.name, {best, d, (d / best - 1.0) * 100.0}, 1);
  }

  double log_sum = 0;
  for (double r : improvements) log_sum += std::log(r);
  const double geo = std::exp(log_sum / static_cast<double>(improvements.size()));
  t.add_note("paper abstract: +31% on average over MPI-IO with or without "
             "collective I/O");
  t.print();
  std::printf("\ngeometric-mean DualPar improvement over the best alternative: "
              "%+.0f%% (paper: +31%%)\n", (geo - 1.0) * 100.0);

  // The cost of batching that the paper leaves implicit: DualPar trades
  // per-call latency for throughput (suspended processes wait out a whole
  // data-driven cycle).
  bench::Table lat("Per-call read latency, mpi-io-test (ms)");
  lat.set_headers({"variant", "mean", "p50", "p99"});
  for (int vi = 0; vi < 3; ++vi) {
    const bench::ExperimentRecord& r = pool.record(lat_runs[vi]);
    lat.add_row(bench::variant_name(variants[vi]),
                {r.stats.value, r.stats.aux[0], r.stats.aux[1]}, 2);
  }
  lat.add_note("batching raises tail latency while cutting total runtime — the "
               "data-driven mode's inherent trade");
  lat.print();
  bench::write_perf_json("bench_summary", pool);
  return 0;
}
