// Figure 8 — BTIO (64 processes) throughput as the per-process cache quota
// sweeps from 0 to 1024 KB.
//
// Paper shape: 0 KB behaves like vanilla (2.7 MB/s-class); 64 KB already
// yields a ~43x jump (BTIO's native requests are tiny); further growth gives
// diminishing returns.
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::ExperimentStats run_btio(std::uint64_t quota, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  // 0 KB means "DualPar disabled": the run uses the vanilla driver below,
  // and the config keeps its (unused) default quota.
  if (quota > 0) cfg.dualpar.cache_quota = quota;
  harness::Testbed tb(cfg);
  wl::BtioConfig bc;
  bc.total_bytes = (6800ull << 20) / scale / 16;
  bc.write_steps = 10;
  bc.read_back = true;
  bc.file = tb.create_file("btio.dat", bc.total_bytes * 2);
  mpi::Job& job =
      quota == 0
          ? tb.add_job("btio", 64, tb.vanilla(),
                       [bc](std::uint32_t) { return wl::make_btio(bc); },
                       dualpar::Policy::kForcedNormal)
          : tb.add_job("btio", 64, tb.dualpar(),
                       [bc](std::uint32_t) { return wl::make_btio(bc); },
                       dualpar::Policy::kForcedDataDriven);
  const std::uint64_t events = tb.run();
  return {tb.job_throughput_mbs(job), events, {}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Figure 8 reproduction (BTIO, 64 procs, cache quota sweep, "
              "scale 1/%llu)\n", static_cast<unsigned long long>(scale));
  bench::ExperimentPool pool;
  const std::vector<std::uint64_t> kbs{0, 64, 128, 256, 512, 1024};
  std::vector<std::size_t> runs;
  for (std::uint64_t kb : kbs)
    runs.push_back(pool.submit("quota=" + std::to_string(kb) + "KB",
                               [kb, scale] { return run_btio(kb * 1024, scale); }));
  bench::Table t("Fig 8: BTIO system I/O throughput (MB/s) vs per-process cache");
  t.set_headers({"cache (KB)", "MB/s", "vs 0 KB"});
  double base = 0;
  for (std::size_t i = 0; i < kbs.size(); ++i) {
    const double mbs = pool.value(runs[i]);
    if (kbs[i] == 0) base = mbs;
    t.add_row(std::to_string(kbs[i]), {mbs, mbs / base}, 1);
  }
  t.add_note("paper: 0 KB == vanilla (~2.7 MB/s); 64 KB already ~43x; "
             "diminishing returns beyond");
  t.print();
  bench::write_perf_json("bench_fig8_cache_size", pool);
  return 0;
}
