// Extension: is DualPar a disk-era optimization?
//
// The paper's whole premise is the order-of-magnitude gap between random and
// sequential service on rotating disks. Replacing every server's RAID pair
// with 2012-class SSDs (uniform ~50 µs access, no rotational penalty) asks
// how much of the benefit survives. Expected: vanilla recovers massively on
// the small-random workloads, and DualPar's advantage shrinks toward its
// residual sources (request-count reduction and round-trip batching).
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

double run(const std::string& workload, Variant v, bool ssd, std::uint64_t scale) {
  harness::TestbedConfig cfg = bench::paper_config();
  if (ssd) cfg.disk = disk::ssd_params();
  harness::Testbed tb(cfg);
  mpi::Job::ProgramFactory factory;
  if (workload == "mpi-io-test") {
    wl::MpiIoTestConfig c;
    c.file_size = (2ull << 30) / scale;
    c.file = tb.create_file("f", c.file_size);
    c.request_size = 16 * 1024;
    c.collective = (v == Variant::kCollective);
    factory = [c](std::uint32_t) { return wl::make_mpi_io_test(c); };
  } else {  // noncontig
    wl::NoncontigConfig c;
    c.columns = 64;
    c.elmt_count = 128;
    c.rows = (1ull << 30) / scale / (c.columns * c.elmt_count * 4);
    c.collective = (v == Variant::kCollective);
    c.file = tb.create_file("f", c.columns * c.elmt_count * 4 * c.rows);
    factory = [c](std::uint32_t) { return wl::make_noncontig(c); };
  }
  mpi::Job& job = tb.add_job(workload, 64, bench::driver_for(tb, v), factory,
                             bench::policy_for(v));
  auto tm = g_perf.start(workload + (ssd ? " SSD " : " disk ") +
                         bench::variant_name(v));
  const std::uint64_t events = tb.run();
  const double mbs = tb.job_throughput_mbs(job);
  g_perf.finish(tm, mbs, events);
  return mbs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Extension: DualPar on SSD-backed servers (scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));
  for (const std::string w : {"mpi-io-test", "noncontig"}) {
    bench::Table t(w + " read throughput (MB/s): 7200-RPM RAID vs SSD servers");
    t.set_headers({"medium", "vanilla", "collective", "DualPar", "DP/vanilla"});
    for (bool ssd : {false, true}) {
      const double a = run(w, Variant::kVanilla, ssd, scale);
      const double b = run(w, Variant::kCollective, ssd, scale);
      const double c = run(w, Variant::kDualPar, ssd, scale);
      t.add_row(ssd ? "SSD" : "disk", {a, b, c, c / a}, 1);
    }
    t.print();
  }
  std::printf("\nThe service-order gap the paper exploits is mechanical; on "
              "SSDs the residual gains come from fewer, larger requests and "
              "fewer synchronous round trips.\n");
  g_perf.write("bench_ssd_era");
  return 0;
}
