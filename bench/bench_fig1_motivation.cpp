// Figure 1 — the §II motivating experiment with the synthetic `demo`
// program: 8 processes read a 1 GB file; each call fetches 16 segments at
// offsets (k*N + rank).
//
//  (a) execution time vs I/O ratio (segment 4 KB) under
//      Strategy 1 (computation-driven / vanilla),
//      Strategy 2 (pre-execution prefetching, compute stripped, requests
//                  issued immediately),
//      Strategy 3 (data-driven batch = DualPar forced on);
//  (b) execution time vs segment size at a ~90% I/O ratio;
//  (c,d) blktrace samples of the service order on data server 1 under
//        Strategies 2 and 3.
//
// Paper shape: S2 wins at low I/O ratio (hides I/O); S3 wins above ~70%
// (36% faster near 100%); smaller segments widen S3's advantage; S2's trace
// shows back-and-forth head movement, S3's moves in one direction.
#include <cstdio>
#include <string>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

struct RunResult {
  double seconds = 0;
  std::uint64_t reversals = 0;
  std::vector<disk::TraceEvent> trace;
};

RunResult run_demo(Variant v, std::uint64_t file_size, std::uint64_t segment,
                   sim::Time compute_per_call, bool keep_trace = false) {
  harness::Testbed tb(bench::paper_config());
  wl::DemoConfig cfg;
  cfg.file = tb.create_file("demo.dat", file_size);
  cfg.file_size = file_size;
  cfg.segment_size = segment;
  cfg.compute_per_call = compute_per_call;
  mpi::Job& job = tb.add_job("demo", 8, bench::driver_for(tb, v),
                             [cfg](std::uint32_t) { return wl::make_demo(cfg); },
                             bench::policy_for(v));
  auto tm = g_perf.start(std::string(bench::variant_name(v)) + " seg=" +
                         std::to_string(segment >> 10) + "KB");
  const std::uint64_t events = tb.run();
  RunResult r;
  r.seconds = sim::to_seconds(job.completion_time() - job.start_time());
  g_perf.finish(tm, r.seconds, events);
  r.reversals = bench::trace_reversals(tb.server(1).trace().events());
  if (keep_trace) {
    // Sample a window in the middle of the run, as the paper does (5.2-5.4s).
    const sim::Time mid = job.completion_time() / 2;
    r.trace = tb.server(1).trace().window(mid, mid + sim::msec(200));
  }
  return r;
}

/// Calibrate per-call compute so the *vanilla* run has the target I/O ratio
/// (the paper defines the ratio "in the vanilla system").
sim::Time compute_for_ratio(double ratio, std::uint64_t file_size, std::uint64_t segment) {
  const RunResult pure = run_demo(Variant::kVanilla, file_size, segment, 0);
  const std::uint64_t calls_per_proc = file_size / (segment * 16 * 8);
  const double io_per_call = pure.seconds / static_cast<double>(calls_per_proc);
  if (ratio >= 0.999) return 0;
  return sim::from_seconds(io_per_call * (1.0 - ratio) / ratio);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  const std::uint64_t file_size = (1ull << 30) / scale;
  std::printf("Figure 1 reproduction (demo, 8 procs, %llu MB file, scale 1/%llu)\n",
              static_cast<unsigned long long>(file_size >> 20),
              static_cast<unsigned long long>(scale));

  {
    bench::Table t("Fig 1(a): execution time (s) vs I/O ratio, 4 KB segments");
    t.set_headers({"I/O ratio", "Strategy1", "Strategy2", "Strategy3", "S3/S1", "S3/S2"});
    for (double ratio : {0.19, 0.31, 0.43, 0.72, 0.86, 1.00}) {
      const sim::Time compute = compute_for_ratio(ratio, file_size, 4096);
      const double s1 = run_demo(Variant::kVanilla, file_size, 4096, compute).seconds;
      const double s2 = run_demo(Variant::kPreexec, file_size, 4096, compute).seconds;
      const double s3 = run_demo(Variant::kDualPar, file_size, 4096, compute).seconds;
      char label[32];
      std::snprintf(label, sizeof label, "%3.0f%%", ratio * 100);
      t.add_row(label, {s1, s2, s3, s3 / s1, s3 / s2}, 2);
    }
    t.add_note("paper: S2 best at low ratios; crossover ~70%; S3 ~36% faster than "
               "the others near 100%");
    t.print();
  }

  {
    bench::Table t("Fig 1(b): execution time (s) vs segment size, ~90% I/O ratio");
    t.set_headers({"segment", "Strategy1", "Strategy2", "Strategy3", "S3/S2"});
    for (std::uint64_t seg : {4u, 8u, 16u, 32u, 64u, 128u}) {
      const std::uint64_t bytes = seg * 1024;
      const sim::Time compute = compute_for_ratio(0.90, file_size, bytes);
      const double s1 = run_demo(Variant::kVanilla, file_size, bytes, compute).seconds;
      const double s2 = run_demo(Variant::kPreexec, file_size, bytes, compute).seconds;
      const double s3 = run_demo(Variant::kDualPar, file_size, bytes, compute).seconds;
      char label[32];
      std::snprintf(label, sizeof label, "%lluKB", static_cast<unsigned long long>(seg));
      t.add_row(label, {s1, s2, s3, s3 / s2}, 2);
    }
    t.add_note("paper: S3's advantage largest at 4 KB (S2 at 64% of S3's "
               "throughput) and fades beyond 32 KB");
    t.print();
  }

  {
    const RunResult s2 = run_demo(Variant::kPreexec, file_size, 4096, 0, true);
    const RunResult s3 = run_demo(Variant::kDualPar, file_size, 4096, 0, true);
    bench::print_trace_sample("Fig 1(c): Strategy 2 service order on server 1",
                              s2.trace);
    bench::print_trace_sample("Fig 1(d): Strategy 3 service order on server 1",
                              s3.trace);
    std::printf("\nfull-run direction reversals on server 1: Strategy2=%llu "
                "Strategy3=%llu (paper: S2 shows back-and-forth movement, S3 "
                "moves in one direction)\n",
                static_cast<unsigned long long>(s2.reversals),
                static_cast<unsigned long long>(s3.reversals));
  }
  g_perf.write("bench_fig1_motivation");
  return 0;
}
