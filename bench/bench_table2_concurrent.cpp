// Table II + Figure 6 — two concurrent mpi-io-test instances (16 KB
// requests, each with its own 2 GB file), read and write, under vanilla
// MPI-IO, collective I/O and DualPar; plus the blktrace service-order
// samples on data server 1 (Fig 6a vanilla, Fig 6b DualPar).
//
// Paper reference (aggregate MB/s): read 106/168/284-ish, write 54/67/127;
// DualPar reduces the average seek distance "by up to ten times".
#include <cstdio>

#include "harness.hpp"
#include "wl/workloads.hpp"

using namespace dpar;
using bench::Variant;

namespace {

bench::PerfLog g_perf;

struct Result {
  double mbs = 0;
  double mean_seek = 0;
  std::vector<disk::TraceEvent> trace;
};

Result run_pair(bool is_write, Variant v, std::uint64_t scale, bool keep_trace) {
  harness::Testbed tb(bench::paper_config());
  std::vector<mpi::Job*> jobs;
  for (int i = 0; i < 2; ++i) {
    wl::MpiIoTestConfig cfg;
    cfg.file_size = (2ull << 30) / scale;
    cfg.file = tb.create_file("file" + std::to_string(i), cfg.file_size);
    cfg.request_size = 16 * 1024;
    cfg.is_write = is_write;
    cfg.collective = (v == Variant::kCollective);
    jobs.push_back(&tb.add_job("mpi-io-test" + std::to_string(i), 64,
                               bench::driver_for(tb, v),
                               [cfg](std::uint32_t) { return wl::make_mpi_io_test(cfg); },
                               bench::policy_for(v)));
  }
  auto tm = g_perf.start(std::string(is_write ? "write " : "read ") +
                         bench::variant_name(v));
  const std::uint64_t events = tb.run();
  Result r;
  r.mbs = tb.system_throughput_mbs();
  g_perf.finish(tm, r.mbs, events);
  r.mean_seek = tb.server(1).trace().mean_seek_distance();
  if (keep_trace) {
    const sim::Time mid = jobs[0]->completion_time() / 2;
    r.trace = tb.server(1).trace().window(mid, mid + sim::secs(1));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t scale = bench::scale_divisor(argc, argv);
  std::printf("Table II / Figure 6 reproduction (2 concurrent mpi-io-test, 64 "
              "procs each, scale 1/%llu)\n",
              static_cast<unsigned long long>(scale));

  bench::Table t("Table II: aggregate I/O throughput (MB/s), 2 concurrent mpi-io-test");
  t.set_headers({"direction", "vanilla", "collective", "DualPar", "DP/vanilla"});
  Result vr, dr;
  for (bool is_write : {false, true}) {
    const Result a = run_pair(is_write, Variant::kVanilla, scale, !is_write);
    const Result b = run_pair(is_write, Variant::kCollective, scale, false);
    const Result c = run_pair(is_write, Variant::kDualPar, scale, !is_write);
    if (!is_write) {
      vr = a;
      dr = c;
    }
    t.add_row(is_write ? "write" : "read", {a.mbs, b.mbs, c.mbs, c.mbs / a.mbs}, 1);
  }
  t.add_note("paper Table II: read 106/168/284, write 54/67/127 (OCR of the "
             "vanilla read cell is ambiguous)");
  t.print();

  bench::print_trace_sample("Fig 6(a): vanilla MPI-IO service order, server 1",
                            vr.trace);
  bench::print_trace_sample("Fig 6(b): DualPar service order, server 1", dr.trace);
  std::printf("\nmean seek distance on server 1 (sectors): vanilla=%.0f "
              "DualPar=%.0f (%.1fx reduction; paper: up to 10x)\n",
              vr.mean_seek, dr.mean_seek, vr.mean_seek / dr.mean_seek);
  g_perf.write("bench_table2_concurrent");
  return 0;
}
