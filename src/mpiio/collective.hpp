// ROMIO-style two-phase collective I/O (§III-A, the paper's main comparator).
//
// All ranks synchronize at each collective call. The union of the call's
// accessed extent is partitioned into contiguous *file domains*, one per
// aggregator (one aggregator per compute node, ROMIO's default). Each rank
// ships its request metadata to the aggregators owning parts of its data;
// aggregators perform data sieving within their domain (one contiguous
// request when hole waste is acceptable, exact list I/O otherwise); finally
// data is shuffled between aggregators and owner ranks over the network.
// The metadata and shuffle traffic grows with the process count, which is
// why collective I/O loses ground at 256 processes in Fig 4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mpi/job.hpp"
#include "mpiio/env.hpp"
#include "mpiio/vanilla.hpp"

namespace dpar::mpiio {

struct CollectiveParams {
  std::uint64_t sieve_buffer = 4ull << 20;  ///< max sieved contiguous read
  /// Sieve only when useful bytes / span >= this fraction.
  double sieve_min_density = 0.4;
  /// Per-rank CPU cost of the exchange bookkeeping, per participating rank
  /// (memcpy/pack/unpack of flattened datatypes).
  sim::Time exchange_cpu_per_rank = sim::usec(12);
  /// ROMIO's cb_nodes hint: cap on the number of aggregators (0 = one per
  /// participating compute node, the default).
  std::uint32_t max_aggregators = 0;
  /// Read-modify-write sieving for noncontiguous collective writes (ROMIO's
  /// generic path with file locking). Off by default: on PVFS2 ROMIO uses
  /// native list I/O for writes instead.
  bool write_sieving = false;
};

class CollectiveDriver : public VanillaDriver {
 public:
  CollectiveDriver(IoEnv env, CollectiveParams params = {})
      : VanillaDriver(env), params_(params) {}

  void io(mpi::Process& proc, const mpi::IoCall& call,
          sim::UniqueFunction done) override;
  void on_process_end(mpi::Process& proc) override;

  /// Two-phase I/O gathers every rank's request into one shared round
  /// (aggregation, shuffle, round counters), so ranks must share one lane;
  /// a job using this driver never splits per compute node.
  bool lane_splittable() const override { return false; }

  std::string name() const override { return "collective-io"; }

  std::uint64_t collective_rounds() const { return rounds_; }
  std::uint64_t shuffle_bytes() const { return shuffle_bytes_; }

 private:
  struct Entry {
    mpi::Process* proc;
    mpi::IoCall call;
    sim::UniqueFunction done;
  };
  struct Epoch {
    std::vector<Entry> entries;
  };

  void run_round(std::uint32_t job_id);

  CollectiveParams params_;
  std::map<std::uint32_t, Epoch> epochs_;
  std::uint64_t rounds_ = 0;
  std::uint64_t shuffle_bytes_ = 0;
};

}  // namespace dpar::mpiio
