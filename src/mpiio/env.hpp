// Shared plumbing for MPI-IO driver implementations: per-node PFS clients,
// and the ADIO-style request observer that feeds the EMC daemon.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "fault/injector.hpp"
#include "net/network.hpp"
#include "pfs/file_system.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/time.hpp"

namespace dpar::mpiio {

/// One PFS client per compute node, created on demand. When compute nodes
/// run in separate PDES lanes the pool must be pre-warmed (see ensure):
/// for_node is then a pure lookup and never mutates the map from a lane.
class ClientPool {
 public:
  explicit ClientPool(pfs::FileSystem& fs) : fs_(fs) {}

  /// Pre-create the client for `node` (setup-time, single-threaded).
  void ensure(net::NodeId node) {
    if (clients_.find(node) == clients_.end())
      clients_.emplace(node, std::make_unique<pfs::Client>(fs_, node));
  }

  pfs::Client& for_node(net::NodeId node) {
    auto it = clients_.find(node);
    if (it == clients_.end())
      it = clients_.emplace(node, std::make_unique<pfs::Client>(fs_, node)).first;
    return *it->second;
  }

 private:
  pfs::FileSystem& fs_;
  std::unordered_map<net::NodeId, std::unique_ptr<pfs::Client>> clients_;
};

/// Observation hook the instrumented ADIO functions call on every
/// application I/O request; EMC derives ReqDist from it (§IV-B).
class RequestObserver {
 public:
  virtual ~RequestObserver() = default;
  /// Called from the issuing rank's lane, possibly inside a parallel
  /// window: implementations must buffer lane-locally (or route through the
  /// lane channel) — never reach raw Engine::at()/after().
  DPAR_CROSS_LANE_API virtual void observe(
      std::uint32_t job_id, pfs::FileId file,
      const std::vector<pfs::Segment>& segments, sim::Time now) = 0;
};

/// Everything a driver needs to reach the storage system.
struct IoEnv {
  pfs::FileSystem& fs;
  ClientPool& clients;
  net::Network& net;
  RequestObserver* observer = nullptr;  ///< optional
};

/// Ledger hook for a finished transfer: MPI-IO reports the error to the
/// application (which carries on, as the paper's benchmarks do) and the run's
/// fault counters record it. No-op without fault injection.
inline void note_io_status(IoEnv& env, fault::Status st) {
  if (fault::ok(st)) return;
  if (auto* inj = env.fs.fault_injector()) ++inj->counters().driver_io_errors;
}

}  // namespace dpar::mpiio
