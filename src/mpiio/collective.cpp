#include "mpiio/collective.hpp"

#include <algorithm>
#include <memory>
#include <utility>

namespace dpar::mpiio {
namespace {

/// Sorted, coalesced copy of segments.
std::vector<pfs::Segment> sort_and_merge(std::vector<pfs::Segment> segs) {
  std::sort(segs.begin(), segs.end(), [](const pfs::Segment& a, const pfs::Segment& b) {
    return a.offset < b.offset;
  });
  std::vector<pfs::Segment> out;
  for (const auto& s : segs) {
    if (s.length == 0) continue;
    if (!out.empty() && out.back().end() >= s.offset) {
      out.back().length = std::max(out.back().end(), s.end()) - out.back().offset;
    } else {
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace

void CollectiveDriver::io(mpi::Process& proc, const mpi::IoCall& call,
                          sim::UniqueFunction done) {
  if (!call.collective) {
    VanillaDriver::io(proc, call, std::move(done));
    return;
  }
  if (env_.observer)
    env_.observer->observe(proc.job().id(), call.file, call.segments,
                           env_.fs.engine().now());
  Epoch& epoch = epochs_[proc.job().id()];
  epoch.entries.push_back(Entry{&proc, call, std::move(done)});
  const std::uint32_t live = proc.job().nprocs() -
                             [&] {
                               std::uint32_t f = 0;
                               for (std::uint32_t i = 0; i < proc.job().nprocs(); ++i)
                                 if (proc.job().process(i).state() == mpi::ProcState::kFinished)
                                   ++f;
                               return f;
                             }();
  if (epoch.entries.size() >= live) run_round(proc.job().id());
}

void CollectiveDriver::on_process_end(mpi::Process& proc) {
  // A rank finishing can complete a pending round (remaining live ranks all
  // arrived already).
  auto it = epochs_.find(proc.job().id());
  if (it == epochs_.end() || it->second.entries.empty()) return;
  std::uint32_t live = 0;
  for (std::uint32_t i = 0; i < proc.job().nprocs(); ++i)
    if (proc.job().process(i).state() != mpi::ProcState::kFinished) ++live;
  if (it->second.entries.size() >= live && live > 0) run_round(proc.job().id());
}

void CollectiveDriver::run_round(std::uint32_t job_id) {
  ++rounds_;
  auto entries = std::make_shared<std::vector<Entry>>(std::move(epochs_[job_id].entries));
  epochs_[job_id].entries.clear();
  sim::Engine& eng = env_.fs.engine();

  // ---- Plan the round (assume one target file per round; benchmarks obey
  // this, and ROMIO plans per file handle anyway). ----
  const pfs::FileId file = (*entries)[0].call.file;
  const bool is_write = (*entries)[0].call.is_write;

  std::uint64_t lo = UINT64_MAX, hi = 0, useful = 0;
  for (const auto& e : *entries) {
    for (const auto& s : e.call.segments) {
      if (s.length == 0) continue;
      lo = std::min(lo, s.offset);
      hi = std::max(hi, s.end());
      useful += s.length;
    }
  }
  if (useful == 0) {  // nothing to move; release everyone after a barrier hop
    std::vector<sim::UniqueFunction> dones;
    dones.reserve(entries->size());
    for (auto& e : *entries) dones.push_back(std::move(e.done));
    eng.after_all(sim::usec(100), std::move(dones));
    return;
  }

  // Aggregators: one per distinct compute node hosting participants.
  struct Agg {
    net::NodeId node;
    std::uint64_t context;  ///< aggregator's process id as I/O context
    std::vector<pfs::Segment> segs;
    bool rmw = false;  ///< write sieving: read the span before writing it
  };
  std::vector<Agg> aggs;
  {
    std::vector<net::NodeId> nodes;
    for (const auto& e : *entries) {
      const net::NodeId n = e.proc->node().id();
      if (std::find(nodes.begin(), nodes.end(), n) == nodes.end()) {
        nodes.push_back(n);
        aggs.push_back(Agg{n, e.proc->global_id(), {}});
      }
    }
    std::sort(aggs.begin(), aggs.end(), [](const Agg& a, const Agg& b) {
      return a.node < b.node;
    });
    if (params_.max_aggregators > 0 && aggs.size() > params_.max_aggregators)
      aggs.resize(params_.max_aggregators);
  }
  const std::uint64_t nagg = aggs.size();
  const std::uint64_t extent = hi - lo;
  const std::uint64_t domain = (extent + nagg - 1) / nagg;

  // Split each rank's segments over the aggregators' file domains and track
  // the shuffle volume per (aggregator, rank).
  struct Shuffle {
    net::NodeId agg_node;
    net::NodeId proc_node;
    std::uint64_t bytes;
  };
  std::map<std::pair<std::uint64_t, net::NodeId>, std::uint64_t> shuffle_map;
  std::map<std::pair<std::uint64_t, net::NodeId>, std::uint64_t> meta_map;
  for (const auto& e : *entries) {
    const net::NodeId pnode = e.proc->node().id();
    for (const auto& s : e.call.segments) {
      std::uint64_t off = s.offset, rem = s.length;
      while (rem > 0) {
        const std::uint64_t a = std::min((off - lo) / domain, nagg - 1);
        const std::uint64_t dom_end = lo + (a + 1) * domain;
        const std::uint64_t take = std::min(rem, dom_end - off);
        aggs[a].segs.push_back(pfs::Segment{off, take});
        shuffle_map[{a, pnode}] += take;
        meta_map[{a, pnode}] += 16;  // flattened (offset,len) descriptor
        off += take;
        rem -= take;
      }
    }
  }

  // Data sieving decision per aggregator.
  for (auto& a : aggs) {
    a.segs = sort_and_merge(std::move(a.segs));
    if (a.segs.size() <= 1) continue;
    const std::uint64_t span = a.segs.back().end() - a.segs.front().offset;
    std::uint64_t use = 0;
    for (const auto& s : a.segs) use += s.length;
    const bool dense = span <= params_.sieve_buffer &&
                       static_cast<double>(use) / static_cast<double>(span) >=
                           params_.sieve_min_density;
    if (!dense) continue;
    if (!is_write) {
      a.segs = {pfs::Segment{a.segs.front().offset, span}};
    } else if (params_.write_sieving) {
      // RMW: the whole span is read first, then written back patched.
      a.segs = {pfs::Segment{a.segs.front().offset, span}};
      a.rmw = true;
    }
  }

  // Exchange bookkeeping CPU: every rank packs/unpacks state that grows with
  // the participant count.
  const sim::Time cpu =
      params_.exchange_cpu_per_rank * static_cast<sim::Time>(entries->size());

  // ---- Execute the phases. ----
  auto finish_all = [entries, &eng, cpu] {
    // One completion event per collective round instead of one per rank;
    // consecutive sequence numbers cannot interleave, so order is unchanged.
    std::vector<sim::UniqueFunction> dones;
    dones.reserve(entries->size());
    for (auto& e : *entries) dones.push_back(std::move(e.done));
    eng.after_all(cpu, std::move(dones));
  };

  auto do_agg_io = [this, aggs, file, is_write, entries, shuffle_map, finish_all,
                    &eng]() mutable {
    auto pending = std::make_shared<std::size_t>(0);
    for (const auto& a : aggs)
      if (!a.segs.empty()) ++*pending;
    auto after_io = [this, pending, shuffle_map, aggs, is_write, entries, finish_all,
                     &eng]() mutable {
      if (--*pending > 0) return;
      if (is_write) {  // data travelled before the write; just release
        finish_all();
        return;
      }
      // Read shuffle: aggregators scatter data to owner ranks.
      auto msgs = std::make_shared<std::size_t>(0);
      for (const auto& [key, bytes] : shuffle_map)
        if (bytes > 0) ++*msgs;
      if (*msgs == 0) {
        finish_all();
        return;
      }
      for (const auto& [key, bytes] : shuffle_map) {
        if (bytes == 0) continue;
        shuffle_bytes_ += bytes;
        env_.net.send(aggs[key.first].node, key.second, bytes,
                      [msgs, finish_all]() mutable {
                        if (--*msgs == 0) finish_all();
                      });
      }
    };
    bool any = false;
    for (const auto& a : aggs) {
      if (a.segs.empty()) continue;
      any = true;
      pfs::Client& client = env_.clients.for_node(a.node);
      if (a.rmw) {
        // Write sieving: fetch the span, patch in memory, write it back.
        client.io(file, a.segs, /*is_write=*/false, a.context,
                  [this, &client, file, a, after_io](std::uint64_t,
                                                     fault::Status st) mutable {
                    note_io_status(env_, st);
                    client.io(file, a.segs, /*is_write=*/true, a.context,
                              [this, after_io](std::uint64_t,
                                               fault::Status wst) mutable {
                                note_io_status(env_, wst);
                                after_io();
                              });
                  });
      } else {
        client.io(file, a.segs, is_write, a.context,
                  [this, after_io](std::uint64_t, fault::Status st) mutable {
                    note_io_status(env_, st);
                    after_io();
                  });
      }
    }
    if (!any) finish_all();
  };

  // Phase 1: metadata exchange (everyone ships request lists to aggregators),
  // plus, for writes, the data shuffle owner -> aggregator.
  auto meta_pending = std::make_shared<std::size_t>(0);
  auto after_meta = [meta_pending, do_agg_io]() mutable {
    if (--*meta_pending == 0) do_agg_io();
  };
  std::vector<std::tuple<net::NodeId, net::NodeId, std::uint64_t>> msgs;
  for (const auto& [key, meta_bytes] : meta_map) {
    std::uint64_t bytes = 64 + meta_bytes;
    if (is_write) bytes += shuffle_map[key];  // ship payload with descriptors
    if (is_write) shuffle_bytes_ += shuffle_map[key];
    msgs.emplace_back(key.second, aggs[key.first].node, bytes);
  }
  *meta_pending = msgs.size();
  if (msgs.empty()) {
    do_agg_io();
    return;
  }
  for (const auto& [from, to, bytes] : msgs) env_.net.send(from, to, bytes, after_meta);
}

}  // namespace dpar::mpiio
