#include "mpiio/vanilla.hpp"

#include <memory>
#include <utility>

namespace dpar::mpiio {

void VanillaDriver::io(mpi::Process& proc, const mpi::IoCall& call,
                       std::function<void()> done) {
  if (env_.observer)
    env_.observer->observe(proc.job().id(), call.file, call.segments,
                           env_.fs.engine().now());
  raw_io(proc, call, std::move(done));
}

void VanillaDriver::raw_io(mpi::Process& proc, const mpi::IoCall& call,
                           std::function<void()> done) {
  if (piecewise_strided_ && call.segments.size() > 1) {
    issue_piece(proc, std::make_shared<mpi::IoCall>(call), 0, std::move(done));
    return;
  }
  pfs::Client& client = env_.clients.for_node(proc.node().id());
  client.io(call.file, call.segments, call.is_write, proc.global_id(),
            [done = std::move(done)](std::uint64_t) { done(); });
}

void VanillaDriver::issue_piece(mpi::Process& proc, std::shared_ptr<mpi::IoCall> call,
                                std::size_t index, std::function<void()> done) {
  if (index >= call->segments.size()) {
    done();
    return;
  }
  pfs::Client& client = env_.clients.for_node(proc.node().id());
  client.io(call->file, {call->segments[index]}, call->is_write, proc.global_id(),
            [this, &proc, call, index, done = std::move(done)](std::uint64_t) mutable {
              issue_piece(proc, call, index + 1, std::move(done));
            });
}

}  // namespace dpar::mpiio
