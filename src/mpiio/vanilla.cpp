#include "mpiio/vanilla.hpp"

#include <cstddef>
#include <utility>

namespace dpar::mpiio {

/// State of one piecewise strided call: the call is walked segment by
/// segment, each round trip capturing just this block's pointer.
struct PieceWalk {
  VanillaDriver* drv;
  mpi::Process* proc;
  mpi::IoCall call;
  std::size_t index;
  sim::UniqueFunction done;
};

void VanillaDriver::io(mpi::Process& proc, const mpi::IoCall& call,
                       sim::UniqueFunction done) {
  if (env_.observer)
    env_.observer->observe(proc.job().id(), call.file, call.segments,
                           env_.fs.engine().now());
  raw_io(proc, call, std::move(done));
}

void VanillaDriver::raw_io(mpi::Process& proc, const mpi::IoCall& call,
                           sim::UniqueFunction done) {
  if (piecewise_strided_ && call.segments.size() > 1) {
    issue_piece(new PieceWalk{this, &proc, call, 0, std::move(done)});
    return;
  }
  pfs::Client& client = env_.clients.for_node(proc.node().id());
  client.io(call.file, call.segments, call.is_write, proc.global_id(),
            [this, done = std::move(done)](std::uint64_t, fault::Status st) mutable {
              note_io_status(env_, st);
              on_raw_status(st);
              done();
            });
}

void VanillaDriver::issue_piece(PieceWalk* w) {
  if (w->index >= w->call.segments.size()) {
    sim::UniqueFunction done = std::move(w->done);
    delete w;
    done();
    return;
  }
  pfs::Client& client = env_.clients.for_node(w->proc->node().id());
  client.io(w->call.file, {w->call.segments[w->index]}, w->call.is_write,
            w->proc->global_id(), [w](std::uint64_t, fault::Status st) {
              // A failed piece is reported and the walk continues: the
              // application sees the error but the benchmark keeps running.
              note_io_status(w->drv->env_, st);
              w->drv->on_raw_status(st);
              ++w->index;
              w->drv->issue_piece(w);
            });
}

}  // namespace dpar::mpiio
