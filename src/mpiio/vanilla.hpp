// Vanilla MPI-IO: every process issues its own synchronous requests directly
// to the parallel file system, in program order (Strategy 1 of §II).
#pragma once

#include <string>

#include "mpi/job.hpp"
#include "mpiio/env.hpp"

namespace dpar::mpiio {

class VanillaDriver : public mpi::IoDriver {
 public:
  explicit VanillaDriver(IoEnv env) : env_(env) {}

  void io(mpi::Process& proc, const mpi::IoCall& call,
          std::function<void()> done) override;

  std::string name() const override { return "vanilla-mpiio"; }

  /// Independent strided I/O issues one contiguous piece per round trip
  /// ("a process issues its synchronous read requests one at a time", §II) —
  /// the behaviour DualPar's request aggregation removes. Disable to grant
  /// vanilla I/O full list-I/O batching (ablation).
  void set_piecewise_strided(bool v) { piecewise_strided_ = v; }

 protected:
  /// Same request path as io() but without the ADIO observation hook — for
  /// wrappers (DualPar) that already observed the application call and only
  /// delegate the transfer.
  void raw_io(mpi::Process& proc, const mpi::IoCall& call, std::function<void()> done);

  IoEnv env_;

 private:
  void issue_piece(mpi::Process& proc, std::shared_ptr<mpi::IoCall> call,
                   std::size_t index, std::function<void()> done);

  bool piecewise_strided_ = true;
};

}  // namespace dpar::mpiio
