// Vanilla MPI-IO: every process issues its own synchronous requests directly
// to the parallel file system, in program order (Strategy 1 of §II).
#pragma once

#include <string>

#include "mpi/job.hpp"
#include "mpiio/env.hpp"

namespace dpar::mpiio {

struct PieceWalk;

class VanillaDriver : public mpi::IoDriver {
 public:
  explicit VanillaDriver(IoEnv env) : env_(env) {}

  void io(mpi::Process& proc, const mpi::IoCall& call,
          sim::UniqueFunction done) override;

  std::string name() const override { return "vanilla-mpiio"; }

  /// Vanilla I/O is purely rank-local: every request goes straight from the
  /// calling process to the PFS client over the network channel, with no
  /// cross-rank aggregation — so its jobs may split across per-node lanes.
  bool lane_splittable() const override { return true; }

  /// Independent strided I/O issues one contiguous piece per round trip
  /// ("a process issues its synchronous read requests one at a time", §II) —
  /// the behaviour DualPar's request aggregation removes. Disable to grant
  /// vanilla I/O full list-I/O batching (ablation).
  void set_piecewise_strided(bool v) { piecewise_strided_ = v; }

 protected:
  /// Same request path as io() but without the ADIO observation hook — for
  /// wrappers (DualPar) that already observed the application call and only
  /// delegate the transfer.
  void raw_io(mpi::Process& proc, const mpi::IoCall& call,
              sim::UniqueFunction done);

  /// Outcome of every transfer issued through raw_io. Wrappers override to
  /// feed their mode controller (DualPar -> EMC error EWMA); the base driver
  /// only keeps the fault ledger via note_io_status.
  virtual void on_raw_status(fault::Status st) { (void)st; }

  IoEnv env_;

 private:
  /// Issue the next contiguous piece of `w` (one heap control block per
  /// strided call; per-piece callbacks capture only the block pointer).
  void issue_piece(PieceWalk* w);

  bool piecewise_strided_ = true;
};

}  // namespace dpar::mpiio
