// I/O scheduler interface.
//
// The device asks the scheduler what to do next given the current head
// position; the answer is either a request to dispatch, an instruction to
// idle until a deadline (CFQ anticipation), or "nothing pending".
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

#include "disk/request.hpp"

namespace dpar::disk {

struct Decision {
  enum class Kind { kDispatch, kWaitUntil, kIdle };
  Kind kind = Kind::kIdle;
  Request request;       ///< valid when kind == kDispatch
  sim::Time wait_until = 0;  ///< valid when kind == kWaitUntil

  static Decision dispatch(Request r) {
    Decision d;
    d.kind = Kind::kDispatch;
    d.request = std::move(r);
    return d;
  }
  static Decision wait(sim::Time t) {
    Decision d;
    d.kind = Kind::kWaitUntil;
    d.wait_until = t;
    return d;
  }
  static Decision idle() { return {}; }
};

class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  virtual void enqueue(Request r, sim::Time now) = 0;

  /// Enqueue a decomposed batch in order. Equivalent to calling enqueue() on
  /// each request; flat implementations override to insert the whole run with
  /// one sort/merge instead of n queue walks.
  virtual void enqueue_batch(Request* batch, std::size_t n, sim::Time now) {
    for (std::size_t i = 0; i < n; ++i) enqueue(std::move(batch[i]), now);
  }

  /// Choose the next action. Called whenever the disk becomes free, a new
  /// request arrives while it is free, or a previously returned wait deadline
  /// expires.
  virtual Decision next(std::uint64_t head_lba, sim::Time now) = 0;

  /// Inform the scheduler that a dispatched request finished (CFQ uses this
  /// to track per-context think times).
  virtual void completed(const Request& r, sim::Time now) { (void)r; (void)now; }

  virtual std::size_t pending() const = 0;
  virtual std::string name() const = 0;
};

/// Factory helpers (definitions in the respective .cpp files).
std::unique_ptr<IoScheduler> make_noop_scheduler();
std::unique_ptr<IoScheduler> make_deadline_scheduler(sim::Time read_deadline = sim::msec(500),
                                                     sim::Time write_deadline = sim::secs(5));
std::unique_ptr<IoScheduler> make_cscan_scheduler();

struct CfqParams {
  sim::Time slice_sync = sim::msec(100);  ///< time slice per context
  sim::Time slice_idle = sim::msec(8);    ///< anticipation window
  /// Contexts whose mean think time exceeds the idle window are not worth
  /// idling for (mirrors CFQ's ttime heuristic).
  bool think_time_gate = true;
};
std::unique_ptr<IoScheduler> make_cfq_scheduler(CfqParams p = {});

/// Anticipatory scheduler (Iyer & Druschel): sector-sorted service with
/// system-wide anticipation of the last-served synchronous context.
std::unique_ptr<IoScheduler> make_anticipatory_scheduler(
    sim::Time antic_window = sim::msec(6), sim::Time max_wait = sim::msec(10));

/// Named construction for config-driven experiments.
enum class SchedulerKind { kNoop, kDeadline, kCscan, kCfq, kAnticipatory };
std::unique_ptr<IoScheduler> make_scheduler(SchedulerKind kind);

/// Frozen multimap-based originals (sched_reference.cpp): the differential
/// oracles for the flat rewrites and the baseline side of the perf-smoke
/// duty-cycle ratio. Never used on the simulation hot path.
std::unique_ptr<IoScheduler> make_reference_noop_scheduler();
std::unique_ptr<IoScheduler> make_reference_deadline_scheduler(
    sim::Time read_deadline = sim::msec(500), sim::Time write_deadline = sim::secs(5));
std::unique_ptr<IoScheduler> make_reference_cscan_scheduler();
std::unique_ptr<IoScheduler> make_reference_cfq_scheduler(CfqParams p = {});
std::unique_ptr<IoScheduler> make_reference_anticipatory_scheduler(
    sim::Time antic_window = sim::msec(6), sim::Time max_wait = sim::msec(10));

}  // namespace dpar::disk
