// Reference (multimap-based) scheduler implementations.
//
// These are the original node-based-container schedulers, retained verbatim
// after the flat rewrites in sched_simple.cpp / sched_cfq.cpp /
// sched_anticipatory.cpp. They exist for two consumers:
//  * tests/test_sched_model.cpp runs every flat scheduler differentially
//    against its reference here on randomized arrival/dispatch/expiry
//    sequences — the flat implementations must reproduce these decisions
//    bit for bit;
//  * bench/bench_micro.cpp measures the flat/reference duty-cycle ratio
//    that the perf-smoke CI job tracks.
// Do not "fix" or restructure these; their value is being frozen.
#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>

#include "disk/scheduler.hpp"
#include "sim/stats.hpp"

namespace dpar::disk {
namespace {

class RefNoopScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { q_.push_back(std::move(r)); }

  Decision next(std::uint64_t, sim::Time) override {
    if (q_.empty()) return Decision::idle();
    Request r = std::move(q_.front());
    q_.pop_front();
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return q_.size(); }
  std::string name() const override { return "noop-ref"; }

 private:
  std::deque<Request> q_;
};

/// Sector-sorted service with per-direction expiry FIFOs, like the Linux
/// deadline scheduler. The FIFOs key entries by request id and validate them
/// lazily against `index_` (drop_stale); an entry that survives validation
/// but matches nothing in the sorted queue is a desync and throws — the
/// differential tests exercise exactly this FIFO-desync path.
class RefDeadlineScheduler final : public IoScheduler {
 public:
  RefDeadlineScheduler(sim::Time rd, sim::Time wd) : read_dl_(rd), write_dl_(wd) {}

  void enqueue(Request r, sim::Time now) override {
    const std::uint64_t key = r.id;
    auto& fifo = r.is_write ? write_fifo_ : read_fifo_;
    fifo.emplace_back(now + (r.is_write ? write_dl_ : read_dl_), key);
    sorted_.emplace(r.lba, std::move(r));
    index_[key] = true;
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) return Decision::idle();
    for (auto* fifo : {&read_fifo_, &write_fifo_}) {
      drop_stale(*fifo);
      if (!fifo->empty() && fifo->front().first <= now) {
        const std::uint64_t key = fifo->front().second;
        fifo->pop_front();
        return Decision::dispatch(take_by_id(key));
      }
    }
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();  // wrap like C-SCAN
    Request r = std::move(it->second);
    sorted_.erase(it);
    index_.erase(r.id);
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "deadline-ref"; }

 private:
  using Fifo = std::deque<std::pair<sim::Time, std::uint64_t>>;

  void drop_stale(Fifo& fifo) {
    while (!fifo.empty() && index_.find(fifo.front().second) == index_.end())
      fifo.pop_front();
  }

  Request take_by_id(std::uint64_t key) {
    for (auto it = sorted_.begin(); it != sorted_.end(); ++it) {
      if (it->second.id == key) {
        Request r = std::move(it->second);
        sorted_.erase(it);
        index_.erase(key);
        return r;
      }
    }
    throw std::logic_error("deadline: FIFO entry without a sorted-queue request");
  }

  sim::Time read_dl_, write_dl_;
  std::multimap<std::uint64_t, Request> sorted_;
  Fifo read_fifo_;
  Fifo write_fifo_;
  std::map<std::uint64_t, bool> index_;
};

/// One-directional elevator: serve ascending from the head, wrap to the
/// lowest pending sector at the end of the sweep.
class RefCscanScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { sorted_.emplace(r.lba, std::move(r)); }

  Decision next(std::uint64_t head_lba, sim::Time) override {
    if (sorted_.empty()) return Decision::idle();
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();
    Request r = std::move(it->second);
    sorted_.erase(it);
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "cscan-ref"; }

 private:
  std::multimap<std::uint64_t, Request> sorted_;
};

class RefCfqScheduler final : public IoScheduler {
 public:
  explicit RefCfqScheduler(CfqParams p) : p_(p) {}

  void enqueue(Request r, sim::Time now) override {
    Context& ctx = contexts_[r.context];
    if (ctx.queue.empty() && !ctx.in_rr) {
      rr_.push_back(r.context);
      ctx.in_rr = true;
    }
    if (ctx.last_completion >= 0 && ctx.queue.empty())
      ctx.think_time.add(static_cast<double>(now - ctx.last_completion));
    ctx.queue.emplace(r.lba, std::move(r));
    ++pending_;
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (pending_ == 0 && active_ == kNone) return Decision::idle();

    if (active_ != kNone) {
      Context& ctx = contexts_[active_];
      if (!ctx.queue.empty() && now < slice_end_) return dispatch_from(ctx, head_lba);
      if (ctx.queue.empty() && now < slice_end_ && should_idle(ctx)) {
        const sim::Time deadline = std::min(slice_end_, idle_started_ + p_.slice_idle);
        if (now < deadline) return Decision::wait(deadline);
      }
      expire_active();
    }

    while (!rr_.empty()) {
      const std::uint64_t id = rr_.front();
      rr_.pop_front();
      Context& ctx = contexts_[id];
      ctx.in_rr = false;
      if (ctx.queue.empty()) continue;
      active_ = id;
      slice_end_ = now + p_.slice_sync;
      return dispatch_from(ctx, head_lba);
    }
    return Decision::idle();
  }

  void completed(const Request& r, sim::Time now) override {
    auto it = contexts_.find(r.context);
    if (it == contexts_.end()) return;
    it->second.last_completion = now;
    if (r.context == active_ && it->second.queue.empty()) idle_started_ = now;
  }

  std::size_t pending() const override { return pending_; }
  std::string name() const override { return "cfq-ref"; }

 private:
  static constexpr std::uint64_t kNone = UINT64_MAX;

  struct Context {
    std::multimap<std::uint64_t, Request> queue;  // sector-sorted
    sim::Time last_completion = -1;
    sim::Ewma think_time{0.3};
    bool in_rr = false;
  };

  bool should_idle(const Context& ctx) const {
    if (!p_.think_time_gate) return true;
    if (!ctx.think_time.has_value()) return true;  // optimistic at first
    return ctx.think_time.value() <= static_cast<double>(p_.slice_idle);
  }

  Decision dispatch_from(Context& ctx, std::uint64_t head_lba) {
    auto it = ctx.queue.lower_bound(head_lba);
    if (it == ctx.queue.end()) it = ctx.queue.begin();
    Request r = std::move(it->second);
    ctx.queue.erase(it);
    --pending_;
    return Decision::dispatch(std::move(r));
  }

  void expire_active() {
    if (active_ == kNone) return;
    Context& ctx = contexts_[active_];
    if (!ctx.queue.empty() && !ctx.in_rr) {
      rr_.push_back(active_);
      ctx.in_rr = true;
    }
    active_ = kNone;
  }

  CfqParams p_;
  std::map<std::uint64_t, Context> contexts_;
  std::deque<std::uint64_t> rr_;
  std::uint64_t active_ = kNone;
  sim::Time slice_end_ = 0;
  sim::Time idle_started_ = 0;
  std::size_t pending_ = 0;
};

class RefAnticipatoryScheduler final : public IoScheduler {
 public:
  RefAnticipatoryScheduler(sim::Time antic_window, sim::Time max_wait)
      : window_(antic_window), max_wait_(max_wait) {}

  void enqueue(Request r, sim::Time now) override {
    auto& st = stats_[r.context];
    if (st.last_completion >= 0) {
      st.think_time.add(static_cast<double>(now - st.last_completion));
      const std::uint64_t dist = r.lba > st.last_end ? r.lba - st.last_end
                                                     : st.last_end - r.lba;
      st.seek_dist.add(static_cast<double>(dist));
    }
    sorted_.emplace(r.lba, std::move(r));
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) {
      if (anticipating_ && now < antic_deadline_)
        return Decision::wait(antic_deadline_);
      anticipating_ = false;
      return Decision::idle();
    }
    if (anticipating_ && now < antic_deadline_) {
      auto it = pick(head_lba);
      const std::uint64_t dist = it->second.lba > head_lba
                                     ? it->second.lba - head_lba
                                     : head_lba - it->second.lba;
      if (it->second.context == antic_context_ || dist <= kNearSectors) {
        anticipating_ = false;  // the bet paid off (or a near request showed up)
      } else {
        return Decision::wait(antic_deadline_);
      }
    }
    anticipating_ = false;
    auto it = pick(head_lba);
    Request r = std::move(it->second);
    sorted_.erase(it);
    return Decision::dispatch(std::move(r));
  }

  void completed(const Request& r, sim::Time now) override {
    auto& st = stats_[r.context];
    st.last_completion = now;
    st.last_end = r.end_lba();
    const bool thinky =
        !st.think_time.has_value() ||
        st.think_time.value() <= static_cast<double>(window_);
    const bool local =
        !st.seek_dist.has_value() || st.seek_dist.value() <= kNearSectors * 16;
    if (!r.is_write && thinky && local) {
      anticipating_ = true;
      antic_context_ = r.context;
      antic_deadline_ = now + std::min(window_, max_wait_);
    }
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "anticipatory-ref"; }

 private:
  static constexpr std::uint64_t kNearSectors = 2048;  // ~1 MB

  struct CtxStats {
    sim::Time last_completion = -1;
    std::uint64_t last_end = 0;
    sim::Ewma think_time{0.3};
    sim::Ewma seek_dist{0.3};
  };

  std::multimap<std::uint64_t, Request>::iterator pick(std::uint64_t head_lba) {
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();  // one-directional wrap
    return it;
  }

  sim::Time window_, max_wait_;
  std::multimap<std::uint64_t, Request> sorted_;
  std::map<std::uint64_t, CtxStats> stats_;
  bool anticipating_ = false;
  std::uint64_t antic_context_ = 0;
  sim::Time antic_deadline_ = 0;
};

}  // namespace

std::unique_ptr<IoScheduler> make_reference_noop_scheduler() {
  return std::make_unique<RefNoopScheduler>();
}
std::unique_ptr<IoScheduler> make_reference_deadline_scheduler(sim::Time rd,
                                                               sim::Time wd) {
  return std::make_unique<RefDeadlineScheduler>(rd, wd);
}
std::unique_ptr<IoScheduler> make_reference_cscan_scheduler() {
  return std::make_unique<RefCscanScheduler>();
}
std::unique_ptr<IoScheduler> make_reference_cfq_scheduler(CfqParams p) {
  return std::make_unique<RefCfqScheduler>(p);
}
std::unique_ptr<IoScheduler> make_reference_anticipatory_scheduler(
    sim::Time antic_window, sim::Time max_wait) {
  return std::make_unique<RefAnticipatoryScheduler>(antic_window, max_wait);
}

}  // namespace dpar::disk
