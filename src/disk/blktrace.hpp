// Blktrace-style dispatch recorder.
//
// The paper uses blktrace to show LBN-vs-time scatter plots of the service
// order (Figs 1c, 1d, 6a, 6b); this recorder captures the same stream from
// the simulated device, and the seek-distance summary feeds the EMC locality
// daemon (§IV-B) and Fig 7(b).
#pragma once

#include <cstdint>
#include <vector>

#include "disk/request.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace dpar::disk {

struct TraceEvent {
  sim::Time time = 0;
  std::uint64_t lba = 0;
  std::uint32_t sectors = 0;
  bool is_write = false;
  std::uint64_t context = 0;
  std::uint64_t seek_distance = 0;  ///< |lba - previous head| in sectors
};

class BlkTrace {
 public:
  void record(const TraceEvent& ev) {
    if (keep_events_) events_.push_back(ev);
    seek_slots_.add(ev.time, static_cast<double>(ev.seek_distance));
    total_seek_ += ev.seek_distance;
    ++dispatches_;
  }

  /// Keep the full event list (disable for long runs to save memory).
  void set_keep_events(bool keep) { keep_events_ = keep; }
  void clear() { events_.clear(); total_seek_ = 0; dispatches_ = 0; }

  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events within [t0, t1), for windowed figures.
  std::vector<TraceEvent> window(sim::Time t0, sim::Time t1) const {
    std::vector<TraceEvent> out;
    for (const auto& ev : events_)
      if (ev.time >= t0 && ev.time < t1) out.push_back(ev);
    return out;
  }

  /// Mean seek distance (sectors) in the most recent completed sampling slot;
  /// this is the per-server SeekDist input to EMC.
  double slot_seek_distance(sim::Time now) { return seek_slots_.last_slot_mean(now); }

  double mean_seek_distance() const {
    return dispatches_ ? static_cast<double>(total_seek_) / static_cast<double>(dispatches_)
                       : 0.0;
  }
  std::uint64_t dispatches() const { return dispatches_; }

 private:
  bool keep_events_ = true;
  std::vector<TraceEvent> events_;
  sim::SlotSampler seek_slots_{sim::msec(500)};
  std::uint64_t total_seek_ = 0;
  std::uint64_t dispatches_ = 0;
};

}  // namespace dpar::disk
