// Anticipatory scheduler (Iyer & Druschel, SOSP'01 — the paper's [17]).
//
// One sector-sorted queue plus system-wide anticipation: after completing a
// synchronous request the disk briefly idles, betting that the same process
// will immediately issue a nearby request — solving "deceptive idleness"
// without CFQ's per-context queues. The model keeps per-context think-time
// and locality statistics and waits only when the last-served context's
// history makes a nearby follow-up likely.
//
// Flat layout: the queue is a SortedRunQueue (was std::multimap) and the
// per-context stats live in an open-addressed ContextTable (was std::map).
// sched_reference.cpp keeps the map-based original as the differential
// oracle.
#include <cstdint>
#include <utility>

#include "disk/scheduler.hpp"
#include "disk/sorted_queue.hpp"
#include "sim/stats.hpp"

namespace dpar::disk {
namespace {

class AnticipatoryScheduler final : public IoScheduler {
 public:
  AnticipatoryScheduler(sim::Time antic_window, sim::Time max_wait)
      : window_(antic_window), max_wait_(max_wait) {}

  void enqueue(Request r, sim::Time now) override {
    update_stats(r, now);
    sorted_.insert(std::move(r));
  }

  void enqueue_batch(Request* batch, std::size_t n, sim::Time now) override {
    // Stats depend only on arrival order, not on queue contents, so they can
    // all be folded in before the single batch merge.
    for (std::size_t i = 0; i < n; ++i) update_stats(batch[i], now);
    sorted_.insert_batch(batch, n);
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) {
      if (anticipating_ && now < antic_deadline_)
        return Decision::wait(antic_deadline_);
      anticipating_ = false;
      return Decision::idle();
    }
    // If we are anticipating the last context and the best queued request is
    // far away, keep waiting (up to the deadline) for a near one.
    if (anticipating_ && now < antic_deadline_) {
      const Request& r = sorted_.peek(sorted_.pick(head_lba));
      const std::uint64_t dist = r.lba > head_lba ? r.lba - head_lba
                                                  : head_lba - r.lba;
      if (r.context == antic_context_ || dist <= kNearSectors) {
        anticipating_ = false;  // the bet paid off (or a near request showed up)
      } else {
        return Decision::wait(antic_deadline_);
      }
    }
    anticipating_ = false;
    return Decision::dispatch(sorted_.take(sorted_.pick(head_lba)));
  }

  void completed(const Request& r, sim::Time now) override {
    CtxStats& st = stats_.find_or_insert(r.context);
    st.last_completion = now;
    st.last_end = r.end_lba();
    // Anticipate only sync-looking contexts: short think times and mostly
    // local accesses.
    const bool thinky =
        !st.think_time.has_value() ||
        st.think_time.value() <= static_cast<double>(window_);
    const bool local =
        !st.seek_dist.has_value() || st.seek_dist.value() <= kNearSectors * 16;
    if (!r.is_write && thinky && local) {
      anticipating_ = true;
      antic_context_ = r.context;
      antic_deadline_ = now + std::min(window_, max_wait_);
    }
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "anticipatory"; }

 private:
  static constexpr std::uint64_t kNearSectors = 2048;  // ~1 MB

  struct CtxStats {
    sim::Time last_completion = -1;
    std::uint64_t last_end = 0;
    sim::Ewma think_time{0.3};
    sim::Ewma seek_dist{0.3};
  };

  void update_stats(const Request& r, sim::Time now) {
    CtxStats& st = stats_.find_or_insert(r.context);
    if (st.last_completion >= 0) {
      st.think_time.add(static_cast<double>(now - st.last_completion));
      const std::uint64_t dist = r.lba > st.last_end ? r.lba - st.last_end
                                                     : st.last_end - r.lba;
      st.seek_dist.add(static_cast<double>(dist));
    }
  }

  sim::Time window_, max_wait_;
  SortedRunQueue sorted_;
  ContextTable<CtxStats> stats_;
  bool anticipating_ = false;
  std::uint64_t antic_context_ = 0;
  sim::Time antic_deadline_ = 0;
};

}  // namespace

std::unique_ptr<IoScheduler> make_anticipatory_scheduler(sim::Time antic_window,
                                                         sim::Time max_wait) {
  return std::make_unique<AnticipatoryScheduler>(antic_window, max_wait);
}

}  // namespace dpar::disk
