// Anticipatory scheduler (Iyer & Druschel, SOSP'01 — the paper's [17]).
//
// One sector-sorted queue plus system-wide anticipation: after completing a
// synchronous request the disk briefly idles, betting that the same process
// will immediately issue a nearby request — solving "deceptive idleness"
// without CFQ's per-context queues. The model keeps per-context think-time
// and locality statistics and waits only when the last-served context's
// history makes a nearby follow-up likely.
#include <cstdint>
#include <map>
#include <utility>

#include "disk/scheduler.hpp"
#include "sim/stats.hpp"

namespace dpar::disk {
namespace {

class AnticipatoryScheduler final : public IoScheduler {
 public:
  AnticipatoryScheduler(sim::Time antic_window, sim::Time max_wait)
      : window_(antic_window), max_wait_(max_wait) {}

  void enqueue(Request r, sim::Time now) override {
    auto& st = stats_[r.context];
    if (st.last_completion >= 0) {
      st.think_time.add(static_cast<double>(now - st.last_completion));
      const std::uint64_t dist = r.lba > st.last_end ? r.lba - st.last_end
                                                     : st.last_end - r.lba;
      st.seek_dist.add(static_cast<double>(dist));
    }
    sorted_.emplace(r.lba, std::move(r));
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) {
      if (anticipating_ && now < antic_deadline_)
        return Decision::wait(antic_deadline_);
      anticipating_ = false;
      return Decision::idle();
    }
    // If we are anticipating the last context and the best queued request is
    // far away, keep waiting (up to the deadline) for a near one.
    if (anticipating_ && now < antic_deadline_) {
      auto it = pick(head_lba);
      const std::uint64_t dist = it->second.lba > head_lba
                                     ? it->second.lba - head_lba
                                     : head_lba - it->second.lba;
      if (it->second.context == antic_context_ || dist <= kNearSectors) {
        anticipating_ = false;  // the bet paid off (or a near request showed up)
      } else {
        return Decision::wait(antic_deadline_);
      }
    }
    anticipating_ = false;
    auto it = pick(head_lba);
    Request r = std::move(it->second);
    sorted_.erase(it);
    return Decision::dispatch(std::move(r));
  }

  void completed(const Request& r, sim::Time now) override {
    auto& st = stats_[r.context];
    st.last_completion = now;
    st.last_end = r.end_lba();
    // Anticipate only sync-looking contexts: short think times and mostly
    // local accesses.
    const bool thinky =
        !st.think_time.has_value() ||
        st.think_time.value() <= static_cast<double>(window_);
    const bool local =
        !st.seek_dist.has_value() || st.seek_dist.value() <= kNearSectors * 16;
    if (!r.is_write && thinky && local) {
      anticipating_ = true;
      antic_context_ = r.context;
      antic_deadline_ = now + std::min(window_, max_wait_);
    }
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "anticipatory"; }

 private:
  static constexpr std::uint64_t kNearSectors = 2048;  // ~1 MB

  struct CtxStats {
    sim::Time last_completion = -1;
    std::uint64_t last_end = 0;
    sim::Ewma think_time{0.3};
    sim::Ewma seek_dist{0.3};
  };

  std::multimap<std::uint64_t, Request>::iterator pick(std::uint64_t head_lba) {
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();  // one-directional wrap
    return it;
  }

  sim::Time window_, max_wait_;
  std::multimap<std::uint64_t, Request> sorted_;
  std::map<std::uint64_t, CtxStats> stats_;
  bool anticipating_ = false;
  std::uint64_t antic_context_ = 0;
  sim::Time antic_deadline_ = 0;
};

}  // namespace

std::unique_ptr<IoScheduler> make_anticipatory_scheduler(sim::Time antic_window,
                                                         sim::Time max_wait) {
  return std::make_unique<AnticipatoryScheduler>(antic_window, max_wait);
}

}  // namespace dpar::disk
