#include "disk/device.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "fault/injector.hpp"

namespace dpar::disk {

DiskDevice::DiskDevice(sim::Engine& eng, DiskParams params,
                       std::unique_ptr<IoScheduler> sched)
    : eng_(eng), model_(params), sched_(std::move(sched)) {}

void DiskDevice::submit(Request r) {
  r.arrival = eng_.now();
  const bool was_empty = sched_->pending() == 0;
  sched_->enqueue(std::move(r), eng_.now());
  if (busy_) return;
  // A new arrival interrupts any anticipation wait so the scheduler can
  // reconsider immediately.
  if (wait_event_) {
    eng_.cancel(wait_event_);
    wait_event_ = {};
  }
  const auto& p = model_.params();
  if (plugged_) {
    // Unplug early when a burst has accumulated.
    if (sched_->pending() >= p.plug_threshold) {
      eng_.cancel(plug_event_);
      plug_event_ = {};
      plugged_ = false;
      poll();
    }
    return;
  }
  if (p.plug_delay > 0 && was_empty) {
    // Idle-to-busy edge: plug briefly so the rest of the burst can queue and
    // be sorted together.
    plugged_ = true;
    plug_event_ = eng_.after(p.plug_delay, [this] {
      plugged_ = false;
      plug_event_ = {};
      poll();
    });
    return;
  }
  poll();
}

void DiskDevice::submit_batch(std::vector<Request> batch) {
  // While the device is idle (or plugged) each submit may change dispatch
  // state, so requests go through the scalar path one by one. Once busy_, a
  // submit reduces to arrival-stamp + enqueue (submit() returns before any
  // plug/poll logic) — so the whole tail can be handed to the scheduler in
  // one enqueue_batch call with identical semantics.
  std::size_t i = 0;
  for (; i < batch.size() && !busy_; ++i) submit(std::move(batch[i]));
  if (i == batch.size()) return;
  const sim::Time now = eng_.now();
  for (std::size_t j = i; j < batch.size(); ++j) batch[j].arrival = now;
  sched_->enqueue_batch(batch.data() + i, batch.size() - i, now);
}

void DiskDevice::poll() {
  if (busy_) return;
  wait_event_ = {};
  Decision d = sched_->next(model_.head(), eng_.now());
  switch (d.kind) {
    case Decision::Kind::kIdle:
      return;
    case Decision::Kind::kWaitUntil: {
      // Anticipatory idling: stay put, revisit at the deadline.
      if (d.wait_until <= eng_.now()) return;  // defensive; treat as idle
      wait_event_ = eng_.at(d.wait_until, [this] { poll(); });
      return;
    }
    case Decision::Kind::kDispatch: {
      Request req = std::move(d.request);
      TraceEvent ev;
      ev.time = eng_.now();
      ev.lba = req.lba;
      ev.sectors = req.sectors;
      ev.is_write = req.is_write;
      ev.context = req.context;
      ev.seek_distance = model_.seek_distance(req.lba);
      trace_.record(ev);

      sim::Time t = model_.serve(req.lba, req.sectors);
      fault::Status st = fault::Status::kOk;
      if (injector_) {
        // Even a failing request occupies the drive for its full service time
        // (the head travels and the drive retries internally before giving up).
        const auto v = injector_->disk_verdict(owner_, req.lba, req.sectors);
        st = v.status;
        t += v.stall;
      }
      busy_ = true;
      busy_time_ += t;
      ++served_;
      bytes_ += req.bytes();
      inflight_ = std::move(req);
      inflight_status_ = st;
      eng_.after(t, [this] {
        busy_ = false;
        // Move out first: the completion may re-enter submit()/poll() and
        // dispatch the next request into inflight_.
        Request done_req = std::move(inflight_);
        const fault::Status st = inflight_status_;
        sched_->completed(done_req, eng_.now());
        if (done_req.done) done_req.done(st);
        poll();
      });
      return;
    }
  }
}

Raid0Device::Raid0Device(sim::Engine& eng, DiskParams params,
                         std::unique_ptr<IoScheduler> s0,
                         std::unique_ptr<IoScheduler> s1, std::uint64_t chunk_sectors)
    : eng_(eng),
      d0_(eng, params, std::move(s0)),
      d1_(eng, params, std::move(s1)),
      chunk_sectors_(chunk_sectors) {}

std::uint64_t Raid0Device::capacity_sectors() const {
  return d0_.capacity_sectors() + d1_.capacity_sectors();
}

void Raid0Device::submit(Request r) {
  // Split the logical request into per-chunk pieces, map each chunk to a
  // member disk, and coalesce adjacent pieces that land on the same member.
  struct Piece {
    int member;
    std::uint64_t lba;
    std::uint64_t sectors;
  };
  std::vector<Piece> pieces;
  // Index of the last piece per member, to coalesce member-adjacent chunks
  // even though they alternate in logical order.
  int last_piece[2] = {-1, -1};
  std::uint64_t lba = r.lba;
  std::uint64_t remaining = r.sectors;
  while (remaining > 0) {
    const std::uint64_t chunk = lba / chunk_sectors_;
    const std::uint64_t within = lba % chunk_sectors_;
    const std::uint64_t take = std::min(remaining, chunk_sectors_ - within);
    const int member = static_cast<int>(chunk % 2);
    // Member-local address: chunk index within the member, same offset.
    const std::uint64_t mlba = (chunk / 2) * chunk_sectors_ + within;
    if (last_piece[member] >= 0) {
      Piece& prev = pieces[static_cast<std::size_t>(last_piece[member])];
      if (prev.lba + prev.sectors == mlba) {
        prev.sectors += take;
        lba += take;
        remaining -= take;
        continue;
      }
    }
    last_piece[member] = static_cast<int>(pieces.size());
    pieces.push_back(Piece{member, mlba, take});
    lba += take;
    remaining -= take;
  }

  auto* fan = fault::make_status_fanin(
      pieces.size(), [done = std::move(r.done)](fault::Status st) mutable {
        if (done) done(st);
      });
  for (const Piece& p : pieces) {
    Request sub;
    sub.id = next_id_++;
    sub.lba = p.lba;
    sub.sectors = static_cast<std::uint32_t>(p.sectors);
    sub.is_write = r.is_write;
    sub.context = r.context;
    sub.done = [fan](fault::Status st) { fan->complete(st); };
    member(p.member).submit(std::move(sub));
  }
}

}  // namespace dpar::disk
