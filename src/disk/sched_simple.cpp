// NOOP (FIFO), DEADLINE and C-SCAN elevator schedulers.
//
// These are the baselines against which the CFQ model and DualPar's
// application-level ordering are compared in the ablation benches.
//
// All three run on the flat structures in sorted_queue.hpp; the original
// multimap implementations live on in sched_reference.cpp as differential
// oracles (tests/test_sched_model.cpp) and must make identical decisions.
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "disk/scheduler.hpp"
#include "disk/sorted_queue.hpp"

namespace dpar::disk {
namespace {

class NoopScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { q_.push_back(slab_.park(std::move(r))); }

  Decision next(std::uint64_t, sim::Time) override {
    if (q_.empty()) return Decision::idle();
    return Decision::dispatch(slab_.take(q_.pop_front()));
  }

  std::size_t pending() const override { return q_.size(); }
  std::string name() const override { return "noop"; }

 private:
  RequestSlab slab_;
  SlotFifo<std::uint32_t> q_;
};

/// Sector-sorted service with per-direction expiry FIFOs, like the Linux
/// deadline scheduler (reads 500 ms, writes 5 s by default; the read FIFO is
/// checked first, so an expired read pre-empts the sweep even while older
/// writes are still within deadline).
///
/// FIFO entries carry the request's slab slot plus the slot generation at
/// enqueue time; a dispatched request bumps its slot's generation, so stale
/// entries are detected by a single compare instead of the reference's
/// id-index map (and, unlike ids, a reused slot can never resurrect an old
/// FIFO entry).
class DeadlineScheduler final : public IoScheduler {
 public:
  DeadlineScheduler(sim::Time rd, sim::Time wd) : read_dl_(rd), write_dl_(wd) {}

  void enqueue(Request r, sim::Time now) override {
    const bool is_write = r.is_write;
    const std::uint32_t slot = sorted_.insert(std::move(r));
    file_expiry(slot, is_write, now);
  }

  void enqueue_batch(Request* batch, std::size_t n, sim::Time now) override {
    slots_tmp_.resize(n);
    // FIFO order is arrival order, which insert_batch preserves in slots_tmp_.
    sorted_.insert_batch(batch, n, slots_tmp_.data());
    for (std::size_t i = 0; i < n; ++i)
      file_expiry(slots_tmp_[i], sorted_.slot_request(slots_tmp_[i]).is_write, now);
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) return Decision::idle();
    for (auto* fifo : {&read_fifo_, &write_fifo_}) {
      drop_stale(*fifo);
      if (!fifo->empty() && fifo->front().expiry <= now) {
        const std::uint32_t slot = fifo->front().slot;
        fifo->pop_front();
        const std::size_t index = sorted_.index_of_slot(slot);
        if (index == SortedRunQueue::npos)
          throw std::logic_error("deadline: FIFO entry without a sorted-queue request");
        return Decision::dispatch(sorted_.take(index));
      }
    }
    return Decision::dispatch(sorted_.take(sorted_.pick(head_lba)));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "deadline"; }

 private:
  struct FifoEntry {
    sim::Time expiry;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  void file_expiry(std::uint32_t slot, bool is_write, sim::Time now) {
    auto& fifo = is_write ? write_fifo_ : read_fifo_;
    fifo.push_back(FifoEntry{now + (is_write ? write_dl_ : read_dl_), slot,
                             sorted_.generation(slot)});
  }

  void drop_stale(SlotFifo<FifoEntry>& fifo) {
    while (!fifo.empty() && sorted_.generation(fifo.front().slot) != fifo.front().gen)
      fifo.pop_front();
  }

  sim::Time read_dl_, write_dl_;
  SortedRunQueue sorted_;
  SlotFifo<FifoEntry> read_fifo_;
  SlotFifo<FifoEntry> write_fifo_;
  std::vector<std::uint32_t> slots_tmp_;
};

/// One-directional elevator: serve ascending from the head, wrap to the
/// lowest pending sector at the end of the sweep.
class CscanScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { sorted_.insert(std::move(r)); }

  void enqueue_batch(Request* batch, std::size_t n, sim::Time) override {
    sorted_.insert_batch(batch, n);
  }

  Decision next(std::uint64_t head_lba, sim::Time) override {
    if (sorted_.empty()) return Decision::idle();
    return Decision::dispatch(sorted_.take(sorted_.pick(head_lba)));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "cscan"; }

 private:
  SortedRunQueue sorted_;
};

}  // namespace

std::unique_ptr<IoScheduler> make_noop_scheduler() {
  return std::make_unique<NoopScheduler>();
}
std::unique_ptr<IoScheduler> make_deadline_scheduler(sim::Time rd, sim::Time wd) {
  return std::make_unique<DeadlineScheduler>(rd, wd);
}
std::unique_ptr<IoScheduler> make_cscan_scheduler() {
  return std::make_unique<CscanScheduler>();
}

std::unique_ptr<IoScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoop: return make_noop_scheduler();
    case SchedulerKind::kDeadline: return make_deadline_scheduler();
    case SchedulerKind::kCscan: return make_cscan_scheduler();
    case SchedulerKind::kCfq: return make_cfq_scheduler();
    case SchedulerKind::kAnticipatory: return make_anticipatory_scheduler();
  }
  return make_cfq_scheduler();
}

}  // namespace dpar::disk
