// NOOP (FIFO), DEADLINE and C-SCAN elevator schedulers.
//
// These are the baselines against which the CFQ model and DualPar's
// application-level ordering are compared in the ablation benches.
#include <deque>
#include <stdexcept>
#include <map>
#include <utility>

#include "disk/scheduler.hpp"

namespace dpar::disk {
namespace {

class NoopScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { q_.push_back(std::move(r)); }

  Decision next(std::uint64_t, sim::Time) override {
    if (q_.empty()) return Decision::idle();
    Request r = std::move(q_.front());
    q_.pop_front();
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return q_.size(); }
  std::string name() const override { return "noop"; }

 private:
  std::deque<Request> q_;
};

/// Sector-sorted service with per-direction expiry FIFOs, like the Linux
/// deadline scheduler (reads 500 ms, writes 5 s by default; the read FIFO is
/// checked first, so an expired read pre-empts the sweep even while older
/// writes are still within deadline).
class DeadlineScheduler final : public IoScheduler {
 public:
  DeadlineScheduler(sim::Time rd, sim::Time wd) : read_dl_(rd), write_dl_(wd) {}

  void enqueue(Request r, sim::Time now) override {
    const std::uint64_t key = r.id;
    auto& fifo = r.is_write ? write_fifo_ : read_fifo_;
    fifo.emplace_back(now + (r.is_write ? write_dl_ : read_dl_), key);
    sorted_.emplace(r.lba, std::move(r));
    index_[key] = true;
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (sorted_.empty()) return Decision::idle();
    for (auto* fifo : {&read_fifo_, &write_fifo_}) {
      drop_stale(*fifo);
      if (!fifo->empty() && fifo->front().first <= now) {
        const std::uint64_t key = fifo->front().second;
        fifo->pop_front();
        return Decision::dispatch(take_by_id(key));
      }
    }
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();  // wrap like C-SCAN
    Request r = std::move(it->second);
    sorted_.erase(it);
    index_.erase(r.id);
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "deadline"; }

 private:
  using Fifo = std::deque<std::pair<sim::Time, std::uint64_t>>;

  void drop_stale(Fifo& fifo) {
    while (!fifo.empty() && index_.find(fifo.front().second) == index_.end())
      fifo.pop_front();
  }

  Request take_by_id(std::uint64_t key) {
    for (auto it = sorted_.begin(); it != sorted_.end(); ++it) {
      if (it->second.id == key) {
        Request r = std::move(it->second);
        sorted_.erase(it);
        index_.erase(key);
        return r;
      }
    }
    throw std::logic_error("deadline: FIFO entry without a sorted-queue request");
  }

  sim::Time read_dl_, write_dl_;
  std::multimap<std::uint64_t, Request> sorted_;
  Fifo read_fifo_;
  Fifo write_fifo_;
  std::map<std::uint64_t, bool> index_;
};

/// One-directional elevator: serve ascending from the head, wrap to the
/// lowest pending sector at the end of the sweep.
class CscanScheduler final : public IoScheduler {
 public:
  void enqueue(Request r, sim::Time) override { sorted_.emplace(r.lba, std::move(r)); }

  Decision next(std::uint64_t head_lba, sim::Time) override {
    if (sorted_.empty()) return Decision::idle();
    auto it = sorted_.lower_bound(head_lba);
    if (it == sorted_.end()) it = sorted_.begin();
    Request r = std::move(it->second);
    sorted_.erase(it);
    return Decision::dispatch(std::move(r));
  }

  std::size_t pending() const override { return sorted_.size(); }
  std::string name() const override { return "cscan"; }

 private:
  std::multimap<std::uint64_t, Request> sorted_;
};

}  // namespace

std::unique_ptr<IoScheduler> make_noop_scheduler() {
  return std::make_unique<NoopScheduler>();
}
std::unique_ptr<IoScheduler> make_deadline_scheduler(sim::Time rd, sim::Time wd) {
  return std::make_unique<DeadlineScheduler>(rd, wd);
}
std::unique_ptr<IoScheduler> make_cscan_scheduler() {
  return std::make_unique<CscanScheduler>();
}

std::unique_ptr<IoScheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoop: return make_noop_scheduler();
    case SchedulerKind::kDeadline: return make_deadline_scheduler();
    case SchedulerKind::kCscan: return make_cscan_scheduler();
    case SchedulerKind::kCfq: return make_cfq_scheduler();
    case SchedulerKind::kAnticipatory: return make_anticipatory_scheduler();
  }
  return make_cfq_scheduler();
}

}  // namespace dpar::disk
