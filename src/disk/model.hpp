// Positional service-time model of a rotating disk.
//
// Service time = command overhead + seek + rotational latency + media
// transfer. Seek time follows the classic settle + (stroke - settle) *
// sqrt(distance/capacity) curve; rotational latency is the expected half
// rotation, charged only when the head had to reposition. Requests that
// continue exactly (or nearly) where the previous one ended stream at the
// sustained media rate — this order-of-magnitude gap between sequential and
// random service is the effect DualPar exploits.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "disk/request.hpp"
#include "sim/time.hpp"

namespace dpar::disk {

struct DiskParams {
  std::uint64_t capacity_bytes = 500ull << 30;  ///< 500 GB
  double settle_ms = 0.6;                       ///< track-to-track seek
  double full_stroke_ms = 9.0;                  ///< end-to-end seek
  double rpm = 7200.0;
  double sustained_mb_s = 110.0;                ///< media transfer rate
  /// Gaps up to this many sectors still count as streaming (read-ahead /
  /// skip-over window of the drive).
  std::uint64_t near_seq_sectors = 64;
  sim::Time command_overhead = sim::usec(60);   ///< per-command controller cost
  /// Block-layer queue plugging: when the device goes from idle to busy,
  /// dispatching is briefly delayed so a burst of arrivals can accumulate
  /// and be sorted together. Off by default — Linux plugging is per-task and
  /// does not batch across submitters the way a device-level plug would;
  /// the ablation bench measures what such batching would buy.
  sim::Time plug_delay = 0;
  /// Unplug early once this many requests are queued.
  std::size_t plug_threshold = 32;

  std::uint64_t capacity_sectors() const { return capacity_bytes / kSectorBytes; }
  double bytes_per_sec() const { return sustained_mb_s * 1e6; }
  sim::Time full_rotation() const { return sim::from_seconds(60.0 / rpm); }
};

/// A 2012-class SATA SSD expressed in the same service model: no mechanical
/// positioning to speak of (tiny uniform access latency regardless of
/// address or direction) and a much higher transfer rate. Lets experiments
/// ask how much of DualPar's benefit is disk-era (answer in
/// bench_ssd_era: most of it).
inline DiskParams ssd_params() {
  DiskParams p;
  p.capacity_bytes = 256ull << 30;
  p.settle_ms = 0.04;        // flash read latency stands in for "seek"
  p.full_stroke_ms = 0.06;   // ~address-independent
  p.rpm = 1'000'000.0;       // rotation ~0: no rotational latency
  p.sustained_mb_s = 350.0;
  p.near_seq_sectors = 64;
  p.command_overhead = sim::usec(25);
  return p;
}

class DiskModel {
 public:
  explicit DiskModel(DiskParams p = {}) : p_(p) {}

  const DiskParams& params() const { return p_; }
  std::uint64_t head() const { return head_; }

  /// Absolute head distance to `lba` in sectors.
  std::uint64_t seek_distance(std::uint64_t lba) const {
    return lba > head_ ? lba - head_ : head_ - lba;
  }

  /// Positioning cost to reach an arbitrary sector `dist` away: settle +
  /// stroke-scaled seek + expected (half-rotation) rotational latency.
  sim::Time reposition_time(std::uint64_t dist) const {
    const double frac =
        static_cast<double>(dist) / static_cast<double>(p_.capacity_sectors());
    const double seek_ms =
        p_.settle_ms + (p_.full_stroke_ms - p_.settle_ms) * std::sqrt(frac);
    return sim::from_seconds(seek_ms / 1e3) + p_.full_rotation() / 2;
  }

  /// Service time for a request starting at the current head position;
  /// does not move the head.
  ///
  /// Forward positioning is cheap: a small gap streams, and a medium gap is
  /// passed over at angular speed (the platter keeps spinning under the
  /// head), costing at most a real repositioning. A *backward* jump, however
  /// short, pays the full repositioning: the sector has already passed under
  /// the head.
  sim::Time service_time(std::uint64_t lba, std::uint32_t sectors) const {
    const std::uint64_t dist = seek_distance(lba);
    const sim::Time transfer =
        sim::transfer_time(std::uint64_t{sectors} * kSectorBytes, p_.bytes_per_sec());
    if (lba >= head_) {
      if (dist <= p_.near_seq_sectors) {
        // Streaming: command overhead + media rate (plus the skipped gap).
        const sim::Time gap =
            sim::transfer_time(dist * kSectorBytes, p_.bytes_per_sec());
        return p_.command_overhead + gap + transfer;
      }
      const sim::Time pass_over =
          sim::transfer_time(dist * kSectorBytes, p_.bytes_per_sec());
      return p_.command_overhead + std::min(pass_over, reposition_time(dist)) + transfer;
    }
    return p_.command_overhead + reposition_time(dist) + transfer;
  }

  /// Serve the request: returns its service time and moves the head.
  sim::Time serve(std::uint64_t lba, std::uint32_t sectors) {
    const sim::Time t = service_time(lba, sectors);
    head_ = lba + sectors;
    return t;
  }

 private:
  DiskParams p_;
  std::uint64_t head_ = 0;
};

}  // namespace dpar::disk
