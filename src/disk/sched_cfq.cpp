// CFQ (completely fair queueing) disk scheduler model.
//
// The behaviours that matter for the paper's argument (§II, Figs 1c/1d):
//  * one sector-sorted queue per I/O context, served round-robin with a time
//    slice, so interleaved streams from many processes cause head movement on
//    every context switch;
//  * anticipatory idling: after a context's queue drains mid-slice the disk
//    waits slice_idle for the next request from the same context — but only
//    when the context's observed think time makes that worthwhile (Linux
//    CFQ's ttime heuristic), so batch-synchronous MPI processes whose next
//    request is a full barrier round away get no idling;
//  * within a context, requests are served in ascending-sector elevator order
//    from the current head, so a single deep pre-sorted queue (DualPar's
//    prefetch batch) streams near-sequentially.
//
// Flat layout: per-context state lives in an open-addressed ContextTable
// (was std::map) and each context's queue is a SortedRunQueue (was
// std::multimap). sched_reference.cpp keeps the map-based original as the
// differential oracle.
#include <cstdint>
#include <utility>

#include "disk/scheduler.hpp"
#include "disk/sorted_queue.hpp"
#include "sim/stats.hpp"

namespace dpar::disk {
namespace {

class CfqScheduler final : public IoScheduler {
 public:
  explicit CfqScheduler(CfqParams p) : p_(p) {}

  void enqueue(Request r, sim::Time now) override {
    Context& ctx = contexts_.find_or_insert(r.context);
    if (ctx.queue.empty() && !ctx.in_rr) {
      rr_.push_back(r.context);
      ctx.in_rr = true;
    }
    // Think time: gap between this context's last completion and the next
    // request from it.
    if (ctx.last_completion >= 0 && ctx.queue.empty())
      ctx.think_time.add(static_cast<double>(now - ctx.last_completion));
    ctx.queue.insert(std::move(r));
    ++pending_;
  }

  Decision next(std::uint64_t head_lba, sim::Time now) override {
    if (pending_ == 0 && active_ == kNone) return Decision::idle();

    if (active_ != kNone) {
      Context& ctx = *contexts_.find(active_);
      if (!ctx.queue.empty() && now < slice_end_) return dispatch_from(ctx, head_lba);
      if (ctx.queue.empty() && now < slice_end_ && should_idle(ctx)) {
        const sim::Time deadline = std::min(slice_end_, idle_started_ + p_.slice_idle);
        if (now < deadline) return Decision::wait(deadline);
      }
      expire_active();
    }

    // Pick the next context with work, round-robin.
    while (!rr_.empty()) {
      const std::uint64_t id = rr_.pop_front();
      Context& ctx = *contexts_.find(id);
      ctx.in_rr = false;
      if (ctx.queue.empty()) continue;
      active_ = id;
      slice_end_ = now + p_.slice_sync;
      return dispatch_from(ctx, head_lba);
    }
    return Decision::idle();
  }

  void completed(const Request& r, sim::Time now) override {
    Context* ctx = contexts_.find(r.context);
    if (ctx == nullptr) return;
    ctx->last_completion = now;
    // The anticipation window starts when the context goes idle with slice
    // time remaining.
    if (r.context == active_ && ctx->queue.empty()) idle_started_ = now;
  }

  std::size_t pending() const override { return pending_; }
  std::string name() const override { return "cfq"; }

 private:
  static constexpr std::uint64_t kNone = UINT64_MAX;

  struct Context {
    SortedRunQueue queue;  // sector-sorted
    sim::Time last_completion = -1;
    sim::Ewma think_time{0.3};
    bool in_rr = false;
  };

  bool should_idle(const Context& ctx) const {
    if (!p_.think_time_gate) return true;
    if (!ctx.think_time.has_value()) return true;  // optimistic at first
    return ctx.think_time.value() <= static_cast<double>(p_.slice_idle);
  }

  Decision dispatch_from(Context& ctx, std::uint64_t head_lba) {
    // Elevator within the context: first request at or above the head,
    // else lowest (one-directional sweep with wrap).
    --pending_;
    return Decision::dispatch(ctx.queue.take(ctx.queue.pick(head_lba)));
  }

  void expire_active() {
    Context& ctx = *contexts_.find(active_);
    if (!ctx.queue.empty() && !ctx.in_rr) {
      rr_.push_back(active_);
      ctx.in_rr = true;
    }
    active_ = kNone;
  }

  CfqParams p_;
  ContextTable<Context> contexts_;
  SlotFifo<std::uint64_t> rr_;
  std::uint64_t active_ = kNone;
  sim::Time slice_end_ = 0;
  sim::Time idle_started_ = 0;
  std::size_t pending_ = 0;
};

}  // namespace

std::unique_ptr<IoScheduler> make_cfq_scheduler(CfqParams p) {
  return std::make_unique<CfqScheduler>(p);
}

}  // namespace dpar::disk
