// Flat containers backing the I/O scheduler rewrites.
//
// The schedulers used to keep requests in node-based `std::multimap`s (one
// heap node per queued request, pointer-chasing on every lower_bound) and
// per-context state in `std::map`s. The structures here replace them:
//
//  * RequestSlab — chunked stable storage for queued Requests. A Request
//    carries a move-only completion callback and is 128 bytes; parking it in
//    a chunk that never reallocates means each request is moved exactly twice
//    (in at enqueue, out at dispatch), with slots addressed by dense u32 ids.
//  * SortedRunQueue — a sector-sorted run of 16-byte POD keys over the slab.
//    Inserts append (O(1)); the tail is sorted and merged into the run lazily
//    at the next lookup, so a burst of b arrivals between dispatches costs
//    one O(b log b + n) merge instead of b O(n) memmoves — the same
//    appended-run treatment RangeSet got in PR 1, generalized. Dispatch
//    tombstones the key and compacts when half the run is dead. Lookups use
//    the branchless lower bound, plus an O(1)-validated hint for the
//    elevator's sequential sweep.
//  * SlotFifo — a grow-only POD ring buffer (NOOP's slot FIFO, deadline
//    expiry FIFOs, CFQ's round-robin list).
//  * ContextTable — an open-addressed linear-probe table for per-context
//    scheduler state, replacing `std::map<uint64_t, Context>`. Contexts are
//    never erased (matching the map-based originals), so no tombstones.
//
// Equivalence contract with the multimap originals: a multimap iterates equal
// sector keys in insertion order and lower_bound lands on the first of them.
// SortedRunQueue keys sort by (lba, seq) with seq monotonically increasing,
// so the first live key with `lba >= head` is the same request the multimap
// would yield. The differential tests in tests/test_sched_model.cpp hold the
// flat schedulers to this bit-for-bit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "disk/request.hpp"

namespace dpar::disk {

/// Chunked stable slab: parked requests never move (chunks are never
/// reallocated), so the 128-byte Request — completion callback included — is
/// moved exactly twice in its queued life. Freed slots are recycled LIFO;
/// a per-slot generation counter lets stale references (deadline expiry FIFO
/// entries) detect recycling with one compare.
class RequestSlab {
 public:
  std::uint32_t park(Request r) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = count_;
      if ((count_ >> kChunkBits) == chunks_.size())
        chunks_.push_back(std::make_unique<Chunk>());
      ++count_;
      gens_.push_back(0);
    }
    at(slot) = std::move(r);
    return slot;
  }

  Request take(std::uint32_t slot) {
    ++gens_[slot];
    free_.push_back(slot);
    return std::move(at(slot));
  }

  Request& at(std::uint32_t slot) {
    return chunks_[slot >> kChunkBits]->slots[slot & kChunkMask];
  }
  const Request& at(std::uint32_t slot) const {
    return chunks_[slot >> kChunkBits]->slots[slot & kChunkMask];
  }

  std::uint32_t generation(std::uint32_t slot) const { return gens_[slot]; }

 private:
  static constexpr std::uint32_t kChunkBits = 5;  // 32 requests = 4 KB chunks
  static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;
  struct Chunk {
    Request slots[1u << kChunkBits];
  };

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> gens_;
  std::vector<std::uint32_t> free_;
  std::uint32_t count_ = 0;
};

/// Sector-sorted request queue: lazily sorted POD keys over a stable slab.
///
/// Indices returned by pick()/index_of_slot() address the key array including
/// tombstones and are invalidated by any other mutating call; schedulers use
/// them immediately (pick-then-take within one decision).
class SortedRunQueue {
 public:
  struct Key {
    std::uint64_t lba;
    std::uint32_t seq;   ///< insertion order; tie-break for equal sectors
    std::uint32_t slot;  ///< slab slot, or kDead for a tombstone
  };

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  /// Park `r` in a slab slot and append its key (merged lazily). Returns the
  /// slot id (stable until the request is taken).
  std::uint32_t insert(Request r) {
    const std::uint64_t lba = r.lba;
    const std::uint32_t slot = slab_.park(std::move(r));
    push_key(Key{lba, next_seq_++, slot});
    ++live_;
    return slot;
  }

  /// Insert a whole decomposed batch; the n appended keys share the one lazy
  /// merge. When `slots_out` is non-null it receives the n slot ids in batch
  /// order (the deadline scheduler files them into its expiry FIFOs).
  void insert_batch(Request* batch, std::size_t n, std::uint32_t* slots_out = nullptr) {
    keys_.reserve(keys_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t slot = insert(std::move(batch[i]));
      if (slots_out != nullptr) slots_out[i] = slot;
    }
  }

  /// Index of the request the elevator serves from `head_lba`: first live key
  /// at or above the head, wrapping to the lowest sector when none (C-SCAN).
  /// Must not be called on an empty queue.
  std::size_t pick(std::uint64_t head_lba) {
    ensure_sorted();
    std::size_t i;
    // Sequential-sweep hint: after serving index k the elevator almost always
    // continues at k+1. A sorted run lets us validate the guess in O(1)
    // (predecessor below the head, successor at or above it) instead of
    // re-running the binary search on every dispatch.
    if (hint_ < keys_.size() && keys_[hint_].lba >= head_lba &&
        (hint_ == 0 || keys_[hint_ - 1].lba < head_lba)) {
      i = hint_;
    } else {
      i = lower_bound_pos(head_lba);
    }
    while (i < keys_.size() && keys_[i].slot == kDead) ++i;
    if (i == keys_.size()) {
      i = 0;
      while (keys_[i].slot == kDead) ++i;
    }
    return i;
  }

  /// First position with `lba >= x` (branchless binary search; may land on a
  /// tombstone), `size of key array` if none.
  std::size_t lower_bound_lba(std::uint64_t x) {
    ensure_sorted();
    return lower_bound_pos(x);
  }

  const Request& peek(std::size_t index) const { return slab_.at(keys_[index].slot); }

  /// Remove and return the request at key position `index` (must be live).
  /// O(1): the key becomes a tombstone; the run is compacted once half of it
  /// is dead.
  Request take(std::size_t index) {
    const std::uint32_t slot = keys_[index].slot;
    keys_[index].slot = kDead;
    hint_ = index + 1;
    ++dead_;
    --live_;
    if (dead_ > live_) compact();
    return slab_.take(slot);
  }

  /// Not-found sentinel for index_of_slot. (Key positions are not live
  /// counts: the key array includes tombstones, so size() is no bound.)
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Key position of a parked slot (binary search by its sector, then a scan
  /// over the equal-sector run). npos if not queued.
  std::size_t index_of_slot(std::uint32_t slot) {
    ensure_sorted();
    const std::uint64_t lba = slab_.at(slot).lba;
    for (std::size_t i = lower_bound_pos(lba); i < keys_.size(); ++i) {
      if (keys_[i].slot == slot) return i;
      if (keys_[i].slot != kDead && keys_[i].lba != lba) break;
    }
    return npos;
  }

  const Request& slot_request(std::uint32_t slot) const { return slab_.at(slot); }

  /// Bumped every time a slot is released; lets an expiry FIFO detect that
  /// the request it points at was already dispatched (or the slot reused).
  std::uint32_t generation(std::uint32_t slot) const { return slab_.generation(slot); }

 private:
  static constexpr std::uint32_t kDead = 0xffffffffu;

  static bool before(const Key& a, const Key& b) {
    return a.lba < b.lba || (a.lba == b.lba && a.seq < b.seq);
  }

  void push_key(Key k) {
    // In-order arrivals (decomposed list I/O, per-process sequential runs)
    // keep the run fully sorted and never pay for a merge.
    if (sorted_ == keys_.size() && (keys_.empty() || !before(k, keys_.back())))
      ++sorted_;
    keys_.push_back(k);
  }

  /// Sort the appended tail and merge it into the run. One O(b log b + n)
  /// pass per arrival burst, instead of b O(n) in-place insertions.
  void ensure_sorted() {
    if (sorted_ == keys_.size()) return;
    const auto mid = keys_.begin() + static_cast<std::ptrdiff_t>(sorted_);
    std::sort(mid, keys_.end(), before);
    std::inplace_merge(keys_.begin(), mid, keys_.end(), before);
    sorted_ = keys_.size();
    hint_ = npos;
  }

  void compact() {
    ensure_sorted();
    keys_.erase(std::remove_if(keys_.begin(), keys_.end(),
                               [](const Key& k) { return k.slot == kDead; }),
                keys_.end());
    sorted_ = keys_.size();
    dead_ = 0;
    hint_ = npos;
    // An empty queue can restart the tie-break counter: seq only orders keys
    // that are queued simultaneously, so u32 overflows only if 4G requests
    // pass through without the queue ever draining.
    if (keys_.empty()) next_seq_ = 0;
  }

  std::size_t lower_bound_pos(std::uint64_t x) const {
    std::size_t base = 0;
    std::size_t n = keys_.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      base = (keys_[base + half - 1].lba < x) ? base + half : base;
      n -= half;
    }
    if (n == 1 && keys_[base].lba < x) ++base;
    return base;
  }

  std::vector<Key> keys_;  // sorted by (lba, seq) up to sorted_, then appends
  RequestSlab slab_;
  std::size_t sorted_ = 0;  // keys_[0..sorted_) is sorted
  std::size_t hint_ = npos;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
  std::uint32_t next_seq_ = 0;
};

/// Grow-only ring buffer (deadline expiry FIFOs, CFQ's round-robin list,
/// NOOP's slot FIFO). Meant for small trivially-movable records; bulky
/// payloads belong in a RequestSlab with their slot ids ringed here.
template <class T>
class SlotFifo {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(v);
    ++size_;
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  T pop_front() {
    T v = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --size_;
    return v;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i)
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Open-addressed linear-probe map from context id to per-context scheduler
/// state. Insert-only (schedulers never forget a context), no iteration —
/// lookup order therefore cannot leak into simulated results.
template <class V>
class ContextTable {
 public:
  /// Find the context's state, default-constructing it on first sight.
  /// The reference is invalidated by the next find_or_insert (rehash).
  V& find_or_insert(std::uint64_t key) {
    if (entries_.empty() || (used_ + 1) * 10 >= entries_.size() * 7) grow();
    std::size_t i = probe(key);
    if (!entries_[i].used) {
      entries_[i].used = true;
      entries_[i].key = key;
      ++used_;
    }
    return entries_[i].value;
  }

  V* find(std::uint64_t key) {
    if (entries_.empty()) return nullptr;
    const std::size_t i = probe(key);
    return entries_[i].used ? &entries_[i].value : nullptr;
  }

  std::size_t size() const { return used_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    bool used = false;
    V value{};
  };

  static std::uint64_t mix(std::uint64_t k) {
    // splitmix64 finalizer: context ids are small sequential integers.
    k += 0x9e3779b97f4a7c15ull;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ull;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebull;
    return k ^ (k >> 31);
  }

  /// Slot holding `key`, or the first free slot of its probe chain.
  std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (entries_[i].used && entries_[i].key != key) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<Entry> old = std::move(entries_);
    entries_.clear();
    entries_.resize(old.empty() ? 16 : old.size() * 2);
    for (Entry& e : old) {
      if (!e.used) continue;
      const std::size_t i = probe_free(e.key);
      entries_[i].used = true;
      entries_[i].key = e.key;
      entries_[i].value = std::move(e.value);
    }
  }

  std::size_t probe_free(std::uint64_t key) const {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (entries_[i].used) i = (i + 1) & mask;
    return i;
  }

  std::vector<Entry> entries_;
  std::size_t used_ = 0;
};

}  // namespace dpar::disk
