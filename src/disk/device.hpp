// Disk device: couples the positional disk model, an I/O scheduler and the
// event engine; serves one request at a time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "disk/blktrace.hpp"
#include "disk/model.hpp"
#include "disk/scheduler.hpp"
#include "sim/engine.hpp"

namespace dpar::fault {
class FaultInjector;
}

namespace dpar::disk {

/// Common interface so RAID compositions and plain disks interchange.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;
  virtual void submit(Request r) = 0;
  /// Submit a whole decomposed list-I/O batch. Semantically identical to
  /// calling submit() on each request in order (completion order and timing
  /// are unchanged); devices may override to hand the scheduler the bulk of
  /// the batch in one call instead of N queue round-trips.
  virtual void submit_batch(std::vector<Request> batch) {
    for (Request& r : batch) submit(std::move(r));
  }
  virtual std::uint64_t capacity_sectors() const = 0;
  /// Arm fault injection for this device. `owner` identifies the data server
  /// the device belongs to (used to match per-server bad-sector ranges). A
  /// null injector (the default) keeps the dispatch path fault-free.
  virtual void set_fault_injector(fault::FaultInjector* inj, std::uint32_t owner) {
    (void)inj;
    (void)owner;
  }
};

class DiskDevice final : public BlockDevice {
 public:
  DiskDevice(sim::Engine& eng, DiskParams params, std::unique_ptr<IoScheduler> sched);

  void submit(Request r) override;
  void submit_batch(std::vector<Request> batch) override;
  std::uint64_t capacity_sectors() const override { return model_.params().capacity_sectors(); }
  void set_fault_injector(fault::FaultInjector* inj, std::uint32_t owner) override {
    injector_ = inj;
    owner_ = owner;
  }

  BlkTrace& trace() { return trace_; }
  const DiskModel& model() const { return model_; }
  IoScheduler& scheduler() { return *sched_; }

  /// Total time the disk spent servicing requests (utilization numerator).
  sim::Time busy_time() const { return busy_time_; }
  std::uint64_t requests_served() const { return served_; }
  std::uint64_t bytes_served() const { return bytes_; }

 private:
  void poll();

  sim::Engine& eng_;
  DiskModel model_;
  std::unique_ptr<IoScheduler> sched_;
  BlkTrace trace_;
  /// The one request in service while busy_; parked here so the completion
  /// event captures only `this` instead of spilling the request (and its
  /// callback) into a heap-allocated closure.
  Request inflight_;
  /// Outcome of the in-service request, decided at dispatch time.
  fault::Status inflight_status_ = fault::Status::kOk;
  fault::FaultInjector* injector_ = nullptr;
  std::uint32_t owner_ = 0;
  bool busy_ = false;
  bool plugged_ = false;
  sim::EventId plug_event_{};
  sim::EventId wait_event_{};
  sim::Time busy_time_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t bytes_ = 0;
};

/// RAID-0 pair (the paper's per-server hardware RAID of two drives): stripes
/// requests over two member disks at a fixed chunk size and completes when
/// all member requests finish.
class Raid0Device final : public BlockDevice {
 public:
  Raid0Device(sim::Engine& eng, DiskParams params, std::unique_ptr<IoScheduler> s0,
              std::unique_ptr<IoScheduler> s1, std::uint64_t chunk_sectors = 128);

  void submit(Request r) override;
  std::uint64_t capacity_sectors() const override;
  void set_fault_injector(fault::FaultInjector* inj, std::uint32_t owner) override {
    d0_.set_fault_injector(inj, owner);
    d1_.set_fault_injector(inj, owner);
  }

  DiskDevice& member(int i) { return i == 0 ? d0_ : d1_; }

 private:
  sim::Engine& eng_;
  DiskDevice d0_, d1_;
  std::uint64_t chunk_sectors_;
  std::uint64_t next_id_ = 1;
};

}  // namespace dpar::disk
