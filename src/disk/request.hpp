// Block-layer request type shared by the disk model, the I/O schedulers and
// the blktrace recorder.
#pragma once

#include <cstdint>

#include "fault/status.hpp"
#include "sim/func.hpp"
#include "sim/time.hpp"

namespace dpar::disk {

/// Completion callback of a block request: receives the request's outcome
/// (always fault::Status::kOk unless fault injection is active).
using CompletionFn = sim::UniqueFn<void(fault::Status)>;

inline constexpr std::uint64_t kSectorBytes = 512;

constexpr std::uint64_t bytes_to_sectors(std::uint64_t bytes) {
  return (bytes + kSectorBytes - 1) / kSectorBytes;
}

/// One block request as seen by a disk scheduler.
struct Request {
  std::uint64_t id = 0;
  std::uint64_t lba = 0;        ///< start sector
  std::uint32_t sectors = 0;    ///< length in sectors
  bool is_write = false;
  /// I/O context the request belongs to (originating process or daemon);
  /// CFQ keeps one queue per context.
  std::uint64_t context = 0;
  sim::Time arrival = 0;
  /// Completion continuation. Move-only: a Request has exactly one owner at a
  /// time (issuer → scheduler queue → device in-flight slot), and the callback
  /// rides along without ever being copied or re-allocated.
  CompletionFn done;

  std::uint64_t end_lba() const { return lba + sectors; }
  std::uint64_t bytes() const { return std::uint64_t{sectors} * kSectorBytes; }
};

}  // namespace dpar::disk
