// Compute-node CPU scheduler.
//
// Each node has a fixed number of cores. Compute bursts are non-preemptive
// tasks queued at two priorities: kNormal for application processes and
// kGhost for DualPar's pre-execution processes, which only ever use spare
// cycles (§III-B: "speculative execution uses only spare CPU cycles; the
// normal process always takes higher scheduling priority").
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/func.hpp"
#include "sim/time.hpp"

namespace dpar::cluster {

enum class CpuPriority { kNormal, kGhost };

class ComputeNode {
 public:
  ComputeNode(sim::Engine& eng, std::uint32_t node_id, std::uint32_t cores)
      : eng_(eng), node_id_(node_id), cores_(cores) {}

  ComputeNode(const ComputeNode&) = delete;
  ComputeNode& operator=(const ComputeNode&) = delete;

  /// Run a compute burst of `duration`; `done` fires when it finishes.
  void run(sim::Time duration, CpuPriority prio, sim::UniqueFunction done);

  /// Failure-domain (rack) the node lives in. Purely descriptive here — the
  /// replica placement layer consumes it so rack-aware policies spread copies
  /// across racks. Assigned by the testbed at assembly (node id mod racks).
  void set_rack(std::uint32_t rack) { rack_ = rack; }
  std::uint32_t rack() const { return rack_; }

  std::uint32_t id() const { return node_id_; }
  std::uint32_t cores() const { return cores_; }
  std::uint32_t busy_cores() const { return busy_; }
  std::size_t queued_tasks() const { return normal_q_.size() + ghost_q_.size(); }
  sim::Time normal_cpu_time() const { return normal_time_; }
  sim::Time ghost_cpu_time() const { return ghost_time_; }

 private:
  struct Task {
    sim::Time duration;
    CpuPriority prio;
    sim::UniqueFunction done;
  };

  void dispatch();
  void start(Task task);

  sim::Engine& eng_;
  std::uint32_t node_id_;
  std::uint32_t cores_;
  std::uint32_t rack_ = 0;
  std::uint32_t busy_ = 0;
  std::deque<Task> normal_q_;
  std::deque<Task> ghost_q_;
  /// Continuations of in-service bursts (one slot per busy core, free-listed);
  /// the engine lambda captures {this, slot} instead of spilling a 72-byte
  /// callback to the heap.
  std::vector<sim::UniqueFunction> running_;
  std::vector<std::uint32_t> free_slots_;
  sim::Time normal_time_ = 0;
  sim::Time ghost_time_ = 0;
};

}  // namespace dpar::cluster
