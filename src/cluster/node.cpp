#include "cluster/node.hpp"

#include <utility>

namespace dpar::cluster {

void ComputeNode::run(sim::Time duration, CpuPriority prio, std::function<void()> done) {
  Task task{duration, prio, std::move(done)};
  if (prio == CpuPriority::kNormal) {
    normal_q_.push_back(std::move(task));
  } else {
    ghost_q_.push_back(std::move(task));
  }
  dispatch();
}

void ComputeNode::dispatch() {
  while (busy_ < cores_) {
    if (!normal_q_.empty()) {
      Task t = std::move(normal_q_.front());
      normal_q_.pop_front();
      start(std::move(t));
    } else if (!ghost_q_.empty()) {
      Task t = std::move(ghost_q_.front());
      ghost_q_.pop_front();
      start(std::move(t));
    } else {
      return;
    }
  }
}

void ComputeNode::start(Task task) {
  ++busy_;
  if (task.prio == CpuPriority::kNormal) {
    normal_time_ += task.duration;
  } else {
    ghost_time_ += task.duration;
  }
  eng_.after(task.duration, [this, done = std::move(task.done)] {
    --busy_;
    done();
    dispatch();
  });
}

}  // namespace dpar::cluster
