#include "cluster/node.hpp"

#include <utility>

namespace dpar::cluster {

void ComputeNode::run(sim::Time duration, CpuPriority prio,
                      sim::UniqueFunction done) {
  Task task{duration, prio, std::move(done)};
  if (prio == CpuPriority::kNormal) {
    normal_q_.push_back(std::move(task));
  } else {
    ghost_q_.push_back(std::move(task));
  }
  dispatch();
}

void ComputeNode::dispatch() {
  while (busy_ < cores_) {
    if (!normal_q_.empty()) {
      Task t = std::move(normal_q_.front());
      normal_q_.pop_front();
      start(std::move(t));
    } else if (!ghost_q_.empty()) {
      Task t = std::move(ghost_q_.front());
      ghost_q_.pop_front();
      start(std::move(t));
    } else {
      return;
    }
  }
}

void ComputeNode::start(Task task) {
  ++busy_;
  if (task.prio == CpuPriority::kNormal) {
    normal_time_ += task.duration;
  } else {
    ghost_time_ += task.duration;
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    running_[slot] = std::move(task.done);
  } else {
    slot = static_cast<std::uint32_t>(running_.size());
    running_.push_back(std::move(task.done));
  }
  eng_.after(task.duration, [this, slot] {
    --busy_;
    sim::UniqueFunction done = std::move(running_[slot]);
    free_slots_.push_back(slot);
    done();
    dispatch();
  });
}

}  // namespace dpar::cluster
