#include "metrics/csv.hpp"

#include <cstdio>
#include <memory>

namespace dpar::metrics {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

bool write_series_csv(const std::string& path, const sim::TimeSeries& series,
                      const std::string& value_header) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fprintf(f.get(), "time_s,%s\n", value_header.c_str());
  for (const auto& [t, v] : series.points)
    std::fprintf(f.get(), "%.6f,%.6f\n", sim::to_seconds(t), v);
  return std::ferror(f.get()) == 0;
}

bool write_trace_csv(const std::string& path,
                     const std::vector<disk::TraceEvent>& events) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (!f) return false;
  std::fprintf(f.get(), "time_s,lba,sectors,rw,context,seek_distance\n");
  for (const auto& ev : events)
    std::fprintf(f.get(), "%.6f,%llu,%u,%c,%llu,%llu\n", sim::to_seconds(ev.time),
                 static_cast<unsigned long long>(ev.lba), ev.sectors,
                 ev.is_write ? 'W' : 'R',
                 static_cast<unsigned long long>(ev.context),
                 static_cast<unsigned long long>(ev.seek_distance));
  return std::ferror(f.get()) == 0;
}

}  // namespace dpar::metrics
