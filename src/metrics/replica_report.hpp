// Durability/recovery reporting: turns a run's replica::DurabilityReport
// into human-readable and machine-diffable forms, the replication-layer
// sibling of fault_report.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "replica/manager.hpp"

namespace dpar::metrics {

/// All replication counters as (name, value) rows in a fixed order — stable
/// across runs so reports diff cleanly. under_replicated_chunk_seconds is
/// scaled to integer milliseconds so the row stays exactly diffable.
std::vector<std::pair<std::string, std::uint64_t>> replica_counter_rows(
    const replica::DurabilityReport& r);

/// Multi-line "  name: value" report (zeros kept: a zero lost_chunks row is
/// the whole point).
std::string format_replica_report(const replica::DurabilityReport& r);

/// One-line summary of the durability numbers that matter at a glance.
std::string replica_summary_line(const replica::DurabilityReport& r);

}  // namespace dpar::metrics
