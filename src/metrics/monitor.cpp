#include "metrics/monitor.hpp"

namespace dpar::metrics {

SystemMonitor::SystemMonitor(sim::Engine& eng, std::vector<pfs::DataServer*> servers,
                             std::function<bool()> alive, sim::Time slot)
    : eng_(eng), servers_(std::move(servers)), alive_(std::move(alive)), slot_(slot) {}

void SystemMonitor::start() {
  // Sampling reads every server's byte counters and server 0's trace, so on
  // a partitioned engine the tick lives on the exclusive lane (lane 0 — a
  // plain schedule — when unpartitioned).
  eng_.after_in(eng_.exclusive_lane(), slot_, [this] {
    sample();
    if (alive_()) start();
  });
}

void SystemMonitor::sample() {
  std::uint64_t bytes = 0;
  for (pfs::DataServer* s : servers_) bytes += s->bytes_read() + s->bytes_written();
  const double mbs =
      static_cast<double>(bytes - prev_bytes_) / sim::to_seconds(slot_) / 1e6;
  prev_bytes_ = bytes;
  throughput_.add(eng_.now(), mbs);

  if (!servers_.empty()) {
    const auto& tr = servers_[0]->trace();
    // Mean seek distance over the dispatches of the last slot.
    const std::uint64_t d = tr.dispatches();
    const double total = tr.mean_seek_distance() * static_cast<double>(d);
    const double delta_seek = total - static_cast<double>(prev_seek_total_);
    const double delta_n = static_cast<double>(d - prev_dispatches_);
    seek_.add(eng_.now(), delta_n > 0 ? delta_seek / delta_n : 0.0);
    prev_dispatches_ = d;
    prev_seek_total_ = static_cast<std::uint64_t>(total);
  }
}

double series_mean(const sim::TimeSeries& s, sim::Time t0, sim::Time t1) {
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const auto& [t, v] : s.points) {
    if (t >= t0 && t < t1) {
      sum += v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace dpar::metrics
