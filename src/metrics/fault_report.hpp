// Fault-ledger reporting: turns a run's fault::Counters into human-readable
// and machine-readable forms for benches and the experiment harness.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "fault/injector.hpp"

namespace dpar::metrics {

/// All counters as (name, value) rows, in a fixed layer-grouped order —
/// stable across runs so reports diff cleanly.
std::vector<std::pair<std::string, std::uint64_t>> fault_counter_rows(
    const fault::Counters& c);

/// Multi-line "  name: value" report; lines with zero values are kept (a zero
/// is information when faults were expected).
std::string format_fault_report(const fault::Counters& c);

/// One-line summary of the counters that matter at a glance.
std::string fault_summary_line(const fault::Counters& c);

}  // namespace dpar::metrics
