#include "metrics/fault_report.hpp"

#include <sstream>

namespace dpar::metrics {

std::vector<std::pair<std::string, std::uint64_t>> fault_counter_rows(
    const fault::Counters& c) {
  return {
      {"disk_media_errors", c.disk_media_errors},
      {"disk_bad_sector_hits", c.disk_bad_sector_hits},
      {"disk_stalls", c.disk_stalls},
      {"net_dropped", c.net_dropped},
      {"net_partition_drops", c.net_partition_drops},
      {"net_delayed", c.net_delayed},
      {"server_crashes", c.server_crashes},
      {"server_restarts", c.server_restarts},
      {"server_refused_requests", c.server_refused_requests},
      {"server_lost_completions", c.server_lost_completions},
      {"server_stalls", c.server_stalls},
      {"client_ops_started", c.client_ops_started},
      {"client_ops_finished", c.client_ops_finished},
      {"client_timeouts", c.client_timeouts},
      {"client_retries", c.client_retries},
      {"client_recoveries", c.client_recoveries},
      {"client_failures", c.client_failures},
      {"client_permanent_failures", c.client_permanent_failures},
      {"client_stale_replies", c.client_stale_replies},
      {"driver_io_errors", c.driver_io_errors},
      {"dualpar_aborted_batches", c.dualpar_aborted_batches},
      {"cache_invalidated_bytes", c.cache_invalidated_bytes},
      {"emc_degraded_entries", c.emc_degraded_entries},
      {"emc_degraded_exits", c.emc_degraded_exits},
  };
}

std::string format_fault_report(const fault::Counters& c) {
  std::ostringstream os;
  for (const auto& [name, value] : fault_counter_rows(c))
    os << "  " << name << ": " << value << "\n";
  return os.str();
}

std::string fault_summary_line(const fault::Counters& c) {
  std::ostringstream os;
  os << "faults: disk=" << c.disk_media_errors << " drops=" << c.net_dropped
     << " crashes=" << c.server_crashes << " timeouts=" << c.client_timeouts
     << " retries=" << c.client_retries << " failures=" << c.client_failures
     << " degraded=" << c.emc_degraded_entries;
  return os.str();
}

}  // namespace dpar::metrics
