#include "metrics/perf.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>
#define DPAR_PERF_HAVE_FLOCK 1
#endif

namespace dpar::metrics {
namespace {

// File shape (whitespace exact; one bench section per line so a line-level
// merge suffices):
//   {
//     "schema": "dpar-bench-perf-v1",
//     "benches": {
//       "bench_x": {...},
//       "bench_y": {...}
//     }
//   }
constexpr const char* kSchemaLine = "  \"schema\": \"dpar-bench-perf-v1\",";

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string render_section(const std::vector<PerfEntry>& entries,
                           double suite_wall_s, unsigned jobs) {
  std::uint64_t events = 0;
  double busy_s = 0;
  std::ostringstream out;
  out << "{\"wall_s\": " << format_double(suite_wall_s) << ", \"jobs\": " << jobs
      << ", \"experiments\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PerfEntry& e = entries[i];
    events += e.events;
    busy_s += e.wall_s;
    if (i) out << ", ";
    out << "{\"label\": \"" << json_escape(e.label) << "\", \"value\": "
        << format_double(e.value) << ", \"events\": " << e.events
        << ", \"wall_s\": " << format_double(e.wall_s) << "}";
  }
  out << "], \"events\": " << events << ", \"busy_s\": " << format_double(busy_s)
      << ", \"events_per_sec\": "
      << format_double(busy_s > 0 ? static_cast<double>(events) / busy_s : 0)
      << "}";
  return out.str();
}

/// Pull existing `"name": {...}` bench lines out of a previously written file.
std::map<std::string, std::string> read_sections(const std::string& path) {
  std::map<std::string, std::string> sections;
  std::ifstream in(path);
  if (!in) return sections;
  std::string line;
  while (std::getline(in, line)) {
    // Bench lines are indented 4 spaces and start with a quoted name.
    if (line.size() < 8 || line.compare(0, 5, "    \"") != 0) continue;
    const std::size_t name_end = line.find('"', 5);
    if (name_end == std::string::npos) continue;
    std::size_t body = line.find('{', name_end);
    if (body == std::string::npos) continue;
    std::string payload = line.substr(body);
    if (!payload.empty() && payload.back() == ',') payload.pop_back();
    sections[line.substr(5, name_end - 5)] = payload;
  }
  return sections;
}

/// Serializes concurrent writers of one report file via flock(2) on a
/// sidecar `<path>.lock`, removed again by the last writer out so a clean
/// run leaves no stray lock file next to the report. Removal makes
/// acquisition racy (another writer can hold an fd to a lock file that just
/// got unlinked), so acquisition re-checks identity after locking: the lock
/// only counts when the locked inode is still what `<path>.lock` names.
/// Best-effort: when the lock cannot be taken (or the platform has no flock)
/// the atomic rename below still prevents torn files — concurrent merges may
/// then lose a section, the pre-lock behaviour.
class FileLock {
 public:
  explicit FileLock(const std::string& path) {
#ifdef DPAR_PERF_HAVE_FLOCK
    lock_path_ = path + ".lock";
    // Bounded retry: each round loses only to a holder that unlinked the
    // lock between our open and flock, so contention this deep is vanishing.
    for (int attempt = 0; attempt < 16; ++attempt) {
      fd_ = ::open(lock_path_.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
      if (fd_ < 0) return;
      if (::flock(fd_, LOCK_EX) != 0) return;  // degrade to lock-free mode
      struct stat held{}, named{};
      if (::fstat(fd_, &held) == 0 && ::stat(lock_path_.c_str(), &named) == 0 &&
          held.st_dev == named.st_dev && held.st_ino == named.st_ino)
        return;  // we hold the lock file the path still names
      // The holder unlinked it after we opened: retry on the fresh file.
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
      fd_ = -1;
    }
#else
    (void)path;
#endif
  }
  ~FileLock() {
#ifdef DPAR_PERF_HAVE_FLOCK
    if (fd_ >= 0) {
      // Unlink while still holding the exclusive lock: a waiter blocked on
      // this inode will acquire, notice the name is gone (identity check
      // above), and retry on whatever file the next opener creates.
      ::unlink(lock_path_.c_str());
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
  std::string lock_path_;
};

std::string tmp_path_for(const std::string& path) {
#ifdef DPAR_PERF_HAVE_FLOCK
  return path + ".tmp." + std::to_string(::getpid());
#else
  return path + ".tmp";
#endif
}

}  // namespace

bool write_bench_perf_json(const std::string& path, const std::string& bench_name,
                           const std::vector<PerfEntry>& entries,
                           double suite_wall_s, unsigned jobs) {
  // Read-merge-write under an exclusive lock, publishing via atomic rename:
  // concurrent DPAR_JOBS runs of different benches each keep the other's
  // sections, and a crashed writer can at worst leave a stale .tmp behind,
  // never a truncated report.
  FileLock lock(path);
  std::map<std::string, std::string> sections = read_sections(path);
  sections[bench_name] = render_section(entries, suite_wall_s, jobs);
  const std::string tmp = tmp_path_for(path);
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << "{\n" << kSchemaLine << "\n  \"benches\": {\n";
    std::size_t i = 0;
    for (const auto& [name, payload] : sections) {
      out << "    \"" << name << "\": " << payload;
      if (++i < sections.size()) out << ",";
      out << "\n";
    }
    out << "  }\n}\n";
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace dpar::metrics
