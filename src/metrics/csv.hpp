// CSV export of experiment artefacts: time series (throughput, seek
// distances) and blktrace dispatch streams, for external plotting.
#pragma once

#include <string>
#include <vector>

#include "disk/blktrace.hpp"
#include "sim/stats.hpp"

namespace dpar::metrics {

/// Write "time_s,value" rows. Returns false on I/O failure.
bool write_series_csv(const std::string& path, const sim::TimeSeries& series,
                      const std::string& value_header = "value");

/// Write "time_s,lba,sectors,rw,context,seek_distance" rows.
bool write_trace_csv(const std::string& path,
                     const std::vector<disk::TraceEvent>& events);

}  // namespace dpar::metrics
