// Perf self-accounting for the bench suite: allocation-free counters a hot
// loop can bump, and a mergeable machine-readable JSON report
// (BENCH_sim_core.json) so the simulator's perf trajectory is tracked
// run-over-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dpar::metrics {

/// Plain-integer perf counters — no allocation, no atomics; each experiment
/// owns its engine, so accumulation happens single-threaded at report time.
struct PerfCounters {
  std::uint64_t events = 0;       ///< engine events fired
  std::uint64_t experiments = 0;  ///< experiments accumulated
  double busy_s = 0;              ///< summed per-experiment wall seconds

  void note(std::uint64_t ev, double wall_s) {
    events += ev;
    busy_s += wall_s;
    ++experiments;
  }
  double events_per_sec() const { return busy_s > 0 ? static_cast<double>(events) / busy_s : 0; }
};

/// One experiment row of the JSON report.
struct PerfEntry {
  std::string label;
  double value = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
};

/// Merge `bench_name`'s section into the perf JSON at `path`, preserving the
/// sections other bench binaries wrote. The file keeps one line per bench
/// (see perf.cpp for the exact shape), so the merge is a line-level
/// read-modify-write and never needs a general JSON parser. The merge runs
/// under an exclusive flock on `<path>.lock` and publishes via write-to-temp
/// + atomic rename, so concurrent bench processes neither clobber each
/// other's sections nor expose a torn file.
/// `suite_wall_s` is start-to-finish wall time; `jobs` the thread count.
/// Returns false on I/O failure.
bool write_bench_perf_json(const std::string& path, const std::string& bench_name,
                           const std::vector<PerfEntry>& entries,
                           double suite_wall_s, unsigned jobs);

}  // namespace dpar::metrics
