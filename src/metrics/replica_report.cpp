#include "metrics/replica_report.hpp"

#include <cmath>
#include <sstream>

namespace dpar::metrics {

std::vector<std::pair<std::string, std::uint64_t>> replica_counter_rows(
    const replica::DurabilityReport& r) {
  const replica::Counters& c = r.counters;
  return {
      {"writes_replicated", c.writes_replicated},
      {"write_copy_shards", c.write_copy_shards},
      {"chain_forwards", c.chain_forwards},
      {"copy_write_failures", c.copy_write_failures},
      {"degraded_reads", c.degraded_reads},
      {"failover_shards", c.failover_shards},
      {"failover_latency_ns", c.failover_latency_ns},
      {"out_of_replica_reads", c.out_of_replica_reads},
      {"chunks_invalidated", c.chunks_invalidated},
      {"repair_ops_issued", c.repair_ops_issued},
      {"repair_ops_completed", c.repair_ops_completed},
      {"repair_ops_failed", c.repair_ops_failed},
      {"repair_bytes_copied", c.repair_bytes_copied},
      {"repair_blocked_permanent", c.repair_blocked_permanent},
      {"chunks_unrepairable", c.chunks_unrepairable},
      {"total_chunks", r.total_chunks},
      {"total_copies", r.total_copies},
      {"under_replicated_now", r.under_replicated_now},
      {"invalid_copies_now", r.invalid_copies_now},
      {"lost_chunks", r.lost_chunks},
      {"under_replicated_chunk_ms",
       static_cast<std::uint64_t>(
           std::llround(r.under_replicated_chunk_seconds * 1e3))},
  };
}

std::string format_replica_report(const replica::DurabilityReport& r) {
  std::ostringstream os;
  for (const auto& [name, value] : replica_counter_rows(r))
    os << "  " << name << ": " << value << "\n";
  return os.str();
}

std::string replica_summary_line(const replica::DurabilityReport& r) {
  std::ostringstream os;
  os << "replicas: degraded_reads=" << r.counters.degraded_reads
     << " failover=" << r.counters.failover_shards
     << " repaired=" << r.counters.repair_ops_completed << "/"
     << r.counters.repair_ops_issued
     << " repair_mb=" << r.counters.repair_bytes_copied / 1000000
     << " under_now=" << r.under_replicated_now
     << " lost=" << r.lost_chunks;
  return os.str();
}

}  // namespace dpar::metrics
