// System-level measurement: periodic sampling of aggregate server throughput
// and per-server seek distance — the data behind Figs 7(a) and 7(b).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pfs/server.hpp"
#include "sim/engine.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/stats.hpp"

namespace dpar::metrics {

class SystemMonitor {
 public:
  /// Samples while `alive()` returns true (typically "any job unfinished"),
  /// so the event queue can drain when the experiment completes.
  SystemMonitor(sim::Engine& eng, std::vector<pfs::DataServer*> servers,
                std::function<bool()> alive, sim::Time slot = sim::secs(1));

  DPAR_EXCLUSIVE_LANE void start();

  /// Aggregate server-side throughput per slot (MB/s).
  const sim::TimeSeries& throughput_series() const { return throughput_; }
  /// Mean dispatch seek distance (sectors) on server 0 per slot.
  const sim::TimeSeries& seek_series() const { return seek_; }

 private:
  /// One sampling step; runs only as an exclusive-lane event (see start).
  DPAR_EXCLUSIVE_LANE void sample();

  sim::Engine& eng_;
  std::vector<pfs::DataServer*> servers_;
  std::function<bool()> alive_;
  sim::Time slot_;
  // Sampling state: touched only by the exclusive-lane sample() event.
  DPAR_EXCLUSIVE_LANE std::uint64_t prev_bytes_ = 0;
  DPAR_EXCLUSIVE_LANE std::uint64_t prev_dispatches_ = 0;
  DPAR_EXCLUSIVE_LANE std::uint64_t prev_seek_total_ = 0;
  DPAR_EXCLUSIVE_LANE sim::TimeSeries throughput_;
  DPAR_EXCLUSIVE_LANE sim::TimeSeries seek_;
};

/// Mean of a series' values within [t0, t1); 0 when empty.
double series_mean(const sim::TimeSeries& s, sim::Time t0, sim::Time t1);

}  // namespace dpar::metrics
