#include "dualpar/driver.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "dualpar/crm.hpp"
#include "sim/fanin.hpp"

namespace dpar::dualpar {

DualParDriver::DualParDriver(mpiio::IoEnv env, cache::GlobalCache& cache, Emc& emc,
                             Params params)
    : VanillaDriver(env), cache_(cache), emc_(emc), params_(params) {}

void DualParDriver::on_raw_status(fault::Status st) {
  // Fault-free runs never reach the EMC feedback path (the EWMA would churn
  // for nothing); with injection armed, every delegated vanilla transfer
  // votes so EMC can observe recovery while degraded.
  if (env_.fs.fault_injector() == nullptr) return;
  note_batch_status(st);
}

void DualParDriver::note_batch_status(fault::Status st) {
  if (fault::ok(st)) {
    emc_.report_io_ok();
    return;
  }
  ++stats_.io_errors;
  emc_.report_io_error();
}

DualParDriver::JobState& DualParDriver::state_for(mpi::Job& job) {
  const std::uint32_t id = job.id();
  if (id >= jobs_.size()) jobs_.resize(id + 1);
  auto& slot = jobs_[id];
  if (!slot) {
    slot = std::make_unique<JobState>();
    slot->crm_context = 1'000'000 + std::uint64_t{id} * 1000;
  }
  return *slot;
}

void DualParDriver::io(mpi::Process& proc, const mpi::IoCall& call,
                       sim::UniqueFunction done) {
  if (env_.observer)
    env_.observer->observe(proc.job().id(), call.file, call.segments,
                           env_.fs.engine().now());

  const Mode mode = emc_.mode(proc.job().id());
  if (mode == Mode::kNormal) {
    if (!call.is_write) {
      bool covered = true;
      for (const auto& s : call.segments)
        covered = covered && cache_.covers(call.file, s);
      if (covered && !call.segments.empty()) {
        serve_from_cache(proc, call, std::move(done));
        return;
      }
    } else {
      // Write-through: anything dirty in the cache for these ranges is now
      // superseded by the data going straight to the servers.
      for (const auto& s : call.segments) cache_.clear_dirty(call.file, s);
    }
    raw_io(proc, call, std::move(done));  // already observed above
    return;
  }

  if (call.is_write) {
    write_path(proc, call, std::move(done));
  } else {
    read_path(proc, call, std::move(done));
  }
}

void DualParDriver::serve_from_cache(mpi::Process& proc, const mpi::IoCall& call,
                                     sim::UniqueFunction done) {
  stats_.cache_hit_bytes += call.total_bytes();
  for (const auto& s : call.segments) cache_.reference(call.file, s);
  if (call.segments.empty()) {
    // Zero-segment completion bounces through the caller's own lane; DualPar
    // jobs never split onto per-node lanes, so this cannot cross an LP.
    // dpar-lint: allow(pdes-lane-channel)
    env_.fs.engine().after(0, std::move(done));
    return;
  }
  auto* fan = sim::make_fanin(call.segments.size(), std::move(done));
  for (const auto& s : call.segments) {
    cache_.transfer(call.file, s, proc.node().id(), /*to_cache=*/false,
                    [fan] { fan->complete(); });
  }
}

void DualParDriver::read_path(mpi::Process& proc, const mpi::IoCall& call,
                              sim::UniqueFunction done) {
  bool covered = !call.segments.empty();
  for (const auto& s : call.segments) covered = covered && cache_.covers(call.file, s);
  if (covered) {
    serve_from_cache(proc, call, std::move(done));
    return;
  }

  // Miss: suspend the process (PEC) and fork its ghost.
  mpi::Job& job = proc.job();
  JobState& st = state_for(job);
  proc.set_suspended(true);
  st.pending.push_back(Pending{&proc, call, std::move(done), /*write_hold=*/false});

  if (st.ghosts.find(proc.global_id()) == st.ghosts.end()) {
    ++stats_.ghost_forks;
    auto ghost = std::make_unique<GhostRunner>(
        env_.fs.engine(), proc, params_.cache_quota,
        [this, &job] { maybe_start_cycle(job); });
    GhostRunner* g = ghost.get();
    st.ghosts.emplace(proc.global_id(), std::move(ghost));
    arm_deadline(job, proc);
    g->start(call);
  }
  maybe_start_cycle(job);
}

void DualParDriver::write_path(mpi::Process& proc, const mpi::IoCall& call,
                               sim::UniqueFunction done) {
  mpi::Job& job = proc.job();
  JobState& st = state_for(job);
  st.files_written.insert(call.file);
  std::uint64_t bytes = 0;
  for (const auto& s : call.segments) {
    // Dirty chunks live on the writer's node when the writer owns a
    // substantial share of the chunk (local put, flush from there). Finely
    // interleaved writes — many ranks per chunk — keep round-robin homes so
    // no single NIC becomes the sink for everyone's data.
    const net::NodeId hint = (s.length * 4 >= cache_.params().chunk_bytes)
                                 ? proc.node().id()
                                 : cache::kAutoHome;
    cache_.write(call.file, s, proc.global_id(), hint);
    bytes += s.length;
  }
  st.dirty_bytes[proc.global_id()] += bytes;

  auto* fan = sim::make_fanin(
      std::max<std::size_t>(call.segments.size(), 1),
      [this, &proc, &job, done = std::move(done)]() mutable {
        JobState& jst = state_for(job);
        if (jst.dirty_bytes[proc.global_id()] >= params_.cache_quota) {
          // Cache full for this process: hold it until the write-back cycle.
          proc.set_suspended(true);
          jst.pending.push_back(
              Pending{&proc, {}, std::move(done), /*write_hold=*/true});
          maybe_start_cycle(job);
        } else {
          done();
        }
      });
  if (call.segments.empty()) {
    // Same-lane bounce (see serve_from_cache): no cross-LP hop possible.
    // dpar-lint: allow(pdes-lane-channel)
    env_.fs.engine().after(0, [fan] { fan->complete(); });
    return;
  }
  for (const auto& s : call.segments) {
    cache_.transfer(call.file, s, proc.node().id(), /*to_cache=*/true,
                    [fan] { fan->complete(); });
  }
}

void DualParDriver::on_barrier_enter(mpi::Process& proc) {
  maybe_start_cycle(proc.job());
}

void DualParDriver::on_process_end(mpi::Process& proc) {
  mpi::Job& job = proc.job();
  maybe_start_cycle(job);
  if (job.finished()) final_flush(job);
}

void DualParDriver::arm_deadline(mpi::Job& job, mpi::Process& proc) {
  JobState& st = state_for(job);
  if (st.deadline) return;
  // Expected time to fill the quota at the process's recent I/O throughput
  // (§IV-C), scaled by the slack factor and clamped.
  double bw = proc.recent_io_bandwidth();
  if (bw < 1e6) bw = 1e6;  // cold start: assume 1 MB/s
  sim::Time t = sim::from_seconds(static_cast<double>(params_.cache_quota) / bw *
                                  params_.preexec_deadline_slack);
  t = std::clamp(t, params_.preexec_deadline_min, params_.preexec_deadline_max);
  // The pre-execution deadline timer arms and fires in the lane running
  // the DualPar scheduler; DualPar jobs are never lane-split.
  // dpar-lint: allow(pdes-lane-channel)
  st.deadline = env_.fs.engine().after(t, [this, &job] {
    JobState& jst = state_for(job);
    jst.deadline = {};
    ++stats_.deadline_expiries;
    for (auto& [id, g] : jst.ghosts) g->stop();
    maybe_start_cycle(job);
  });
}

void DualParDriver::maybe_start_cycle(mpi::Job& job) {
  JobState& st = state_for(job);
  if (st.cycle_active || st.pending.empty()) return;
  if (!job.all_parked()) return;
  // Processes parked at a barrier never miss, but their future reads belong
  // in the batch too ("when the pre-execution of every process is paused");
  // fork their ghosts from the current program position now.
  for (std::uint32_t i = 0; i < job.nprocs(); ++i) {
    mpi::Process& p = job.process(i);
    if (p.state() != mpi::ProcState::kAtBarrier) continue;
    if (st.ghosts.find(p.global_id()) != st.ghosts.end()) continue;
    ++stats_.ghost_forks;
    auto ghost = std::make_unique<GhostRunner>(
        env_.fs.engine(), p, params_.cache_quota,
        [this, &job] { maybe_start_cycle(job); });
    GhostRunner* g = ghost.get();
    st.ghosts.emplace(p.global_id(), std::move(ghost));
    arm_deadline(job, p);
    g->start();
    // start() can recurse into maybe_start_cycle and begin the cycle; bail
    // out if that happened.
    if (st.cycle_active) return;
  }
  for (const auto& [id, g] : st.ghosts)
    if (!g->paused()) return;
  start_cycle(job);
}

void DualParDriver::start_cycle(mpi::Job& job) {
  JobState& st = state_for(job);
  st.cycle_active = true;
  ++stats_.cycles;
  if (st.deadline) {
    env_.fs.engine().cancel(st.deadline);
    st.deadline = {};
  }

  // Mis-prefetch evaluation for the previous round ("the fraction of
  // prefetched but not used data in a cache when the next pre-execution
  // begins", §IV-C).
  if (st.prev_prefetch_bytes > 0) {
    const std::uint64_t unused = cache_.unused_prefetched_bytes(st.prev_chunks);
    emc_.report_misprefetch(job.id(), static_cast<double>(unused) /
                                          static_cast<double>(st.prev_prefetch_bytes));
    st.prev_chunks.clear();
    st.prev_prefetch_bytes = 0;
  }
  // Recycle the previous round's clean chunks (the quota is per cycle).
  for (std::uint32_t i = 0; i < job.nprocs(); ++i)
    cache_.drop_clean(job.process(i).global_id());
  cache_.drop_clean(st.crm_context);

  run_writeback(job, [this, &job] {
    run_prefetch(job, [this, &job] { resume_all(job); });
  });
}

namespace {

/// Issue `segments` of `file` as one batch: pieces are dispatched from the
/// compute node that is (or will become) each chunk's cache home (CRM runs
/// on every node), so payloads cross the network once; all pieces share one
/// I/O context so the disk schedulers see a single deep queue.
void issue_batch(mpiio::IoEnv& env, cache::GlobalCache& cache, pfs::FileId file,
                 const std::vector<pfs::Segment>& segments, bool is_write,
                 std::uint64_t context,
                 const std::map<std::uint64_t, net::NodeId>* intended_homes,
                 sim::UniqueFn<void(fault::Status)> done) {
  std::map<net::NodeId, std::vector<pfs::Segment>> per_home;
  const std::uint64_t chunk = cache.params().chunk_bytes;
  for (const auto& seg : segments) {
    std::uint64_t off = seg.offset, rem = seg.length;
    while (rem > 0) {
      const std::uint64_t index = off / chunk;
      const std::uint64_t take = std::min(rem, chunk - off % chunk);
      net::NodeId home = cache.placed_home(cache::ChunkKey{file, index});
      if (intended_homes) {
        auto it = intended_homes->find(index);
        if (it != intended_homes->end() && it->second != cache::kAutoHome)
          home = it->second;
      }
      auto& list = per_home[home];
      if (!list.empty() && list.back().end() == off) {
        list.back().length += take;
      } else {
        list.push_back(pfs::Segment{off, take});
      }
      off += take;
      rem -= take;
    }
  }
  if (per_home.empty()) {
    // Empty-transfer completion in the caller's own lane (see above).
    // dpar-lint: allow(pdes-lane-channel)
    env.fs.engine().after(0, [done = std::move(done)]() mutable {
      done(fault::Status::kOk);
    });
    return;
  }
  auto* fan = fault::make_status_fanin(per_home.size(), std::move(done));
  for (auto& [home, list] : per_home) {
    env.clients.for_node(home).io(
        file, list, is_write, context,
        [fan](std::uint64_t, fault::Status st) { fan->complete(st); });
  }
}

}  // namespace

void DualParDriver::run_writeback(mpi::Job& job, sim::UniqueFunction next) {
  JobState& st = state_for(job);
  BatchOptions opt{params_.sort_batch, params_.merge_batch,
                   params_.fill_holes ? params_.hole_fill_max : 0};

  struct FilePlan {
    pfs::FileId file;
    WritebackPlan plan;
  };
  auto plans = std::make_shared<std::vector<FilePlan>>();
  for (pfs::FileId f : st.files_written) {
    auto dirty = cache_.dirty_segments(f);
    if (dirty.empty()) continue;
    plans->push_back(FilePlan{f, plan_writeback(std::move(dirty), opt)});
  }
  st.dirty_bytes.clear();
  if (plans->empty()) {
    next();
    return;
  }

  // Phase A: hole reads across all files; phase B: the merged writes.
  auto do_writes = [this, plans, next = std::move(next), &job]() mutable {
    JobState& jst = state_for(job);
    auto* fan = sim::make_fanin(plans->size(), std::move(next));
    for (const auto& fp : *plans) {
      for (const auto& w : fp.plan.writes) stats_.writeback_bytes += w.length;
      issue_batch(env_, cache_, fp.file, fp.plan.writes, /*is_write=*/true,
                  jst.crm_context, nullptr, [this, fp, fan](fault::Status wst) {
                    if (fault::ok(wst)) {
                      // The flush landed: those cache ranges are clean now.
                      for (const auto& w : fp.plan.writes)
                        cache_.clear_dirty(fp.file, w);
                    } else {
                      // Flush failed: keep the data dirty so the next cycle
                      // (or the final flush) retries it — losing application
                      // writes is not an option.
                      ++stats_.writeback_retained;
                      ++stats_.aborted_batches;
                      if (auto* inj = env_.fs.fault_injector())
                        ++inj->counters().dualpar_aborted_batches;
                    }
                    note_batch_status(wst);
                    fan->complete();
                  });
    }
  };

  std::size_t hole_files = 0;
  for (const auto& fp : *plans)
    if (!fp.plan.hole_reads.empty()) ++hole_files;
  if (hole_files == 0) {
    do_writes();
    return;
  }
  auto* hole_fan = sim::make_fanin(hole_files, std::move(do_writes));
  for (const auto& fp : *plans) {
    if (fp.plan.hole_reads.empty()) continue;
    stats_.hole_read_bytes += fp.plan.hole_bytes;
    issue_batch(env_, cache_, fp.file, fp.plan.hole_reads, /*is_write=*/false,
                st.crm_context, nullptr, [this, hole_fan](fault::Status hst) {
                  // A failed hole read degrades the merge (the write still
                  // covers the dirty ranges); record it and carry on.
                  note_batch_status(hst);
                  hole_fan->complete();
                });
  }
}

void DualParDriver::run_prefetch(mpi::Job& job, sim::UniqueFunction next) {
  JobState& st = state_for(job);
  // Union of all ghosts' predicted reads, grouped by file, plus the intended
  // cache placement of each touched chunk: the node of the process that will
  // consume it, so prefetched payloads land where they will be read.
  std::map<pfs::FileId, std::vector<pfs::Segment>> raw;
  auto homes = std::make_shared<
      std::map<pfs::FileId, std::map<std::uint64_t, net::NodeId>>>();
  const std::uint64_t chunk_bytes = cache_.params().chunk_bytes;
  for (const auto& [id, g] : st.ghosts) {
    for (const auto& call : g->predicted()) {
      for (const auto& s : call.segments) {
        raw[call.file].push_back(s);
        for (std::uint64_t c = s.offset / chunk_bytes; c <= (s.end() - 1) / chunk_bytes;
             ++c) {
          // Chunks consumed by a single node go to that node; chunks shared
          // across nodes keep the round-robin placement (no node is "the"
          // consumer, and pinning them would hotspot one NIC).
          auto [it, inserted] = (*homes)[call.file].emplace(c, g->node_id());
          if (!inserted && it->second != g->node_id()) it->second = cache::kAutoHome;
        }
      }
    }
  }
  if (raw.empty()) {
    next();
    return;
  }

  BatchOptions opt{params_.sort_batch, params_.merge_batch,
                   params_.fill_holes ? params_.hole_fill_max : 0};
  auto next_shared = std::make_shared<sim::UniqueFunction>(std::move(next));
  auto batches =
      std::make_shared<std::vector<std::pair<pfs::FileId, std::vector<pfs::Segment>>>>();
  // Files whose prefetch batch came back failed: nothing of theirs may enter
  // the cache (the payload never arrived), the readers fall back to direct
  // fetches on resume.
  auto failed = std::make_shared<std::set<pfs::FileId>>();
  auto on_all_done = [this, &job, next_shared, batches, homes, failed] {
    // Fill the cache with exact per-ghost attributions first (so the chunks
    // carry the prefetched flag for quota and mis-prefetch accounting), then
    // the merged remnants (absorbed holes) under the CRM context.
    JobState& jst = state_for(job);
    for (const auto& [id, g] : jst.ghosts) {
      for (const auto& call : g->predicted()) {
        if (failed->count(call.file)) continue;
        for (const auto& s : call.segments) {
          net::NodeId hint = cache::kAutoHome;
          const auto fit = homes->find(call.file);
          if (fit != homes->end()) {
            const auto cit = fit->second.find(s.offset / cache_.params().chunk_bytes);
            if (cit != fit->second.end()) hint = cit->second;
          }
          cache_.insert(call.file, s, g->owner(), /*prefetched=*/true, hint);
          jst.prev_prefetch_bytes += s.length;
          const std::uint64_t chunk = cache_.params().chunk_bytes;
          for (std::uint64_t c = s.offset / chunk; c <= (s.end() - 1) / chunk; ++c)
            jst.prev_chunks.push_back(cache::ChunkKey{call.file, c});
        }
      }
    }
    for (const auto& [f, batch] : *batches) {
      if (failed->count(f)) continue;
      for (const auto& s : batch) cache_.insert(f, s, jst.crm_context, false);
    }
    (*next_shared)();
  };
  auto* fan = sim::make_fanin(raw.size(), std::move(on_all_done));

  for (auto& [file, segs] : raw) {
    auto batch = build_read_batch(std::move(segs), opt);
    std::uint64_t batch_bytes = 0;
    for (const auto& s : batch) batch_bytes += s.length;
    stats_.prefetch_bytes += batch_bytes;
    const pfs::FileId f = file;
    batches->emplace_back(f, std::move(batch));
    const auto* file_homes = homes->count(f) ? &(*homes)[f] : nullptr;
    issue_batch(env_, cache_, f, batches->back().second, /*is_write=*/false,
                st.crm_context, file_homes,
                [this, fan, failed, f](fault::Status pst) {
                  if (!fault::ok(pst)) {
                    failed->insert(f);
                    ++stats_.aborted_batches;
                    if (auto* inj = env_.fs.fault_injector())
                      ++inj->counters().dualpar_aborted_batches;
                  }
                  note_batch_status(pst);
                  fan->complete();
                });
  }
}

void DualParDriver::resume_all(mpi::Job& job) {
  JobState& st = state_for(job);
  auto pending = std::move(st.pending);
  st.pending.clear();
  st.ghosts.clear();
  st.cycle_active = false;

  for (auto& p : pending) {
    p.proc->set_suspended(false);
    if (p.write_hold) {
      p.done();
      continue;
    }
    bool covered = !p.call.segments.empty();
    for (const auto& s : p.call.segments)
      covered = covered && cache_.covers(p.call.file, s);
    if (covered) {
      serve_from_cache(*p.proc, p.call, std::move(p.done));
    } else {
      // Mis-predicted: serve directly from the file system (the call was
      // observed when it first arrived).
      stats_.miss_direct_bytes += p.call.total_bytes();
      raw_io(*p.proc, p.call, std::move(p.done));
    }
  }
}

void DualParDriver::final_flush(mpi::Job& job) {
  JobState& st = state_for(job);
  if (st.final_flush_done) return;
  st.final_flush_done = true;
  run_writeback(job, [] {});
}

}  // namespace dpar::dualpar
