#include "dualpar/crm.hpp"

#include <algorithm>

namespace dpar::dualpar {
namespace {

void sort_by_offset(std::vector<pfs::Segment>& segs) {
  std::sort(segs.begin(), segs.end(), [](const pfs::Segment& a, const pfs::Segment& b) {
    return a.offset != b.offset ? a.offset < b.offset : a.length < b.length;
  });
}

/// Merge overlapping/adjacent segments; absorb gaps < hole_max. Only merges
/// forward runs, so unsorted input (sort disabled in ablations) never loses
/// coverage.
std::vector<pfs::Segment> merge_sorted(const std::vector<pfs::Segment>& segs,
                                       std::uint64_t hole_max) {
  std::vector<pfs::Segment> out;
  for (const auto& s : segs) {
    if (s.length == 0) continue;
    if (!out.empty() && s.offset >= out.back().offset) {
      const std::uint64_t prev_end = out.back().end();
      if (s.offset <= prev_end + hole_max) {
        if (s.end() > prev_end) out.back().length = s.end() - out.back().offset;
        continue;
      }
    }
    out.push_back(s);
  }
  return out;
}

}  // namespace

std::vector<pfs::Segment> build_read_batch(std::vector<pfs::Segment> segments,
                                           const BatchOptions& opt) {
  segments.erase(std::remove_if(segments.begin(), segments.end(),
                                [](const pfs::Segment& s) { return s.length == 0; }),
                 segments.end());
  if (opt.sort) sort_by_offset(segments);
  if (!opt.merge) return segments;
  if (!opt.sort) {
    // Merging without sorting can only coalesce arrival-adjacent pieces.
    return merge_sorted(segments, opt.hole_fill_max);
  }
  return merge_sorted(segments, opt.hole_fill_max);
}

WritebackPlan plan_writeback(std::vector<pfs::Segment> dirty, const BatchOptions& opt) {
  WritebackPlan plan;
  for (const auto& s : dirty) plan.dirty_bytes += s.length;
  sort_by_offset(dirty);
  dirty = merge_sorted(dirty, 0);  // exact dirty runs
  if (!opt.merge || opt.hole_fill_max == 0) {
    plan.writes = std::move(dirty);
    return plan;
  }
  // Coalesce runs separated by small holes; each absorbed hole needs a read.
  for (const auto& s : dirty) {
    if (!plan.writes.empty()) {
      const std::uint64_t prev_end = plan.writes.back().end();
      if (s.offset > prev_end && s.offset - prev_end <= opt.hole_fill_max) {
        plan.hole_reads.push_back(pfs::Segment{prev_end, s.offset - prev_end});
        plan.hole_bytes += s.offset - prev_end;
        plan.writes.back().length = s.end() - plan.writes.back().offset;
        continue;
      }
    }
    plan.writes.push_back(s);
  }
  return plan;
}

double mean_adjacent_distance(std::vector<pfs::Segment> segments) {
  if (segments.size() < 2) return 0.0;
  sort_by_offset(segments);
  double sum = 0.0;
  for (std::size_t i = 1; i < segments.size(); ++i) {
    const auto& prev = segments[i - 1];
    const auto& cur = segments[i];
    sum += static_cast<double>(cur.offset >= prev.offset ? cur.offset - prev.offset : 0);
  }
  return sum / static_cast<double>(segments.size() - 1);
}

}  // namespace dpar::dualpar
