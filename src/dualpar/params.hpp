// DualPar configuration (§IV defaults).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace dpar::dualpar {

struct Params {
  /// Per-process cache quota ("each process has a quota in the cache";
  /// 1 MB default, swept in Fig 8).
  std::uint64_t cache_quota = 1ull << 20;

  /// EMC enables data-driven mode when aveSeekDist/aveReqDist exceeds this
  /// (T_improvement, default 3).
  double t_improvement = 3.0;

  /// ... and the program's I/O ratio exceeds this (80%).
  double io_ratio_threshold = 0.8;

  /// Data-driven mode is disabled when the average mis-prefetch ratio
  /// exceeds this (20%).
  double misprefetch_threshold = 0.2;

  /// EMC evaluation slot.
  sim::Time emc_slot = sim::msec(500);

  /// Mode-switch damping: a switch needs this many consecutive agreeing
  /// slots, and a job stays in its mode at least this long. (Without
  /// damping the controller flaps: entering data-driven mode improves the
  /// seek distances, which immediately disqualifies the mode again.)
  std::uint32_t emc_confirm_slots = 2;
  sim::Time emc_min_dwell = sim::secs(2);

  /// Holes up to this size are absorbed when merging batch requests
  /// (reads: fetched along; writes: filled by additional reads, §IV-D).
  std::uint64_t hole_fill_max = 64 * 1024;

  /// Pre-execution deadline: expected cache-fill time is scaled by this
  /// slack factor and clamped to [min, max] (§IV-C).
  double preexec_deadline_slack = 2.0;
  sim::Time preexec_deadline_min = sim::msec(50);
  sim::Time preexec_deadline_max = sim::secs(5);

  // ---- Ablation switches (DESIGN.md §4) ----
  bool sort_batch = true;
  bool merge_batch = true;
  bool fill_holes = true;

  // ---- Degraded mode under faults ----
  /// EMC falls back to vanilla independent execution (normal mode for every
  /// job, overriding forced policies) when the EWMA of transfer outcomes
  /// (1 = error, 0 = ok) exceeds this, or when any data server is down.
  double fault_degrade_threshold = 0.25;
  /// ... and re-engages data-driven scheduling once every server is back up
  /// and the EWMA has decayed below this (hysteresis band).
  double fault_resume_threshold = 0.05;
  /// Smoothing factor of the transfer-outcome EWMA.
  double fault_error_alpha = 0.2;
};

}  // namespace dpar::dualpar
