#include "dualpar/emc.hpp"

#include <algorithm>
#include <stdexcept>

#include "disk/request.hpp"
#include "dualpar/crm.hpp"
#include "sim/debug.hpp"

namespace dpar::dualpar {

Emc::Emc(sim::Engine& eng, Params params, std::vector<pfs::DataServer*> servers)
    : eng_(eng), params_(params), servers_(std::move(servers)), obs_shards_(1) {}

void Emc::set_lane_count(std::uint32_t lanes) {
  if (lanes > obs_shards_.size()) obs_shards_.resize(lanes);
}

Emc::JobEntry* Emc::find_job(std::uint32_t job_id) {
  if (job_id >= slot_of_.size() || slot_of_[job_id] == 0) return nullptr;
  return &entries_[slot_of_[job_id] - 1];
}

const Emc::JobEntry* Emc::find_job(std::uint32_t job_id) const {
  if (job_id >= slot_of_.size() || slot_of_[job_id] == 0) return nullptr;
  return &entries_[slot_of_[job_id] - 1];
}

void Emc::register_job(mpi::Job& job, Policy policy) {
  JobEntry e;
  e.id = job.id();
  e.job = &job;
  e.policy = policy;
  switch (policy) {
    case Policy::kForcedDataDriven: e.mode = Mode::kDataDriven; break;
    default: e.mode = Mode::kNormal; break;
  }
  // Registration is rare (once per job); sorted insertion keeps tick()'s
  // iteration in ascending id order. Re-registering an id replaces it.
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), e.id,
      [](const JobEntry& a, std::uint32_t id) { return a.id < id; });
  if (it != entries_.end() && it->id == e.id) {
    *it = std::move(e);
  } else {
    it = entries_.insert(it, std::move(e));
  }
  if (slot_of_.size() <= entries_.back().id) slot_of_.resize(entries_.back().id + 1, 0);
  // Indices at and after the insertion point shifted by one.
  for (auto j = it; j != entries_.end(); ++j)
    slot_of_[j->id] = static_cast<std::uint32_t>(j - entries_.begin()) + 1;
  DPAR_IF_CHECKING(check_invariants());
}

void Emc::check_invariants() const {
  // The flat job vector and the id -> slot side table must agree exactly:
  // entries ascending by id (tick()'s float-accumulation order), every entry
  // reachable through its slot, and no slot pointing at a foreign entry.
  std::size_t mapped = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i > 0)
      DPAR_ASSERT(entries_[i - 1].id < entries_[i].id,
                  "EMC: job entries not in strictly ascending id order");
    DPAR_ASSERT(entries_[i].id < slot_of_.size(),
                "EMC: job id beyond the slot table");
    DPAR_ASSERT(slot_of_[entries_[i].id] == i + 1,
                "EMC: id -> slot index disagrees with the flat job vector");
  }
  for (std::uint32_t slot : slot_of_)
    if (slot != 0) {
      ++mapped;
      DPAR_ASSERT(slot <= entries_.size(), "EMC: slot table points past entries");
    }
  DPAR_ASSERT(mapped == entries_.size(),
              "EMC: slot table maps a different number of jobs than exist");
}

Mode Emc::mode(std::uint32_t job_id) const {
  // Degraded mode trumps everything, forced policies included: with a server
  // down or the error rate past the threshold, batching half the cluster's
  // data behind one CRM cycle only multiplies the blast radius of the next
  // fault. Every job runs vanilla until the cluster recovers.
  if (degraded_) return Mode::kNormal;
  const JobEntry* e = find_job(job_id);
  if (e == nullptr || e->latched) return Mode::kNormal;
  return e->mode;
}

const sim::TimeSeries& Emc::mode_series(std::uint32_t job_id) const {
  const JobEntry* e = find_job(job_id);
  if (e == nullptr) throw std::out_of_range("Emc::mode_series: unknown job");
  return e->mode_series;
}

void Emc::report_io_error() {
  error_ewma_ = params_.fault_error_alpha +
                (1.0 - params_.fault_error_alpha) * error_ewma_;
  update_degraded();
}

void Emc::report_io_ok() {
  // Only meaningful while the fault machinery is live; fault-free runs never
  // call in here, so the fast path stays untouched.
  error_ewma_ = (1.0 - params_.fault_error_alpha) * error_ewma_;
  update_degraded();
}

void Emc::note_server_state(std::uint32_t, bool down) {
  if (down) {
    ++servers_down_;
  } else if (servers_down_ > 0) {
    --servers_down_;
  }
  update_degraded();
}

void Emc::update_degraded() {
  if (!degraded_) {
    if (servers_down_ > 0 || error_ewma_ > params_.fault_degrade_threshold) {
      degraded_ = true;
      if (injector_) ++injector_->counters().emc_degraded_entries;
    }
    return;
  }
  // Hysteresis: re-engage only once every server is back and the error EWMA
  // has decayed well below the entry threshold.
  if (servers_down_ == 0 && error_ewma_ < params_.fault_resume_threshold) {
    degraded_ = false;
    if (injector_) ++injector_->counters().emc_degraded_exits;
  }
}

void Emc::report_misprefetch(std::uint32_t job_id, double ratio) {
  JobEntry* e = find_job(job_id);
  if (e == nullptr) return;
  e->misprefetch.add(ratio);
  if (e->misprefetch.value() > params_.misprefetch_threshold &&
      e->policy != Policy::kForcedNormal) {
    // "A large mis-prefetching miss ratio will turn off the data-driven mode
    // ... this is a one-time overhead" — latch the job to normal.
    e->latched = true;
    e->mode_series.add(eng_.now(), 0.0);
  }
}

bool Emc::latched_off(std::uint32_t job_id) const {
  const JobEntry* e = find_job(job_id);
  return e != nullptr && e->latched;
}

void Emc::observe(std::uint32_t job_id, pfs::FileId file,
                  const std::vector<pfs::Segment>& segments, sim::Time) {
  // Called from the issuing rank's lane, possibly inside a parallel window:
  // only the lane's own shard is touched here. The job table is folded into
  // at tick time, on the exclusive lane.
  const sim::LaneId l = eng_.current_lane();
  auto& shard = obs_shards_[l < obs_shards_.size() ? l : 0];
  shard.push_back(PendingObs{job_id, file, segments});
}

void Emc::flush_observations_() {
  // Lane order is fixed, and within a lane the buffer order is that lane's
  // deterministic event order — but ReqDist only consumes offset multisets,
  // so any shard interleaving would produce the same tick results anyway.
  for (auto& shard : obs_shards_) {
    for (PendingObs& o : shard) {
      JobEntry* e = find_job(o.job_id);
      if (e == nullptr) continue;
      auto& reqs = e->slot_requests;
      auto it = std::lower_bound(
          reqs.begin(), reqs.end(), o.file,
          [](const auto& p, pfs::FileId f) { return p.first < f; });
      if (it == reqs.end() || it->first != o.file)
        it = reqs.insert(it, {o.file, {}});
      it->second.insert(it->second.end(), o.segments.begin(), o.segments.end());
    }
    shard.clear();
  }
}

void Emc::start() {
  if (ticking_) return;
  ticking_ = true;
  // The EMC tick reads every server's trace and every job's progress, so on
  // a partitioned engine it must run on the exclusive lane: all lanes are
  // quiescent at the tick's timestamp. (exclusive_lane() is 0 — plain
  // lane-0 scheduling — when the engine is unpartitioned.)
  eng_.after_in(eng_.exclusive_lane(), params_.emc_slot, [this] {
    ticking_ = false;
    tick();
    // Keep evaluating while any registered job is live.
    const bool live = std::any_of(entries_.begin(), entries_.end(), [](const auto& e) {
      return !e.job->finished();
    });
    if (live) start();
  });
}

void Emc::tick() {
  const sim::Time now = eng_.now();
  flush_observations_();

  // Server-side: mean seek distance of the last completed slot, in bytes.
  double seek_sum = 0.0;
  std::uint32_t seek_n = 0;
  for (pfs::DataServer* s : servers_) {
    const double d = s->trace().slot_seek_distance(now);
    if (d > 0.0 || s->trace().dispatches() > 0) {
      seek_sum += d * static_cast<double>(disk::kSectorBytes);
      ++seek_n;
    }
  }
  last_seek_ = seek_n ? seek_sum / seek_n : 0.0;
  seek_series_.add(now, last_seek_);

  // Client-side: per-job ReqDist and I/O ratio.
  double req_sum = 0.0;
  std::uint32_t req_n = 0;
  for (JobEntry& e : entries_) {
    double job_sum = 0.0;
    std::uint32_t job_n = 0;
    for (auto& [file, segs] : e.slot_requests) {
      if (segs.size() < 2) continue;
      job_sum += mean_adjacent_distance(segs);
      ++job_n;
    }
    // Keep the per-file vectors (and their capacity); empty files are
    // skipped by the size guard above, so results are unchanged.
    for (auto& [file, segs] : e.slot_requests) segs.clear();
    if (job_n > 0) {
      req_sum += job_sum / job_n;
      ++req_n;
    }
    // I/O ratio over the last slot.
    const sim::Time io = e.job->total_io_time();
    const sim::Time comp = e.job->total_compute_time();
    const sim::Time dio = io - e.prev_io;
    const sim::Time dcomp = comp - e.prev_compute;
    e.prev_io = io;
    e.prev_compute = comp;
    if (dio + dcomp > 0)
      e.io_ratio = static_cast<double>(dio) / static_cast<double>(dio + dcomp);
  }
  last_req_ = req_n ? req_sum / req_n : 0.0;
  last_ratio_ = last_req_ > 0.0 ? last_seek_ / last_req_ : 0.0;

  // Mode decisions, with confirmation slots and a minimum dwell so the
  // controller does not flap (the data-driven mode's own effect on seek
  // distances would immediately disqualify it again).
  for (JobEntry& e : entries_) {
    if (e.policy != Policy::kAdaptive || e.latched || e.job->finished()) continue;
    const Mode want = (last_ratio_ > params_.t_improvement &&
                       e.io_ratio > params_.io_ratio_threshold)
                          ? Mode::kDataDriven
                          : Mode::kNormal;
    if (want == e.mode) {
      e.agree_slots = 0;
      continue;
    }
    if (++e.agree_slots < params_.emc_confirm_slots) continue;
    if (now - e.last_switch < params_.emc_min_dwell && e.last_switch > 0) continue;
    e.mode = want;
    e.agree_slots = 0;
    e.last_switch = now;
    ++switches_;
    e.mode_series.add(now, want == Mode::kDataDriven ? 1.0 : 0.0);
  }
}

}  // namespace dpar::dualpar
