#include "dualpar/emc.hpp"

#include <algorithm>

#include "disk/request.hpp"
#include "dualpar/crm.hpp"

namespace dpar::dualpar {

Emc::Emc(sim::Engine& eng, Params params, std::vector<pfs::DataServer*> servers)
    : eng_(eng), params_(params), servers_(std::move(servers)) {}

void Emc::register_job(mpi::Job& job, Policy policy) {
  JobEntry e;
  e.job = &job;
  e.policy = policy;
  switch (policy) {
    case Policy::kForcedDataDriven: e.mode = Mode::kDataDriven; break;
    default: e.mode = Mode::kNormal; break;
  }
  jobs_[job.id()] = std::move(e);
}

Mode Emc::mode(std::uint32_t job_id) const {
  // Degraded mode trumps everything, forced policies included: with a server
  // down or the error rate past the threshold, batching half the cluster's
  // data behind one CRM cycle only multiplies the blast radius of the next
  // fault. Every job runs vanilla until the cluster recovers.
  if (degraded_) return Mode::kNormal;
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return Mode::kNormal;
  if (it->second.latched) return Mode::kNormal;
  return it->second.mode;
}

void Emc::report_io_error() {
  error_ewma_ = params_.fault_error_alpha +
                (1.0 - params_.fault_error_alpha) * error_ewma_;
  update_degraded();
}

void Emc::report_io_ok() {
  // Only meaningful while the fault machinery is live; fault-free runs never
  // call in here, so the fast path stays untouched.
  error_ewma_ = (1.0 - params_.fault_error_alpha) * error_ewma_;
  update_degraded();
}

void Emc::note_server_state(std::uint32_t, bool down) {
  if (down) {
    ++servers_down_;
  } else if (servers_down_ > 0) {
    --servers_down_;
  }
  update_degraded();
}

void Emc::update_degraded() {
  if (!degraded_) {
    if (servers_down_ > 0 || error_ewma_ > params_.fault_degrade_threshold) {
      degraded_ = true;
      if (injector_) ++injector_->counters().emc_degraded_entries;
    }
    return;
  }
  // Hysteresis: re-engage only once every server is back and the error EWMA
  // has decayed well below the entry threshold.
  if (servers_down_ == 0 && error_ewma_ < params_.fault_resume_threshold) {
    degraded_ = false;
    if (injector_) ++injector_->counters().emc_degraded_exits;
  }
}

void Emc::report_misprefetch(std::uint32_t job_id, double ratio) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  it->second.misprefetch.add(ratio);
  if (it->second.misprefetch.value() > params_.misprefetch_threshold &&
      it->second.policy != Policy::kForcedNormal) {
    // "A large mis-prefetching miss ratio will turn off the data-driven mode
    // ... this is a one-time overhead" — latch the job to normal.
    it->second.latched = true;
    it->second.mode_series.add(eng_.now(), 0.0);
  }
}

bool Emc::latched_off(std::uint32_t job_id) const {
  auto it = jobs_.find(job_id);
  return it != jobs_.end() && it->second.latched;
}

void Emc::observe(std::uint32_t job_id, pfs::FileId file,
                  const std::vector<pfs::Segment>& segments, sim::Time) {
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  auto& slot = it->second.slot_requests[file];
  slot.insert(slot.end(), segments.begin(), segments.end());
}

void Emc::start() {
  if (ticking_) return;
  ticking_ = true;
  eng_.after(params_.emc_slot, [this] {
    ticking_ = false;
    tick();
    // Keep evaluating while any registered job is live.
    const bool live = std::any_of(jobs_.begin(), jobs_.end(), [](const auto& kv) {
      return !kv.second.job->finished();
    });
    if (live) start();
  });
}

void Emc::tick() {
  const sim::Time now = eng_.now();

  // Server-side: mean seek distance of the last completed slot, in bytes.
  double seek_sum = 0.0;
  std::uint32_t seek_n = 0;
  for (pfs::DataServer* s : servers_) {
    const double d = s->trace().slot_seek_distance(now);
    if (d > 0.0 || s->trace().dispatches() > 0) {
      seek_sum += d * static_cast<double>(disk::kSectorBytes);
      ++seek_n;
    }
  }
  last_seek_ = seek_n ? seek_sum / seek_n : 0.0;
  seek_series_.add(now, last_seek_);

  // Client-side: per-job ReqDist and I/O ratio.
  double req_sum = 0.0;
  std::uint32_t req_n = 0;
  for (auto& [id, e] : jobs_) {
    double job_sum = 0.0;
    std::uint32_t job_n = 0;
    for (auto& [file, segs] : e.slot_requests) {
      if (segs.size() < 2) continue;
      job_sum += mean_adjacent_distance(segs);
      ++job_n;
    }
    e.slot_requests.clear();
    if (job_n > 0) {
      req_sum += job_sum / job_n;
      ++req_n;
    }
    // I/O ratio over the last slot.
    const sim::Time io = e.job->total_io_time();
    const sim::Time comp = e.job->total_compute_time();
    const sim::Time dio = io - e.prev_io;
    const sim::Time dcomp = comp - e.prev_compute;
    e.prev_io = io;
    e.prev_compute = comp;
    if (dio + dcomp > 0)
      e.io_ratio = static_cast<double>(dio) / static_cast<double>(dio + dcomp);
  }
  last_req_ = req_n ? req_sum / req_n : 0.0;
  last_ratio_ = last_req_ > 0.0 ? last_seek_ / last_req_ : 0.0;

  // Mode decisions, with confirmation slots and a minimum dwell so the
  // controller does not flap (the data-driven mode's own effect on seek
  // distances would immediately disqualify it again).
  for (auto& [id, e] : jobs_) {
    if (e.policy != Policy::kAdaptive || e.latched || e.job->finished()) continue;
    const Mode want = (last_ratio_ > params_.t_improvement &&
                       e.io_ratio > params_.io_ratio_threshold)
                          ? Mode::kDataDriven
                          : Mode::kNormal;
    if (want == e.mode) {
      e.agree_slots = 0;
      continue;
    }
    if (++e.agree_slots < params_.emc_confirm_slots) continue;
    if (now - e.last_switch < params_.emc_min_dwell && e.last_switch > 0) continue;
    e.mode = want;
    e.agree_slots = 0;
    e.last_switch = now;
    ++switches_;
    e.mode_series.add(now, want == Mode::kDataDriven ? 1.0 : 0.0);
  }
}

}  // namespace dpar::dualpar
