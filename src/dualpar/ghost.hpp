// Ghost pre-execution (§IV-C).
//
// When a process blocks on a read miss in data-driven mode, PEC forks a
// ghost: a clone of the program at its exact current position. The ghost
// re-runs the computation (at ghost CPU priority, on the same node — the
// redundant-computation overhead the paper accepts for prediction accuracy)
// and *records* the read requests it encounters instead of issuing them.
// It pauses once the recorded data volume reaches the process's cache quota,
// when the program ends, or when PEC's deadline stops it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mpi/job.hpp"
#include "mpi/program.hpp"
#include "sim/engine.hpp"

namespace dpar::dualpar {

class GhostRunner {
 public:
  /// `on_pause` fires exactly once, when the ghost stops recording.
  GhostRunner(sim::Engine& eng, mpi::Process& proc, std::uint64_t quota,
              sim::UniqueFunction on_pause);

  /// Begin pre-execution; `missed_call` (the read the process blocked on) is
  /// recorded first, then the cloned program continues from there.
  void start(const mpi::IoCall& missed_call);

  /// Begin pre-execution from the program's current position with no blocked
  /// call — used for processes parked at a barrier when a data-driven cycle
  /// forms, so the batch covers *every* process's future reads (§IV-C).
  void start();

  /// Deadline expiry: stop at the next step boundary.
  void stop();

  bool paused() const { return paused_; }
  std::uint64_t recorded_bytes() const { return recorded_bytes_; }
  std::uint32_t owner() const { return owner_; }
  /// Compute node of the owning process (placement hint for its chunks).
  std::uint32_t node_id() const { return node_.id(); }

  /// Predicted read calls, in program order.
  const std::vector<mpi::IoCall>& predicted() const { return predicted_; }

 private:
  void step();
  void pause();

  sim::Engine& eng_;
  cluster::ComputeNode& node_;
  std::uint32_t owner_;
  std::uint64_t quota_;
  sim::UniqueFunction on_pause_;
  std::unique_ptr<mpi::Program> prog_;
  mpi::ProgramContext ctx_;
  std::vector<mpi::IoCall> predicted_;
  std::uint64_t recorded_bytes_ = 0;
  bool paused_ = false;
  bool stop_requested_ = false;
  bool computing_ = false;
};

}  // namespace dpar::dualpar
