// EMC — execution-mode control daemon (§IV-B).
//
// Lives on the metadata server. Every slot it gathers:
//  * per-server SeekDist: mean disk-head seek distance of requests dispatched
//    in the last slot (from the blktrace recorders);
//  * per-job ReqDist: mean adjacent distance of the job's requests observed
//    at the compute nodes in the last slot, after sorting per file — the best
//    I/O efficiency a data-driven reordering could achieve;
//  * per-job I/O ratio, from the instrumented ADIO timing probes.
// A job enters data-driven mode when aveSeekDist/aveReqDist > T_improvement
// and its I/O ratio exceeds 80%; it reverts when the condition clears, and is
// latched back to normal when its average mis-prefetch ratio exceeds 20%.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dualpar/params.hpp"
#include "mpi/job.hpp"
#include "mpiio/env.hpp"
#include "pfs/server.hpp"
#include "sim/engine.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/stats.hpp"

namespace dpar::dualpar {

enum class Mode { kNormal, kDataDriven };
enum class Policy { kAdaptive, kForcedNormal, kForcedDataDriven };

class Emc : public mpiio::RequestObserver {
 public:
  Emc(sim::Engine& eng, Params params, std::vector<pfs::DataServer*> servers);

  void register_job(mpi::Job& job, Policy policy);
  Mode mode(std::uint32_t job_id) const;

  /// Mis-prefetch report from a job's CRM at the start of a pre-execution
  /// round; ratios are averaged and can latch the job back to normal mode.
  void report_misprefetch(std::uint32_t job_id, double ratio);
  bool latched_off(std::uint32_t job_id) const;

  // ---- Degraded mode under faults ----
  /// Outcome of one finished transfer (DualPar batch or delegated vanilla
  /// call). Feeds the error EWMA that drives fall-back and re-engagement.
  void report_io_error();
  void report_io_ok();
  /// Fault-injector listener: any data server down forces normal mode for
  /// every job until it restarts. Runs on the exclusive lane (crash and
  /// restart events are pinned there).
  DPAR_EXCLUSIVE_LANE void note_server_state(std::uint32_t server, bool down);
  /// True while EMC is forcing vanilla execution because of faults.
  bool degraded() const { return degraded_; }
  double error_ewma() const { return error_ewma_; }
  /// Route degraded entry/exit counts into a run's fault ledger (optional).
  void set_fault_injector(fault::FaultInjector* inj) { injector_ = inj; }

  /// ADIO request observation (client side, feeds ReqDist). Hot path: the
  /// observation is buffered in the calling lane's shard; tick() folds the
  /// shards in lane order with every lane quiescent. ReqDist is computed
  /// over offset multisets (mean_adjacent_distance sorts), so the fold
  /// order never changes the result.
  DPAR_CROSS_LANE_API void observe(std::uint32_t job_id, pfs::FileId file,
               const std::vector<pfs::Segment>& segments, sim::Time now) override;

  /// Size the per-lane observation shards for a partitioned engine. Called
  /// at testbed finalize; unpartitioned engines keep the single shard.
  void set_lane_count(std::uint32_t lanes);

  /// Begin periodic evaluation (re-arms itself while any job is live).
  void start();
  /// One evaluation step (also callable directly from tests, which drive
  /// an unpartitioned engine — every lane quiescent either way).
  DPAR_EXCLUSIVE_LANE void tick();

  /// Debug invariant layer: verifies the id -> slot side table agrees with
  /// the flat, id-sorted job vector. Aborts via DPAR_ASSERT on violation.
  /// Called after every register_job when DPAR_CHECK_INVARIANTS is compiled
  /// in, and directly by tests.
  void check_invariants() const;

  // ---- Introspection for experiments ----
  double last_seek_dist_bytes() const { return last_seek_; }
  double last_req_dist_bytes() const { return last_req_; }
  double last_improvement_ratio() const { return last_ratio_; }
  const sim::TimeSeries& seek_series() const { return seek_series_; }
  const sim::TimeSeries& mode_series(std::uint32_t job_id) const;
  std::uint64_t mode_switches() const { return switches_; }

 private:
  struct JobEntry {
    std::uint32_t id = 0;
    mpi::Job* job = nullptr;
    Policy policy = Policy::kAdaptive;
    Mode mode = Mode::kNormal;
    bool latched = false;
    sim::Ewma misprefetch{0.5};
    // I/O-ratio deltas between ticks.
    sim::Time prev_io = 0;
    sim::Time prev_compute = 0;
    double io_ratio = 0.0;
    // Request observations of the current slot, per file: a FileId-sorted
    // flat vector (binary-search insert in observe(), the per-op hot path).
    // Segment vectors are cleared, not erased, between slots so their
    // capacity survives — at thousands of observes per slot the node churn
    // of the old per-file std::map dominated tick().
    std::vector<std::pair<pfs::FileId, std::vector<pfs::Segment>>> slot_requests;
    sim::TimeSeries mode_series;
    // Switch damping.
    std::uint32_t agree_slots = 0;
    sim::Time last_switch = 0;
  };

  /// One buffered observe() call, parked in its lane's shard until the next
  /// tick. The segment vector is copied at observe time — the caller's
  /// vector is stack-transient.
  struct PendingObs {
    std::uint32_t job_id;
    pfs::FileId file;
    std::vector<pfs::Segment> segments;
  };

  void update_degraded();
  DPAR_EXCLUSIVE_LANE void flush_observations_();
  JobEntry* find_job(std::uint32_t job_id);
  const JobEntry* find_job(std::uint32_t job_id) const;

  sim::Engine& eng_;
  Params params_;
  std::vector<pfs::DataServer*> servers_;
  // Job table: entries kept in ascending job-id order (tick() iterates them,
  // and the iteration order fixes the floating-point accumulation order, so
  // it must match the std::map this replaces) plus a dense id → index+1
  // side table for O(1) lookup on the per-op paths (observe, mode).
  std::vector<JobEntry> entries_;
  std::vector<std::uint32_t> slot_of_;  ///< job id -> entries_ index + 1; 0 = absent
  /// One observation buffer per lane: observe() only ever touches the
  /// calling lane's shard, so no routing is needed on the per-op hot path.
  DPAR_LANE_SAFE std::vector<std::vector<PendingObs>> obs_shards_;
  fault::FaultInjector* injector_ = nullptr;
  DPAR_EXCLUSIVE_LANE std::uint32_t servers_down_ = 0;
  double error_ewma_ = 0.0;
  bool degraded_ = false;
  bool ticking_ = false;
  // Fold state: written only by tick() with every lane quiescent.
  DPAR_EXCLUSIVE_LANE double last_seek_ = 0.0;
  DPAR_EXCLUSIVE_LANE double last_req_ = 0.0;
  DPAR_EXCLUSIVE_LANE double last_ratio_ = 0.0;
  DPAR_EXCLUSIVE_LANE std::uint64_t switches_ = 0;
  DPAR_EXCLUSIVE_LANE sim::TimeSeries seek_series_;
};

}  // namespace dpar::dualpar
