#include "dualpar/ghost.hpp"

#include <utility>
#include <variant>

namespace dpar::dualpar {

GhostRunner::GhostRunner(sim::Engine& eng, mpi::Process& proc, std::uint64_t quota,
                         sim::UniqueFunction on_pause)
    : eng_(eng),
      node_(proc.node()),
      owner_(proc.global_id()),
      quota_(quota),
      on_pause_(std::move(on_pause)),
      prog_(proc.clone_program()) {
  ctx_.rank = proc.rank();
  ctx_.nprocs = proc.job().nprocs();
  ctx_.ghost = true;
}

void GhostRunner::start(const mpi::IoCall& missed_call) {
  predicted_.push_back(missed_call);
  recorded_bytes_ += missed_call.total_bytes();
  if (recorded_bytes_ >= quota_) {
    pause();
    return;
  }
  step();
}

void GhostRunner::start() { step(); }

void GhostRunner::stop() {
  stop_requested_ = true;
  // If the ghost is mid-computation, the completion callback pauses it;
  // otherwise it is synchronously inside step() and will see the flag.
  if (!computing_ && !paused_) pause();
}

void GhostRunner::pause() {
  if (paused_) return;
  paused_ = true;
  if (on_pause_) on_pause_();
}

void GhostRunner::step() {
  while (!paused_) {
    if (stop_requested_) {
      pause();
      return;
    }
    mpi::Op op = prog_->next(ctx_);
    if (std::holds_alternative<mpi::OpCompute>(op)) {
      // Faithful emulation: the ghost performs the computation, on spare
      // cycles only.
      computing_ = true;
      node_.run(std::get<mpi::OpCompute>(op).duration, cluster::CpuPriority::kGhost,
                [this] {
                  computing_ = false;
                  if (stop_requested_) {
                    pause();
                  } else {
                    step();
                  }
                });
      return;
    }
    if (std::holds_alternative<mpi::OpIo>(op)) {
      mpi::IoCall call = std::move(std::get<mpi::OpIo>(op).call);
      if (call.is_write) continue;  // writes are buffered by the normal run
      recorded_bytes_ += call.total_bytes();
      predicted_.push_back(std::move(call));
      if (recorded_bytes_ >= quota_) {
        pause();
        return;
      }
      continue;
    }
    if (std::holds_alternative<mpi::OpBarrier>(op) ||
        std::holds_alternative<mpi::OpAllreduce>(op))
      continue;  // ghosts skip syncs
    if (std::holds_alternative<mpi::OpSend>(op) ||
        std::holds_alternative<mpi::OpRecv>(op))
      continue;  // ghosts cannot communicate; predictions past data exchanges
                 // may be wrong, which mis-prefetch detection covers (§IV-C)
    // OpEnd
    pause();
    return;
  }
}

}  // namespace dpar::dualpar
