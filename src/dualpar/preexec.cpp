#include "dualpar/preexec.hpp"

#include <algorithm>
#include <utility>
#include <variant>

#include "sim/fanin.hpp"

namespace dpar::dualpar {

PreexecDriver::PState& PreexecDriver::state_for(mpi::Process& proc,
                                                const mpi::IoCall&) {
  auto it = procs_.find(proc.global_id());
  if (it == procs_.end()) {
    PState st;
    st.prog = proc.clone_program();
    st.ctx.rank = proc.rank();
    st.ctx.nprocs = proc.job().nprocs();
    st.ctx.ghost = true;
    it = procs_.emplace(proc.global_id(), std::move(st)).first;
    pump(proc, it->second);
  }
  return it->second;
}

bool PreexecDriver::covered_by_cache(const mpi::IoCall& call) const {
  if (call.segments.empty()) return false;
  for (const auto& s : call.segments)
    if (!cache_.covers(call.file, s)) return false;
  return true;
}

bool PreexecDriver::covered_by_inflight(PState& st, const mpi::IoCall& call) const {
  if (call.segments.empty()) return false;
  auto it = st.inflight.find(call.file);
  for (const auto& s : call.segments) {
    if (cache_.covers(call.file, s)) continue;
    if (it == st.inflight.end() || !it->second.covers(s.offset, s.end())) return false;
  }
  return true;
}

void PreexecDriver::io(mpi::Process& proc, const mpi::IoCall& call,
                       sim::UniqueFunction done) {
  if (env_.observer)
    env_.observer->observe(proc.job().id(), call.file, call.segments,
                           env_.fs.engine().now());
  if (call.is_write) {
    VanillaDriver::io(proc, call, std::move(done));
    return;
  }
  PState& st = state_for(proc, call);
  if (covered_by_cache(call)) {
    ++stats_.hits;
    serve_hit(proc, st, call, std::move(done));
    return;
  }
  if (covered_by_inflight(st, call)) {
    // The prefetch for this data is on the wire; park the call until the
    // fill lands.
    ++stats_.waits;
    st.waiting = std::make_unique<PState::Waiting>(PState::Waiting{call, std::move(done)});
    return;
  }
  // Not predicted (or prefetching lags): fetch it ourselves, as the real
  // system would.
  ++stats_.direct_misses;
  VanillaDriver::io(proc, call, std::move(done));
}

void PreexecDriver::serve_hit(mpi::Process& proc, PState& st, const mpi::IoCall& call,
                              sim::UniqueFunction done) {
  const std::uint64_t bytes = call.total_bytes();
  st.window -= std::min(st.window, bytes);  // consumed: window space freed
  for (const auto& s : call.segments) cache_.reference(call.file, s);
  auto* fan = sim::make_fanin(call.segments.size(), std::move(done));
  for (const auto& s : call.segments) {
    cache_.transfer(call.file, s, proc.node().id(), /*to_cache=*/false,
                    [fan] { fan->complete(); });
  }
  pump(proc, st);
}

void PreexecDriver::issue_prefetch(mpi::Process& proc, PState& st, mpi::IoCall call) {
  const std::uint64_t bytes = call.total_bytes();
  st.window += bytes;
  ++st.inflight_pieces;
  stats_.prefetch_issued_bytes += bytes;
  for (const auto& s : call.segments) st.inflight[call.file].add(s.offset, s.end());
  pfs::Client& client = env_.clients.for_node(proc.node().id());
  auto call_shared = std::make_shared<mpi::IoCall>(std::move(call));
  client.io(call_shared->file, call_shared->segments, /*is_write=*/false,
            proc.global_id(),
            [this, &proc, &st, call_shared](std::uint64_t, fault::Status fst) {
              --st.inflight_pieces;
              if (!fault::ok(fst)) {
                // Ghost I/O aborts cleanly: the data never arrived, so cache
                // nothing and release the window space it reserved (otherwise
                // repeated faults would wedge the prefetcher at full window).
                // A parked reader is rescued below by a direct fetch.
                ++stats_.prefetch_aborts;
                mpiio::note_io_status(env_, fst);
                std::uint64_t aborted = 0;
                for (const auto& s : call_shared->segments) aborted += s.length;
                st.window -= std::min(st.window, aborted);
              }
              for (const auto& s : call_shared->segments) {
                st.inflight[call_shared->file].remove(s.offset, s.end());
                if (fault::ok(fst))
                  cache_.insert(call_shared->file, s, proc.global_id(),
                                /*prefetched=*/true);
              }
              if (st.waiting && covered_by_cache(st.waiting->call)) {
                auto waiting = std::move(st.waiting);
                serve_hit(proc, st, waiting->call, std::move(waiting->done));
              }
              pump(proc, st);
            });
}

void PreexecDriver::pump(mpi::Process& proc, PState& st) {
  while (st.window < params_.cache_quota && st.inflight_pieces < inflight_limit_) {
    // Issue pieces already generated before generating more.
    if (!st.piece_queue.empty()) {
      mpi::IoCall piece = std::move(st.piece_queue.front());
      st.piece_queue.pop_front();
      issue_prefetch(proc, st, std::move(piece));
      continue;
    }
    if (st.ghost_end) break;
    mpi::Op op = st.prog->next(st.ctx);
    if (std::holds_alternative<mpi::OpCompute>(op)) {
      if (strip_compute_) continue;  // I/O slicing removed the computation
      proc.node().run(std::get<mpi::OpCompute>(op).duration,
                      cluster::CpuPriority::kGhost, [this, &proc, &st] { pump(proc, st); });
      return;
    }
    if (std::holds_alternative<mpi::OpIo>(op)) {
      mpi::IoCall call = std::move(std::get<mpi::OpIo>(op).call);
      if (call.is_write || call.segments.empty()) continue;
      // One prefetch request per contiguous piece, issued as generated.
      for (const auto& s : call.segments) {
        mpi::IoCall piece;
        piece.file = call.file;
        piece.segments.push_back(s);
        st.piece_queue.push_back(std::move(piece));
      }
      continue;
    }
    if (std::holds_alternative<mpi::OpBarrier>(op) ||
        std::holds_alternative<mpi::OpAllreduce>(op) ||
        std::holds_alternative<mpi::OpSend>(op) ||
        std::holds_alternative<mpi::OpRecv>(op))
      continue;  // the prefetcher cannot synchronize or communicate
    st.ghost_end = true;
  }
  // Stalled (window full or program over) with a parked reader whose data is
  // neither cached nor on the wire: rescue it with a direct fetch.
  if (st.waiting && !covered_by_inflight(st, st.waiting->call) &&
      !covered_by_cache(st.waiting->call)) {
    auto waiting = std::move(st.waiting);
    ++stats_.direct_misses;
    VanillaDriver::io(proc, waiting->call, std::move(waiting->done));
  }
}

}  // namespace dpar::dualpar
