// CRM — cache and request management (§IV-D): pure planning logic for
// turning the requests collected from all of a program's processes into an
// optimized issue order. Kept side-effect free so the transformations are
// directly testable.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/layout.hpp"

namespace dpar::dualpar {

struct BatchOptions {
  bool sort = true;
  bool merge = true;
  std::uint64_t hole_fill_max = 64 * 1024;  ///< 0 disables hole absorption
};

/// Build a read batch: sort by offset, merge adjacent/overlapping segments,
/// and absorb holes smaller than hole_fill_max ("the data in the holes are
/// added to the requests... this further helps form larger requests").
std::vector<pfs::Segment> build_read_batch(std::vector<pfs::Segment> segments,
                                           const BatchOptions& opt);

/// Plan for flushing dirty data: contiguous write runs (small holes merged
/// in), plus the hole reads that must complete first so hole bytes can be
/// written back unchanged ("for writes the data in the holes will be filled
/// by additional reads before writing to disks").
struct WritebackPlan {
  std::vector<pfs::Segment> hole_reads;
  std::vector<pfs::Segment> writes;
  std::uint64_t dirty_bytes = 0;
  std::uint64_t hole_bytes = 0;
};

WritebackPlan plan_writeback(std::vector<pfs::Segment> dirty, const BatchOptions& opt);

/// Average adjacent distance (bytes) between sorted segments — the client
/// side ReqDist metric (§IV-B) over one observation slot.
double mean_adjacent_distance(std::vector<pfs::Segment> segments);

}  // namespace dpar::dualpar
