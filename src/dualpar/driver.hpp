// DualPar MPI-IO driver — the paper's contribution (§IV), Strategy 3 of §II.
//
// In normal mode it behaves like vanilla MPI-IO (plus cache consistency).
// In data-driven mode:
//  * reads that hit the global cache complete with a memcached get;
//  * a read miss suspends the process (PEC) and forks a ghost pre-execution
//    that records the process's future reads up to its cache quota;
//  * writes are absorbed into the global cache; a process whose dirty volume
//    exceeds its quota is held;
//  * once every process of the job is parked (suspended, held, at a barrier,
//    or finished) and all ghosts have paused — or the fill deadline expires —
//    CRM runs one data-driven cycle: flush dirty data (sorted, merged, holes
//    read first), then issue the union of predicted reads as one sorted,
//    merged, hole-filled batch in ascending offset order; prefetched data
//    lands in the global cache and the processes resume.
// Mis-prefetch is measured when the next cycle begins and reported to EMC.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cache/global_cache.hpp"
#include "dualpar/emc.hpp"
#include "dualpar/ghost.hpp"
#include "dualpar/params.hpp"
#include "mpiio/vanilla.hpp"

namespace dpar::dualpar {

struct DriverStats {
  std::uint64_t cycles = 0;
  std::uint64_t prefetch_bytes = 0;
  std::uint64_t hole_read_bytes = 0;
  std::uint64_t writeback_bytes = 0;
  std::uint64_t cache_hit_bytes = 0;
  std::uint64_t miss_direct_bytes = 0;  ///< mis-predicted reads served directly
  std::uint64_t ghost_forks = 0;
  std::uint64_t deadline_expiries = 0;
  // ---- Fault handling ----
  std::uint64_t io_errors = 0;          ///< failed transfers (any path)
  std::uint64_t aborted_batches = 0;    ///< CRM batches that came back failed
  std::uint64_t writeback_retained = 0; ///< dirty flushes kept for retry
};

class DualParDriver : public mpiio::VanillaDriver {
 public:
  DualParDriver(mpiio::IoEnv env, cache::GlobalCache& cache, Emc& emc, Params params);

  void io(mpi::Process& proc, const mpi::IoCall& call,
          sim::UniqueFunction done) override;
  void on_barrier_enter(mpi::Process& proc) override;
  void on_process_end(mpi::Process& proc) override;

  /// Every rank's I/O path mutates job-global state (the PEC pending list,
  /// ghost map, dirty accounting, stats, the global cache), so ranks must
  /// share one lane; a job using this driver never splits per compute node.
  bool lane_splittable() const override { return false; }

  std::string name() const override { return "dualpar"; }
  const DriverStats& stats() const { return stats_; }

 private:
  struct Pending {
    mpi::Process* proc;
    mpi::IoCall call;
    sim::UniqueFunction done;
    bool write_hold = false;  ///< held on write quota rather than a read miss
  };

  struct JobState {
    bool cycle_active = false;
    std::vector<Pending> pending;
    std::map<std::uint32_t, std::unique_ptr<GhostRunner>> ghosts;
    sim::EventId deadline{};
    std::set<pfs::FileId> files_written;
    std::map<std::uint32_t, std::uint64_t> dirty_bytes;  // per process
    // Previous round, for mis-prefetch accounting.
    std::vector<cache::ChunkKey> prev_chunks;
    std::uint64_t prev_prefetch_bytes = 0;
    std::uint64_t crm_context = 0;
    bool final_flush_done = false;
  };

  void on_raw_status(fault::Status st) override;
  /// Outcome of a CRM batch or delegated transfer: ledger + EMC feedback.
  void note_batch_status(fault::Status st);

  JobState& state_for(mpi::Job& job);
  void read_path(mpi::Process& proc, const mpi::IoCall& call, sim::UniqueFunction done);
  void write_path(mpi::Process& proc, const mpi::IoCall& call, sim::UniqueFunction done);
  void serve_from_cache(mpi::Process& proc, const mpi::IoCall& call,
                        sim::UniqueFunction done);
  void arm_deadline(mpi::Job& job, mpi::Process& proc);
  void maybe_start_cycle(mpi::Job& job);
  void start_cycle(mpi::Job& job);
  void run_writeback(mpi::Job& job, sim::UniqueFunction next);
  void run_prefetch(mpi::Job& job, sim::UniqueFunction next);
  void resume_all(mpi::Job& job);
  void final_flush(mpi::Job& job);

  cache::GlobalCache& cache_;
  Emc& emc_;
  Params params_;
  // Dense job-id index: state_for runs on every I/O call, and the tree walk
  // of the std::map this replaces showed up at cluster scale. unique_ptr
  // slots keep JobState addresses stable across table growth (references
  // are held across re-entrant engine callbacks).
  std::vector<std::unique_ptr<JobState>> jobs_;
  DriverStats stats_;
};

}  // namespace dpar::dualpar
