// Background re-replication manager.
//
// Conceptually a daemon on the metadata server: it tracks the validity of
// every (chunk, role) copy of every file, detects under-replication after a
// crash, and issues repair copies — real request traffic that competes with
// foreground I/O through the same server service threads, disk schedulers
// and NIC TX paths — until full redundancy is restored, throttled by a
// token-bucket bandwidth cap.
//
// Concurrency contract (the usual exclusive-lane pattern, cf. dualpar::Emc):
// all tracker state is mutated only on the engine's exclusive lane — by the
// periodic tick, by the fault injector's server up/down listener (crash and
// restart events are pinned there), and by notes that client lanes post via
// `post_invalid_copies`, which travel `note_delay` (the fabric's switch
// latency, i.e. at least the PDES lookahead) into the exclusive lane. Note
// effects are commutative (set-a-bit, bump-a-counter), so any same-timestamp
// arrival order produces the same tracker state and runs stay byte-identical
// at every DPAR_PDES_WORKERS value. The durability ledger (Counters) is
// sharded per lane exactly like fault::Counters.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/injector.hpp"
#include "pfs/file_system.hpp"
#include "replica/placement.hpp"
#include "sim/engine.hpp"
#include "sim/lane_annotations.hpp"

namespace dpar::replica {

/// Durability/recovery ledger of one run, sharded per lane.
struct Counters {
  // client write fan-out
  std::uint64_t writes_replicated = 0;   ///< write ops that fanned out copies
  std::uint64_t write_copy_shards = 0;   ///< replica shards sent (roles >= 1)
  std::uint64_t chain_forwards = 0;      ///< chain-fanout relay hops
  std::uint64_t copy_write_failures = 0; ///< replica shards that failed for good
  // client degraded reads
  std::uint64_t degraded_reads = 0;      ///< read ops that used any replica
  std::uint64_t failover_shards = 0;     ///< shards re-aimed at a replica
  std::uint64_t failover_latency_ns = 0; ///< sum over failover_shards
  std::uint64_t out_of_replica_reads = 0;///< shards that ran out of replicas
  // tracker / repair
  std::uint64_t chunks_invalidated = 0;  ///< copies marked stale (crash/write loss)
  std::uint64_t repair_ops_issued = 0;
  std::uint64_t repair_ops_completed = 0;
  std::uint64_t repair_ops_failed = 0;   ///< timed out or copy-read/write error
  std::uint64_t repair_bytes_copied = 0;
  std::uint64_t repair_blocked_permanent = 0;  ///< deficit on a fail-stop server
  std::uint64_t chunks_unrepairable = 0; ///< attempt cap hit (e.g. bad sectors)
};

/// End-of-run durability summary (tracker-derived, on top of the ledger).
struct DurabilityReport {
  Counters counters;
  std::uint64_t total_chunks = 0;       ///< across all registered files
  std::uint64_t total_copies = 0;       ///< total_chunks * rf
  std::uint64_t under_replicated_now = 0;  ///< chunks short of rf live copies
  std::uint64_t invalid_copies_now = 0;
  std::uint64_t lost_chunks = 0;        ///< no valid recoverable copy left
  double under_replicated_chunk_seconds = 0.0;
};

class RepairManager {
 public:
  /// `jobs_live` gates tick re-arming (same idiom as the EMC/monitor
  /// daemons); `mds_node` is the metadata server the repair control messages
  /// originate from. A null injector disables the daemon entirely — no
  /// faults means no deficits — while the placement map stays available to
  /// the client write/read paths.
  RepairManager(sim::Engine& eng, net::Network& net, pfs::FileSystem& fs,
                ReplicaMap map, fault::FaultInjector* injector,
                net::NodeId mds_node, std::function<bool()> jobs_live);

  const ReplicaMap& map() const { return map_; }
  const ReplicaConfig& config() const { return map_.config(); }

  /// Track a freshly created file (all copies start valid). Called by
  /// FileSystem::create.
  DPAR_EXCLUSIVE_LANE void register_file(pfs::FileId id, std::uint64_t size);

  /// The calling lane's ledger shard (hot client paths); aggregate readers
  /// use total().
  Counters& counters();
  Counters total() const;
  void set_lane_count(std::uint32_t lanes);

  /// Arm the periodic scan/dispatch tick (exclusive lane) and hook the
  /// injector's server up/down listener. Called from Testbed::run.
  DPAR_EXCLUSIVE_LANE void start();
  /// One scan/dispatch step (also callable directly from tests).
  DPAR_EXCLUSIVE_LANE void tick();

  /// Client-lane entry point: copies of `chunks` under `role` failed a write
  /// for good and are now stale. The note is posted into the exclusive lane
  /// `note_delay` ahead (at least the PDES lookahead); effects commute.
  DPAR_CROSS_LANE_API void post_invalid_copies(pfs::FileId file,
                                          std::uint32_t role,
                                          std::vector<std::uint64_t> chunks);

  /// Tracker snapshot; call after the run (or from the exclusive lane).
  DurabilityReport report() const;
  std::uint64_t under_replicated_now() const;
  std::uint64_t repairs_in_flight() const { return in_flight_; }

 private:
  struct FileState {
    pfs::FileId id = 0;
    std::uint64_t size = 0;
    std::uint64_t chunks = 0;
    /// chunk-major [chunk * rf + role] copy state.
    std::vector<std::uint8_t> invalid;
    std::vector<std::uint32_t> attempts;
    std::vector<std::uint8_t> repairing;
    /// Invalidation sequence per copy: a repair completion only validates
    /// the copy if no invalidation landed after the repair was issued.
    std::vector<std::uint32_t> seq;
    /// Id of the currently in-flight repair per copy: a completion (or its
    /// watchdog timeout) acts only if it carries the current id, so a stale
    /// timeout can never kill a later reissue.
    std::vector<std::uint64_t> issue;
  };

  DPAR_EXCLUSIVE_LANE void on_server_state_(std::uint32_t server, bool down);
  DPAR_EXCLUSIVE_LANE void note_invalid_(FileState& f, std::uint64_t chunk,
                                         std::uint32_t role);
  DPAR_EXCLUSIVE_LANE void repair_done_(std::size_t file_idx,
                                        std::uint64_t chunk, std::uint32_t role,
                                        std::uint64_t issue_id,
                                        std::uint32_t issued_seq,
                                        fault::Status st);
  /// Fold elapsed time into the under-replicated chunk-seconds accumulator,
  /// then recount. Call on the exclusive lane around every state change.
  DPAR_EXCLUSIVE_LANE void touch_();
  std::uint64_t count_under_() const;
  bool copy_live_(const FileState& f, std::uint64_t chunk,
                  std::uint32_t role) const;
  /// Issue one repair copy source -> target for (file, chunk, role).
  DPAR_EXCLUSIVE_LANE void issue_repair_(std::size_t file_idx,
                                         std::uint64_t chunk, std::uint32_t role,
                                         std::uint32_t source_role);
  bool deficit_actionable_() const;
  DPAR_EXCLUSIVE_LANE void arm_tick_();

  sim::Engine& eng_;
  net::Network& net_;
  pfs::FileSystem& fs_;
  ReplicaMap map_;
  fault::FaultInjector* injector_;
  net::NodeId mds_node_;
  std::function<bool()> jobs_live_;
  sim::Time note_delay_;
  /// Per-lane durability-ledger shards: counters() hands each client lane
  /// its own shard, so no routing is needed on the hot write/read paths.
  DPAR_LANE_SAFE std::vector<Counters> shards_;
  // Tracker state below: mutated only with every lane quiescent (see the
  // concurrency contract at the top of this file).
  DPAR_EXCLUSIVE_LANE std::vector<FileState> tracked_;
  // Token bucket for repair bandwidth.
  DPAR_EXCLUSIVE_LANE double repair_tokens_ = 0.0;
  DPAR_EXCLUSIVE_LANE sim::Time last_tick_ = 0;
  // Under-replicated chunk-seconds accumulator.
  DPAR_EXCLUSIVE_LANE std::uint64_t under_now_ = 0;
  DPAR_EXCLUSIVE_LANE sim::Time under_since_ = 0;
  DPAR_EXCLUSIVE_LANE double under_chunk_ns_ = 0.0;
  DPAR_EXCLUSIVE_LANE std::uint64_t in_flight_ = 0;
  DPAR_EXCLUSIVE_LANE std::uint64_t next_issue_ = 1;
  DPAR_EXCLUSIVE_LANE bool ticking_ = false;
  DPAR_EXCLUSIVE_LANE bool started_ = false;
};

}  // namespace dpar::replica
