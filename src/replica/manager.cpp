#include "replica/manager.hpp"

#include <algorithm>
#include <utility>

#include "pfs/server.hpp"
#include "sim/debug.hpp"

namespace dpar::replica {

namespace {
/// Disk-scheduler I/O context of repair traffic: one shared background
/// context, distinct from every foreground op's.
constexpr std::uint64_t kRepairContext = ~0ull;
/// Token bucket depth, in scan intervals' worth of budget: bounds the burst
/// a long idle stretch can bank up.
constexpr double kTokenBucketDepth = 4.0;
}  // namespace

RepairManager::RepairManager(sim::Engine& eng, net::Network& net,
                             pfs::FileSystem& fs, ReplicaMap map,
                             fault::FaultInjector* injector,
                             net::NodeId mds_node,
                             std::function<bool()> jobs_live)
    : eng_(eng),
      net_(net),
      fs_(fs),
      map_(std::move(map)),
      injector_(injector),
      mds_node_(mds_node),
      jobs_live_(std::move(jobs_live)),
      note_delay_(net.params().switch_latency),
      shards_(1) {
  if (injector_) {
    // Crash/restart events run on the exclusive lane, so the listener may
    // mutate the tracker directly. Our crash model: a dead server's replica
    // regions are dirty — every copy it hosts must be re-replicated from a
    // surviving copy once it is back (the motivation's "a server crash
    // silently loses data").
    injector_->add_server_listener(
        [this](std::uint32_t server, bool down) { on_server_state_(server, down); });
  }
}

void RepairManager::register_file(pfs::FileId id, std::uint64_t size) {
  FileState f;
  f.id = id;
  f.size = size;
  f.chunks = map_.num_chunks(size);
  const std::size_t copies = f.chunks * map_.replication_factor();
  f.invalid.assign(copies, 0);
  f.attempts.assign(copies, 0);
  f.repairing.assign(copies, 0);
  f.seq.assign(copies, 0);
  f.issue.assign(copies, 0);
  tracked_.push_back(std::move(f));
}

Counters& RepairManager::counters() {
  const sim::LaneId l = eng_.current_lane();
  return shards_[l < shards_.size() ? l : 0];
}

void RepairManager::set_lane_count(std::uint32_t lanes) {
  if (lanes > shards_.size()) shards_.resize(lanes);
}

Counters RepairManager::total() const {
  Counters t;
  for (const Counters& c : shards_) {
    t.writes_replicated += c.writes_replicated;
    t.write_copy_shards += c.write_copy_shards;
    t.chain_forwards += c.chain_forwards;
    t.copy_write_failures += c.copy_write_failures;
    t.degraded_reads += c.degraded_reads;
    t.failover_shards += c.failover_shards;
    t.failover_latency_ns += c.failover_latency_ns;
    t.out_of_replica_reads += c.out_of_replica_reads;
    t.chunks_invalidated += c.chunks_invalidated;
    t.repair_ops_issued += c.repair_ops_issued;
    t.repair_ops_completed += c.repair_ops_completed;
    t.repair_ops_failed += c.repair_ops_failed;
    t.repair_bytes_copied += c.repair_bytes_copied;
    t.repair_blocked_permanent += c.repair_blocked_permanent;
    t.chunks_unrepairable += c.chunks_unrepairable;
  }
  return t;
}

bool RepairManager::copy_live_(const FileState& f, std::uint64_t chunk,
                               std::uint32_t role) const {
  if (f.invalid[chunk * map_.replication_factor() + role]) return false;
  return !injector_ || !injector_->server_down(map_.server_of(chunk, role));
}

std::uint64_t RepairManager::count_under_() const {
  const std::uint32_t rf = map_.replication_factor();
  std::uint64_t under = 0;
  for (const FileState& f : tracked_)
    for (std::uint64_t k = 0; k < f.chunks; ++k) {
      std::uint32_t live = 0;
      for (std::uint32_t r = 0; r < rf; ++r) live += copy_live_(f, k, r) ? 1 : 0;
      under += live < rf ? 1 : 0;
    }
  return under;
}

void RepairManager::touch_() {
  const sim::Time now = eng_.now();
  under_chunk_ns_ += static_cast<double>(under_now_) *
                     static_cast<double>(now - under_since_);
  under_since_ = now;
  under_now_ = count_under_();
}

std::uint64_t RepairManager::under_replicated_now() const {
  return count_under_();
}

void RepairManager::note_invalid_(FileState& f, std::uint64_t chunk,
                                  std::uint32_t role) {
  const std::size_t slot = chunk * map_.replication_factor() + role;
  ++f.seq[slot];
  if (!f.invalid[slot]) {
    f.invalid[slot] = 1;
    ++counters().chunks_invalidated;
  }
}

void RepairManager::on_server_state_(std::uint32_t server, bool down) {
  touch_();
  if (down) {
    const std::uint32_t rf = map_.replication_factor();
    for (FileState& f : tracked_)
      for (std::uint64_t k = 0; k < f.chunks; ++k)
        for (std::uint32_t r = 0; r < rf; ++r)
          if (map_.server_of(k, r) == server) note_invalid_(f, k, r);
  }
  touch_();
  // A restart makes blocked deficits actionable again; restart the daemon if
  // its tick chain had wound down after the jobs finished.
  if (!down && started_ && !ticking_ && deficit_actionable_()) arm_tick_();
}

void RepairManager::post_invalid_copies(pfs::FileId file, std::uint32_t role,
                                        std::vector<std::uint64_t> chunks) {
  if (chunks.empty()) return;
  eng_.after_in(eng_.exclusive_lane(), note_delay_,
                [this, file, role, chunks = std::move(chunks)] {
                  touch_();
                  for (FileState& f : tracked_)
                    if (f.id == file)
                      for (std::uint64_t k : chunks) note_invalid_(f, k, role);
                  touch_();
                  if (started_ && !ticking_ && deficit_actionable_()) arm_tick_();
                });
}

bool RepairManager::deficit_actionable_() const {
  if (!injector_) return false;
  const std::uint32_t rf = map_.replication_factor();
  const sim::Time now = eng_.now();
  for (const FileState& f : tracked_)
    for (std::uint64_t k = 0; k < f.chunks; ++k)
      for (std::uint32_t r = 0; r < rf; ++r) {
        const std::size_t slot = k * rf + r;
        if (!f.invalid[slot] || f.repairing[slot]) continue;
        if (f.attempts[slot] >= config().repair_attempt_cap) continue;
        if (injector_->server_down(map_.server_of(k, r))) continue;
        for (std::uint32_t s = 0; s < rf; ++s)
          if (s != r && copy_live_(f, k, s) &&
              !injector_->permanently_down(map_.server_of(k, s), now))
            return true;
      }
  return false;
}

void RepairManager::issue_repair_(std::size_t file_idx, std::uint64_t chunk,
                                  std::uint32_t role, std::uint32_t source_role) {
  FileState& f = tracked_[file_idx];
  const std::uint32_t rf = map_.replication_factor();
  const std::size_t slot = chunk * rf + role;
  const std::uint64_t unit = map_.layout().unit_bytes;
  const std::uint64_t bytes = std::min(unit, f.size - chunk * unit);
  const std::uint64_t file_off = chunk * unit;
  f.repairing[slot] = 1;
  ++f.attempts[slot];
  ++in_flight_;
  ++counters().repair_ops_issued;
  const std::uint32_t issued_seq = f.seq[slot];
  const std::uint64_t issue_id = next_issue_++;
  f.issue[slot] = issue_id;

  pfs::DataServer& src = fs_.server(map_.server_of(chunk, source_role));
  pfs::DataServer& tgt = fs_.server(map_.server_of(chunk, role));
  const net::NodeId src_node = src.node();
  const net::NodeId tgt_node = tgt.node();
  const std::uint64_t src_local =
      map_.replica_local_offset(f.size, file_off, source_role);
  const std::uint64_t tgt_local = map_.replica_local_offset(f.size, file_off, role);

  // The whole copy must finish (or fail) within this budget, or the tick
  // declares the attempt dead (e.g. the source crashed and its reply was
  // squashed) and schedules a fresh one.
  const sim::Time patience =
      2 * injector_->request_timeout(bytes) + config().repair_scan_interval;
  eng_.after_in(eng_.exclusive_lane(), patience,
                [this, file_idx, chunk, role, issue_id, issued_seq] {
                  repair_done_(file_idx, chunk, role, issue_id, issued_seq,
                               fault::Status::kTimeout);
                });

  // Control message metadata-server -> source, then a replica-local read at
  // the source, the chunk's bytes across the fabric, a replica-local write
  // at the target, and a completion note hopping home through the metadata
  // node into the exclusive lane. Every stage shares the foreground path's
  // service threads, disk schedulers and NIC FIFOs — repair genuinely
  // competes with application I/O.
  auto note = [this, file_idx, chunk, role, issue_id, issued_seq](fault::Status st) {
    eng_.after_in(eng_.exclusive_lane(), note_delay_,
                  [this, file_idx, chunk, role, issue_id, issued_seq, st] {
                    repair_done_(file_idx, chunk, role, issue_id, issued_seq, st);
                  });
  };
  net_.send(
      mds_node_, src_node, 128,
      [this, &src, &tgt, src_node, tgt_node, src_local, tgt_local, bytes,
       file_id = f.id, note = std::move(note)]() mutable {
        pfs::ServerIoRequest rd;
        rd.file = file_id;
        rd.is_write = false;
        rd.context = kRepairContext;
        rd.runs.push_back(pfs::ServerRun{src_local, bytes});
        rd.done = [this, &tgt, src_node, tgt_node, tgt_local, bytes, file_id,
                   note = std::move(note)](fault::Status st) mutable {
          if (!fault::ok(st)) {
            // Read-side failure (media error on the surviving copy): report
            // home without moving the payload.
            net_.send(src_node, mds_node_, 64,
                      [st, note = std::move(note)]() mutable { note(st); });
            return;
          }
          net_.send(
              src_node, tgt_node, bytes + 64,
              [this, &tgt, tgt_node, tgt_local, bytes, file_id,
               note = std::move(note)]() mutable {
                pfs::ServerIoRequest wr;
                wr.file = file_id;
                wr.is_write = true;
                wr.context = kRepairContext;
                wr.runs.push_back(pfs::ServerRun{tgt_local, bytes});
                wr.done = [this, tgt_node,
                           note = std::move(note)](fault::Status st) mutable {
                  net_.send(tgt_node, mds_node_, 64,
                            [st, note = std::move(note)]() mutable { note(st); });
                };
                tgt.handle(std::move(wr));
              });
        };
        src.handle(std::move(rd));
      });
}

void RepairManager::repair_done_(std::size_t file_idx, std::uint64_t chunk,
                                 std::uint32_t role, std::uint64_t issue_id,
                                 std::uint32_t issued_seq, fault::Status st) {
  FileState& f = tracked_[file_idx];
  const std::size_t slot = chunk * map_.replication_factor() + role;
  // Act only on the current in-flight repair: a late watchdog (or a stale
  // completion racing it) must not touch a later reissue of the same copy.
  if (!f.repairing[slot] || f.issue[slot] != issue_id) return;
  f.repairing[slot] = 0;
  DPAR_ASSERT(in_flight_ > 0, "repair completion without an in-flight op");
  --in_flight_;
  touch_();
  const std::uint64_t unit = map_.layout().unit_bytes;
  if (fault::ok(st) && f.seq[slot] == issued_seq) {
    f.invalid[slot] = 0;
    f.attempts[slot] = 0;
    ++counters().repair_ops_completed;
    counters().repair_bytes_copied += std::min(unit, f.size - chunk * unit);
  } else {
    ++counters().repair_ops_failed;
    if (f.attempts[slot] >= config().repair_attempt_cap)
      ++counters().chunks_unrepairable;
  }
  touch_();
  if (started_ && !ticking_ && deficit_actionable_()) arm_tick_();
}

void RepairManager::start() {
  if (!injector_ || started_) return;
  started_ = true;
  last_tick_ = eng_.now();
  under_since_ = eng_.now();
  arm_tick_();
}

void RepairManager::arm_tick_() {
  ticking_ = true;
  eng_.after_in(eng_.exclusive_lane(), config().repair_scan_interval, [this] {
    ticking_ = false;
    tick();
  });
}

void RepairManager::tick() {
  if (!injector_) return;
  touch_();
  const sim::Time now = eng_.now();
  const double interval_s = sim::to_seconds(config().repair_scan_interval);
  repair_tokens_ = std::min(
      repair_tokens_ +
          config().repair_bandwidth * sim::to_seconds(now - last_tick_),
      config().repair_bandwidth * interval_s * kTokenBucketDepth);
  last_tick_ = now;

  const std::uint32_t rf = map_.replication_factor();
  const std::uint64_t unit = map_.layout().unit_bytes;
  std::uint32_t issued = 0;
  for (std::size_t fi = 0; fi < tracked_.size(); ++fi) {
    FileState& f = tracked_[fi];
    for (std::uint64_t k = 0; k < f.chunks && issued < config().repair_batch_chunks;
         ++k)
      for (std::uint32_t r = 0; r < rf; ++r) {
        const std::size_t slot = k * rf + r;
        if (!f.invalid[slot] || f.repairing[slot]) continue;
        if (f.attempts[slot] >= config().repair_attempt_cap) continue;
        const std::uint32_t target = map_.server_of(k, r);
        if (injector_->permanently_down(target, now)) {
          // Fixed placement cannot re-home a copy: a fail-stop target leaves
          // this deficit standing forever. Count it once and stop retrying.
          f.attempts[slot] = config().repair_attempt_cap;
          ++counters().repair_blocked_permanent;
          continue;
        }
        if (injector_->server_down(target)) continue;  // wait for the restart
        std::uint32_t source = UINT32_MAX;
        for (std::uint32_t s = 0; s < rf && source == UINT32_MAX; ++s)
          if (s != r && copy_live_(f, k, s)) source = s;
        if (source == UINT32_MAX) continue;
        const std::uint64_t bytes = std::min(unit, f.size - k * unit);
        if (repair_tokens_ < static_cast<double>(bytes)) continue;
        repair_tokens_ -= static_cast<double>(bytes);
        issue_repair_(fi, k, r, source);
        ++issued;
        if (issued >= config().repair_batch_chunks) break;
      }
  }
  if (jobs_live_() || in_flight_ > 0 || deficit_actionable_()) arm_tick_();
}

DurabilityReport RepairManager::report() const {
  DurabilityReport rep;
  rep.counters = total();
  const std::uint32_t rf = map_.replication_factor();
  const sim::Time now = eng_.now();
  for (const FileState& f : tracked_) {
    rep.total_chunks += f.chunks;
    for (std::uint64_t k = 0; k < f.chunks; ++k) {
      std::uint32_t live = 0, recoverable = 0;
      for (std::uint32_t r = 0; r < rf; ++r) {
        const std::size_t slot = k * rf + r;
        rep.invalid_copies_now += f.invalid[slot] ? 1 : 0;
        live += copy_live_(f, k, r) ? 1 : 0;
        const bool gone =
            injector_ && injector_->permanently_down(map_.server_of(k, r), now);
        recoverable += (!f.invalid[slot] && !gone) ? 1 : 0;
      }
      rep.under_replicated_now += live < rf ? 1 : 0;
      rep.lost_chunks += recoverable == 0 ? 1 : 0;
    }
  }
  rep.total_copies = rep.total_chunks * rf;
  rep.under_replicated_chunk_seconds =
      (under_chunk_ns_ + static_cast<double>(under_now_) *
                             static_cast<double>(now - under_since_)) /
      1e9;
  return rep;
}

}  // namespace dpar::replica
