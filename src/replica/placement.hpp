// N-way chunk replication: placement policies and replica addressing.
//
// The stripe layout (pfs/layout.hpp) maps every 64 KB chunk of a file to its
// *primary* data server (round-robin). This layer extends that mapping to
// `replication_factor` copies per chunk: role 0 is the primary (same server
// the unreplicated layout picks, so rf == 1 is byte-identical to the
// pre-replication stack) and roles 1..rf-1 are replicas placed by a pluggable
// policy — node-local shift, rotational (chained) declustering, or rack-aware
// spread over cluster::Node racks. Every mapping is a pure closed-form (or
// precomputed-table) function of (stripe, role), so clients, servers and the
// repair manager agree on copy locations without any metadata traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/layout.hpp"
#include "sim/time.hpp"

namespace dpar::replica {

enum class Placement : std::uint8_t {
  /// Replica r of a chunk lives on (primary + r) mod S: the copies of one
  /// server's chunks all land on its immediate successors, so a crash shifts
  /// its full load onto rf-1 neighbours (classic primary-copy mirroring).
  kNodeLocal = 0,
  /// Chained declustering: replicas rotate over the other S-1 servers as a
  /// function of the stripe index, so a crashed server's degraded reads and
  /// repair traffic spread over the whole cluster instead of one neighbour.
  kRotational = 1,
  /// Rack-aware: replicas prefer servers in racks the chunk does not yet
  /// occupy, so a whole-rack failure still leaves a surviving copy when
  /// rf >= 2 and there are >= 2 racks.
  kRackAware = 2,
};

enum class WriteFanout : std::uint8_t {
  /// The client sends every copy's shard itself (rf parallel streams from
  /// one NIC).
  kStar = 0,
  /// Chain replication: the client writes role r only after role r-1
  /// completed, routing each hop through the previous copy's server — one
  /// client TX stream, latency grows with the chain.
  kChain = 1,
};

constexpr const char* to_string(Placement p) {
  switch (p) {
    case Placement::kNodeLocal: return "node-local";
    case Placement::kRotational: return "rotational";
    case Placement::kRackAware: return "rack-aware";
  }
  return "?";
}

constexpr const char* to_string(WriteFanout f) {
  switch (f) {
    case WriteFanout::kStar: return "star";
    case WriteFanout::kChain: return "chain";
  }
  return "?";
}

struct ReplicaConfig {
  /// Copies per chunk. 1 (the default) disables the whole subsystem: no
  /// replica regions are allocated, no repair manager is created, and the
  /// client keeps its pre-replication request paths byte-for-byte.
  std::uint32_t replication_factor = 1;
  Placement placement = Placement::kRotational;
  WriteFanout fanout = WriteFanout::kStar;
  /// Failure domains for kRackAware; server s (and compute node n) lives in
  /// rack id mod num_racks.
  std::uint32_t num_racks = 3;
  /// Repair copy budget per scan interval (token bucket): re-replication
  /// competes with foreground traffic through the same disks and NICs, and
  /// this caps how hard it competes.
  double repair_bandwidth = 40e6;  ///< bytes/s
  /// Exclusive-lane scan/dispatch period of the repair manager.
  sim::Time repair_scan_interval = sim::msec(20);
  /// Max repair copies in flight per tick batch.
  std::uint32_t repair_batch_chunks = 8;
  /// Copy attempts per (chunk, role) before it is marked unrepairable
  /// (e.g. the surviving copy sits on a latent bad-sector range).
  std::uint32_t repair_attempt_cap = 4;
  /// Read retry budget per shard before failing over to the next replica
  /// (smaller than the full retry cap: surviving copies make patience
  /// cheap). Writes always use the plan's full retry budget.
  std::uint32_t read_failover_after_retries = 1;

  bool enabled() const { return replication_factor > 1; }

  /// Reject malformed configs loudly (rf == 0, rf > servers, zero racks,
  /// nonpositive repair budget). Throws std::invalid_argument.
  void validate(std::uint32_t num_servers) const;
};

/// The replica map of one cluster: placement tables plus the on-server
/// address geometry of every copy. Copies of a file live in per-role regions
/// inside the same per-server extent the unreplicated layout uses:
///
///   [0, P)                 role-0 (primary) bytes, legacy local offsets
///   [P + (r-1)*R, ... + R) role-r bytes, chunk k at k * unit inside it
///
/// with P = (ceil(size / (unit*S)) + 1) * unit — an upper bound on every
/// server's primary share — and R = (ceil(size / unit) + 1) * unit, sized so
/// ANY server can host ANY chunk's copy (the region is sparse: only chunks
/// the placement maps here are written). Replica-local addresses are
/// policy-independent, so placement changes never move bytes within a
/// server, and the mapping is invertible for the failover path.
class ReplicaMap {
 public:
  ReplicaMap(pfs::StripeLayout layout, ReplicaConfig cfg,
             std::vector<std::uint32_t> server_racks);

  const ReplicaConfig& config() const { return cfg_; }
  const pfs::StripeLayout& layout() const { return layout_; }
  std::uint32_t replication_factor() const { return cfg_.replication_factor; }
  std::uint32_t num_servers() const { return layout_.num_servers; }
  std::uint32_t rack_of(std::uint32_t server) const { return racks_[server]; }

  /// Data server holding copy `role` of stripe `stripe`. Role 0 is the
  /// layout's primary. Roles must be < replication_factor.
  std::uint32_t server_of(std::uint64_t stripe, std::uint32_t role) const;

  /// Server-local byte offset of file offset `off` under copy `role`.
  /// Role 0 is the legacy layout mapping.
  std::uint64_t replica_local_offset(std::uint64_t file_size, std::uint64_t off,
                                     std::uint32_t role) const;

  /// Byte length of one server's extent for a file of `size` bytes:
  /// P + (rf-1) * R (uniform across servers when rf > 1).
  std::uint64_t extent_bytes(std::uint64_t size) const;

  /// Number of stripe-unit chunks in a file of `size` bytes.
  std::uint64_t num_chunks(std::uint64_t size) const {
    return (size + layout_.unit_bytes - 1) / layout_.unit_bytes;
  }

 private:
  std::uint64_t primary_region_bytes(std::uint64_t size) const;
  std::uint64_t replica_region_bytes(std::uint64_t size) const;

  pfs::StripeLayout layout_;
  ReplicaConfig cfg_;
  std::vector<std::uint32_t> racks_;
  /// Precomputed placement targets for the policies that depend only on the
  /// primary: table_[primary * (rf-1) + (role-1)]. Rotational placement
  /// depends on the stripe index too and is computed inline.
  std::vector<std::uint32_t> table_;
};

}  // namespace dpar::replica
