#include "replica/placement.hpp"

#include <stdexcept>
#include <string>

#include "sim/debug.hpp"

namespace dpar::replica {

void ReplicaConfig::validate(std::uint32_t num_servers) const {
  if (replication_factor == 0)
    throw std::invalid_argument("ReplicaConfig: replication_factor must be >= 1");
  if (replication_factor > num_servers)
    throw std::invalid_argument(
        "ReplicaConfig: replication_factor " +
        std::to_string(replication_factor) + " exceeds the " +
        std::to_string(num_servers) + " data servers");
  if (!enabled()) return;
  if (num_racks == 0)
    throw std::invalid_argument("ReplicaConfig: num_racks must be >= 1");
  if (repair_bandwidth <= 0.0)
    throw std::invalid_argument("ReplicaConfig: repair_bandwidth must be > 0");
  if (repair_scan_interval <= 0)
    throw std::invalid_argument("ReplicaConfig: repair_scan_interval must be > 0");
  if (repair_batch_chunks == 0)
    throw std::invalid_argument("ReplicaConfig: repair_batch_chunks must be >= 1");
  if (repair_attempt_cap == 0)
    throw std::invalid_argument("ReplicaConfig: repair_attempt_cap must be >= 1");
}

ReplicaMap::ReplicaMap(pfs::StripeLayout layout, ReplicaConfig cfg,
                       std::vector<std::uint32_t> server_racks)
    : layout_(layout), cfg_(cfg), racks_(std::move(server_racks)) {
  cfg_.validate(layout_.num_servers);
  if (racks_.size() < layout_.num_servers)
    throw std::invalid_argument("ReplicaMap: rack table smaller than servers");
  const std::uint32_t S = layout_.num_servers;
  const std::uint32_t rf = cfg_.replication_factor;
  if (rf <= 1 || cfg_.placement == Placement::kRotational) return;

  // kNodeLocal and kRackAware depend only on the primary: one table row per
  // primary, rf-1 targets each, chosen greedily from the primary's
  // successors. Rack-aware prefers servers whose rack the chunk's copies do
  // not occupy yet, falling back to used racks once every rack is covered.
  table_.assign(std::size_t{S} * (rf - 1), 0);
  std::vector<std::uint32_t> used_servers;
  std::vector<std::uint32_t> used_racks;
  for (std::uint32_t p = 0; p < S; ++p) {
    used_servers.assign(1, p);
    used_racks.assign(1, racks_[p]);
    for (std::uint32_t r = 1; r < rf; ++r) {
      std::uint32_t pick = (p + r) % S;
      if (cfg_.placement == Placement::kRackAware) {
        // Two passes over the successor ring: first a server in a fresh
        // rack, then (all racks used) the first unused server.
        pick = UINT32_MAX;
        for (std::uint32_t step = 1; step < S && pick == UINT32_MAX; ++step) {
          const std::uint32_t cand = (p + step) % S;
          bool taken = false, rack_taken = false;
          for (std::uint32_t u : used_servers) taken = taken || u == cand;
          for (std::uint32_t u : used_racks)
            rack_taken = rack_taken || u == racks_[cand];
          if (!taken && !rack_taken) pick = cand;
        }
        for (std::uint32_t step = 1; step < S && pick == UINT32_MAX; ++step) {
          const std::uint32_t cand = (p + step) % S;
          bool taken = false;
          for (std::uint32_t u : used_servers) taken = taken || u == cand;
          if (!taken) pick = cand;
        }
      }
      table_[std::size_t{p} * (rf - 1) + (r - 1)] = pick;
      used_servers.push_back(pick);
      used_racks.push_back(racks_[pick]);
    }
  }
}

std::uint32_t ReplicaMap::server_of(std::uint64_t stripe,
                                    std::uint32_t role) const {
  DPAR_ASSERT(role < cfg_.replication_factor,
              "replica role out of range (out-of-replica read?)");
  const std::uint32_t S = layout_.num_servers;
  const auto primary = static_cast<std::uint32_t>(stripe % S);
  if (role == 0) return primary;
  if (cfg_.placement == Placement::kRotational) {
    // Chained declustering: the rf-1 replicas of stripe k take consecutive
    // slots of the size-(S-1) successor ring, rotated by k, so each stripe
    // lands its copies on a different server subset. Distinct from the
    // primary by construction and pairwise distinct while rf <= S.
    const std::uint64_t rf1 = cfg_.replication_factor - 1;
    const std::uint64_t slot = (stripe * rf1 + (role - 1)) % (S - 1);
    return static_cast<std::uint32_t>((primary + 1 + slot) % S);
  }
  return table_[std::size_t{primary} * (cfg_.replication_factor - 1) +
                (role - 1)];
}

std::uint64_t ReplicaMap::primary_region_bytes(std::uint64_t size) const {
  // Upper bound on any server's legacy share (server_share + one slack
  // unit): full rounds plus at most one partial unit, rounded to units.
  const std::uint64_t unit = layout_.unit_bytes;
  const std::uint64_t rounds =
      (size + unit * layout_.num_servers - 1) / (unit * layout_.num_servers);
  return (rounds + 1) * unit;
}

std::uint64_t ReplicaMap::replica_region_bytes(std::uint64_t size) const {
  // One sparse slot per chunk of the whole file (+ slack unit): any server
  // can host any chunk's copy, so placement never constrains addressing.
  return (num_chunks(size) + 1) * layout_.unit_bytes;
}

std::uint64_t ReplicaMap::replica_local_offset(std::uint64_t file_size,
                                               std::uint64_t off,
                                               std::uint32_t role) const {
  DPAR_ASSERT(role < cfg_.replication_factor,
              "replica role out of range (out-of-replica read?)");
  if (role == 0) return layout_.server_local_offset(off);
  const std::uint64_t unit = layout_.unit_bytes;
  return primary_region_bytes(file_size) +
         (role - 1) * replica_region_bytes(file_size) +
         layout_.stripe_of(off) * unit + off % unit;
}

std::uint64_t ReplicaMap::extent_bytes(std::uint64_t size) const {
  return primary_region_bytes(size) +
         (cfg_.replication_factor - 1) * replica_region_bytes(size);
}

}  // namespace dpar::replica
