// Memcached-backed global I/O cache (§IV-D).
//
// Files are partitioned into chunks equal to the PVFS2 stripe unit (64 KB by
// default, "so that a chunk can be efficiently accessed by touching only one
// server"). Chunk homes rotate round-robin over the compute nodes. The cache
// stores metadata only — which byte ranges of each chunk are valid and which
// are dirty — since the simulation never moves real payloads. Every chunk
// carries a last-reference time tag for idle eviction, a prefetched flag for
// mis-prefetch accounting, and an owner process for quota accounting.
#pragma once

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "cache/rangeset.hpp"
#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "sim/engine.hpp"
#include "sim/func.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/rng.hpp"

namespace dpar::cache {

struct ChunkKey {
  pfs::FileId file = 0;
  std::uint64_t index = 0;
  friend bool operator==(const ChunkKey&, const ChunkKey&) = default;
  /// (file, index) lexicographic order — the deterministic tie-break for any
  /// scan over the unordered chunk table whose result could reach output.
  friend auto operator<=>(const ChunkKey&, const ChunkKey&) = default;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& k) const {
    return static_cast<std::size_t>(
        sim::splitmix64((std::uint64_t{k.file} << 40) ^ k.index));
  }
};

struct ChunkMeta {
  RangeSet valid;   ///< byte ranges (chunk-local) present in the cache
  RangeSet dirty;   ///< subset of valid written by the application
  sim::Time last_ref = 0;
  std::uint64_t owner = 0;      ///< process id charged for the quota
  net::NodeId home = 0;         ///< compute node storing the chunk
  bool prefetched = false;      ///< loaded by pre-execution prefetch
  bool referenced = false;      ///< touched by a normal process since load
};

/// Sentinel for "no placement hint: use the static round-robin home".
inline constexpr net::NodeId kAutoHome = UINT32_MAX;

struct CacheParams {
  std::uint64_t chunk_bytes = 64 * 1024;
  sim::Time idle_eviction = sim::secs(30);
  /// Memcached memory per home node; exceeding it evicts the node's
  /// least-recently-referenced clean chunks. 0 = unbounded.
  std::uint64_t capacity_per_node = 0;
};

class GlobalCache {
 public:
  GlobalCache(sim::Engine& eng, net::Network& net, std::vector<net::NodeId> home_nodes,
              CacheParams params = {});

  /// True when every byte of `seg` is valid in the cache.
  bool covers(pfs::FileId file, const pfs::Segment& seg) const;

  /// Sub-segments of `seg` not valid in the cache.
  std::vector<pfs::Segment> missing(pfs::FileId file, const pfs::Segment& seg) const;

  /// Mark `seg` valid (after a prefetch or read-through fill). `home_hint`
  /// places newly created chunks on a specific node — CRM uses the future
  /// consumer's node so the consumption phase stays local; kAutoHome falls
  /// back to round-robin placement (the paper's default, kept as an
  /// ablation).
  void insert(pfs::FileId file, const pfs::Segment& seg, std::uint64_t owner,
              bool prefetched, net::NodeId home_hint = kAutoHome);

  /// Mark `seg` valid and dirty (application write).
  void write(pfs::FileId file, const pfs::Segment& seg, std::uint64_t owner,
             net::NodeId home_hint = kAutoHome);

  /// Record a normal-process reference to `seg` (clears prefetched flags,
  /// refreshes time tags). Returns the number of bytes that had been
  /// prefetched and are referenced for the first time.
  std::uint64_t reference(pfs::FileId file, const pfs::Segment& seg);

  /// All dirty byte ranges of `file`, as file-space segments, sorted.
  std::vector<pfs::Segment> dirty_segments(pfs::FileId file) const;
  /// Dirty ranges across all files: (file, segment) pairs sorted by file/offset.
  std::vector<std::pair<pfs::FileId, pfs::Segment>> all_dirty_segments() const;
  void clear_dirty(pfs::FileId file, const pfs::Segment& seg);

  /// Bytes currently charged to `owner` (valid bytes of chunks it owns).
  /// O(1): served from the usage counters.
  std::uint64_t owner_bytes(std::uint64_t owner) const {
    auto it = owner_valid_.find(owner);
    return it != owner_valid_.end() ? it->second : 0;
  }

  /// Crash invalidation: drop every valid-but-clean byte range that was
  /// sourced from `server`'s stripes (per `layout`). Clean cached data came
  /// off that server's disk and can no longer be trusted against it; dirty
  /// ranges are application-sourced and are retained for write-back. Returns
  /// the invalidated byte count.
  DPAR_EXCLUSIVE_LANE std::uint64_t invalidate_server(
      const pfs::StripeLayout& layout, std::uint32_t server);

  /// Drop chunks not referenced since `now - idle_eviction` (dirty chunks are
  /// retained). Returns evicted byte count.
  DPAR_EXCLUSIVE_LANE std::uint64_t evict_idle(sim::Time now);
  /// Drop every clean chunk owned by `owner` (cycle turnover).
  void drop_clean(std::uint64_t owner);

  /// Transfer modelling: perform the memcached traffic for accessing `seg`
  /// of `file` from `from_node`; `done` fires when all per-home messages
  /// complete. `to_cache` selects put (true) or get (false) direction.
  void transfer(pfs::FileId file, const pfs::Segment& seg, net::NodeId from_node,
                bool to_cache, sim::UniqueFunction done);

  /// Static round-robin home (placement when no hint is given).
  net::NodeId home_node(const ChunkKey& key) const {
    return home_nodes_[key.index % home_nodes_.size()];
  }
  /// Actual home of a chunk: its recorded placement, else round-robin.
  net::NodeId placed_home(const ChunkKey& key) const {
    auto it = chunks_.find(key);
    return it != chunks_.end() ? it->second.home : home_node(key);
  }
  /// Disable placement hints entirely (ablation: the paper's round-robin).
  void set_round_robin_only(bool v) { round_robin_only_ = v; }
  const CacheParams& params() const { return params_; }
  std::uint64_t total_valid_bytes() const { return total_valid_; }
  std::uint64_t chunk_count() const { return chunks_.size(); }
  std::uint64_t capacity_evictions() const { return capacity_evictions_; }
  /// Valid bytes homed on `node`. O(1): served from the usage counters.
  std::uint64_t node_bytes(net::NodeId node) const {
    auto it = node_valid_.find(node);
    return it != node_valid_.end() ? it->second : 0;
  }

  /// Mis-prefetch accounting for one prefetch round: of the chunks in
  /// `keys`, how many bytes are still prefetched-and-never-referenced.
  std::uint64_t unused_prefetched_bytes(const std::vector<ChunkKey>& keys) const;

 private:
  net::NodeId resolve_home(const ChunkKey& key, net::NodeId hint) const {
    if (round_robin_only_ || hint == kAutoHome) return home_node(key);
    return hint;
  }
  /// Evict the node's LRU clean chunks until it fits the per-node capacity.
  void enforce_capacity(net::NodeId node);
  /// Book a valid-byte delta for a chunk into the usage counters.
  void credit_valid(const ChunkMeta& m, std::uint64_t bytes) {
    total_valid_ += bytes;
    node_valid_[m.home] += bytes;
    owner_valid_[m.owner] += bytes;
  }
  void debit_valid(const ChunkMeta& m, std::uint64_t bytes) {
    total_valid_ -= bytes;
    node_valid_[m.home] -= bytes;
    owner_valid_[m.owner] -= bytes;
  }
  /// A chunk's dirty set just became empty: drop it from the per-file index.
  void unindex_dirty(pfs::FileId file, std::uint64_t index) {
    auto f = dirty_chunks_.find(file);
    if (f == dirty_chunks_.end()) return;
    f->second.erase(index);
    if (f->second.empty()) dirty_chunks_.erase(f);
  }

  sim::Engine& eng_;
  net::Network& net_;
  std::vector<net::NodeId> home_nodes_;
  CacheParams params_;
  bool round_robin_only_ = false;
  std::uint64_t capacity_evictions_ = 0;
  std::unordered_map<ChunkKey, ChunkMeta, ChunkKeyHash> chunks_;
  // Scale indexes, kept consistent with chunks_ on every mutation. At tens
  // of thousands of cached chunks the former full-table scans behind
  // dirty_segments / owner_bytes / node_bytes / total_valid_bytes (the
  // latter two sit on every capacity-bounded insert) dominated run time.
  std::unordered_map<pfs::FileId, std::set<std::uint64_t>> dirty_chunks_;
  std::unordered_map<net::NodeId, std::uint64_t> node_valid_;
  std::unordered_map<std::uint64_t, std::uint64_t> owner_valid_;
  std::uint64_t total_valid_ = 0;
};

}  // namespace dpar::cache
