#include "cache/global_cache.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/fanin.hpp"

namespace dpar::cache {

GlobalCache::GlobalCache(sim::Engine& eng, net::Network& net,
                         std::vector<net::NodeId> home_nodes, CacheParams params)
    : eng_(eng), net_(net), home_nodes_(std::move(home_nodes)), params_(params) {
  if (home_nodes_.empty()) throw std::invalid_argument("GlobalCache: no home nodes");
}

namespace {
/// Iterate chunk-local slices of a file-space segment.
template <typename Fn>
void slices(std::uint64_t chunk_bytes, const pfs::Segment& seg, Fn&& fn) {
  std::uint64_t off = seg.offset;
  std::uint64_t remaining = seg.length;
  while (remaining > 0) {
    const std::uint64_t index = off / chunk_bytes;
    const std::uint64_t within = off % chunk_bytes;
    const std::uint64_t take = std::min(remaining, chunk_bytes - within);
    fn(index, within, take);
    off += take;
    remaining -= take;
  }
}
}  // namespace

bool GlobalCache::covers(pfs::FileId file, const pfs::Segment& seg) const {
  bool all = true;
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           if (!all) return;
           auto it = chunks_.find(ChunkKey{file, index});
           if (it == chunks_.end() || !it->second.valid.covers(within, within + take))
             all = false;
         });
  return all;
}

std::vector<pfs::Segment> GlobalCache::missing(pfs::FileId file,
                                               const pfs::Segment& seg) const {
  std::vector<pfs::Segment> out;
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           const std::uint64_t chunk_base = index * params_.chunk_bytes;
           auto it = chunks_.find(ChunkKey{file, index});
           std::vector<ByteRange> gaps;
           if (it == chunks_.end()) {
             gaps.push_back(ByteRange{within, within + take});
           } else {
             gaps = it->second.valid.gaps_within(within, within + take);
           }
           for (const auto& g : gaps) {
             const std::uint64_t b = chunk_base + g.begin;
             if (!out.empty() && out.back().end() == b) {
               out.back().length += g.length();
             } else {
               out.push_back(pfs::Segment{b, g.length()});
             }
           }
         });
  return out;
}

void GlobalCache::insert(pfs::FileId file, const pfs::Segment& seg, std::uint64_t owner,
                         bool prefetched, net::NodeId home_hint) {
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           const ChunkKey key{file, index};
           const bool existed = chunks_.count(key) != 0;
           ChunkMeta& m = chunks_[key];
           if (!existed) m.home = resolve_home(key, home_hint);
           if (m.valid.empty()) {
             m.owner = owner;
             m.prefetched = prefetched;
             m.referenced = false;
           }
           credit_valid(m, m.valid.add(within, within + take));
           m.last_ref = eng_.now();
           if (params_.capacity_per_node > 0) enforce_capacity(m.home);
         });
}

void GlobalCache::write(pfs::FileId file, const pfs::Segment& seg, std::uint64_t owner,
                        net::NodeId home_hint) {
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           const ChunkKey key{file, index};
           const bool existed = chunks_.count(key) != 0;
           ChunkMeta& m = chunks_[key];
           if (!existed) m.home = resolve_home(key, home_hint);
           if (m.valid.empty()) m.owner = owner;
           credit_valid(m, m.valid.add(within, within + take));
           if (m.dirty.empty()) dirty_chunks_[file].insert(index);
           m.dirty.add(within, within + take);
           m.last_ref = eng_.now();
           m.referenced = true;
           m.prefetched = false;
           if (params_.capacity_per_node > 0) enforce_capacity(m.home);
         });
}

std::uint64_t GlobalCache::reference(pfs::FileId file, const pfs::Segment& seg) {
  std::uint64_t newly_used = 0;
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           auto it = chunks_.find(ChunkKey{file, index});
           if (it == chunks_.end()) return;
           ChunkMeta& m = it->second;
           m.last_ref = eng_.now();
           if (m.prefetched && !m.referenced) newly_used += m.valid.total_bytes();
           m.referenced = true;
           (void)within;
           (void)take;
         });
  return newly_used;
}

std::vector<pfs::Segment> GlobalCache::dirty_segments(pfs::FileId file) const {
  // The per-file index walks only the chunks that are actually dirty, in
  // ascending chunk order; within a chunk the ranges are already sorted, so
  // the concatenation is sorted and coalesces exactly like the offset-keyed
  // merge map this replaces.
  std::vector<pfs::Segment> out;
  auto f = dirty_chunks_.find(file);
  if (f == dirty_chunks_.end()) return out;
  for (std::uint64_t index : f->second) {
    auto it = chunks_.find(ChunkKey{file, index});
    if (it == chunks_.end()) continue;
    const std::uint64_t base = index * params_.chunk_bytes;
    for (const auto& r : it->second.dirty.ranges()) {
      const std::uint64_t b = base + r.begin;
      if (!out.empty() && out.back().end() == b) {
        out.back().length += r.length();
      } else {
        out.push_back(pfs::Segment{b, r.length()});
      }
    }
  }
  return out;
}

std::vector<std::pair<pfs::FileId, pfs::Segment>> GlobalCache::all_dirty_segments() const {
  std::vector<pfs::FileId> files;
  files.reserve(dirty_chunks_.size());
  // dpar-lint: allow(unordered-iter) keys are collected then sorted before use
  for (const auto& [f, idx] : dirty_chunks_) files.push_back(f);
  std::sort(files.begin(), files.end());
  std::vector<std::pair<pfs::FileId, pfs::Segment>> out;
  for (pfs::FileId f : files)
    for (const auto& seg : dirty_segments(f)) out.emplace_back(f, seg);
  return out;
}

void GlobalCache::clear_dirty(pfs::FileId file, const pfs::Segment& seg) {
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t within, std::uint64_t take) {
           auto it = chunks_.find(ChunkKey{file, index});
           if (it == chunks_.end()) return;
           if (it->second.dirty.remove(within, within + take) > 0 &&
               it->second.dirty.empty())
             unindex_dirty(file, index);
         });
}

std::uint64_t GlobalCache::invalidate_server(const pfs::StripeLayout& layout,
                                             std::uint32_t server) {
  std::uint64_t invalidated = 0;
  // dpar-lint: allow(unordered-iter) commutative byte sum + whole-table erase;
  // no per-chunk effect depends on visit order
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    ChunkMeta& meta = it->second;
    const std::uint64_t chunk_base = it->first.index * params_.chunk_bytes;
    // Walk the chunk stripe unit by stripe unit; units striped to the failed
    // server lose their clean valid bytes (dirty bytes are the application's
    // own data and survive for write-back).
    for (std::uint64_t off = chunk_base - chunk_base % layout.unit_bytes;
         off < chunk_base + params_.chunk_bytes; off += layout.unit_bytes) {
      if (layout.server_of(off) != server) continue;
      const std::uint64_t lo =
          std::max(off, chunk_base) - chunk_base;  // chunk-local
      const std::uint64_t hi =
          std::min(off + layout.unit_bytes, chunk_base + params_.chunk_bytes) -
          chunk_base;
      if (!meta.valid.intersects(lo, hi)) continue;
      // Clean bytes in [lo, hi) = valid minus dirty: remove the whole window,
      // then restore the dirty intersection.
      std::uint64_t lost = meta.valid.remove(lo, hi);
      for (const auto& d : meta.dirty.ranges()) {
        const std::uint64_t dlo = std::max(d.begin, lo);
        const std::uint64_t dhi = std::min(d.end, hi);
        if (dlo < dhi) lost -= meta.valid.add(dlo, dhi);
      }
      invalidated += lost;
      debit_valid(meta, lost);
    }
    if (meta.valid.empty() && meta.dirty.empty()) {
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  return invalidated;
}

std::uint64_t GlobalCache::evict_idle(sim::Time now) {
  std::uint64_t evicted = 0;
  // dpar-lint: allow(unordered-iter) commutative byte sum + predicate erase;
  // the surviving set is independent of visit order
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.dirty.empty() && now - it->second.last_ref >= params_.idle_eviction) {
      const std::uint64_t bytes = it->second.valid.total_bytes();
      evicted += bytes;
      debit_valid(it->second, bytes);
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

void GlobalCache::drop_clean(std::uint64_t owner) {
  // dpar-lint: allow(unordered-iter) predicate erase; the surviving set is
  // independent of visit order
  for (auto it = chunks_.begin(); it != chunks_.end();) {
    if (it->second.owner == owner && it->second.dirty.empty()) {
      debit_valid(it->second, it->second.valid.total_bytes());
      it = chunks_.erase(it);
    } else {
      ++it;
    }
  }
}

void GlobalCache::transfer(pfs::FileId file, const pfs::Segment& seg,
                           net::NodeId from_node, bool to_cache,
                           sim::UniqueFunction done) {
  // Group bytes by (placed) home node and move one message per home.
  std::map<net::NodeId, std::uint64_t> per_home;
  slices(params_.chunk_bytes, seg,
         [&](std::uint64_t index, std::uint64_t, std::uint64_t take) {
           per_home[placed_home(ChunkKey{file, index})] += take;
         });
  if (per_home.empty()) {
    eng_.after(0, std::move(done));
    return;
  }
  auto* fan = sim::make_fanin(per_home.size(), std::move(done));
  for (const auto& [home, bytes] : per_home) {
    if (to_cache) {
      // put: payload travels to the home node.
      net_.send(from_node, home, bytes + 64, [fan] { fan->complete(); });
    } else {
      // get: small request, payload comes back.
      const auto h = home;
      const auto b = bytes;
      net_.send(from_node, h, 64, [this, h, from_node, b, fan] {
        net_.send(h, from_node, b + 64, [fan] { fan->complete(); });
      });
    }
  }
}

void GlobalCache::enforce_capacity(net::NodeId node) {
  // The usage check is O(1) via the per-node counters (it runs on every
  // capacity-bounded insert slice); the victim scan below stays the full
  // chunk-table walk, preserving the exact first-smallest-last_ref
  // tie-breaking of the original — eviction order is part of the
  // deterministic output. Dirty and just-touched chunks are spared.
  std::uint64_t used = node_bytes(node);
  while (used > params_.capacity_per_node) {
    const ChunkKey* victim = nullptr;
    sim::Time oldest = INT64_MAX;
    // Smallest-(last_ref, key) victim: the key tie-break makes the choice
    // independent of the unordered table's hash order, so eviction order —
    // which is part of the deterministic output — never leaks it.
    // dpar-lint: allow(unordered-iter) min-scan with deterministic tie-break
    for (const auto& [key, meta] : chunks_) {
      if (meta.home != node || !meta.dirty.empty()) continue;
      if (meta.last_ref < oldest ||
          (meta.last_ref == oldest && victim != nullptr && key < *victim)) {
        oldest = meta.last_ref;
        victim = &key;
      }
    }
    if (victim == nullptr) return;  // everything left is dirty
    auto it = chunks_.find(*victim);
    used -= it->second.valid.total_bytes();
    debit_valid(it->second, it->second.valid.total_bytes());
    chunks_.erase(it);
    ++capacity_evictions_;
  }
}

std::uint64_t GlobalCache::unused_prefetched_bytes(
    const std::vector<ChunkKey>& keys) const {
  std::uint64_t sum = 0;
  for (const ChunkKey& k : keys) {
    auto it = chunks_.find(k);
    if (it != chunks_.end() && it->second.prefetched && !it->second.referenced)
      sum += it->second.valid.total_bytes();
  }
  return sum;
}

}  // namespace dpar::cache
