#include "cache/rangeset.hpp"

#include <algorithm>

namespace dpar::cache {

void RangeSet::add(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  // Find the first range that could merge: the one at or before `begin`.
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = ranges_.erase(prev);
    }
  }
  // Absorb all ranges starting within [begin, end].
  while (it != ranges_.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = ranges_.erase(it);
  }
  ranges_.emplace(begin, end);
}

void RangeSet::remove(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) --it;
  while (it != ranges_.end() && it->first < end) {
    const std::uint64_t rb = it->first;
    const std::uint64_t re = it->second;
    if (re <= begin) {
      ++it;
      continue;
    }
    it = ranges_.erase(it);
    if (rb < begin) ranges_.emplace(rb, begin);
    if (re > end) it = ranges_.emplace(end, re).first;
  }
}

bool RangeSet::covers(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  auto it = ranges_.upper_bound(begin);
  if (it == ranges_.begin()) return false;
  --it;
  return it->second >= end;
}

bool RangeSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > begin) return true;
  }
  return it != ranges_.end() && it->first < end;
}

std::vector<ByteRange> RangeSet::gaps_within(std::uint64_t begin, std::uint64_t end) const {
  std::vector<ByteRange> gaps;
  std::uint64_t cursor = begin;
  auto it = ranges_.upper_bound(begin);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > cursor) cursor = std::min(prev->second, end);
  }
  for (; it != ranges_.end() && it->first < end; ++it) {
    if (it->first > cursor) gaps.push_back(ByteRange{cursor, it->first});
    cursor = std::max(cursor, std::min(it->second, end));
  }
  if (cursor < end) gaps.push_back(ByteRange{cursor, end});
  return gaps;
}

std::uint64_t RangeSet::total_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& [b, e] : ranges_) sum += e - b;
  return sum;
}

std::vector<ByteRange> RangeSet::ranges() const {
  std::vector<ByteRange> out;
  out.reserve(ranges_.size());
  for (const auto& [b, e] : ranges_) out.push_back(ByteRange{b, e});
  return out;
}

}  // namespace dpar::cache
