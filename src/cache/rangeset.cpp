#include "cache/rangeset.hpp"

#include <algorithm>

namespace dpar::cache {

// Branchless binary searches: the loop body compiles to a conditional move,
// so the branch predictor never sees the (data-dependent) comparison result.
// Both maintain the invariant "answer lies in [base, base + n]".

std::size_t RangeSet::upper_bound_begin(std::uint64_t x) const {
  std::size_t base = 0;
  std::size_t n = ranges_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    base = (ranges_[base + half - 1].begin <= x) ? base + half : base;
    n -= half;
  }
  if (n == 1 && ranges_[base].begin <= x) ++base;
  return base;
}

std::size_t RangeSet::lower_bound_end(std::uint64_t x) const {
  std::size_t base = 0;
  std::size_t n = ranges_.size();
  while (n > 1) {
    const std::size_t half = n / 2;
    base = (ranges_[base + half - 1].end < x) ? base + half : base;
    n -= half;
  }
  if (n == 1 && ranges_[base].end < x) ++base;
  return base;
}

std::uint64_t RangeSet::add(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return 0;
  // Fast path: appending at or past the tail, the common sequential pattern.
  if (ranges_.empty() || begin > ranges_.back().end) {
    ranges_.push_back(ByteRange{begin, end});
    total_ += end - begin;
    return end - begin;
  }
  if (begin == ranges_.back().end) {
    const std::uint64_t grown = std::max(ranges_.back().end, end) - ranges_.back().end;
    ranges_.back().end += grown;
    total_ += grown;
    return grown;
  }
  // Merge window: every range overlapping or adjacent to [begin, end).
  const std::size_t lo = lower_bound_end(begin);   // first with r.end >= begin
  const std::size_t hi = upper_bound_begin(end);   // first with r.begin > end
  if (lo >= hi) {
    ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(lo),
                   ByteRange{begin, end});
    total_ += end - begin;
    return end - begin;
  }
  std::uint64_t window_bytes = 0;
  for (std::size_t i = lo; i < hi; ++i) window_bytes += ranges_[i].length();
  const std::uint64_t merged_begin = std::min(begin, ranges_[lo].begin);
  const std::uint64_t merged_end = std::max(end, ranges_[hi - 1].end);
  ranges_[lo] = ByteRange{merged_begin, merged_end};
  ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(lo) + 1,
                ranges_.begin() + static_cast<std::ptrdiff_t>(hi));
  const std::uint64_t grown = (merged_end - merged_begin) - window_bytes;
  total_ += grown;
  DPAR_IF_CHECKING(check_invariants());
  return grown;
}

std::uint64_t RangeSet::remove(std::uint64_t begin, std::uint64_t end) {
  if (begin >= end) return 0;
  // Affected window: ranges with r.end > begin and r.begin < end.
  const std::size_t lo = lower_bound_end(begin + 1);  // first with r.end > begin
  const std::size_t hi = upper_bound_begin(end - 1);  // first with r.begin >= end
  if (lo >= hi) return 0;
  std::uint64_t removed = 0;
  for (std::size_t i = lo; i < hi; ++i)
    removed += std::min(ranges_[i].end, end) - std::max(ranges_[i].begin, begin);
  const ByteRange left{ranges_[lo].begin, begin};    // survives if non-empty
  const ByteRange right{end, ranges_[hi - 1].end};   // survives if non-empty
  std::size_t keep = 0;
  if (left.begin < left.end) ++keep;
  if (right.begin < right.end) ++keep;
  const std::size_t window = hi - lo;
  if (keep <= window) {
    std::size_t out = lo;
    if (left.begin < left.end) ranges_[out++] = left;
    if (right.begin < right.end) ranges_[out++] = right;
    ranges_.erase(ranges_.begin() + static_cast<std::ptrdiff_t>(out),
                  ranges_.begin() + static_cast<std::ptrdiff_t>(hi));
  } else {
    // Single range split into two: one insert.
    ranges_[lo] = left;
    ranges_.insert(ranges_.begin() + static_cast<std::ptrdiff_t>(lo) + 1, right);
  }
  total_ -= removed;
  DPAR_IF_CHECKING(check_invariants());
  return removed;
}

void RangeSet::check_invariants() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    DPAR_ASSERT(ranges_[i].begin < ranges_[i].end, "RangeSet: empty range stored");
    if (i > 0)
      DPAR_ASSERT(ranges_[i - 1].end < ranges_[i].begin,
                  "RangeSet: ranges out of order, overlapping, or adjacent");
    sum += ranges_[i].length();
  }
  DPAR_ASSERT(sum == total_,
              "RangeSet: incremental byte total diverged from range sum");
}

bool RangeSet::covers(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return true;
  const std::size_t i = upper_bound_begin(begin);
  return i > 0 && ranges_[i - 1].end >= end;
}

bool RangeSet::intersects(std::uint64_t begin, std::uint64_t end) const {
  if (begin >= end) return false;
  const std::size_t i = upper_bound_begin(begin);
  if (i > 0 && ranges_[i - 1].end > begin) return true;
  return i < ranges_.size() && ranges_[i].begin < end;
}

std::vector<ByteRange> RangeSet::gaps_within(std::uint64_t begin, std::uint64_t end) const {
  std::vector<ByteRange> gaps;
  if (begin >= end) return gaps;
  std::uint64_t cursor = begin;
  std::size_t i = upper_bound_begin(begin);
  if (i > 0 && ranges_[i - 1].end > cursor)
    cursor = std::min(ranges_[i - 1].end, end);
  for (; i < ranges_.size() && ranges_[i].begin < end; ++i) {
    if (ranges_[i].begin > cursor) gaps.push_back(ByteRange{cursor, ranges_[i].begin});
    cursor = std::max(cursor, std::min(ranges_[i].end, end));
  }
  if (cursor < end) gaps.push_back(ByteRange{cursor, end});
  return gaps;
}

}  // namespace dpar::cache
