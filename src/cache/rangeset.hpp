// Sorted, coalescing set of half-open byte ranges [begin, end).
//
// Used per cache chunk to track which bytes are valid and which are dirty,
// and by CRM to compute write-back holes. This sits on CRM's sort/merge/
// hole-fill hot path and in every server-cache lookup, so storage is a flat
// sorted vector (contiguous, cache-friendly, no per-node allocation) and the
// point lookups use a branchless lower bound.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/debug.hpp"

namespace dpar::cache {

struct ByteRange {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t length() const { return end - begin; }
  friend bool operator==(const ByteRange&, const ByteRange&) = default;
};

class RangeSet {
 public:
  /// Insert [begin, end), merging with any overlapping/adjacent ranges.
  /// Returns the number of bytes newly covered (0 if already present).
  std::uint64_t add(std::uint64_t begin, std::uint64_t end);

  /// Remove [begin, end) from the set (splitting ranges as needed).
  /// Returns the number of bytes actually removed (0 if none were covered).
  std::uint64_t remove(std::uint64_t begin, std::uint64_t end);

  /// True when [begin, end) is fully covered.
  bool covers(std::uint64_t begin, std::uint64_t end) const;

  /// True when [begin, end) overlaps any range.
  bool intersects(std::uint64_t begin, std::uint64_t end) const;

  /// Sub-ranges of [begin, end) NOT covered by the set (the holes).
  std::vector<ByteRange> gaps_within(std::uint64_t begin, std::uint64_t end) const;

  /// O(1): maintained incrementally by add/remove.
  std::uint64_t total_bytes() const { return total_; }
  bool empty() const { return ranges_.empty(); }
  const std::vector<ByteRange>& ranges() const { return ranges_; }
  void clear() {
    ranges_.clear();
    total_ = 0;
  }

  /// Full structural validation (debug invariant layer): sortedness, pairwise
  /// disjoint/non-adjacent, non-empty ranges, and the incrementally maintained
  /// byte total matching the sum of range lengths. Aborts via DPAR_ASSERT on
  /// violation. Called after every add/remove when DPAR_CHECK_INVARIANTS is
  /// compiled in, and directly by tests.
  void check_invariants() const;

#if DPAR_CHECK_INVARIANTS
  /// Test-only corruption hooks for the invariant layer's own death tests —
  /// exist solely so a test can prove DPAR_ASSERT fires on a broken set.
  void debug_corrupt_total_for_test(std::uint64_t total) { total_ = total; }
  void debug_corrupt_order_for_test() {
    if (ranges_.size() >= 2) std::swap(ranges_.front(), ranges_.back());
  }
#endif

 private:
  /// First index whose range begins after `x` (branchless binary search).
  std::size_t upper_bound_begin(std::uint64_t x) const;
  /// First index whose range ends at or after `x` (branchless binary search).
  std::size_t lower_bound_end(std::uint64_t x) const;

  /// Invariant: sorted by begin, pairwise disjoint and non-adjacent
  /// (r[i].end < r[i+1].begin), every range non-empty.
  std::vector<ByteRange> ranges_;
  /// Invariant: sum of all range lengths. The add/remove byte deltas feed
  /// the cache's per-node/per-owner usage counters, which replaced full
  /// chunk-table scans.
  std::uint64_t total_ = 0;
};

}  // namespace dpar::cache
