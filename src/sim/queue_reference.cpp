// Reference event queue: the slab 4-ary min-heap, frozen verbatim from the
// pre-ladder engine (PR 1's layout: shallower than binary, cache-line
// friendly children, amortized stale-key compaction). Selected with
// DPAR_ENGINE_QUEUE=heap and kept as the differential oracle the ladder
// queue is byte-compared against — in the randomized queue tests, in the
// engine-level differential tests, and in CI's heap-vs-ladder bench diffs.
// Do not "improve" this file; its behaviour is the contract.
#include "sim/event_queue.hpp"

#include "sim/debug.hpp"

namespace dpar::sim {

void EventQueue::heap_push_(const EventKey& k) {
  heap_.push_back(k);
  heap_sift_up_(heap_.size() - 1);
}

void EventQueue::heap_pop_min_() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) heap_sift_down_(0);
}

void EventQueue::heap_sift_up_(std::size_t i) {
  const EventKey k = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(k, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void EventQueue::heap_sift_down_(std::size_t i) {
  const std::size_t n = heap_.size();
  const EventKey k = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    if (!before(heap_[best], k)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = k;
}

/// Restore the heap property bottom-up (Floyd): only internal nodes sift.
/// O(n) regardless of how disordered the tail is, which makes bulk key
/// appends (outbox batches) cheaper than per-key sift-up at scale.
void EventQueue::heap_rebuild_() {
  if (heap_.size() > 1)
    for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;)
      heap_sift_down_(i);
}

void EventQueue::heap_compact_() {
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i)
    if (!stale_key(heap_[i])) heap_[out++] = heap_[i];
  heap_.resize(out);
  heap_rebuild_();
  stale_ = 0;
  DPAR_IF_CHECKING(heap_check_invariants_());
}

/// Drop stale keys off the top; the earliest live event time, or
/// kNoEventTime.
Time EventQueue::heap_next_time_() {
  while (!heap_.empty() && stale_key(heap_.front())) {
    heap_pop_min_();
    --stale_;
  }
  return heap_.empty() ? kNoEventTime : heap_.front().t;
}

void EventQueue::heap_check_invariants_() const {
  // Heap property: no child orders before its parent.
  for (std::size_t i = 1; i < heap_.size(); ++i)
    DPAR_ASSERT(!before(heap_[i], heap_[(i - 1) / 4]),
                "event heap: child precedes its parent");
  std::size_t stale_keys = 0;
  for (const EventKey& k : heap_) {
    DPAR_ASSERT(k.slot < gens_->size(), "event heap: key slot out of range");
    DPAR_ASSERT(k.gen != 0, "event heap: key with reserved generation 0");
    if (stale_key(k)) ++stale_keys;
  }
  DPAR_ASSERT(stale_keys == stale_, "event heap: stale-key count out of sync");
}

}  // namespace dpar::sim
