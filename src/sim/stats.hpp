// Small statistics helpers shared across the simulator: running moments,
// exponentially-weighted moving averages, and a time-window slot sampler used
// by the EMC locality daemons.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.hpp"

namespace dpar::sim {

/// Welford running mean/variance with min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  void reset() { *this = RunningStat{}; }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) : alpha_(alpha) {}
  void add(double x) {
    value_ = seen_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seen_ = true;
  }
  bool has_value() const { return seen_; }
  double value() const { return value_; }
  void reset() { seen_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seen_ = false;
};

/// Accumulates samples into fixed-width time slots; the EMC daemons evaluate
/// per-slot averages ("requests observed ... in constant time slots", §IV-B).
class SlotSampler {
 public:
  explicit SlotSampler(Time slot_width = msec(500)) : width_(slot_width) {}

  /// Add a sample at simulated time `t`.
  void add(Time t, double value) {
    roll(t);
    cur_.add(value);
  }

  /// Average of the most recently *completed* slot; 0 if none.
  double last_slot_mean(Time now) {
    roll(now);
    return last_mean_;
  }
  std::uint64_t last_slot_count(Time now) {
    roll(now);
    return last_count_;
  }
  Time slot_width() const { return width_; }

 private:
  void roll(Time t) {
    const std::int64_t slot = t / width_;
    if (slot != cur_slot_) {
      if (cur_.count() > 0) {
        last_mean_ = cur_.mean();
        last_count_ = cur_.count();
      } else if (slot > cur_slot_ + 1) {
        // A fully empty intervening slot clears the reading.
        last_mean_ = 0.0;
        last_count_ = 0;
      }
      cur_.reset();
      cur_slot_ = slot;
    }
  }

  Time width_;
  std::int64_t cur_slot_ = 0;
  RunningStat cur_;
  double last_mean_ = 0.0;
  std::uint64_t last_count_ = 0;
};

/// (time, value) series for timeline figures (Fig 7a/7b).
struct TimeSeries {
  std::vector<std::pair<Time, double>> points;
  void add(Time t, double v) { points.emplace_back(t, v); }
};

/// Log-spaced histogram (powers of two) with percentile queries; used for
/// per-call I/O latency distributions.
class Histogram {
 public:
  void add(double x) {
    ++buckets_[bucket_of(x)];
    ++count_;
    sum_ += x;
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Fold `other` into this histogram. Because the buckets are fixed, a merge
  /// of per-shard histograms in a canonical shard order reproduces the exact
  /// counts and sum of single-shard accumulation in that order (the sum is
  /// FP-addition-order-dependent, which is why the order must be canonical).
  void merge(const Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
  }

  /// Value at quantile q in [0,1] (upper bound of the containing bucket).
  double percentile(double q) const {
    if (count_ == 0) return 0.0;
    const std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) return bucket_upper(i);
    }
    return bucket_upper(kBuckets - 1);
  }

 private:
  static constexpr std::size_t kBuckets = 64;

  static std::size_t bucket_of(double x) {
    if (x <= 1.0) return 0;
    const int e = static_cast<int>(std::ceil(std::log2(x)));
    return std::min<std::size_t>(static_cast<std::size_t>(e), kBuckets - 1);
  }
  static double bucket_upper(std::size_t i) { return std::ldexp(1.0, static_cast<int>(i)); }

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace dpar::sim
