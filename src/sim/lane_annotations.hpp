// Lane-ownership annotations — the static half of the PDES lane contract.
//
// The conservative-PDES engine (engine.hpp) enforces lane isolation at
// runtime: DPAR_ASSERT aborts on a cross-lane post inside the lookahead
// window, a cross-lane cancel inside a window, or an event landing behind
// the target lane's clock. Those checks only fire on the path a given run
// happens to execute. The macros below make the same contract a property of
// the *source*, checked over every path by tools/dpar_analyze.py (the
// capability model follows Clang's thread-safety analysis: state declares
// who may touch it, entry points declare what context they run in, and the
// analyzer proves the two agree).
//
//   DPAR_LANE_OWNED(lane_expr)
//       On a class: every instance is owned by the lane `lane_expr`
//       evaluates to (an expression over the class's own members, e.g.
//       `lane_` or `lane_of(node_)`). Methods run in that lane; posting a
//       callback that captures `this` into a *different* lane is flagged.
//   DPAR_EXCLUSIVE_LANE
//       On a data member: mutated only while every other lane is quiescent
//       — i.e. from the engine's exclusive lane (EMC fold state, the repair
//       tracker, the durability ledger). On a function: the function is an
//       exclusive-lane note handler (it only ever runs as an exclusive-lane
//       event, or during setup/teardown when no window is executing), so it
//       may mutate DPAR_EXCLUSIVE_LANE members.
//   DPAR_LANE_SAFE
//       On a data member: safe to touch from any lane without routing —
//       per-lane sharded tables (counter shards, observation shards),
//       immutable-after-setup configuration, or state whose indexing
//       guarantees one-lane access. The justification belongs in a comment
//       at the member.
//   DPAR_CROSS_LANE_API
//       On a function: entry point invoked on behalf of callers in other
//       logical processes (Network::send, Emc::observe, the robust-client
//       retry protocol). No synchronous call path from such a function may
//       reach raw Engine::at()/after() — scheduling must go through the
//       lane-routed channel (at_in/after_in/at_all_in) or the batch
//       variants, or carry a reviewed `// dpar-lint: allow(...)` escape.
//
// Cost: zero, everywhere. Under Clang the macros expand to
// __attribute__((annotate("dpar::..."))), which emits no object code (the
// annotation lives in IR-only metadata, dropped at object emission — the
// AnnotationsZeroCost ctest diffs the generated code to prove it). Under
// any other compiler, or with DPAR_NO_LANE_ANNOTATIONS defined, they expand
// to nothing at all. tools/dpar_analyze.py reads the attributes through
// libclang when available and falls back to recognizing the macro tokens
// textually, so the contract is checked even where clang is not installed.
#pragma once

#if !defined(DPAR_NO_LANE_ANNOTATIONS) && defined(__clang__) && \
    defined(__has_attribute)
#if __has_attribute(annotate)
#define DPAR_LANE_ANNOTATE(text) __attribute__((annotate(text)))
#endif
#endif
#ifndef DPAR_LANE_ANNOTATE
#define DPAR_LANE_ANNOTATE(text)
#endif

/// Class attribute: instances are owned by the lane `__VA_ARGS__` evaluates
/// to. Placed between the class-key and the class name:
///   class DPAR_LANE_OWNED(lane_) RetryClient { ... };
#define DPAR_LANE_OWNED(...) \
  DPAR_LANE_ANNOTATE("dpar::lane_owned=" #__VA_ARGS__)

/// Member: mutated only with every lane quiescent (exclusive-lane events,
/// setup, teardown). Function: an exclusive-lane note handler.
#define DPAR_EXCLUSIVE_LANE DPAR_LANE_ANNOTATE("dpar::exclusive_lane")

/// Member: provably safe to touch from any lane (sharded / frozen after
/// setup / one-lane indexed); say why in a comment.
#define DPAR_LANE_SAFE DPAR_LANE_ANNOTATE("dpar::lane_safe")

/// Function: entry point for cross-logical-process callers; must not reach
/// raw Engine::at()/after() on any synchronous call path.
#define DPAR_CROSS_LANE_API DPAR_LANE_ANNOTATE("dpar::cross_lane_api")
