// Discrete-event simulation engine with optional conservative parallelism.
//
// The default engine is a single-threaded event loop over a slab-allocated
// 4-ary heap of (time, sequence) ordered callbacks. Sequence numbers break
// ties so that two events scheduled for the same instant always fire in
// scheduling order, which makes every run deterministic.
//
// A simulation can additionally be *partitioned* into lanes — logical
// processes in PDES terms — each owning its own event heap, clock and
// sequence counter. Lanes execute in parallel under a conservative
// (lookahead-based) protocol:
//
//  * Lane 0 always exists and is the default home of every event; extra
//    lanes are created with add_lane() before the run starts.
//  * Cross-lane interactions go through at_in()/after_in(). Inside a
//    parallel window a cross-lane call does not touch the target heap;
//    it is appended to the calling lane's per-target outbox queue and
//    delivered at the next window barrier — source lanes in lane order,
//    each (source, target) queue as one batch — so the target's sequence
//    numbers are assigned deterministically and the barrier does one
//    bulk heap insert per touched (source, target) pair instead of one
//    sift per event.
//  * A window executes, in every lane concurrently, all events with
//    t < horizon where horizon = min(next event time) + lookahead. The
//    lookahead is the minimum cross-lane latency (the network model's
//    switch latency), so no message posted during a window can land
//    inside it. DPAR_ASSERT enforces this on every cross-lane post.
//  * An *exclusive* lane (add_exclusive_lane) holds events that may read
//    any lane's state — EMC and monitor sampling ticks. Its events run
//    one at a time with no other lane executing: at time tE, every lane
//    has fired exactly its events with t < tE. Exclusive events order
//    before same-timestamp lane events; within a lane the existing
//    (time, seq) order is unchanged. This total order is a *different*
//    deterministic schedule from the unpartitioned engine's global
//    sequence order, but it is byte-identical at every worker count.
//
// The single-lane fast path is exactly the pre-PDES engine: no locks, no
// atomics, no thread-local lookups — just one extra predictable branch on
// the hot accessors.
//
// Hot-path design (the whole simulator runs through here):
//  * Callbacks are `UniqueFunction`s with a 48-byte small buffer — the common
//    lambda captures (a few pointers) never touch the allocator.
//  * Events live in a free-listed slab; `EventId` is a generation-tagged slot
//    index plus its owning lane, so `cancel()` is an O(1) validity check that
//    frees the slot (and destroys the callback) immediately — no hash sets,
//    no deferred cleanup.
//  * Each lane's (time, seq, slot, gen) keys live in a tiered EventQueue
//    (event_queue.hpp): by default a ladder/timer-wheel structure whose
//    buckets are sorted only at drain and whose cancels never trigger any
//    re-sorting, with the original slab 4-ary heap retained behind
//    DPAR_ENGINE_QUEUE=heap as the differential oracle. Cancelled events
//    leave a stale key behind that is skipped on pop and reclaimed by an
//    amortized linear purge, so cancel-heavy workloads stay bounded in
//    memory on either queue kind. Pop order is the exact (time, seq) total
//    order on both, so simulations are byte-identical across queue kinds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/func.hpp"
#include "sim/time.hpp"

namespace dpar::sim {

/// Identifies one event lane (logical process). Lane 0 is the default lane
/// of an unpartitioned engine.
using LaneId = std::uint32_t;

/// Handle for a scheduled event; usable to cancel it before it fires.
/// A generation-tagged slot index within its owning lane: stale handles
/// (fired, cancelled, or from a reused slot) are detected in O(1) and never
/// alias a newer event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  ///< 0 means "no event" (live slots have gen >= 1).
  LaneId lane = 0;
  explicit operator bool() const { return gen != 0; }
};

class Engine {
 public:
  using Callback = UniqueFunction;

  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Schedule `cb` at absolute time `t` (must be >= now()) in the calling
  /// context's lane (lane 0 outside of lane execution).
  EventId at(Time t, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds from now. Throws
  /// std::overflow_error when `now() + delay` would overflow simulated time.
  EventId after(Time delay, Callback cb);

  /// Schedule ONE event at `t` that fires every callback in order. Equivalent
  /// to scheduling each callback at `t` back-to-back — their sequence numbers
  /// would be consecutive, so no other event can interleave — but it costs a
  /// single heap entry. Used to coalesce barrier releases and collective
  /// round completions (one completion per round instead of one per rank).
  /// Returns the empty id for an empty batch; the batch as a whole is
  /// cancellable via the returned id.
  EventId at_all(Time t, std::vector<Callback> cbs);
  EventId after_all(Time delay, std::vector<Callback> cbs);

  /// at_all targeting a specific lane: ONE event in `lane` at `t` firing the
  /// callbacks in order. Used by the split-lane job coordinator to release a
  /// node's barrier waiters as a single cross-lane message.
  EventId at_all_in(LaneId lane, Time t, std::vector<Callback> cbs);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or `id` is empty. The event's slot and callback are reclaimed
  /// immediately (and the slot becomes reusable), even for far-future events.
  /// On a partitioned engine an event may only be cancelled from its own
  /// lane while a window executes (cross-lane cancels would race).
  bool cancel(EventId id);

  /// Current simulated time of the calling context's lane.
  Time now() const { return pdes_parallel_ ? pdes_now_() : now_; }

  /// Fire the next event. Returns false when no events remain.
  /// Single-lane engines only.
  bool step();

  /// Run until the queue drains or `max_events` have fired. On a partitioned
  /// engine this executes the conservative parallel protocol (`max_events`
  /// is then honoured at window granularity).
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= t, then advance the clock to exactly t.
  /// On a partitioned engine the windows are capped at t, so this pauses
  /// every lane at the same cut — mid-run introspection stays available.
  void run_until(Time t);

  /// True when no live events are pending in any lane.
  bool empty() const;

  /// Number of events fired so far across all lanes (for perf accounting
  /// and tests).
  std::uint64_t events_fired() const;

  /// Live (scheduled, not yet fired or cancelled) events across all lanes.
  std::size_t live_events() const;

  /// Slab capacity in slots, summed over lanes — grows to the peak number of
  /// simultaneously live events and is then reused; regression-tested to
  /// stay flat under schedule/cancel churn.
  std::size_t slab_slots() const;

  /// Queue keys, including stale keys of cancelled events awaiting the
  /// amortized purge (bounded at ~2x live_events() on either queue kind).
  std::size_t queue_depth() const;

  /// Full structural validation (debug invariant layer) of every lane:
  /// queue ordering (heap property / ladder bucket monotonicity),
  /// generation-tag validity of every live key, live/stale bookkeeping,
  /// and freelist consistency. Aborts via DPAR_ASSERT on violation. Called
  /// automatically after every purge when DPAR_CHECK_INVARIANTS is
  /// compiled in, and directly by tests.
  void check_invariants() const;

  /// Select the event-queue implementation (see event_queue.hpp). The
  /// engine starts on queue_kind_from_env(); this override must happen
  /// before any event is scheduled (it rebuilds every lane's empty queue)
  /// and is inherited by lanes created afterwards. Throws std::logic_error
  /// once events exist.
  void set_queue_kind(QueueKind kind);
  QueueKind queue_kind() const { return queue_kind_; }

  // ---- Conservative PDES partitioning ----

  /// Create a new lane (logical process). Must be called before the run
  /// starts. Returns the lane's id.
  LaneId add_lane();

  /// Create the exclusive lane: its events run with every other lane at a
  /// window barrier, so they may read and write any lane's state. At most
  /// one exclusive lane exists per engine.
  LaneId add_exclusive_lane();

  /// The exclusive lane's id, or 0 when none was created — so
  /// `after_in(exclusive_lane(), ...)` degrades to plain `after()` on an
  /// unpartitioned engine.
  LaneId exclusive_lane() const { return excl_; }

  /// True once extra lanes exist; run() then uses the parallel protocol.
  bool partitioned() const { return lanes_.size() > 1; }

  std::uint32_t num_lanes() const { return static_cast<std::uint32_t>(lanes_.size()); }

  /// The lane whose event is currently executing (lane 0 outside of any
  /// event, e.g. during setup).
  LaneId current_lane() const;

  /// Minimum cross-lane scheduling latency, in nanoseconds. Every
  /// at_in()/after_in() targeting another lane from inside a window must land
  /// at least this far past the window's start. Must be > 0 to run a
  /// partitioned engine.
  void set_lookahead(Time l);
  Time lookahead() const { return lookahead_; }

  /// Worker threads for partitioned runs (>= 1). Workers beyond the number
  /// of non-exclusive lanes are not spawned. 1 executes the identical
  /// windowed schedule serially — the CI determinism baseline.
  void set_pdes_workers(unsigned w);
  unsigned pdes_workers() const { return workers_; }

  /// Schedule into a specific lane. Same-lane calls (and any call outside a
  /// window) push directly; a cross-lane call during a window goes through
  /// the calling lane's outbox channel and returns the empty EventId (the
  /// event is not cancellable — it does not exist in the target heap until
  /// the window barrier).
  EventId at_in(LaneId lane, Time t, Callback cb);
  EventId after_in(LaneId lane, Time delay, Callback cb);

 private:
  struct Lane;

  /// The lane a parallel worker is currently executing. Engines never share
  /// worker threads, so a plain pointer per thread suffices; it is null
  /// outside parallel windows (serial execution reads members instead).
  static thread_local Lane* t_lane_;

  Lane& lane_(LaneId id) const { return *lanes_[id]; }
  EventId schedule_(Lane& L, Time t, Callback cb);
  std::uint64_t drain_lane_(Lane& L, Time horizon);
  void drain_outboxes_();
  std::uint64_t run_serial_(std::uint64_t max_events);
  std::uint64_t run_pdes_(std::uint64_t max_events, Time bound);
  Time pdes_now_() const;

  std::vector<std::unique_ptr<Lane>> lanes_;
  Lane* lane0_ = nullptr;  ///< cached lanes_[0] for the single-lane fast path
  /// Serial-context clock: mirrors the executing lane's clock whenever
  /// events run on the calling thread (always, except inside a parallel
  /// window, where each worker reads its lane's clock via TLS).
  Time now_ = 0;
  Time lookahead_ = 0;
  Time horizon_ = 0;      ///< end of the currently executing window
  LaneId cur_lane_ = 0;   ///< serial-context executing lane
  LaneId excl_ = 0;       ///< exclusive lane id; 0 = none
  QueueKind queue_kind_;  ///< event-queue implementation for every lane
  unsigned workers_ = 1;
  bool pdes_parallel_ = false;  ///< a parallel window is executing
  bool in_window_ = false;      ///< a window (serial or parallel) is executing
};

}  // namespace dpar::sim
