// Discrete-event simulation engine.
//
// A single-threaded event loop over a priority queue of (time, sequence)
// ordered callbacks. Sequence numbers break ties so that two events scheduled
// for the same instant always fire in scheduling order, which makes every run
// deterministic. Cancellation is lazy: cancelled events stay in the heap and
// are skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace dpar::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
struct EventId {
  std::uint64_t seq = 0;  ///< 0 means "no event".
  explicit operator bool() const { return seq != 0; }
};

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId at(Time t, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds from now.
  EventId after(Time delay, Callback cb) { return at(now_ + delay, std::move(cb)); }

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or `id` is empty.
  bool cancel(EventId id);

  /// Current simulated time.
  Time now() const { return now_; }

  /// Fire the next event. Returns false when no events remain.
  bool step();

  /// Run until the queue drains or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Time t);

  /// True when no live events are pending.
  bool empty() const { return pending_.empty(); }

  /// Number of events fired so far (for perf accounting and tests).
  std::uint64_t events_fired() const { return fired_; }

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Item, std::vector<Item>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_;
  std::unordered_set<std::uint64_t> cancelled_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace dpar::sim
