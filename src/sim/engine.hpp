// Discrete-event simulation engine.
//
// A single-threaded event loop over a slab-allocated 4-ary heap of
// (time, sequence) ordered callbacks. Sequence numbers break ties so that two
// events scheduled for the same instant always fire in scheduling order, which
// makes every run deterministic.
//
// Hot-path design (the whole simulator runs through here):
//  * Callbacks are `UniqueFunction`s with a 48-byte small buffer — the common
//    lambda captures (a few pointers) never touch the allocator.
//  * Events live in a free-listed slab; `EventId` is a generation-tagged slot
//    index, so `cancel()` is an O(1) validity check that frees the slot (and
//    destroys the callback) immediately — no hash sets, no deferred cleanup.
//  * The heap orders 24-byte (time, seq, slot, gen) keys in a 4-ary layout
//    (shallower than binary, cache-line-friendly children). Cancelled events
//    leave a stale key behind that is skipped on pop; when stale keys reach
//    half the heap the heap is compacted in place, so cancel-heavy workloads
//    stay bounded in memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/func.hpp"
#include "sim/time.hpp"

namespace dpar::sim {

/// Handle for a scheduled event; usable to cancel it before it fires.
/// A generation-tagged slot index: stale handles (fired, cancelled, or from a
/// reused slot) are detected in O(1) and never alias a newer event.
struct EventId {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  ///< 0 means "no event" (live slots have gen >= 1).
  explicit operator bool() const { return gen != 0; }
};

class Engine {
 public:
  using Callback = UniqueFunction;

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  EventId at(Time t, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds from now. Throws
  /// std::overflow_error when `now() + delay` would overflow simulated time.
  EventId after(Time delay, Callback cb);

  /// Cancel a pending event. Returns false if it already fired, was already
  /// cancelled, or `id` is empty. The event's slot and callback are reclaimed
  /// immediately (and the slot becomes reusable), even for far-future events.
  bool cancel(EventId id);

  /// Current simulated time.
  Time now() const { return now_; }

  /// Fire the next event. Returns false when no events remain.
  bool step();

  /// Run until the queue drains or `max_events` have fired.
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Run events with time <= t, then advance the clock to exactly t.
  void run_until(Time t);

  /// True when no live events are pending.
  bool empty() const { return live_ == 0; }

  /// Number of events fired so far (for perf accounting and tests).
  std::uint64_t events_fired() const { return fired_; }

  /// Live (scheduled, not yet fired or cancelled) events.
  std::size_t live_events() const { return live_; }

  /// Slab capacity in slots — grows to the peak number of simultaneously
  /// live events and is then reused; regression-tested to stay flat under
  /// schedule/cancel churn.
  std::size_t slab_slots() const { return slots_.size(); }

  /// Heap keys, including stale keys of cancelled events awaiting compaction
  /// (bounded at ~2x live_events()).
  std::size_t queue_depth() const { return heap_.size(); }

  /// Full structural validation (debug invariant layer): 4-ary heap ordering,
  /// generation-tag validity of every live key, live/stale bookkeeping, and
  /// freelist consistency. Aborts via DPAR_ASSERT on violation; a no-op cost
  /// apart from the walk. Called automatically after every compaction when
  /// DPAR_CHECK_INVARIANTS is compiled in, and directly by tests.
  void check_invariants() const;

 private:
  struct Slot {
    Callback cb;
    std::uint32_t next_free = 0;  ///< freelist link (index + 1; 0 = none).
  };
  struct Key {
    Time t;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  // (t, seq) packed into one 128-bit value: a single branchless compare.
  // Valid because t >= 0 always (at() rejects the past, now_ starts at 0),
  // so the int64 -> uint64 cast preserves order. __extension__ keeps
  // -Wpedantic (and thus the -Werror CI builds) quiet about the GNU type.
  __extension__ typedef unsigned __int128 Pri;
  static Pri pri_(const Key& k) {
    return (static_cast<Pri>(static_cast<std::uint64_t>(k.t)) << 64) | k.seq;
  }
  static bool before_(const Key& a, const Key& b) { return pri_(a) < pri_(b); }
  bool stale_key_(const Key& k) const { return gens_[k.slot] != k.gen; }

  std::uint32_t alloc_slot_();
  void free_slot_(std::uint32_t slot);
  void push_key_(const Key& k);
  void pop_min_();
  void sift_up_(std::size_t i);
  void sift_down_(std::size_t i);
  void compact_();

  std::vector<Key> heap_;     ///< 4-ary min-heap of event keys.
  std::vector<Slot> slots_;   ///< slab of callbacks, free-listed.
  /// Slot generations, parallel to slots_ (bumped on every free; tags
  /// EventId/Key). Kept out of Slot so stale-key checks and compaction scan a
  /// dense u32 array instead of striding over fat callback slots.
  std::vector<std::uint32_t> gens_;
  std::uint32_t free_head_ = 0;  ///< freelist head (index + 1; 0 = empty).
  std::size_t live_ = 0;
  std::size_t stale_ = 0;     ///< cancelled keys still in heap_.
  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace dpar::sim
