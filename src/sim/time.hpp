// Simulated time: 64-bit signed nanoseconds since simulation start.
//
// Integer nanoseconds keep event ordering exact and runs bit-reproducible; all
// rate math converts through double at the edges only.
#pragma once

#include <cstdint>

namespace dpar::sim {

/// Simulated time in nanoseconds. Non-negative during a run; signed so that
/// durations and differences are safe to form.
using Time = std::int64_t;

inline constexpr Time kNsPerUs = 1'000;
inline constexpr Time kNsPerMs = 1'000'000;
inline constexpr Time kNsPerSec = 1'000'000'000;

/// Duration constructors.
constexpr Time nsec(std::int64_t n) { return n; }
constexpr Time usec(std::int64_t n) { return n * kNsPerUs; }
constexpr Time msec(std::int64_t n) { return n * kNsPerMs; }
constexpr Time secs(std::int64_t n) { return n * kNsPerSec; }

/// Duration from floating-point seconds (rounded to the nearest nanosecond).
constexpr Time from_seconds(double s) {
  return static_cast<Time>(s * static_cast<double>(kNsPerSec) + 0.5);
}

/// Time/duration as floating-point seconds, for reporting and rate math.
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

/// Service time for moving `bytes` at `bytes_per_sec`.
constexpr Time transfer_time(std::uint64_t bytes, double bytes_per_sec) {
  return from_seconds(static_cast<double>(bytes) / bytes_per_sec);
}

}  // namespace dpar::sim
