// Move-only callable with a small-buffer optimisation.
//
// The event engine schedules millions of callbacks per simulated run and the
// common capture set is a handful of pointers (driver, request, process).
// `std::function` spills anything beyond ~16 bytes to the heap; this type
// keeps captures up to kInlineSize bytes in place, so the schedule/fire hot
// path never touches the allocator. Larger callables still work — they fall
// back to a single heap cell.
//
// `UniqueFn<R(Args...)>` is the general form; `UniqueFunction` is the
// `void()` instantiation the engine and most completion callbacks use.
//
// Beware of nesting: a UniqueFunction is 72 bytes, so a lambda that captures
// one by value exceeds the 48-byte inline buffer and spills. Hot-path code
// passes raw pointers to stable control blocks (see sim/fanin.hpp) or stores
// the continuation in a member instead of re-capturing it.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dpar::sim {

template <class Sig>
class UniqueFn;

template <class R, class... Args>
class UniqueFn<R(Args...)> {
 public:
  /// Sized for the engine's common case: lambdas capturing up to six
  /// pointer-sized values stay inline.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFn() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFn> &&
             std::is_invocable_r_v<R, std::remove_cvref_t<F>&, Args...>)
  UniqueFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      invoke_ = [](UniqueFn& self, Args... args) -> R {
        return (*self.inline_ptr<Fn>())(std::forward<Args>(args)...);
      };
      relocate_ = [](UniqueFn& dst, UniqueFn& src) {
        ::new (static_cast<void*>(dst.storage_.buf))
            Fn(std::move(*src.inline_ptr<Fn>()));
        src.inline_ptr<Fn>()->~Fn();
      };
      destroy_ = [](UniqueFn& self) { self.inline_ptr<Fn>()->~Fn(); };
    } else {
      storage_.ptr = new Fn(std::forward<F>(f));
      invoke_ = [](UniqueFn& self, Args... args) -> R {
        return (*self.heap_ptr<Fn>())(std::forward<Args>(args)...);
      };
      relocate_ = [](UniqueFn& dst, UniqueFn& src) {
        dst.storage_.ptr = src.storage_.ptr;
      };
      destroy_ = [](UniqueFn& self) { delete self.heap_ptr<Fn>(); };
    }
  }

  UniqueFn(UniqueFn&& other) noexcept { take_(other); }

  UniqueFn& operator=(UniqueFn&& other) noexcept {
    if (this != &other) {
      reset();
      take_(other);
    }
    return *this;
  }

  UniqueFn(const UniqueFn&) = delete;
  UniqueFn& operator=(const UniqueFn&) = delete;

  ~UniqueFn() { reset(); }

  void reset() noexcept {
    if (destroy_) {
      destroy_(*this);
      invoke_ = nullptr;
      relocate_ = nullptr;
      destroy_ = nullptr;
    }
  }

  R operator()(Args... args) {
    return invoke_(*this, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void take_(UniqueFn& other) noexcept {
    if (other.invoke_) {
      other.relocate_(*this, other);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
  }

  template <class Fn>
  Fn* inline_ptr() noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage_.buf));
  }
  template <class Fn>
  Fn* heap_ptr() noexcept {
    return static_cast<Fn*>(storage_.ptr);
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buf[kInlineSize];
    void* ptr;
  } storage_;
  R (*invoke_)(UniqueFn&, Args...) = nullptr;
  void (*relocate_)(UniqueFn&, UniqueFn&) = nullptr;
  void (*destroy_)(UniqueFn&) = nullptr;
};

/// The engine's callback type and the I/O stack's completion-callback type.
using UniqueFunction = UniqueFn<void()>;

}  // namespace dpar::sim
