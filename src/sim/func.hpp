// Move-only `void()` callable with a small-buffer optimisation.
//
// The event engine schedules millions of callbacks per simulated run and the
// common capture set is a handful of pointers (driver, request, process).
// `std::function` spills anything beyond ~16 bytes to the heap; this type
// keeps captures up to kInlineSize bytes in place, so the schedule/fire hot
// path never touches the allocator. Larger callables still work — they fall
// back to a single heap cell.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dpar::sim {

class UniqueFunction {
 public:
  /// Sized for the engine's common case: lambdas capturing up to six
  /// pointer-sized values stay inline.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() noexcept = default;

  template <class F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_.buf)) Fn(std::forward<F>(f));
      invoke_ = [](UniqueFunction& self) { (*self.inline_ptr<Fn>())(); };
      relocate_ = [](UniqueFunction& dst, UniqueFunction& src) {
        ::new (static_cast<void*>(dst.storage_.buf))
            Fn(std::move(*src.inline_ptr<Fn>()));
        src.inline_ptr<Fn>()->~Fn();
      };
      destroy_ = [](UniqueFunction& self) { self.inline_ptr<Fn>()->~Fn(); };
    } else {
      storage_.ptr = new Fn(std::forward<F>(f));
      invoke_ = [](UniqueFunction& self) { (*self.heap_ptr<Fn>())(); };
      relocate_ = [](UniqueFunction& dst, UniqueFunction& src) {
        dst.storage_.ptr = src.storage_.ptr;
      };
      destroy_ = [](UniqueFunction& self) { delete self.heap_ptr<Fn>(); };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { take_(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take_(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void reset() noexcept {
    if (destroy_) {
      destroy_(*this);
      invoke_ = nullptr;
      relocate_ = nullptr;
      destroy_ = nullptr;
    }
  }

  void operator()() { invoke_(*this); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  void take_(UniqueFunction& other) noexcept {
    if (other.invoke_) {
      other.relocate_(*this, other);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
  }

  template <class Fn>
  Fn* inline_ptr() noexcept {
    return std::launder(reinterpret_cast<Fn*>(storage_.buf));
  }
  template <class Fn>
  Fn* heap_ptr() noexcept {
    return static_cast<Fn*>(storage_.ptr);
  }

  union Storage {
    alignas(std::max_align_t) unsigned char buf[kInlineSize];
    void* ptr;
  } storage_;
  void (*invoke_)(UniqueFunction&) = nullptr;
  void (*relocate_)(UniqueFunction&, UniqueFunction&) = nullptr;
  void (*destroy_)(UniqueFunction&) = nullptr;
};

}  // namespace dpar::sim
