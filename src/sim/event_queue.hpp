// Tiered event queue behind the engine's lane API.
//
// Every lane owns one EventQueue holding (time, seq, slot, gen) keys. Two
// implementations share the class, selected per engine via
// DPAR_ENGINE_QUEUE=heap|ladder (TestbedConfig::engine_queue overrides):
//
//  * kHeap — the slab 4-ary min-heap, frozen verbatim from the pre-ladder
//    engine as the differential oracle (queue_reference.cpp, in the
//    sched_reference/layout_reference style). O(log n) push/pop; cancelled
//    keys are skipped on pop and compacted away when they reach half the
//    heap.
//  * kLadder — a near-future ladder backed by a hierarchical timer wheel
//    and an unsorted far-future tail (event_queue.cpp). Keys within the
//    current ~1 us bucket sit in a small sorted front heap; the next ~64 us
//    (one conservative-PDES lookahead window at the 50 us switch latency)
//    spread over 64 fixed-width level-0 buckets that are sorted only when
//    drained; three coarser wheel levels with 64x-wider slots cover ~17 s,
//    and everything beyond lands in the tail. push is O(1) amortized
//    (bucket append + occupancy bit), pop moves each key through at most
//    one cascade per level. Cancel never sorts or sifts anything: the
//    generation tag goes stale in place and an amortized linear purge
//    (same 1/2 threshold as the heap's compaction) keeps memory bounded —
//    no compaction storms under cancel-heavy timer traffic.
//
// Both implementations pop live keys in exactly the packed 128-bit
// (time, seq) total order, so every simulation is byte-identical across
// queue kinds and DPAR_PDES_WORKERS counts; CI diffs the bench outputs to
// enforce it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/time.hpp"

namespace dpar::sim {

/// "No pending event" sentinel returned by EventQueue::next_time().
constexpr Time kNoEventTime = std::numeric_limits<Time>::max();

/// One scheduled event: fire time, global-order tie-breaker, and the
/// generation-tagged slab slot holding its callback. The queue never looks
/// at the callback — staleness is decided entirely by the owning lane's
/// generation array.
struct EventKey {
  Time t;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

enum class QueueKind : std::uint8_t { kHeap, kLadder };

/// Resolve DPAR_ENGINE_QUEUE: unset or empty picks the ladder (the heap is
/// the retained oracle); "heap"/"ladder" select explicitly. Throws
/// std::invalid_argument on anything else.
QueueKind queue_kind_from_env();

class EventQueue {
 public:
  /// `gens` is the owning lane's slot-generation array: key `k` is stale
  /// (cancelled or superseded) exactly when (*gens)[k.slot] != k.gen. The
  /// pointer must outlive the queue; the vector may grow/reallocate freely.
  EventQueue(QueueKind kind, const std::vector<std::uint32_t>* gens);

  EventQueue(EventQueue&&) = default;
  EventQueue& operator=(EventQueue&&) = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  QueueKind kind() const { return kind_; }

  /// Insert one key. Keys must be unique and carry strictly increasing seq
  /// per (t) from the owning lane's counter.
  void push(const EventKey& k);

  /// Bulk-insert path for window-barrier outbox batches: append keys
  /// cheaply, then commit_batch() once. The heap arm appends unsifted and
  /// restores order with one Floyd rebuild; the ladder's push is already
  /// O(1), so append == push and commit is a no-op. Pop order depends only
  /// on the keys, so both paths yield identical schedules.
  void append(const EventKey& k);
  void commit_batch();

  /// Earliest live key's time, or kNoEventTime when none is pending.
  /// Drops leading stale keys as a side effect.
  Time next_time();

  /// Pop the earliest live key into `out`. False when no live key remains.
  bool pop_min_live(EventKey& out);

  /// The owning lane cancelled a key (its generation was bumped). O(1):
  /// bumps the stale count and, past the amortized threshold, purges every
  /// stale key with one linear filter pass — no per-cancel sifting.
  void note_cancel();

  /// Total keys held, including stale keys awaiting the amortized purge
  /// (bounded at ~2x the live count by the purge threshold).
  std::size_t size() const {
    return kind_ == QueueKind::kHeap ? heap_.size() : lq_size_;
  }
  std::size_t stale() const { return stale_; }

  /// Visit every key (live and stale) in unspecified order — the owning
  /// lane's invariant checks validate slot/callback agreement through this.
  template <class F>
  void for_each_key(F&& f) const {
    if (kind_ == QueueKind::kHeap) {
      for (const EventKey& k : heap_) f(k);
      return;
    }
    for (const EventKey& k : front_) f(k);
    for (const Level& lvl : levels_)
      for (const auto& bucket : lvl.buckets)
        for (const EventKey& k : bucket) f(k);
    for (const EventKey& k : tail_) f(k);
  }

  /// Structural validation (debug invariant layer). Heap arm: 4-ary order
  /// and live/stale bookkeeping. Ladder arm: bucket monotonicity — every
  /// live front key lies in the floor's bucket, no live key is stranded in
  /// a wheel slot behind its level's cursor, occupancy bits agree with
  /// bucket contents, and the tail minimum is a sound lower bound. Aborts
  /// via DPAR_ASSERT on violation.
  void check_invariants() const;

  /// Test-only corruption hooks for the invariant death tests: break the
  /// heap arm's ordering / strand the ladder arm's front bucket behind an
  /// advanced floor, so check_invariants() must abort.
  void debug_corrupt_order_for_test();
  void debug_strand_front_for_test();

 private:
  // (t, seq) packed into one 128-bit value: a single branchless compare.
  // Valid because t >= 0 always (scheduling rejects the past), so the
  // int64 -> uint64 cast preserves order. __extension__ keeps -Wpedantic
  // (and thus the -Werror CI builds) quiet about the GNU type.
  __extension__ typedef unsigned __int128 Pri;
  static Pri pri(const EventKey& k) {
    return (static_cast<Pri>(static_cast<std::uint64_t>(k.t)) << 64) | k.seq;
  }
  static bool before(const EventKey& a, const EventKey& b) {
    return pri(a) < pri(b);
  }
  bool stale_key(const EventKey& k) const { return (*gens_)[k.slot] != k.gen; }

  // ---- heap arm (queue_reference.cpp; frozen differential oracle) ----
  void heap_push_(const EventKey& k);
  void heap_pop_min_();
  void heap_sift_up_(std::size_t i);
  void heap_sift_down_(std::size_t i);
  void heap_rebuild_();
  void heap_compact_();
  Time heap_next_time_();
  void heap_check_invariants_() const;

  // ---- ladder arm (event_queue.cpp) ----
  // Power-of-two geometry: level i spans 64 slots of 2^(10 + 6i) ns each.
  // Level 0 buckets are ~1 us wide (64 us wheel span — one 50 us lookahead
  // window fits); level 3 slots are ~268 ms (17.2 s total span). Beyond
  // that, keys wait in the unsorted tail.
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlotsPerLevel = 1 << kSlotBits;  // 64
  static constexpr int kBucketShift = 10;                // 1024 ns buckets
  static std::uint64_t slot_of_(Time t, int level) {
    return static_cast<std::uint64_t>(t) >> (kBucketShift + kSlotBits * level);
  }
  void ladder_push_(const EventKey& k);
  void ladder_place_(const EventKey& k);  ///< placement only; no counting
  Time ladder_next_time_();
  void sweep_front_bucket_();  ///< merge the floor's L0 bucket into the front
  void ladder_purge_stale_();
  void ladder_check_invariants_() const;
  void front_push_(const EventKey& k);
  void front_pop_();
  void front_sift_down_(std::size_t i);
  void front_rebuild_();

  struct Level {
    std::array<std::vector<EventKey>, kSlotsPerLevel> buckets;
    std::uint64_t occupied = 0;  ///< bit i set iff buckets[i] is non-empty
  };

  QueueKind kind_;
  const std::vector<std::uint32_t>* gens_;
  std::size_t stale_ = 0;  ///< cancelled keys still held, either arm

  // Heap-arm storage: the 4-ary min-heap of keys.
  std::vector<EventKey> heap_;

  // Ladder-arm storage. floor_ anchors every tier: front keys share its
  // level-0 bucket, wheel keys sit at or past their level's cursor slot,
  // tail keys lie beyond the wheel span (as of their insertion floor).
  std::vector<EventKey> front_;  ///< 4-ary min-heap of the current bucket
  std::array<Level, kLevels> levels_;
  std::vector<EventKey> tail_;
  Time tail_min_ = kNoEventTime;  ///< lower bound on live tail keys
  Time floor_ = 0;
  std::size_t lq_size_ = 0;  ///< total keys across front/levels/tail
};

}  // namespace dpar::sim
