// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64. Self-contained (no <random> engine
// state-size surprises across standard libraries) so that experiment runs are
// reproducible byte-for-byte on any platform.
#pragma once

#include <cstdint>

namespace dpar::sim {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic content hash used to synthesize "file data" values for
/// data-dependent workloads (see wl::DependentReadProgram).
constexpr std::uint64_t content_hash(std::uint64_t file_id, std::uint64_t offset) {
  return splitmix64(splitmix64(file_id ^ 0xd6e8feb86659fd93ULL) ^ offset);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9d2c5680u) {
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x = splitmix64(x);
      w = x;
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n == 0 returns 0.
  std::uint64_t uniform(std::uint64_t n) {
    if (n == 0) return 0;
    // Lemire's multiply-shift rejection-free variant is overkill here;
    // modulo bias is negligible for simulation parameters (n << 2^64).
    return next_u64() % n;
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t uniform_between(std::uint64_t lo, std::uint64_t hi) {
    return lo + uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4] = {};
};

}  // namespace dpar::sim
