// Generic serially-served FIFO resource.
//
// Models any device that serves one job at a time with a caller-supplied
// service time: a NIC transmit path, a metadata-server CPU, a memcached
// service thread. Jobs queue in arrival order.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "sim/engine.hpp"
#include "sim/func.hpp"

namespace dpar::sim {

class FifoResource {
 public:
  using Callback = UniqueFunction;

  explicit FifoResource(Engine& eng) : eng_(eng) {}

  FifoResource(const FifoResource&) = delete;
  FifoResource& operator=(const FifoResource&) = delete;

  /// Enqueue a job needing `service` time; `done` fires when it completes.
  void submit(Time service, Callback done) {
    queue_.push_back(Job{service, std::move(done)});
    total_jobs_++;
    if (!busy_) start_next();
  }

  bool busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  std::uint64_t total_jobs() const { return total_jobs_; }
  /// Total time this resource has spent serving (utilization numerator).
  Time busy_time() const { return busy_time_; }

 private:
  struct Job {
    Time service;
    Callback done;
  };

  void start_next() {
    if (queue_.empty()) {
      busy_ = false;
      return;
    }
    busy_ = true;
    Job job = std::move(queue_.front());
    queue_.pop_front();
    busy_time_ += job.service;
    // One job is in service at a time, so its continuation parks in a member
    // slot and the engine lambda captures only `this` — re-capturing the
    // 72-byte Callback would spill past the engine's inline buffer.
    current_done_ = std::move(job.done);
    eng_.after(job.service, [this] {
      // Finish the current job, then pull the next one; completing before
      // starting keeps queue-length observations consistent.
      Callback done = std::move(current_done_);
      done();
      start_next();
    });
  }

  Engine& eng_;
  std::deque<Job> queue_;
  Callback current_done_;
  bool busy_ = false;
  Time busy_time_ = 0;
  std::uint64_t total_jobs_ = 0;
};

}  // namespace dpar::sim
