#include "sim/engine.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>
#include <utility>

#include "sim/debug.hpp"

namespace dpar::sim {

std::uint32_t Engine::alloc_slot_() {
  if (free_head_ != 0) {
    const std::uint32_t slot = free_head_ - 1;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = 0;
    return slot;
  }
  if (slots_.size() == slots_.capacity()) {
    // Moving a Slot runs the callback's relocate hook per element; grow in
    // big steps so slab growth stays a rare event.
    const std::size_t cap = slots_.capacity() < 256 ? 256 : slots_.capacity() * 2;
    slots_.reserve(cap);
    gens_.reserve(cap);
    heap_.reserve(cap);
  }
  slots_.emplace_back();
  gens_.push_back(1);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Engine::free_slot_(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  if (++gens_[slot] == 0) gens_[slot] = 1;  // keep 0 reserved for "no event"
  s.next_free = free_head_;
  free_head_ = slot + 1;
}

void Engine::push_key_(const Key& k) {
  heap_.push_back(k);
  sift_up_(heap_.size() - 1);
}

void Engine::pop_min_() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down_(0);
}

void Engine::sift_up_(std::size_t i) {
  const Key k = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before_(k, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void Engine::sift_down_(std::size_t i) {
  const std::size_t n = heap_.size();
  const Key k = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before_(heap_[c], heap_[best])) best = c;
    if (!before_(heap_[best], k)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = k;
}

void Engine::compact_() {
  std::size_t out = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i)
    if (!stale_key_(heap_[i])) heap_[out++] = heap_[i];
  heap_.resize(out);
  // Rebuild the heap property bottom-up (Floyd): only internal nodes sift.
  if (out > 1)
    for (std::size_t i = (out - 2) / 4 + 1; i-- > 0;) sift_down_(i);
  stale_ = 0;
  DPAR_IF_CHECKING(check_invariants());
}

void Engine::check_invariants() const {
  // Heap property: no child orders before its parent.
  for (std::size_t i = 1; i < heap_.size(); ++i)
    DPAR_ASSERT(!before_(heap_[i], heap_[(i - 1) / 4]),
                "event heap: child precedes its parent");
  // Key validity and live/stale bookkeeping.
  std::size_t live_keys = 0;
  std::size_t stale_keys = 0;
  for (const Key& k : heap_) {
    DPAR_ASSERT(k.slot < slots_.size(), "event heap: key slot out of range");
    DPAR_ASSERT(k.gen != 0, "event heap: key with reserved generation 0");
    if (stale_key_(k)) {
      ++stale_keys;
    } else {
      ++live_keys;
      DPAR_ASSERT(static_cast<bool>(slots_[k.slot].cb),
                  "event heap: live key whose slot has no callback");
      DPAR_ASSERT(k.t >= now_, "event heap: live key scheduled in the past");
    }
  }
  DPAR_ASSERT(live_keys == live_, "event heap: live-event count out of sync");
  DPAR_ASSERT(stale_keys == stale_, "event heap: stale-key count out of sync");
  DPAR_ASSERT(gens_.size() == slots_.size(),
              "event slab: generation array not parallel to slots");
  // Freelist: every link in range, no slot visited twice, no free slot
  // holding a callback.
  std::vector<bool> seen(slots_.size(), false);
  for (std::uint32_t head = free_head_; head != 0;
       head = slots_[head - 1].next_free) {
    const std::uint32_t slot = head - 1;
    DPAR_ASSERT(slot < slots_.size(), "event slab: freelist link out of range");
    DPAR_ASSERT(!seen[slot], "event slab: freelist cycle");
    DPAR_ASSERT(!slots_[slot].cb, "event slab: free slot holds a callback");
    seen[slot] = true;
  }
}

EventId Engine::at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Engine::at: time in the past");
  const std::uint32_t slot = alloc_slot_();
  const std::uint32_t gen = gens_[slot];
  slots_[slot].cb = std::move(cb);
  push_key_(Key{t, next_seq_++, slot, gen});
  ++live_;
  return EventId{slot, gen};
}

EventId Engine::after(Time delay, Callback cb) {
  if (delay > std::numeric_limits<Time>::max() - now_)
    throw std::overflow_error(
        "Engine::after: now() + delay overflows simulated time");
  return at(now_ + delay, std::move(cb));
}

bool Engine::cancel(EventId id) {
  if (!id) return false;
  if (id.slot >= slots_.size()) return false;
  if (gens_[id.slot] != id.gen || !slots_[id.slot].cb)
    return false;  // already fired or cancelled
  free_slot_(id.slot);
  --live_;
  ++stale_;
  // Amortised cleanup: never let cancelled keys dominate the heap.
  if (stale_ >= 64 && stale_ * 2 >= heap_.size()) compact_();
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Key k = heap_.front();
    pop_min_();
    if (stale_key_(k)) {
      --stale_;
      continue;
    }
    // Move the callback out and free the slot *before* invoking, so the
    // callback can freely schedule into the just-freed slot (reentrancy).
    Callback cb = std::move(slots_[k.slot].cb);
    free_slot_(k.slot);
    --live_;
    assert(k.t >= now_);
    now_ = k.t;
    ++fired_;
    cb();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Engine::run_until(Time t) {
  while (!heap_.empty()) {
    const Key& top = heap_.front();
    if (stale_key_(top)) {
      pop_min_();
      --stale_;
      continue;
    }
    if (top.t > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace dpar::sim
