#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace dpar::sim {

EventId Engine::at(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Engine::at: time in the past");
  const std::uint64_t seq = next_seq_++;
  heap_.push(Item{t, seq, std::move(cb)});
  pending_.insert(seq);
  return EventId{seq};
}

bool Engine::cancel(EventId id) {
  if (!id) return false;
  if (pending_.erase(id.seq) == 0) return false;  // already fired or cancelled
  cancelled_.insert(id.seq);
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    // priority_queue::top is const; move out via const_cast, standard idiom
    // since pop() immediately destroys the slot.
    Item item = std::move(const_cast<Item&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(item.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_.erase(item.seq);
    assert(item.t >= now_);
    now_ = item.t;
    ++fired_;
    item.cb();
    return true;
  }
  return false;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Engine::run_until(Time t) {
  while (!heap_.empty()) {
    const Item& top = heap_.top();
    if (cancelled_.count(top.seq) != 0) {
      cancelled_.erase(top.seq);
      heap_.pop();
      continue;
    }
    if (top.t > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace dpar::sim
