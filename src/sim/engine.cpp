#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/debug.hpp"

namespace dpar::sim {

namespace {
constexpr Time kNoEvent = kNoEventTime;
}  // namespace

/// One logical process: a private event queue, slab, clock and sequence
/// counter, plus the outbox channel that carries its cross-lane posts to the
/// next window barrier. During a parallel window a lane is touched by exactly
/// one worker thread; between windows only the coordinating thread touches
/// any lane (the barrier's mutex orders the two regimes).
struct Engine::Lane {
  struct Slot {
    Callback cb;
    std::uint32_t next_free = 0;  ///< freelist link (index + 1; 0 = none).
  };
  /// A timestamped cross-lane message awaiting delivery at the barrier. The
  /// target lane is implied by the queue the post sits in (one queue per
  /// (source, target) pair), so the record carries only time and callback.
  struct Post {
    Time t;
    Callback cb;
  };

  explicit Lane(QueueKind kind) : queue(kind, &gens) {}

  std::uint32_t alloc_slot() {
    if (free_head != 0) {
      const std::uint32_t s = free_head - 1;
      free_head = slots[s].next_free;
      slots[s].next_free = 0;
      return s;
    }
    if (slots.size() == slots.capacity()) {
      // Moving a Slot runs the callback's relocate hook per element; grow in
      // big steps so slab growth stays a rare event.
      const std::size_t cap = slots.capacity() < 256 ? 256 : slots.capacity() * 2;
      slots.reserve(cap);
      gens.reserve(cap);
    }
    slots.emplace_back();
    gens.push_back(1);
    return static_cast<std::uint32_t>(slots.size() - 1);
  }

  void free_slot(std::uint32_t slot) {
    Slot& s = slots[slot];
    s.cb.reset();
    if (++gens[slot] == 0) gens[slot] = 1;  // keep 0 reserved for "no event"
    s.next_free = free_head;
    free_head = slot + 1;
  }

  Time next_time() { return queue.next_time(); }

  void check_invariants() const {
    queue.check_invariants();
    // Key validity and live/stale bookkeeping against the slab.
    std::size_t live_keys = 0;
    std::size_t stale_keys = 0;
    queue.for_each_key([&](const EventKey& k) {
      DPAR_ASSERT(k.slot < slots.size(), "event queue: key slot out of range");
      if (gens[k.slot] != k.gen) {
        ++stale_keys;
      } else {
        ++live_keys;
        DPAR_ASSERT(static_cast<bool>(slots[k.slot].cb),
                    "event queue: live key whose slot has no callback");
        DPAR_ASSERT(k.t >= now, "event queue: live key scheduled in the past");
      }
    });
    DPAR_ASSERT(live_keys == live, "event queue: live-event count out of sync");
    DPAR_ASSERT(stale_keys == queue.stale(),
                "event queue: stale-key count out of sync");
    DPAR_ASSERT(gens.size() == slots.size(),
                "event slab: generation array not parallel to slots");
    // Freelist: every link in range, no slot visited twice, no free slot
    // holding a callback.
    std::vector<bool> seen(slots.size(), false);
    for (std::uint32_t head = free_head; head != 0;
         head = slots[head - 1].next_free) {
      const std::uint32_t slot = head - 1;
      DPAR_ASSERT(slot < slots.size(), "event slab: freelist link out of range");
      DPAR_ASSERT(!seen[slot], "event slab: freelist cycle");
      DPAR_ASSERT(!slots[slot].cb, "event slab: free slot holds a callback");
      seen[slot] = true;
    }
  }

  LaneId id = 0;
  bool exclusive = false;
  std::vector<Slot> slots;  ///< slab of callbacks, free-listed.
  /// Slot generations, parallel to slots (bumped on every free; tags
  /// EventId/EventKey). Kept out of Slot so stale-key checks and purges scan
  /// a dense u32 array instead of striding over fat callback slots. Declared
  /// before `queue`, which captures its address at construction.
  std::vector<std::uint32_t> gens;
  EventQueue queue;  ///< tiered (time, seq) key queue; see event_queue.hpp
  std::uint32_t free_head = 0;  ///< freelist head (index + 1; 0 = empty).
  std::size_t live = 0;
  Time now = 0;
  std::uint64_t next_seq = 1;
  std::uint64_t fired = 0;
  /// Per-target outbox channel: outq[target] queues this lane's cross-lane
  /// posts to `target`, touched lists the non-empty queues in first-touch
  /// order. The barrier merges whole (source, target) queues instead of
  /// walking individual posts, so its cost scales with touched channels —
  /// not messages — at 256+ lanes.
  std::vector<std::vector<Post>> outq;
  std::vector<LaneId> touched;

  bool outbox_empty() const { return touched.empty(); }
};

thread_local Engine::Lane* Engine::t_lane_ = nullptr;

Engine::Engine() : queue_kind_(queue_kind_from_env()) {
  lanes_.push_back(std::make_unique<Lane>(queue_kind_));
  lane0_ = lanes_.front().get();
}

Engine::~Engine() = default;

Time Engine::pdes_now_() const { return t_lane_->now; }

LaneId Engine::current_lane() const {
  if (pdes_parallel_) return t_lane_->id;
  return cur_lane_;
}

LaneId Engine::add_lane() {
  if (in_window_)
    throw std::logic_error("Engine::add_lane: cannot add lanes mid-run");
  auto lane = std::make_unique<Lane>(queue_kind_);
  lane->id = static_cast<LaneId>(lanes_.size());
  lanes_.push_back(std::move(lane));
  lane0_ = lanes_.front().get();
  return lanes_.back()->id;
}

LaneId Engine::add_exclusive_lane() {
  if (excl_ != 0)
    throw std::logic_error("Engine::add_exclusive_lane: already created");
  excl_ = add_lane();
  lanes_[excl_]->exclusive = true;
  return excl_;
}

void Engine::set_lookahead(Time l) {
  if (l < 0) throw std::invalid_argument("Engine::set_lookahead: negative");
  lookahead_ = l;
}

void Engine::set_pdes_workers(unsigned w) {
  workers_ = w == 0 ? 1 : w;
}

void Engine::set_queue_kind(QueueKind kind) {
  if (in_window_)
    throw std::logic_error("Engine::set_queue_kind: cannot switch mid-run");
  for (const auto& lp : lanes_)
    if (lp->live != 0 || lp->queue.size() != 0 || lp->fired != 0)
      throw std::logic_error(
          "Engine::set_queue_kind: events already scheduled or fired");
  queue_kind_ = kind;
  for (auto& lp : lanes_) lp->queue = EventQueue(kind, &lp->gens);
}

EventId Engine::schedule_(Lane& L, Time t, Callback cb) {
  const std::uint32_t slot = L.alloc_slot();
  const std::uint32_t gen = L.gens[slot];
  L.slots[slot].cb = std::move(cb);
  L.queue.push(EventKey{t, L.next_seq++, slot, gen});
  ++L.live;
  return EventId{slot, gen, L.id};
}

EventId Engine::at(Time t, Callback cb) {
  Lane& L = pdes_parallel_ ? *t_lane_ : lane_(cur_lane_);
  if (t < L.now) throw std::invalid_argument("Engine::at: time in the past");
  return schedule_(L, t, std::move(cb));
}

EventId Engine::after(Time delay, Callback cb) {
  const Time base = now();
  if (delay > std::numeric_limits<Time>::max() - base)
    throw std::overflow_error(
        "Engine::after: now() + delay overflows simulated time");
  return at(base + delay, std::move(cb));
}

EventId Engine::at_in(LaneId lane, Time t, Callback cb) {
  if (lane >= lanes_.size())
    throw std::out_of_range("Engine::at_in: bad lane id");
  const LaneId cur = current_lane();
  if (in_window_ && lane != cur) {
    // Cross-lane post during a window: the target queue may be executing on
    // another worker, so the event travels through the calling lane's outbox
    // channel and is delivered (with a deterministic target sequence number)
    // at the barrier. The conservative protocol is only sound if the post
    // lands at or past the window horizon — i.e. the caller kept the
    // lookahead contract.
    DPAR_ASSERT(t >= horizon_,
                "PDES: cross-lane event inside the lookahead window");
    Lane& C = lane_(cur);
    if (C.outq.size() < lanes_.size()) C.outq.resize(lanes_.size());
    std::vector<Lane::Post>& q = C.outq[lane];
    if (q.empty()) C.touched.push_back(lane);
    q.push_back(Lane::Post{t, std::move(cb)});
    return EventId{};
  }
  Lane& L = lane_(lane);
  if (t < L.now) throw std::invalid_argument("Engine::at_in: time in the past");
  return schedule_(L, t, std::move(cb));
}

EventId Engine::after_in(LaneId lane, Time delay, Callback cb) {
  const Time base = now();
  if (delay > std::numeric_limits<Time>::max() - base)
    throw std::overflow_error(
        "Engine::after_in: now() + delay overflows simulated time");
  return at_in(lane, base + delay, std::move(cb));
}

EventId Engine::at_all(Time t, std::vector<Callback> cbs) {
  if (cbs.empty()) return EventId{};
  if (cbs.size() == 1) return at(t, std::move(cbs.front()));
  return at(t, [cbs = std::move(cbs)]() mutable {
    for (auto& cb : cbs) cb();
  });
}

EventId Engine::after_all(Time delay, std::vector<Callback> cbs) {
  const Time base = now();
  if (delay > std::numeric_limits<Time>::max() - base)
    throw std::overflow_error(
        "Engine::after_all: now() + delay overflows simulated time");
  return at_all(base + delay, std::move(cbs));
}

EventId Engine::at_all_in(LaneId lane, Time t, std::vector<Callback> cbs) {
  if (cbs.empty()) return EventId{};
  if (cbs.size() == 1) return at_in(lane, t, std::move(cbs.front()));
  return at_in(lane, t, [cbs = std::move(cbs)]() mutable {
    for (auto& cb : cbs) cb();
  });
}

bool Engine::cancel(EventId id) {
  if (!id) return false;
  if (id.lane >= lanes_.size()) return false;
  DPAR_ASSERT(!in_window_ || id.lane == current_lane(),
              "PDES: cross-lane cancel inside a window");
  Lane& L = lane_(id.lane);
  if (id.slot >= L.slots.size()) return false;
  if (L.gens[id.slot] != id.gen || !L.slots[id.slot].cb)
    return false;  // already fired or cancelled
  L.free_slot(id.slot);
  --L.live;
  // The key goes stale in place — an O(1) generation kill. The queue's
  // amortized purge keeps stale keys from ever dominating memory.
  L.queue.note_cancel();
  return true;
}

bool Engine::step() {
  if (partitioned())
    throw std::logic_error("Engine::step: unavailable on a partitioned engine");
  Lane& L = *lane0_;
  EventKey k;
  if (!L.queue.pop_min_live(k)) return false;
  // Move the callback out and free the slot *before* invoking, so the
  // callback can freely schedule into the just-freed slot (reentrancy).
  Callback cb = std::move(L.slots[k.slot].cb);
  L.free_slot(k.slot);
  --L.live;
  assert(k.t >= L.now);
  L.now = k.t;
  now_ = k.t;
  ++L.fired;
  cb();
  return true;
}

std::uint64_t Engine::run_serial_(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::uint64_t Engine::run(std::uint64_t max_events) {
  return partitioned() ? run_pdes_(max_events, kNoEvent)
                       : run_serial_(max_events);
}

void Engine::run_until(Time t) {
  if (partitioned()) {
    // Windows are capped at t, so every lane fires exactly its events with
    // time <= t; then all clocks advance to the same cut.
    run_pdes_(UINT64_MAX, t);
    for (auto& lp : lanes_)
      if (lp->now < t) lp->now = t;
    if (now_ < t) now_ = t;
    return;
  }
  Lane& L = *lane0_;
  for (;;) {
    const Time nt = L.queue.next_time();
    if (nt == kNoEvent || nt > t) break;
    step();
  }
  if (L.now < t) {
    L.now = t;
    now_ = t;
  }
}

std::uint64_t Engine::drain_lane_(Lane& L, Time horizon) {
  std::uint64_t n = 0;
  for (;;) {
    if (L.queue.next_time() >= horizon) break;
    EventKey k;
    L.queue.pop_min_live(k);
    Callback cb = std::move(L.slots[k.slot].cb);
    L.free_slot(k.slot);
    --L.live;
    assert(k.t >= L.now);
    L.now = k.t;
    if (!pdes_parallel_) now_ = k.t;
    ++L.fired;
    ++n;
    cb();
  }
  return n;
}

void Engine::drain_outboxes_() {
  // Source lanes in lane order, targets in first-touch order, posts in queue
  // order: per target this delivers posts in (source lane, post) order —
  // exactly the sequence the per-event drain assigned — so target sequence
  // numbers stay worker-count-independent. The only order-sensitive input is
  // per-lane execution, never which worker ran which lane.
  for (auto& lp : lanes_) {
    for (const LaneId to : lp->touched) {
      std::vector<Lane::Post>& q = lp->outq[to];
      Lane& target = lane_(to);
      for (const Lane::Post& p : q)
        if (p.t < target.now)
          throw std::logic_error(
              "PDES: cross-lane event behind the target lane's clock "
              "(lookahead contract violated)");
      // Bulk merge: for a large batch, take the queue's append path — the
      // heap arm appends every key unsifted and restores order once with
      // Floyd's O(n) rebuild, the ladder arm's filing is O(1) per key
      // either way. Pop order depends only on the (time, seq) keys, which
      // are assigned identically on every path.
      const bool bulk = q.size() >= 32 && q.size() * 8 >= target.queue.size();
      for (Lane::Post& p : q) {
        if (bulk) {
          const std::uint32_t slot = target.alloc_slot();
          const std::uint32_t gen = target.gens[slot];
          target.slots[slot].cb = std::move(p.cb);
          target.queue.append(EventKey{p.t, target.next_seq++, slot, gen});
          ++target.live;
        } else {
          schedule_(target, p.t, std::move(p.cb));
        }
      }
      if (bulk) target.queue.commit_batch();
      q.clear();
    }
    lp->touched.clear();
  }
}

std::uint64_t Engine::run_pdes_(std::uint64_t max_events, Time bound) {
  if (lookahead_ <= 0)
    throw std::logic_error(
        "Engine::run: a partitioned engine needs a positive lookahead");

  // Count the parallelizable lanes; the pool never needs more workers.
  std::uint32_t normal_lanes = 0;
  for (const auto& lp : lanes_)
    if (!lp->exclusive) ++normal_lanes;
  const unsigned participants =
      std::min<unsigned>(workers_, normal_lanes ? normal_lanes : 1);

  // ---- Window worker pool (spawned once per run) ----
  // Window hand-off is a classic epoch barrier: the coordinator publishes a
  // horizon and bumps the epoch under the mutex, workers claim lanes off an
  // atomic cursor, and the last one home wakes the coordinator. All lane
  // state is ordered by the mutex, so the only atomics are the cursor and
  // the fired tally.
  struct Window {
    std::mutex mu;
    std::condition_variable cv_work;
    std::condition_variable cv_done;
    std::uint64_t epoch = 0;
    Time horizon = 0;
    std::uint32_t done = 0;
    bool stop = false;
    std::vector<Lane*> work;
    std::atomic<std::uint32_t> cursor{0};
    std::atomic<std::uint64_t> fired{0};
  } win;
  for (auto& lp : lanes_)
    if (!lp->exclusive) win.work.push_back(lp.get());

  std::vector<std::exception_ptr> errors(participants);

  auto claim_and_drain = [this, &win](std::exception_ptr& err) {
    std::uint64_t n = 0;
    try {
      for (;;) {
        const std::uint32_t i =
            win.cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= win.work.size()) break;
        if (err) continue;  // drained lanes stay untouched after a failure
        Lane* L = win.work[i];
        t_lane_ = L;
        n += drain_lane_(*L, win.horizon);
        t_lane_ = nullptr;
      }
    } catch (...) {
      err = std::current_exception();
      t_lane_ = nullptr;
    }
    win.fired.fetch_add(n, std::memory_order_relaxed);
  };

  std::vector<std::thread> threads;
  if (participants > 1) {
    threads.reserve(participants - 1);
    for (unsigned w = 1; w < participants; ++w) {
      threads.emplace_back([&win, &claim_and_drain, &errors, w] {
        std::uint64_t seen = 0;
        std::unique_lock<std::mutex> lk(win.mu);
        for (;;) {
          win.cv_work.wait(lk, [&] { return win.stop || win.epoch != seen; });
          if (win.stop) return;
          seen = win.epoch;
          lk.unlock();
          claim_and_drain(errors[w]);
          lk.lock();
          if (++win.done == 0) {}  // (done counted under the lock)
          win.cv_done.notify_one();
        }
      });
    }
  }

  auto shutdown_pool = [&] {
    if (threads.empty()) return;
    {
      std::lock_guard<std::mutex> lk(win.mu);
      win.stop = true;
    }
    win.cv_work.notify_all();
    for (auto& th : threads) th.join();
    threads.clear();
  };

  std::uint64_t fired_run = 0;
  try {
    while (fired_run < max_events) {
      // Earliest pending work, split by lane kind.
      Time t_excl = kNoEvent;
      if (excl_ != 0) t_excl = lane_(excl_).next_time();
      Time t_min = kNoEvent;
      std::uint32_t runnable_hint = 0;
      for (Lane* L : win.work) {
        const Time t = L->next_time();
        if (t < t_min) t_min = t;
        if (t != kNoEvent) ++runnable_hint;
      }
      if (t_excl == kNoEvent && t_min == kNoEvent) break;
      // Bounded run (run_until): stop before any event past the bound fires.
      if ((t_excl < t_min ? t_excl : t_min) > bound) break;

      if (t_excl <= t_min) {
        // Exclusive events run one at a time with every lane quiescent: all
        // lanes have fired exactly their events with t < t_excl, so the
        // callback may read (and schedule into) any lane directly.
        Lane& E = lane_(excl_);
        EventKey k;
        E.queue.pop_min_live(k);
        Callback cb = std::move(E.slots[k.slot].cb);
        E.free_slot(k.slot);
        --E.live;
        E.now = k.t;
        now_ = k.t;
        cur_lane_ = excl_;
        ++E.fired;
        ++fired_run;
        cb();
        cur_lane_ = 0;
        continue;
      }

      // Safe window: every lane may fire its events with t < horizon without
      // hearing from any other lane — cross-lane posts are at least one
      // lookahead away, and the next exclusive event caps the horizon.
      Time horizon = lookahead_ > kNoEvent - t_min ? kNoEvent : t_min + lookahead_;
      if (t_excl < horizon) horizon = t_excl;
      // Drain is strict-<, so bound + 1 keeps events at exactly the bound.
      if (bound < kNoEvent && horizon > bound + 1) horizon = bound + 1;
      horizon_ = horizon;
      in_window_ = true;

      if (participants == 1 || runnable_hint <= 1) {
        // Nothing to parallelize: run the identical windowed schedule on the
        // calling thread (this is the whole story when pdes_workers == 1).
        for (Lane* L : win.work) {
          cur_lane_ = L->id;
          now_ = L->now;
          fired_run += drain_lane_(*L, horizon);
        }
        cur_lane_ = 0;
      } else {
        win.cursor.store(0, std::memory_order_relaxed);
        win.fired.store(0, std::memory_order_relaxed);
        pdes_parallel_ = true;
        {
          std::lock_guard<std::mutex> lk(win.mu);
          win.horizon = horizon;
          win.done = 0;
          ++win.epoch;
        }
        win.cv_work.notify_all();
        claim_and_drain(errors[0]);
        {
          std::unique_lock<std::mutex> lk(win.mu);
          ++win.done;
          win.cv_done.wait(lk, [&] { return win.done == participants; });
        }
        pdes_parallel_ = false;
        fired_run += win.fired.load(std::memory_order_relaxed);
        for (auto& err : errors)
          if (err) std::rethrow_exception(err);
      }

      in_window_ = false;
      drain_outboxes_();
    }
  } catch (...) {
    pdes_parallel_ = false;
    in_window_ = false;
    cur_lane_ = 0;
    shutdown_pool();
    throw;
  }
  shutdown_pool();

  // The run is over (or paused at the event budget): expose the frontier
  // clock so post-run readers see a single coherent time.
  Time latest = 0;
  for (const auto& lp : lanes_)
    if (lp->now > latest) latest = lp->now;
  now_ = latest;
  return fired_run;
}

bool Engine::empty() const {
  for (const auto& lp : lanes_)
    if (lp->live != 0) return false;
  return true;
}

std::uint64_t Engine::events_fired() const {
  std::uint64_t n = 0;
  for (const auto& lp : lanes_) n += lp->fired;
  return n;
}

std::size_t Engine::live_events() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->live;
  return n;
}

std::size_t Engine::slab_slots() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->slots.size();
  return n;
}

std::size_t Engine::queue_depth() const {
  std::size_t n = 0;
  for (const auto& lp : lanes_) n += lp->queue.size();
  return n;
}

void Engine::check_invariants() const {
  for (const auto& lp : lanes_) {
    lp->check_invariants();
    DPAR_ASSERT(lp->outbox_empty() || in_window_,
                "PDES: outbox posts outside a window");
    for (std::size_t to = 0; to < lp->outq.size(); ++to)
      if (!lp->outq[to].empty())
        DPAR_ASSERT(std::find(lp->touched.begin(), lp->touched.end(),
                              static_cast<LaneId>(to)) != lp->touched.end(),
                    "PDES: non-empty outbox queue missing from touched list");
  }
  DPAR_ASSERT(excl_ == 0 || (excl_ < lanes_.size() && lanes_[excl_]->exclusive),
              "PDES: exclusive lane id out of sync");
}

}  // namespace dpar::sim
