// Debug invariant layer.
//
// DPAR_ASSERT guards the structural invariants the fast paths rely on
// (event-heap ordering, RangeSet sortedness + incremental byte totals,
// EMC id->slot index agreement, closed-form vs reference striping). The
// checks are compiled out entirely unless DPAR_CHECK_INVARIANTS is defined
// (CMake option of the same name; ON by default for Debug builds, OFF for
// Release), so sanitizer CI legs verify the invariants continuously while
// the Release hot paths pay nothing.
//
// On failure DPAR_ASSERT prints the condition, message, and location to
// stderr and aborts — sanitizer runs and gtest death tests both catch the
// abort, and there is deliberately no exception path: a broken structural
// invariant means the simulation state can no longer be trusted.
#pragma once

#ifndef DPAR_CHECK_INVARIANTS
#define DPAR_CHECK_INVARIANTS 0
#endif

#if DPAR_CHECK_INVARIANTS

#include <cstdio>
#include <cstdlib>

namespace dpar::sim::detail {
[[noreturn]] inline void assert_fail(const char* cond, const char* msg,
                                     const char* file, int line) {
  std::fprintf(stderr, "DPAR_ASSERT failed: %s (%s) at %s:%d\n", cond, msg, file,
               line);
  std::abort();
}
}  // namespace dpar::sim::detail

/// Assert a structural invariant; active only under DPAR_CHECK_INVARIANTS.
#define DPAR_ASSERT(cond, msg)                                              \
  do {                                                                      \
    if (!(cond))                                                            \
      ::dpar::sim::detail::assert_fail(#cond, (msg), __FILE__, __LINE__);   \
  } while (0)

/// Run a statement (typically a full-structure validation) only when the
/// invariant layer is compiled in.
#define DPAR_IF_CHECKING(stmt) \
  do {                         \
    stmt;                      \
  } while (0)

#else

// sizeof keeps the operands parsed (so variables used only in assertions
// don't warn as unused) without evaluating or emitting anything.
#define DPAR_ASSERT(cond, msg)  \
  do {                          \
    (void)sizeof((cond) ? 0 : 0); \
    (void)sizeof(msg);          \
  } while (0)
#define DPAR_IF_CHECKING(stmt) \
  do {                         \
  } while (0)

#endif  // DPAR_CHECK_INVARIANTS
