// Intrusive fan-in completion counter.
//
// The drivers and PFS layers constantly split one logical operation into N
// sub-operations (stripes, RAID members, per-server messages) and fire a
// continuation when the last one lands. The historical idiom was
//
//   auto outstanding = std::make_shared<std::size_t>(n);
//   auto done_shared = std::make_shared<std::function<void()>>(std::move(done));
//   ... [outstanding, done_shared] { if (--*outstanding == 0) (*done_shared)(); }
//
// — two heap allocations plus two control-block refcounts per branch, and a
// 32-byte capture that pushes every branch callback past std::function's
// inline buffer. A FanIn is one allocation holding the counter and the moved-in
// continuation; branches capture a single raw pointer. The last `complete()`
// moves the continuation out, deletes the block, then invokes — so the
// continuation may itself allocate, re-enter, or destroy the surrounding
// object without touching freed memory.
//
// Ownership: `make_fanin(n, f)` with n >= 1 returns a pointer that must
// receive exactly n `complete()` calls; the block deletes itself on the last
// one. With n == 0 the continuation runs inline and nullptr is returned.
#pragma once

#include <cstddef>
#include <utility>

namespace dpar::sim {

template <class F>
class FanInT {
 public:
  FanInT(std::size_t n, F f) : remaining_(n), done_(std::move(f)) {}

  /// Signal one branch finished. Frees the block and runs the continuation
  /// when the count hits zero.
  void complete() {
    if (--remaining_ == 0) {
      F d = std::move(done_);
      delete this;
      d();
    }
  }

 private:
  std::size_t remaining_;
  F done_;
};

/// Heap-allocate a fan-in of `n` branches completing into `f`.
/// n == 0 runs `f` immediately and returns nullptr.
template <class F>
FanInT<F>* make_fanin(std::size_t n, F f) {
  if (n == 0) {
    f();
    return nullptr;
  }
  return new FanInT<F>(n, std::move(f));
}

}  // namespace dpar::sim
