// Ladder/timer-wheel event queue (see event_queue.hpp for the tier map) and
// the kind dispatch shared by both arms.
//
// Geometry and movement rules:
//
//  * Absolute slot numbers: slot_of_(t, i) = t >> (10 + 6i). floor_ is the
//    queue's cursor; the *front* heap holds exactly the keys sharing
//    floor_'s level-0 bucket, level i holds keys whose level-i slot lies
//    within 64 slots of floor_'s, and the tail holds everything farther
//    out (relative to the floor at their insertion).
//  * Insert walks the levels finest-first and stops at the first one whose
//    window covers the key, so a key is always filed at the finest
//    granularity that can hold it. A key beyond the level-(i-1) window is
//    always *past* level i's cursor slot (64 fine slots span at least one
//    coarse boundary), so inserts never land in a slot the cursor already
//    passed.
//  * Refill (front empty): pick the earliest candidate across tiers — per
//    level, the first occupied slot in cyclic cursor order via one
//    occupancy-bitmask rotate; for the tail, its cached minimum. Ties go
//    to the coarsest tier so its keys cascade down before any finer bucket
//    is drained (overlapping ranges interleave in time). A level-0 winner
//    advances the floor and heapifies the bucket into the front; a coarser
//    winner advances the floor to the slot's start and re-files each key,
//    now at finer granularity; a tail winner re-files the whole tail (the
//    tail is compared at bucket granularity so the floor never enters
//    tail_min_'s bucket with the key still in the tail). After every floor
//    move the floor's bucket is swept out of the wheel into the front —
//    tied finer slots are never cascaded by the tie rule, and their keys
//    would otherwise be shadowed by the freshly filled front (see
//    sweep_front_bucket_). Stale keys are dropped for free at every hop.
//  * A cross-lane post may land *behind* the floor (the target lane's next
//    own event — and thus its floor — can sit past the window horizon).
//    The floor then rewinds to the key and the front bucket is re-filed.
//    Wheel keys stay put: their slot indices now alias one wrap later, so
//    a refill may reconstruct a too-early candidate — harmless, the
//    cascade re-files those keys at their true position and the occupancy
//    bit clears either way, so progress holds.
#include "sim/event_queue.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/debug.hpp"

namespace dpar::sim {

QueueKind queue_kind_from_env() {
  const char* v = std::getenv("DPAR_ENGINE_QUEUE");
  if (v == nullptr || *v == '\0') return QueueKind::kLadder;
  const std::string s(v);
  if (s == "ladder") return QueueKind::kLadder;
  if (s == "heap") return QueueKind::kHeap;
  throw std::invalid_argument("DPAR_ENGINE_QUEUE: expected \"heap\" or \"ladder\", got \"" +
                              s + "\"");
}

EventQueue::EventQueue(QueueKind kind, const std::vector<std::uint32_t>* gens)
    : kind_(kind), gens_(gens) {}

// ---- kind dispatch ---------------------------------------------------------

void EventQueue::push(const EventKey& k) {
  if (kind_ == QueueKind::kHeap)
    heap_push_(k);
  else
    ladder_push_(k);
}

void EventQueue::append(const EventKey& k) {
  if (kind_ == QueueKind::kHeap)
    heap_.push_back(k);  // unsifted; commit_batch() restores order
  else
    ladder_push_(k);  // bucket filing is already O(1)
}

void EventQueue::commit_batch() {
  if (kind_ == QueueKind::kHeap) heap_rebuild_();
}

Time EventQueue::next_time() {
  return kind_ == QueueKind::kHeap ? heap_next_time_() : ladder_next_time_();
}

bool EventQueue::pop_min_live(EventKey& out) {
  if (kind_ == QueueKind::kHeap) {
    if (heap_next_time_() == kNoEventTime) return false;
    out = heap_.front();
    heap_pop_min_();
    return true;
  }
  if (ladder_next_time_() == kNoEventTime) return false;
  out = front_.front();
  front_pop_();
  --lq_size_;
  return true;
}

void EventQueue::note_cancel() {
  ++stale_;
  // Amortized cleanup: never let cancelled keys dominate the queue. Same
  // threshold either arm; the heap compacts (filter + Floyd rebuild), the
  // ladder purges (pure linear filters — nothing is ever re-sorted).
  if (stale_ >= 64 && stale_ * 2 >= size()) {
    if (kind_ == QueueKind::kHeap)
      heap_compact_();
    else
      ladder_purge_stale_();
  }
}

void EventQueue::check_invariants() const {
  if (kind_ == QueueKind::kHeap)
    heap_check_invariants_();
  else
    ladder_check_invariants_();
}

void EventQueue::debug_corrupt_order_for_test() {
  if (kind_ == QueueKind::kHeap) {
    if (heap_.size() >= 2) std::swap(heap_.front(), heap_.back());
    return;
  }
  if (front_.size() >= 2) std::swap(front_.front(), front_.back());
}

void EventQueue::debug_strand_front_for_test() {
  // Jump the floor a whole level-0 wheel span ahead: any live front key is
  // now stranded behind the cursor and check_invariants() must abort.
  floor_ += Time{kSlotsPerLevel} << kBucketShift;
}

// ---- ladder arm ------------------------------------------------------------

void EventQueue::front_push_(const EventKey& k) {
  front_.push_back(k);
  std::size_t i = front_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(k, front_[parent])) break;
    front_[i] = front_[parent];
    i = parent;
  }
  front_[i] = k;
}

void EventQueue::front_pop_() {
  front_.front() = front_.back();
  front_.pop_back();
  if (!front_.empty()) front_sift_down_(0);
}

void EventQueue::front_sift_down_(std::size_t i) {
  const std::size_t n = front_.size();
  const EventKey k = front_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c)
      if (before(front_[c], front_[best])) best = c;
    if (!before(front_[best], k)) break;
    front_[i] = front_[best];
    i = best;
  }
  front_[i] = k;
}

void EventQueue::front_rebuild_() {
  if (front_.size() > 1)
    for (std::size_t i = (front_.size() - 2) / 4 + 1; i-- > 0;)
      front_sift_down_(i);
}

void EventQueue::ladder_place_(const EventKey& k) {
  const std::uint64_t f0 = slot_of_(floor_, 0);
  const std::uint64_t k0 = slot_of_(k.t, 0);
  if (k0 == f0) {
    front_push_(k);
    return;
  }
  for (int lvl = 0; lvl < kLevels; ++lvl) {
    const std::uint64_t ks = slot_of_(k.t, lvl);
    if (ks - slot_of_(floor_, lvl) < kSlotsPerLevel) {
      const unsigned idx = ks & (kSlotsPerLevel - 1);
      levels_[lvl].buckets[idx].push_back(k);
      levels_[lvl].occupied |= std::uint64_t{1} << idx;
      return;
    }
  }
  tail_.push_back(k);
  if (k.t < tail_min_) tail_min_ = k.t;
}

void EventQueue::ladder_push_(const EventKey& k) {
  if (lq_size_ == 0) {
    // Empty queue: re-anchor the cursor on the key so it files as front.
    floor_ = k.t;
  } else if (slot_of_(k.t, 0) < slot_of_(floor_, 0)) {
    // The key precedes the cursor's bucket (a cross-lane post behind a
    // prefetched floor). Rewind: the front bucket is no longer current, so
    // re-file its keys relative to the new floor.
    std::vector<EventKey> spill;
    spill.swap(front_);
    floor_ = k.t;
    for (const EventKey& s : spill) {
      if (stale_key(s)) {
        --stale_;
        --lq_size_;
      } else {
        ladder_place_(s);
      }
    }
  }
  ladder_place_(k);
  ++lq_size_;
}

void EventQueue::sweep_front_bucket_() {
  // The floor's level-0 bucket IS the front: whenever a refill moves (or
  // keeps) the cursor, every live key sharing that bucket must sit in the
  // front heap before the refill returns. Keys of that bucket can hide in
  // the wheel at ANY level — a coarse slot whose start ties the winner's
  // start is never cascaded by the tie rule (the coarsest candidate wins
  // and fills the front, so the finer twin at the same start survives with
  // the front non-empty). Left behind, such keys would surface only after
  // the front drained: a late, out-of-order pop. Each level can hold them
  // only in its bucket at the floor's own slot, so one bucket per level is
  // scanned; aliased keys (true slot a wrap ahead, possible after a
  // rewind) are far ahead of the floor bucket and stay put.
  const std::uint64_t f0 = slot_of_(floor_, 0);
  for (int l = 0; l < kLevels; ++l) {
    Level& lvl = levels_[l];
    const unsigned idx = slot_of_(floor_, l) & (kSlotsPerLevel - 1);
    if ((lvl.occupied & (std::uint64_t{1} << idx)) == 0) continue;
    std::vector<EventKey>& b = lvl.buckets[idx];
    std::size_t out = 0;
    for (const EventKey& k : b) {
      if (stale_key(k)) {
        --stale_;
        --lq_size_;
      } else if (slot_of_(k.t, 0) == f0) {
        front_push_(k);
      } else {
        b[out++] = k;
      }
    }
    b.resize(out);
    if (b.empty()) lvl.occupied &= ~(std::uint64_t{1} << idx);
  }
}

Time EventQueue::ladder_next_time_() {
  for (;;) {
    while (!front_.empty() && stale_key(front_.front())) {
      front_pop_();
      --stale_;
      --lq_size_;
    }
    if (!front_.empty()) return front_.front().t;
    if (lq_size_ == 0) return kNoEventTime;

    // Earliest candidate across the wheel levels (first occupied slot in
    // cyclic cursor order; one rotate + count-trailing-zeros per level) and
    // the tail. Ties prefer the coarsest tier — iterate finest-first with
    // <= so a coarse slot overlapping a fine bucket cascades down before
    // the bucket drains.
    int best_lvl = -1;
    std::uint64_t best_slot = 0;
    Time best_start = kNoEventTime;
    for (int lvl = 0; lvl < kLevels; ++lvl) {
      const std::uint64_t occ = levels_[lvl].occupied;
      if (occ == 0) continue;
      const std::uint64_t fs = slot_of_(floor_, lvl);
      const unsigned fi = fs & (kSlotsPerLevel - 1);
      const std::uint64_t rot =
          (occ >> fi) | (fi != 0 ? occ << (kSlotsPerLevel - fi) : 0);
      const auto d = static_cast<unsigned>(__builtin_ctzll(rot));
      const std::uint64_t abs_slot = fs + d;
      const Time start =
          static_cast<Time>(abs_slot << (kBucketShift + kSlotBits * lvl));
      if (start <= best_start) {
        best_start = start;
        best_lvl = lvl;
        best_slot = abs_slot;
      }
    }

    if (!tail_.empty() && slot_of_(tail_min_, 0) <= slot_of_(best_start, 0)) {
      // Tail refill: advance the cursor to the tail's minimum and re-file
      // every key — the near ones spread into the wheel, the far ones
      // rebuild the tail (with an exact new minimum), stale ones vanish.
      // Compared at bucket granularity: a wheel candidate earlier in the
      // SAME bucket as tail_min_ must not win, or the floor would enter
      // the tail key's bucket with the key still in the tail — it would
      // then pop after later keys from that bucket's front.
      if (tail_min_ > floor_) floor_ = tail_min_;
      sweep_front_bucket_();
      std::vector<EventKey> spill;
      spill.swap(tail_);
      tail_min_ = kNoEventTime;
      for (const EventKey& s : spill) {
        if (stale_key(s)) {
          --stale_;
          --lq_size_;
        } else {
          ladder_place_(s);
        }
      }
      continue;
    }
    if (best_lvl < 0) return kNoEventTime;  // unreachable: lq_size_ > 0

    const unsigned idx = best_slot & (kSlotsPerLevel - 1);
    std::vector<EventKey> spill;
    spill.swap(levels_[best_lvl].buckets[idx]);
    levels_[best_lvl].occupied &= ~(std::uint64_t{1} << idx);
    if (best_start > floor_) floor_ = best_start;
    // A coarse winner whose start ties a finer occupied slot advances the
    // cursor into that slot without cascading it; any keys of the floor's
    // new bucket hiding there must join the front alongside the cascade or
    // they would pop late.
    sweep_front_bucket_();
    for (const EventKey& s : spill) {
      if (stale_key(s)) {
        --stale_;
        --lq_size_;
      } else if (best_lvl == 0 && slot_of_(s.t, 0) == best_slot) {
        front_push_(s);  // the winning bucket becomes the sorted front
      } else {
        ladder_place_(s);  // cascade down (or re-file a wrapped key)
      }
    }
  }
}

void EventQueue::ladder_purge_stale_() {
  std::size_t removed = 0;
  auto filter = [&](std::vector<EventKey>& v) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
      if (!stale_key(v[i])) v[out++] = v[i];
    removed += v.size() - out;
    v.resize(out);
  };
  filter(front_);
  front_rebuild_();
  for (Level& lvl : levels_) {
    if (lvl.occupied == 0) continue;
    for (unsigned idx = 0; idx < kSlotsPerLevel; ++idx) {
      if ((lvl.occupied & (std::uint64_t{1} << idx)) == 0) continue;
      filter(lvl.buckets[idx]);
      if (lvl.buckets[idx].empty())
        lvl.occupied &= ~(std::uint64_t{1} << idx);
    }
  }
  filter(tail_);
  tail_min_ = kNoEventTime;
  for (const EventKey& k : tail_)
    if (k.t < tail_min_) tail_min_ = k.t;
  lq_size_ -= removed;
  stale_ = 0;
  DPAR_IF_CHECKING(ladder_check_invariants_());
}

void EventQueue::ladder_check_invariants_() const {
  std::size_t counted = 0;
  std::size_t stale_keys = 0;
  auto count = [&](const EventKey& k) {
    DPAR_ASSERT(k.slot < gens_->size(), "ladder queue: key slot out of range");
    DPAR_ASSERT(k.gen != 0, "ladder queue: key with reserved generation 0");
    ++counted;
    if (stale_key(k)) ++stale_keys;
  };
  // Front: heap order, and every live key in the floor's bucket.
  for (std::size_t i = 1; i < front_.size(); ++i)
    DPAR_ASSERT(!before(front_[i], front_[(i - 1) / 4]),
                "ladder queue: front child precedes its parent");
  for (const EventKey& k : front_) {
    count(k);
    if (!stale_key(k))
      DPAR_ASSERT(slot_of_(k.t, 0) == slot_of_(floor_, 0),
                  "ladder queue: live front key outside the floor bucket");
  }
  // Wheel levels: occupancy bits agree with bucket contents, and no live
  // key is stranded behind its level's cursor (a stranded key would fire
  // late — the "no live event past its bucket" monotonicity invariant).
  for (int lvl = 0; lvl < kLevels; ++lvl) {
    const Level& L = levels_[lvl];
    for (unsigned idx = 0; idx < kSlotsPerLevel; ++idx) {
      const bool bit = (L.occupied & (std::uint64_t{1} << idx)) != 0;
      DPAR_ASSERT(bit == !L.buckets[idx].empty(),
                  "ladder queue: occupancy bit out of sync with bucket");
      for (const EventKey& k : L.buckets[idx]) {
        count(k);
        DPAR_ASSERT((slot_of_(k.t, lvl) & (kSlotsPerLevel - 1)) == idx,
                    "ladder queue: key filed in the wrong wheel slot");
        if (!stale_key(k)) {
          DPAR_ASSERT(slot_of_(k.t, lvl) >= slot_of_(floor_, lvl),
                      "ladder queue: live event stranded behind the cursor");
          // The floor's level-0 bucket lives in the front, never the wheel
          // — a twin at any level would be shadowed by the front and fire
          // late even though it is not behind its own level's cursor.
          DPAR_ASSERT(slot_of_(k.t, 0) != slot_of_(floor_, 0),
                      "ladder queue: live wheel key in the floor bucket");
        }
      }
    }
  }
  // Tail: the cached minimum is a sound lower bound on every live key.
  for (const EventKey& k : tail_) {
    count(k);
    if (!stale_key(k)) {
      DPAR_ASSERT(k.t >= tail_min_,
                  "ladder queue: tail minimum above a live tail key");
      DPAR_ASSERT(slot_of_(k.t, 0) != slot_of_(floor_, 0),
                  "ladder queue: live tail key in the floor bucket");
    }
  }
  DPAR_ASSERT(counted == lq_size_, "ladder queue: size count out of sync");
  DPAR_ASSERT(stale_keys == stale_, "ladder queue: stale count out of sync");
}

}  // namespace dpar::sim
