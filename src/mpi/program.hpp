// Workload program abstraction.
//
// A Program is a deterministic op stream: compute bursts, I/O calls and
// barriers. Programs are cloneable so DualPar's pre-execution can fork a
// ghost copy of the exact current state and run it ahead (§IV-C). The
// execution context tells a program whether it is running as a ghost; data-
// dependent programs (whose next offsets are computed from file contents)
// cannot see real data in a ghost run and mis-predict — precisely the
// mis-prefetch mechanism evaluated in Table III.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "pfs/layout.hpp"
#include "sim/time.hpp"

namespace dpar::mpi {

/// One MPI-IO call: a list of file segments (derived datatypes produce many
/// per call), read or write, optionally a collective call.
struct IoCall {
  pfs::FileId file = 0;
  std::vector<pfs::Segment> segments;
  bool is_write = false;
  bool collective = false;

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& s : segments) sum += s.length;
    return sum;
  }
};

struct OpCompute {
  sim::Time duration = 0;
};
struct OpIo {
  IoCall call;
};
struct OpBarrier {};
/// Synchronizing collective reduction: all ranks contribute `bytes` and
/// leave together after ~2 log2(P) exchange rounds.
struct OpAllreduce {
  std::uint64_t bytes = 0;
};
/// Blocking (rendezvous) point-to-point send to `dest`.
struct OpSend {
  std::uint32_t dest = 0;
  std::uint64_t bytes = 0;
  int tag = 0;
};
/// Blocking receive from `src` (no wildcard sources: workloads are
/// deterministic).
struct OpRecv {
  std::uint32_t src = 0;
  int tag = 0;
};
struct OpEnd {};

using Op =
    std::variant<OpCompute, OpIo, OpBarrier, OpAllreduce, OpSend, OpRecv, OpEnd>;

/// Execution context handed to Program::next.
struct ProgramContext {
  std::uint32_t rank = 0;
  std::uint32_t nprocs = 1;
  bool ghost = false;  ///< running as a pre-execution ghost
  /// Synthesized content of the most recent read (set only in normal runs);
  /// data-dependent programs derive their next offsets from it.
  std::optional<std::uint64_t> last_read_value;
};

class Program {
 public:
  virtual ~Program() = default;
  /// Produce the next op. Must eventually return OpEnd.
  virtual Op next(ProgramContext& ctx) = 0;
  /// Deep copy of the current execution state (for ghost forking).
  virtual std::unique_ptr<Program> clone() const = 0;
  /// True when the program ever emits OpSend/OpRecv. Point-to-point
  /// rendezvous matching is job-global state, so jobs running such programs
  /// cannot split their ranks across PDES lanes.
  virtual bool uses_p2p() const { return false; }
};

}  // namespace dpar::mpi
