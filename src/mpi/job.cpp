#include "mpi/job.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/rng.hpp"

namespace dpar::mpi {

Process::Process(sim::Engine& eng, Job& job, std::uint32_t rank, std::uint32_t global_id,
                 std::unique_ptr<Program> prog, cluster::ComputeNode& node)
    : eng_(eng), job_(job), rank_(rank), global_id_(global_id), prog_(std::move(prog)),
      node_(node) {
  ctx_.rank = rank_;
  ctx_.ghost = false;
}

void Process::start() {
  ctx_.nprocs = job_.nprocs();
  advance();
}

void Process::set_suspended(bool s) {
  if (s) {
    assert(state_ == ProcState::kBlockedIo);
    state_ = ProcState::kSuspended;
  } else if (state_ == ProcState::kSuspended) {
    state_ = ProcState::kBlockedIo;
  }
}

double Process::recent_io_bandwidth() const {
  const std::uint64_t bytes = bytes_read_ + bytes_written_;
  if (io_time_ <= 0 || bytes == 0) return 0.0;
  return static_cast<double>(bytes) / sim::to_seconds(io_time_);
}

void Process::advance() {
  if (state_ == ProcState::kFinished) return;
  state_ = ProcState::kRunning;
  Op op = prog_->next(ctx_);
  std::visit([this](auto&& o) { handle(std::move(o)); }, std::move(op));
}

void Process::handle(OpCompute op) {
  compute_time_ += op.duration;
  node_.run(op.duration, cluster::CpuPriority::kNormal, [this] { advance(); });
}

void Process::handle(OpIo op) {
  state_ = ProcState::kBlockedIo;
  const sim::Time t0 = eng_.now();
  auto call = std::make_shared<IoCall>(std::move(op.call));
  job_.driver().io(*this, *call, [this, t0, call] {
    io_time_ += eng_.now() - t0;
    job_.record_latency(call->is_write, eng_.now() - t0);
    if (call->is_write) {
      bytes_written_ += call->total_bytes();
    } else {
      bytes_read_ += call->total_bytes();
      // Synthesize the content "seen" by the application so data-dependent
      // programs can compute their next offsets in the normal run.
      if (!call->segments.empty())
        ctx_.last_read_value =
            sim::content_hash(call->file, call->segments.front().offset);
    }
    advance();
  });
}

void Process::handle(OpBarrier) {
  state_ = ProcState::kAtBarrier;
  job_.driver().on_barrier_enter(*this);
  job_.barrier_enter(*this, [this] { advance(); });
}

void Process::handle(OpAllreduce op) {
  state_ = ProcState::kAtBarrier;  // synchronizing collective: parked alike
  job_.driver().on_barrier_enter(*this);
  const sim::Time t0 = eng_.now();
  job_.barrier_enter(*this, [this, t0] {
    compute_time_ += eng_.now() - t0;  // comm folds into the compute probe
    advance();
  }, op.bytes);
}

void Process::handle(OpSend op) {
  state_ = ProcState::kBlockedComm;
  const sim::Time t0 = eng_.now();
  job_.comm_send(*this, op.dest, op.bytes, op.tag, [this, t0] {
    // The paper's probes fold communication into "computation time" (§IV-B).
    compute_time_ += eng_.now() - t0;
    advance();
  });
}

void Process::handle(OpRecv op) {
  state_ = ProcState::kBlockedComm;
  const sim::Time t0 = eng_.now();
  job_.comm_recv(*this, op.src, op.tag, [this, t0] {
    compute_time_ += eng_.now() - t0;
    advance();
  });
}

void Process::handle(OpEnd) {
  state_ = ProcState::kFinished;
  finish_time_ = eng_.now();
  // Account the completion first so the driver's on_process_end observes
  // job().finished() == true for the last rank (it triggers the final
  // write-back flush on that condition).
  job_.process_finished(*this);
  job_.driver().on_process_end(*this);
}

Job::Job(sim::Engine& eng, std::uint32_t id, std::string name, IoDriver& driver,
         net::Network* net)
    : eng_(eng), id_(id), name_(std::move(name)), driver_(driver), net_(net) {}

void Job::spawn(std::uint32_t nprocs, const std::vector<cluster::ComputeNode*>& nodes,
                const ProgramFactory& factory, std::uint32_t first_global_id) {
  if (nodes.empty()) throw std::invalid_argument("Job::spawn: no nodes");
  for (std::uint32_t r = 0; r < nprocs; ++r) {
    // Block distribution (MPI's default placement): consecutive ranks share
    // a node, so ranks whose data interleaves at fine grain are co-located.
    const std::size_t idx = static_cast<std::size_t>(r) * nodes.size() / nprocs;
    cluster::ComputeNode& node = *nodes[std::min(idx, nodes.size() - 1)];
    procs_.push_back(std::make_unique<Process>(eng_, *this, r, first_global_id + r,
                                               factory(r), node));
  }
}

void Job::start() {
  start_time_ = eng_.now();
  for (auto& p : procs_) p->start();
}

sim::Time Job::total_io_time() const {
  sim::Time t = 0;
  for (const auto& p : procs_) t += p->io_time();
  return t;
}

sim::Time Job::total_compute_time() const {
  sim::Time t = 0;
  for (const auto& p : procs_) t += p->compute_time();
  return t;
}

std::uint64_t Job::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& p : procs_) b += p->bytes_read() + p->bytes_written();
  return b;
}

void Job::barrier_enter(Process& proc, sim::UniqueFunction resume,
                        std::uint64_t payload_bytes) {
  (void)proc;
  barrier_waiters_.push_back(std::move(resume));
  barrier_payload_ = std::max(barrier_payload_, payload_bytes);
  release_barrier_if_ready();
}

void Job::release_barrier_if_ready() {
  const std::uint32_t live = nprocs() - finished_;
  if (live == 0 || barrier_waiters_.size() < live) return;
  // Dissemination-barrier cost: ~2 * ceil(log2 P) network hops at TCP/GigE
  // round-trip latency (measured MPICH2 barriers on Ethernet clusters run
  // 1-3 ms at 64 ranks); a collective payload adds its transfer per round.
  const int hops = 2 * std::bit_width(std::uint32_t{live > 1 ? live - 1 : 1});
  const sim::Time cost =
      (sim::usec(150) + sim::transfer_time(barrier_payload_, 125e6)) * hops;
  barrier_payload_ = 0;
  auto waiters = std::move(barrier_waiters_);
  barrier_waiters_.clear();
  // One release event for the whole round: the resumes would get consecutive
  // sequence numbers anyway, so batching preserves order while cutting P
  // heap entries to 1 per barrier.
  eng_.after_all(cost, std::move(waiters));
}

bool Job::all_parked() const {
  for (const auto& p : procs_) {
    switch (p->state()) {
      case ProcState::kSuspended:
      case ProcState::kAtBarrier:
      case ProcState::kBlockedComm:
      case ProcState::kFinished:
        continue;
      default:
        return false;
    }
  }
  return nprocs() > 0;
}

void Job::comm_transfer(std::uint32_t src_rank, std::uint32_t dst_rank,
                        std::uint64_t bytes, sim::UniqueFunction done) {
  if (net_ != nullptr) {
    net_->send(procs_[src_rank]->node().id(), procs_[dst_rank]->node().id(), bytes,
               std::move(done));
    return;
  }
  // No fabric attached: latency + bandwidth formula.
  eng_.after(sim::usec(50) + sim::transfer_time(bytes, 125e6), std::move(done));
}

void Job::comm_send(Process& proc, std::uint32_t dest, std::uint64_t bytes, int tag,
                    sim::UniqueFunction resume) {
  if (dest >= nprocs()) throw std::invalid_argument("comm_send: bad destination rank");
  const CommKey key{proc.rank(), dest, tag};
  auto rit = pending_recvs_.find(key);
  if (rit != pending_recvs_.end() && !rit->second.empty()) {
    auto recv_resume = std::move(rit->second.front());
    rit->second.pop_front();
    comm_transfer(proc.rank(), dest, bytes,
                  [send_resume = std::move(resume),
                   recv_resume = std::move(recv_resume)]() mutable {
                    send_resume();
                    recv_resume();
                  });
    return;
  }
  pending_sends_[key].push_back(PendingSend{bytes, std::move(resume)});
}

void Job::comm_recv(Process& proc, std::uint32_t src, int tag,
                    sim::UniqueFunction resume) {
  if (src >= nprocs()) throw std::invalid_argument("comm_recv: bad source rank");
  const CommKey key{src, proc.rank(), tag};
  auto sit = pending_sends_.find(key);
  if (sit != pending_sends_.end() && !sit->second.empty()) {
    PendingSend send = std::move(sit->second.front());
    sit->second.pop_front();
    comm_transfer(src, proc.rank(), send.bytes,
                  [send_resume = std::move(send.resume),
                   recv_resume = std::move(resume)]() mutable {
                    send_resume();
                    recv_resume();
                  });
    return;
  }
  pending_recvs_[key].push_back(std::move(resume));
}

void Job::process_finished(Process& proc) {
  (void)proc;
  ++finished_;
  // A finishing process may complete a barrier the rest are waiting on.
  release_barrier_if_ready();
  if (finished_ == nprocs()) {
    completion_time_ = eng_.now();
    if (on_complete_) on_complete_();
  }
}

}  // namespace dpar::mpi
