#include "mpi/job.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/rng.hpp"

namespace dpar::mpi {

Process::Process(sim::Engine& eng, Job& job, std::uint32_t rank, std::uint32_t global_id,
                 std::unique_ptr<Program> prog, cluster::ComputeNode& node)
    : eng_(eng), job_(job), rank_(rank), global_id_(global_id), prog_(std::move(prog)),
      node_(node) {
  ctx_.rank = rank_;
  ctx_.ghost = false;
}

void Process::start() {
  ctx_.nprocs = job_.nprocs();
  advance();
}

void Process::set_suspended(bool s) {
  if (s) {
    assert(state_ == ProcState::kBlockedIo);
    state_ = ProcState::kSuspended;
  } else if (state_ == ProcState::kSuspended) {
    state_ = ProcState::kBlockedIo;
  }
}

double Process::recent_io_bandwidth() const {
  const std::uint64_t bytes = bytes_read_ + bytes_written_;
  if (io_time_ <= 0 || bytes == 0) return 0.0;
  return static_cast<double>(bytes) / sim::to_seconds(io_time_);
}

void Process::advance() {
  if (state_ == ProcState::kFinished) return;
  state_ = ProcState::kRunning;
  Op op = prog_->next(ctx_);
  std::visit([this](auto&& o) { handle(std::move(o)); }, std::move(op));
}

void Process::handle(OpCompute op) {
  compute_time_ += op.duration;
  node_.run(op.duration, cluster::CpuPriority::kNormal, [this] { advance(); });
}

void Process::handle(OpIo op) {
  state_ = ProcState::kBlockedIo;
  const sim::Time t0 = eng_.now();
  auto call = std::make_shared<IoCall>(std::move(op.call));
  job_.driver().io(*this, *call, [this, t0, call] {
    io_time_ += eng_.now() - t0;
    record_latency(call->is_write, eng_.now() - t0);
    if (call->is_write) {
      bytes_written_ += call->total_bytes();
    } else {
      bytes_read_ += call->total_bytes();
      // Synthesize the content "seen" by the application so data-dependent
      // programs can compute their next offsets in the normal run.
      if (!call->segments.empty())
        ctx_.last_read_value =
            sim::content_hash(call->file, call->segments.front().offset);
    }
    advance();
  });
}

void Process::handle(OpBarrier) {
  state_ = ProcState::kAtBarrier;
  job_.driver().on_barrier_enter(*this);
  job_.barrier_enter(*this, [this] { advance(); });
}

void Process::handle(OpAllreduce op) {
  state_ = ProcState::kAtBarrier;  // synchronizing collective: parked alike
  job_.driver().on_barrier_enter(*this);
  const sim::Time t0 = eng_.now();
  job_.barrier_enter(*this, [this, t0] {
    compute_time_ += eng_.now() - t0;  // comm folds into the compute probe
    advance();
  }, op.bytes);
}

void Process::handle(OpSend op) {
  state_ = ProcState::kBlockedComm;
  const sim::Time t0 = eng_.now();
  job_.comm_send(*this, op.dest, op.bytes, op.tag, [this, t0] {
    // The paper's probes fold communication into "computation time" (§IV-B).
    compute_time_ += eng_.now() - t0;
    advance();
  });
}

void Process::handle(OpRecv op) {
  state_ = ProcState::kBlockedComm;
  const sim::Time t0 = eng_.now();
  job_.comm_recv(*this, op.src, op.tag, [this, t0] {
    compute_time_ += eng_.now() - t0;
    advance();
  });
}

void Process::handle(OpEnd) {
  state_ = ProcState::kFinished;
  finish_time_ = eng_.now();
  // Account the completion first so the driver's on_process_end observes
  // job().finished() == true for the last rank (it triggers the final
  // write-back flush on that condition).
  job_.process_finished(*this);
  job_.driver().on_process_end(*this);
}

Job::Job(sim::Engine& eng, std::uint32_t id, std::string name, IoDriver& driver,
         net::Network* net)
    : eng_(eng), id_(id), name_(std::move(name)), driver_(driver), net_(net) {}

void Job::spawn(std::uint32_t nprocs, const std::vector<cluster::ComputeNode*>& nodes,
                const ProgramFactory& factory, std::uint32_t first_global_id) {
  if (nodes.empty()) throw std::invalid_argument("Job::spawn: no nodes");
  for (std::uint32_t r = 0; r < nprocs; ++r) {
    // Block distribution (MPI's default placement): consecutive ranks share
    // a node, so ranks whose data interleaves at fine grain are co-located.
    const std::size_t idx = static_cast<std::size_t>(r) * nodes.size() / nprocs;
    cluster::ComputeNode& node = *nodes[std::min(idx, nodes.size() - 1)];
    auto prog = factory(r);
    uses_p2p_ = uses_p2p_ || prog->uses_p2p();
    procs_.push_back(std::make_unique<Process>(eng_, *this, r, first_global_id + r,
                                               std::move(prog), node));
  }
}

void Job::start() {
  start_time_ = eng_.now();
  for (auto& p : procs_) p->start();
}

void Job::enable_lane_coordination(sim::Time latency) {
  if (net_ == nullptr)
    throw std::logic_error("Job: lane coordination needs a Network fabric");
  if (latency <= 0)
    throw std::invalid_argument("Job: coordination latency must be positive");
  coord_latency_ = latency;
}

sim::LaneId Job::rank_lane_(std::uint32_t rank) {
  return net_ != nullptr ? net_->lane_of(procs_[rank]->node().id()) : 0;
}

void Job::start_lanes(sim::Time at) {
  start_time_ = at;
  // One start event per compute node (block placement keeps a node's ranks
  // consecutive), fired in rank order within the node. Grouping by node id —
  // not by lane — keeps the batch count (and thus the fired-event count)
  // identical at every worker setting: unpartitioned engines map every node
  // to lane 0, which would otherwise collapse the batches into one.
  std::uint32_t r = 0;
  while (r < nprocs()) {
    const std::uint32_t node = procs_[r]->node().id();
    const sim::LaneId lane = rank_lane_(r);
    std::vector<sim::Engine::Callback> batch;
    for (; r < nprocs() && procs_[r]->node().id() == node; ++r) {
      Process* p = procs_[r].get();
      batch.emplace_back([p] { p->start(); });
    }
    eng_.at_all_in(lane, at, std::move(batch));
  }
}

sim::Time Job::total_io_time() const {
  sim::Time t = 0;
  for (const auto& p : procs_) t += p->io_time();
  return t;
}

sim::Time Job::total_compute_time() const {
  sim::Time t = 0;
  for (const auto& p : procs_) t += p->compute_time();
  return t;
}

std::uint64_t Job::total_bytes() const {
  std::uint64_t b = 0;
  for (const auto& p : procs_) b += p->bytes_read() + p->bytes_written();
  return b;
}

void Job::barrier_enter(Process& proc, sim::UniqueFunction resume,
                        std::uint64_t payload_bytes) {
  if (coord_latency_ >= 0) {
    // Split-lane protocol: the rank's lane may be executing concurrently
    // with its siblings, so the entry is posted to the exclusive lane as a
    // note carrying the entry time. coord_latency_ equals the lookahead, so
    // the note always lands past the current window's horizon.
    const sim::Time entered = eng_.now();
    const std::uint32_t rank = proc.rank();
    eng_.at_in(eng_.exclusive_lane(), entered + coord_latency_,
               [this, rank, entered, payload_bytes,
                resume = std::move(resume)]() mutable {
                 barrier_note_(rank, entered, payload_bytes, std::move(resume));
               });
    return;
  }
  barrier_waiters_.push_back(BarrierWaiter{proc.rank(), std::move(resume)});
  barrier_payload_ = std::max(barrier_payload_, payload_bytes);
  release_barrier_if_ready();
}

void Job::barrier_note_(std::uint32_t rank, sim::Time entered,
                        std::uint64_t payload_bytes, sim::UniqueFunction resume) {
  coord_waiters_.push_back(CoordWaiter{rank, entered, std::move(resume)});
  barrier_payload_ = std::max(barrier_payload_, payload_bytes);
  release_coord_barrier_if_ready_();
}

void Job::release_coord_barrier_if_ready_() {
  const std::uint32_t live = nprocs() - finished_;
  if (live == 0 || coord_waiters_.size() < live) return;
  // Same dissemination-barrier cost model as the single-lane path, but the
  // release time derives from when the last rank *entered* (carried in its
  // note), not from when its note reached the exclusive lane — the
  // coordination latency is bookkeeping, not simulated barrier time.
  const int hops = 2 * std::bit_width(std::uint32_t{live > 1 ? live - 1 : 1});
  const sim::Time cost =
      (sim::usec(150) + sim::transfer_time(barrier_payload_, 125e6)) * hops;
  barrier_payload_ = 0;
  sim::Time t_last = 0;
  for (const CoordWaiter& w : coord_waiters_) t_last = std::max(t_last, w.entered);
  const sim::Time release_t = t_last + cost;
  // Canonical release order: sort by rank. Note arrival order can differ
  // between worker counts when two notes share a timestamp; the sort (and
  // the max/max folds above) make the release independent of it. Block
  // placement keeps a node's ranks consecutive after the sort, so adjacent
  // same-node waiters batch into one cross-lane message per compute node —
  // grouped by node id so the batch count matches at every worker setting.
  std::sort(coord_waiters_.begin(), coord_waiters_.end(),
            [](const CoordWaiter& a, const CoordWaiter& b) { return a.rank < b.rank; });
  auto waiters = std::move(coord_waiters_);
  coord_waiters_.clear();
  std::size_t i = 0;
  while (i < waiters.size()) {
    const std::uint32_t node = procs_[waiters[i].rank]->node().id();
    const sim::LaneId lane = rank_lane_(waiters[i].rank);
    std::vector<sim::Engine::Callback> batch;
    for (; i < waiters.size() && procs_[waiters[i].rank]->node().id() == node; ++i)
      batch.push_back(std::move(waiters[i].resume));
    eng_.at_all_in(lane, release_t, std::move(batch));
  }
}

void Job::release_barrier_if_ready() {
  const std::uint32_t live = nprocs() - finished_;
  if (live == 0 || barrier_waiters_.size() < live) return;
  // Dissemination-barrier cost: ~2 * ceil(log2 P) network hops at TCP/GigE
  // round-trip latency (measured MPICH2 barriers on Ethernet clusters run
  // 1-3 ms at 64 ranks); a collective payload adds its transfer per round.
  const int hops = 2 * std::bit_width(std::uint32_t{live > 1 ? live - 1 : 1});
  const sim::Time cost =
      (sim::usec(150) + sim::transfer_time(barrier_payload_, 125e6)) * hops;
  barrier_payload_ = 0;
  auto waiters = std::move(barrier_waiters_);
  barrier_waiters_.clear();
  // Canonical release order: sort by rank, matching the split-lane protocol
  // so a job releases its ranks in the same order under either path (the
  // resume order decides how same-timestamp I/O lands at the servers).
  std::sort(waiters.begin(), waiters.end(),
            [](const BarrierWaiter& a, const BarrierWaiter& b) { return a.rank < b.rank; });
  // One release event for the whole round: the resumes would get consecutive
  // sequence numbers anyway, so batching preserves order while cutting P
  // heap entries to 1 per barrier.
  std::vector<sim::UniqueFunction> resumes;
  resumes.reserve(waiters.size());
  for (BarrierWaiter& w : waiters) resumes.push_back(std::move(w.resume));
  eng_.after_all(cost, std::move(resumes));
}

bool Job::all_parked() const {
  for (const auto& p : procs_) {
    switch (p->state()) {
      case ProcState::kSuspended:
      case ProcState::kAtBarrier:
      case ProcState::kBlockedComm:
      case ProcState::kFinished:
        continue;
      default:
        return false;
    }
  }
  return nprocs() > 0;
}

void Job::comm_transfer(std::uint32_t src_rank, std::uint32_t dst_rank,
                        std::uint64_t bytes, sim::UniqueFunction done) {
  if (net_ != nullptr) {
    net_->send(procs_[src_rank]->node().id(), procs_[dst_rank]->node().id(), bytes,
               std::move(done));
    return;
  }
  // No fabric attached: latency + bandwidth formula. Without a Network there
  // are no node lanes (the testbed derives lanes from the fabric map), so
  // this schedules in the only lane there is.
  // dpar-lint: allow(pdes-lane-channel)
  eng_.after(sim::usec(50) + sim::transfer_time(bytes, 125e6), std::move(done));
}

void Job::comm_send(Process& proc, std::uint32_t dest, std::uint64_t bytes, int tag,
                    sim::UniqueFunction resume) {
  if (dest >= nprocs()) throw std::invalid_argument("comm_send: bad destination rank");
  const CommKey key{proc.rank(), dest, tag};
  auto rit = pending_recvs_.find(key);
  if (rit != pending_recvs_.end() && !rit->second.empty()) {
    auto recv_resume = std::move(rit->second.front());
    rit->second.pop_front();
    comm_transfer(proc.rank(), dest, bytes,
                  [send_resume = std::move(resume),
                   recv_resume = std::move(recv_resume)]() mutable {
                    send_resume();
                    recv_resume();
                  });
    return;
  }
  pending_sends_[key].push_back(PendingSend{bytes, std::move(resume)});
}

void Job::comm_recv(Process& proc, std::uint32_t src, int tag,
                    sim::UniqueFunction resume) {
  if (src >= nprocs()) throw std::invalid_argument("comm_recv: bad source rank");
  const CommKey key{src, proc.rank(), tag};
  auto sit = pending_sends_.find(key);
  if (sit != pending_sends_.end() && !sit->second.empty()) {
    PendingSend send = std::move(sit->second.front());
    sit->second.pop_front();
    comm_transfer(src, proc.rank(), send.bytes,
                  [send_resume = std::move(send.resume),
                   recv_resume = std::move(resume)]() mutable {
                    send_resume();
                    recv_resume();
                  });
    return;
  }
  pending_recvs_[key].push_back(std::move(resume));
}

void Job::process_finished(Process& proc) {
  (void)proc;
  if (coord_latency_ >= 0) {
    const sim::Time ended = eng_.now();
    eng_.at_in(eng_.exclusive_lane(), ended + coord_latency_,
               [this, ended] { finish_note_(ended); });
    return;
  }
  ++finished_;
  // A finishing process may complete a barrier the rest are waiting on.
  release_barrier_if_ready();
  if (finished_ == nprocs()) {
    completion_time_ = eng_.now();
    if (on_complete_) on_complete_();
  }
}

void Job::finish_note_(sim::Time ended) {
  ++finished_;
  // A finishing rank may complete a barrier the rest are waiting on.
  release_coord_barrier_if_ready_();
  if (finished_ == nprocs()) {
    // Two finish notes sharing a note timestamp carry the same `ended`
    // (note time = ended + constant), so the completion time does not
    // depend on their processing order.
    completion_time_ = ended;
    if (on_complete_) on_complete_();
  }
}

sim::Histogram Job::read_latency() const {
  sim::Histogram h;
  for (const auto& p : procs_) h.merge(p->read_latency());
  return h;
}

sim::Histogram Job::write_latency() const {
  sim::Histogram h;
  for (const auto& p : procs_) h.merge(p->write_latency());
  return h;
}

}  // namespace dpar::mpi
