// Simulated MPI job: a set of rank processes executing Programs on compute
// nodes, a barrier, and an attached I/O driver (the MPI-IO library variant
// the job runs with).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "mpi/program.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "sim/func.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/stats.hpp"

namespace dpar::mpi {

class Job;
class Process;

/// The MPI-IO library seen by a process. Implementations: vanilla
/// independent I/O, collective (two-phase) I/O, Strategy-2 pre-execution
/// prefetching, and DualPar.
class IoDriver {
 public:
  virtual ~IoDriver() = default;

  /// Serve one I/O call of `proc`; `done` resumes the process.
  virtual void io(Process& proc, const IoCall& call, sim::UniqueFunction done) = 0;

  /// Notifications the DualPar cycle coordinator relies on.
  virtual void on_barrier_enter(Process&) {}
  virtual void on_process_end(Process&) {}

  /// True when the driver only ever touches state owned by the calling
  /// process's compute node (or crosses nodes via the Network channel), so a
  /// job using it can run its ranks in per-compute-node PDES lanes. Drivers
  /// with cross-rank shared state (collective aggregation, ghost/pre-execution
  /// coordination) keep the default: the job stays on one lane.
  virtual bool lane_splittable() const { return false; }

  virtual std::string name() const = 0;
};

enum class ProcState {
  kRunning,      ///< computing or dispatching
  kBlockedIo,    ///< inside an I/O call, driver working
  kSuspended,    ///< parked by DualPar's PEC awaiting a data-driven cycle
  kAtBarrier,
  kBlockedComm,  ///< in a blocking send/recv awaiting its match
  kFinished,
};

class Process {
 public:
  Process(sim::Engine& eng, Job& job, std::uint32_t rank, std::uint32_t global_id,
          std::unique_ptr<Program> prog, cluster::ComputeNode& node);

  void start();

  Job& job() { return job_; }
  std::uint32_t rank() const { return rank_; }
  /// Cluster-unique process id (I/O context id at the disks).
  std::uint32_t global_id() const { return global_id_; }
  cluster::ComputeNode& node() { return node_; }
  ProcState state() const { return state_; }
  void set_suspended(bool s);

  /// Fork the program at its exact current position (ghost pre-execution).
  std::unique_ptr<Program> clone_program() const { return prog_->clone(); }

  sim::Time io_time() const { return io_time_; }
  sim::Time compute_time() const { return compute_time_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  sim::Time finish_time() const { return finish_time_; }

  /// Per-call I/O latency, recorded rank-locally so concurrent lanes never
  /// share a histogram; Job merges the shards in rank order at read time.
  const sim::Histogram& read_latency() const { return read_lat_; }
  const sim::Histogram& write_latency() const { return write_lat_; }
  void record_latency(bool is_write, sim::Time latency) {
    (is_write ? write_lat_ : read_lat_)
        .add(static_cast<double>(latency) / sim::kNsPerUs);
  }

  /// Observed application I/O throughput (bytes per second of elapsed time
  /// spent in I/O calls); PEC uses it to bound pre-execution duration.
  double recent_io_bandwidth() const;

 private:
  void advance();
  void handle(OpCompute op);
  void handle(OpIo op);
  void handle(OpBarrier op);
  void handle(OpAllreduce op);
  void handle(OpSend op);
  void handle(OpRecv op);
  void handle(OpEnd op);

  sim::Engine& eng_;
  Job& job_;
  std::uint32_t rank_;
  std::uint32_t global_id_;
  std::unique_ptr<Program> prog_;
  cluster::ComputeNode& node_;
  ProgramContext ctx_;
  ProcState state_ = ProcState::kRunning;
  sim::Time io_time_ = 0;
  sim::Time compute_time_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  sim::Time finish_time_ = -1;
  sim::Histogram read_lat_;
  sim::Histogram write_lat_;
};

class Job {
 public:
  using ProgramFactory = std::function<std::unique_ptr<Program>(std::uint32_t rank)>;

  /// `net` carries point-to-point messages; without one, transfers are
  /// approximated by a latency/bandwidth formula (unit-test convenience).
  Job(sim::Engine& eng, std::uint32_t id, std::string name, IoDriver& driver,
      net::Network* net = nullptr);

  /// Create `nprocs` rank processes, distributed round-robin over `nodes`.
  /// `first_global_id` spaces process ids so concurrent jobs don't collide.
  void spawn(std::uint32_t nprocs, const std::vector<cluster::ComputeNode*>& nodes,
             const ProgramFactory& factory, std::uint32_t first_global_id);

  void start();

  /// Switch the job onto the split-lane coordination protocol: barrier
  /// entries and rank completions are posted to the engine's exclusive lane
  /// as notes carrying their original timestamps, `latency` (the fabric's
  /// switch latency == the PDES lookahead) in the future, and releases go
  /// back out as one cross-lane message per compute node. The protocol runs
  /// identically at every worker count — including the unpartitioned engine,
  /// where the cross-lane calls degrade to plain events — so eligible
  /// configurations stay byte-identical across `DPAR_PDES_WORKERS`.
  /// Must be called before start_lanes(); requires a Network fabric.
  void enable_lane_coordination(sim::Time latency);
  bool lane_coordinated() const { return coord_latency_ >= 0; }

  /// Start every rank at absolute time `at`, batched as one event per
  /// compute-node lane (rank order within a node). Used instead of start()
  /// when lane coordination is enabled.
  void start_lanes(sim::Time at);

  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  IoDriver& driver() { return driver_; }
  sim::Engine& engine() { return eng_; }
  std::uint32_t nprocs() const { return static_cast<std::uint32_t>(procs_.size()); }
  Process& process(std::uint32_t i) { return *procs_[i]; }
  bool finished() const { return finished_ == nprocs() && nprocs() > 0; }
  sim::Time start_time() const { return start_time_; }
  sim::Time completion_time() const { return completion_time_; }

  /// True when any rank's program issues point-to-point sends/receives; the
  /// rendezvous queues are job-global state, so such jobs cannot split their
  /// ranks across lanes.
  bool uses_p2p() const { return uses_p2p_; }

  /// Aggregates for EMC's I/O-ratio input and throughput reporting.
  sim::Time total_io_time() const;
  sim::Time total_compute_time() const;
  std::uint64_t total_bytes() const;

  /// Per-call I/O latency distribution (microseconds), read and write:
  /// the ranks' per-process shards merged in rank order. Merging at read
  /// time keeps the hot recording path lane-local.
  sim::Histogram read_latency() const;
  sim::Histogram write_latency() const;

  /// Barrier entry from `proc`; `resume` fires when all live ranks arrived.
  /// `payload_bytes` > 0 models a synchronizing collective (allreduce):
  /// every rank additionally pays ~2 log2(P) payload exchanges.
  void barrier_enter(Process& proc, sim::UniqueFunction resume,
                     std::uint64_t payload_bytes = 0);

  /// Rendezvous point-to-point matching: both sides resume once the payload
  /// has crossed the network.
  void comm_send(Process& proc, std::uint32_t dest, std::uint64_t bytes, int tag,
                 sim::UniqueFunction resume);
  void comm_recv(Process& proc, std::uint32_t src, int tag,
                 sim::UniqueFunction resume);

  /// Count of processes in any of the given parked states; the DualPar cycle
  /// coordinator triggers when parked == nprocs.
  bool all_parked() const;

  /// Internal: called by Process.
  void process_finished(Process& proc);

 private:
  void release_barrier_if_ready();

  // Split-lane coordination (exclusive-lane side). Notes carry the original
  // rank-lane timestamps so the release time and completion time are computed
  // from when things actually happened, not when the notes arrived.
  DPAR_EXCLUSIVE_LANE void barrier_note_(std::uint32_t rank, sim::Time entered,
                                         std::uint64_t payload_bytes,
                                         sim::UniqueFunction resume);
  DPAR_EXCLUSIVE_LANE void finish_note_(sim::Time ended);
  DPAR_EXCLUSIVE_LANE void release_coord_barrier_if_ready_();
  sim::LaneId rank_lane_(std::uint32_t rank);

  void comm_transfer(std::uint32_t src_rank, std::uint32_t dst_rank,
                     std::uint64_t bytes, sim::UniqueFunction done);

  sim::Engine& eng_;
  std::uint32_t id_;
  std::string name_;
  IoDriver& driver_;
  net::Network* net_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::uint32_t finished_ = 0;
  sim::Time start_time_ = -1;
  sim::Time completion_time_ = -1;
  std::function<void()> on_complete_;
  bool uses_p2p_ = false;
  sim::Time coord_latency_ = -1;  ///< >= 0: split-lane coordination active

  // Barrier state for the current epoch. Waiters carry their rank so the
  // release can sort them into canonical rank order — the same order the
  // split-lane protocol uses — keeping the two paths schedule-identical.
  struct BarrierWaiter {
    std::uint32_t rank;
    sim::UniqueFunction resume;
  };
  std::vector<BarrierWaiter> barrier_waiters_;
  std::uint64_t barrier_payload_ = 0;

  // Coordinated-barrier state, touched only from the exclusive lane.
  struct CoordWaiter {
    std::uint32_t rank;
    sim::Time entered;
    sim::UniqueFunction resume;
  };
  DPAR_EXCLUSIVE_LANE std::vector<CoordWaiter> coord_waiters_;

  // Point-to-point rendezvous queues, keyed by (src, dst, tag).
  struct CommKey {
    std::uint32_t src, dst;
    int tag;
    friend auto operator<=>(const CommKey&, const CommKey&) = default;
  };
  struct PendingSend {
    std::uint64_t bytes;
    sim::UniqueFunction resume;
  };
  std::map<CommKey, std::deque<PendingSend>> pending_sends_;
  std::map<CommKey, std::deque<sim::UniqueFunction>> pending_recvs_;
};

}  // namespace dpar::mpi
