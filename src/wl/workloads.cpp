#include "wl/workloads.hpp"

#include <algorithm>
#include <vector>

namespace dpar::wl {
namespace {

using mpi::IoCall;
using mpi::Op;
using mpi::OpAllreduce;
using mpi::OpBarrier;
using mpi::OpCompute;
using mpi::OpEnd;
using mpi::OpIo;
using mpi::OpRecv;
using mpi::OpSend;
using mpi::ProgramContext;
using pfs::Segment;

/// CRTP base providing clone() via the derived copy constructor; programs
/// are plain value types so ghost forking is a deep copy.
template <class Derived>
class Cloneable : public mpi::Program {
 public:
  std::unique_ptr<mpi::Program> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Per-call cadence shared by the simple loop benchmarks:
/// [compute] -> io -> [barrier] -> ... -> end.
enum class Phase { kCompute, kIo, kBarrier };

class DemoProgram final : public Cloneable<DemoProgram> {
 public:
  explicit DemoProgram(const DemoConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    const std::uint64_t total_segs = cfg_.file_size / cfg_.segment_size;
    const std::uint64_t base =
        call_ * std::uint64_t{cfg_.segments_per_call} * ctx.nprocs;
    if (base >= total_segs) return OpEnd{};
    if (phase_ == Phase::kCompute) {
      phase_ = Phase::kIo;
      if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
    }
    phase_ = Phase::kCompute;
    IoCall call;
    call.file = cfg_.file;
    call.is_write = cfg_.is_write;
    for (std::uint32_t k = 0; k < cfg_.segments_per_call; ++k) {
      const std::uint64_t seg = base + std::uint64_t{k} * ctx.nprocs + ctx.rank;
      if (seg >= total_segs) break;
      call.segments.push_back(Segment{seg * cfg_.segment_size, cfg_.segment_size});
    }
    ++call_;
    if (call.segments.empty()) return OpEnd{};
    return OpIo{std::move(call)};
  }

 private:
  DemoConfig cfg_;
  std::uint64_t call_ = 0;
  Phase phase_ = Phase::kCompute;
};

class MpiIoTestProgram final : public Cloneable<MpiIoTestProgram> {
 public:
  explicit MpiIoTestProgram(const MpiIoTestConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    const std::uint64_t offset =
        (std::uint64_t{ctx.rank} + std::uint64_t{ctx.nprocs} * call_) * cfg_.request_size;
    if (offset + cfg_.request_size > cfg_.file_size) return OpEnd{};
    switch (phase_) {
      case Phase::kCompute:
        phase_ = Phase::kIo;
        if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
        [[fallthrough]];
      case Phase::kIo: {
        phase_ = cfg_.barrier_every_call ? Phase::kBarrier : Phase::kCompute;
        IoCall call;
        call.file = cfg_.file;
        call.is_write = cfg_.is_write;
        call.collective = cfg_.collective;
        call.segments.push_back(Segment{offset, cfg_.request_size});
        if (!cfg_.barrier_every_call) ++call_;
        return OpIo{std::move(call)};
      }
      case Phase::kBarrier:
        phase_ = Phase::kCompute;
        ++call_;
        return OpBarrier{};
    }
    return OpEnd{};
  }

 private:
  MpiIoTestConfig cfg_;
  std::uint64_t call_ = 0;
  Phase phase_ = Phase::kCompute;
};

class HpioProgram final : public Cloneable<HpioProgram> {
 public:
  explicit HpioProgram(const HpioConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    if (region_ >= cfg_.region_count) return OpEnd{};
    if (phase_ == Phase::kCompute) {
      phase_ = Phase::kIo;
      if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
    }
    phase_ = Phase::kCompute;
    const std::uint64_t pitch = cfg_.region_size + cfg_.region_spacing;
    const std::uint64_t rank_base = std::uint64_t{ctx.rank} * cfg_.region_count * pitch;
    IoCall call;
    call.file = cfg_.file;
    call.is_write = cfg_.is_write;
    for (std::uint64_t r = 0; r < cfg_.regions_per_call && region_ < cfg_.region_count;
         ++r, ++region_) {
      call.segments.push_back(Segment{rank_base + region_ * pitch, cfg_.region_size});
    }
    return OpIo{std::move(call)};
  }

 private:
  HpioConfig cfg_;
  std::uint64_t region_ = 0;
  Phase phase_ = Phase::kCompute;
};

class IorProgram final : public Cloneable<IorProgram> {
 public:
  explicit IorProgram(const IorConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    const std::uint64_t scope = cfg_.file_size / ctx.nprocs;
    const std::uint64_t base = std::uint64_t{ctx.rank} * scope;
    const std::uint64_t offset = base + pos_;
    if (pos_ + cfg_.request_size > scope) return OpEnd{};
    if (phase_ == Phase::kCompute) {
      phase_ = Phase::kIo;
      if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
    }
    phase_ = Phase::kCompute;
    pos_ += cfg_.request_size;
    IoCall call;
    call.file = cfg_.file;
    call.is_write = cfg_.is_write;
    call.collective = cfg_.collective;
    call.segments.push_back(Segment{offset, cfg_.request_size});
    return OpIo{std::move(call)};
  }

 private:
  IorConfig cfg_;
  std::uint64_t pos_ = 0;
  Phase phase_ = Phase::kCompute;
};

class NoncontigProgram final : public Cloneable<NoncontigProgram> {
 public:
  explicit NoncontigProgram(const NoncontigConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    if (row_ >= cfg_.rows) return OpEnd{};
    if (phase_ == Phase::kCompute) {
      phase_ = Phase::kIo;
      if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
    }
    phase_ = Phase::kCompute;
    const std::uint64_t width = cfg_.elmt_count * 4;  // MPI_INT elements
    const std::uint64_t col = ctx.rank % cfg_.columns;
    std::uint64_t rows_per_call =
        std::max<std::uint64_t>(1, cfg_.bytes_per_call / (width * cfg_.columns));
    IoCall call;
    call.file = cfg_.file;
    call.is_write = cfg_.is_write;
    call.collective = cfg_.collective;
    for (std::uint64_t r = 0; r < rows_per_call && row_ < cfg_.rows; ++r, ++row_) {
      call.segments.push_back(Segment{(row_ * cfg_.columns + col) * width, width});
    }
    return OpIo{std::move(call)};
  }

 private:
  NoncontigConfig cfg_;
  std::uint64_t row_ = 0;
  Phase phase_ = Phase::kCompute;
};

class S3asimProgram final : public Cloneable<S3asimProgram> {
 public:
  explicit S3asimProgram(const S3asimConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {}

  Op next(ProgramContext& ctx) override {
    if (!seeded_) {
      // Distinct deterministic stream per rank.
      rng_ = sim::Rng(cfg_.seed * 7919 + ctx.rank);
      seeded_ = true;
    }
    if (query_ >= cfg_.queries) return OpEnd{};
    const std::uint64_t frag_size = cfg_.database_size / cfg_.fragments;
    switch (step_) {
      case Step::kRead: {
        // Scan a slice of the current fragment for this query.
        const std::uint64_t len =
            std::min(frag_size, rng_.uniform_between(cfg_.min_size, cfg_.max_size));
        const std::uint64_t pos = rng_.uniform(frag_size - len + 1);
        IoCall call;
        call.file = cfg_.database_file;
        call.segments.push_back(Segment{fragment_ * frag_size + pos, len});
        step_ = Step::kCompute;
        return OpIo{std::move(call)};
      }
      case Step::kCompute:
        step_ = (++fragment_ < cfg_.fragments) ? Step::kRead : Step::kWrite;
        return OpCompute{cfg_.compute_per_fragment};
      case Step::kWrite: {
        // Append this query's results to the rank's region of the result file.
        const std::uint64_t len = rng_.uniform_between(cfg_.min_size, cfg_.max_size);
        const std::uint64_t region = cfg_.queries * cfg_.max_size;
        IoCall call;
        call.file = cfg_.result_file;
        call.is_write = true;
        call.segments.push_back(
            Segment{std::uint64_t{ctx.rank} * region + write_pos_, len});
        write_pos_ += len;
        fragment_ = 0;
        ++query_;
        step_ = Step::kRead;
        return OpIo{std::move(call)};
      }
    }
    return OpEnd{};
  }

 private:
  enum class Step { kRead, kCompute, kWrite };
  S3asimConfig cfg_;
  sim::Rng rng_;
  bool seeded_ = false;
  std::uint32_t query_ = 0;
  std::uint32_t fragment_ = 0;
  std::uint64_t write_pos_ = 0;
  Step step_ = Step::kRead;
};

class BtioProgram final : public Cloneable<BtioProgram> {
 public:
  explicit BtioProgram(const BtioConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    const std::uint64_t step_bytes = cfg_.total_bytes / cfg_.write_steps;
    const std::uint64_t rows_per_step = step_bytes / cfg_.row_bytes;
    const std::uint64_t cell = std::max<std::uint64_t>(8, cfg_.row_bytes / ctx.nprocs);
    // Group a handful of rows per I/O call: ROMIO flattens the datatype but
    // each cell still reaches the servers as its own tiny request.
    const std::uint64_t rows_per_call = 16;

    if (step_ >= cfg_.write_steps) {
      if (!cfg_.read_back || pass_ == 2) return OpEnd{};
      pass_ = 1;  // verification pass re-reads the solution file
    }
    switch (phase_) {
      case Phase::kCompute:
        phase_ = Phase::kIo;
        if (pass_ == 0 && row_ == 0 && cfg_.compute_per_step > 0)
          return OpCompute{cfg_.compute_per_step};
        [[fallthrough]];
      case Phase::kIo: {
        IoCall call;
        call.file = cfg_.file;
        call.is_write = (pass_ == 0);
        call.collective = cfg_.collective;
        const std::uint64_t step_base = step_ * step_bytes;
        for (std::uint64_t r = 0; r < rows_per_call && row_ < rows_per_step;
             ++r, ++row_) {
          call.segments.push_back(
              Segment{step_base + row_ * cfg_.row_bytes + ctx.rank * cell, cell});
        }
        if (row_ >= rows_per_step) {
          row_ = 0;
          ++step_;
          phase_ = Phase::kBarrier;
        } else {
          phase_ = Phase::kIo;
        }
        if (step_ >= cfg_.write_steps && pass_ == 1) pass_ = 2;
        if (call.segments.empty()) return OpEnd{};
        return OpIo{std::move(call)};
      }
      case Phase::kBarrier:
        phase_ = Phase::kCompute;
        if (step_ >= cfg_.write_steps && pass_ == 1) {
          step_ = 0;  // restart the step counter for the read-back pass
        }
        if (cfg_.allreduce_bytes > 0) return OpAllreduce{cfg_.allreduce_bytes};
        return OpBarrier{};
    }
    return OpEnd{};
  }

 private:
  BtioConfig cfg_;
  std::uint64_t step_ = 0;
  std::uint64_t row_ = 0;
  int pass_ = 0;  // 0 = write phase, 1 = read-back, 2 = done
  Phase phase_ = Phase::kCompute;
};

class MasterWorkerProgram final : public Cloneable<MasterWorkerProgram> {
 public:
  explicit MasterWorkerProgram(const MasterWorkerConfig& cfg)
      : cfg_(cfg), rng_(cfg.seed) {}

  Op next(ProgramContext& ctx) override {
    if (ctx.nprocs < 2) return OpEnd{};  // needs at least one worker
    if (!seeded_) {
      rng_ = sim::Rng(cfg_.seed * 77 + ctx.rank + 1);
      seeded_ = true;
    }
    workers_ = ctx.nprocs - 1;
    return ctx.rank == 0 ? master_next() : worker_next(ctx);
  }

  bool uses_p2p() const override { return true; }

 private:
  static constexpr int kDispatchTag = 1;
  static constexpr int kResultTag = 2;

  Op master_next() {
    if (query_ >= cfg_.queries) return OpEnd{};
    switch (step_) {
      case 0:
        step_ = 1;
        return OpSend{1 + query_ % workers_, 64, kDispatchTag};
      case 1:
        step_ = 2;
        return OpRecv{1 + query_ % workers_, kResultTag};
      default: {
        step_ = 0;
        IoCall call;
        call.file = cfg_.result_file;
        call.is_write = true;
        const std::uint64_t len = rng_.uniform_between(cfg_.min_size, cfg_.max_size);
        call.segments.push_back(Segment{write_pos_, len});
        write_pos_ += len;
        ++query_;
        return OpIo{std::move(call)};
      }
    }
  }

  Op worker_next(ProgramContext& ctx) {
    const std::uint32_t me = ctx.rank - 1;
    // Worker's share of the queries, in dispatch order.
    while (query_ < cfg_.queries && query_ % workers_ != me) skip_query();
    if (query_ >= cfg_.queries) return OpEnd{};
    const std::uint64_t frag_size = cfg_.database_size / cfg_.fragments;
    switch (step_) {
      case 0:
        step_ = 1;
        return OpRecv{0, kDispatchTag};
      case 1: {  // scan a fragment slice for this query
        const std::uint64_t len =
            std::min(frag_size, rng_.uniform_between(cfg_.min_size, cfg_.max_size));
        const std::uint64_t frag = rng_.uniform(cfg_.fragments);
        const std::uint64_t pos = rng_.uniform(frag_size - len + 1);
        step_ = 2;
        IoCall call;
        call.file = cfg_.database_file;
        call.segments.push_back(Segment{frag * frag_size + pos, len});
        return OpIo{std::move(call)};
      }
      case 2:
        step_ = 3;
        return OpCompute{cfg_.compute_per_query};
      default: {
        step_ = 0;
        const std::uint64_t result = rng_.uniform_between(cfg_.min_size, cfg_.max_size);
        ++query_;
        return OpSend{0, result, kResultTag};
      }
    }
  }

  void skip_query() { ++query_; }

  MasterWorkerConfig cfg_;
  sim::Rng rng_;
  bool seeded_ = false;
  std::uint32_t query_ = 0;
  std::uint32_t workers_ = 1;
  int step_ = 0;
  std::uint64_t write_pos_ = 0;
};

class DependentProgram final : public Cloneable<DependentProgram> {
 public:
  explicit DependentProgram(const DependentConfig& cfg) : cfg_(cfg) {}

  Op next(ProgramContext& ctx) override {
    if (issued_ >= cfg_.requests) return OpEnd{};
    if (phase_ == Phase::kCompute) {
      phase_ = Phase::kIo;
      if (cfg_.compute_per_call > 0) return OpCompute{cfg_.compute_per_call};
    }
    phase_ = Phase::kCompute;
    const std::uint64_t slots = cfg_.file_size / cfg_.request_size;
    std::uint64_t slot;
    if (issued_ == 0) {
      slot = ctx.rank % slots;
    } else if (ctx.last_read_value.has_value()) {
      // The real data drives the next address.
      slot = *ctx.last_read_value % slots;
    } else {
      // Ghost run: no data available; guess sequentially — and be wrong.
      slot = (prev_slot_ + 1) % slots;
    }
    prev_slot_ = slot;
    ++issued_;
    IoCall call;
    call.file = cfg_.file;
    call.segments.push_back(Segment{slot * cfg_.request_size, cfg_.request_size});
    return OpIo{std::move(call)};
  }

 private:
  DependentConfig cfg_;
  std::uint64_t issued_ = 0;
  std::uint64_t prev_slot_ = 0;
  Phase phase_ = Phase::kCompute;
};

}  // namespace

std::unique_ptr<mpi::Program> make_demo(const DemoConfig& cfg) {
  return std::make_unique<DemoProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_mpi_io_test(const MpiIoTestConfig& cfg) {
  return std::make_unique<MpiIoTestProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_hpio(const HpioConfig& cfg) {
  return std::make_unique<HpioProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_ior(const IorConfig& cfg) {
  return std::make_unique<IorProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_noncontig(const NoncontigConfig& cfg) {
  return std::make_unique<NoncontigProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_s3asim(const S3asimConfig& cfg) {
  return std::make_unique<S3asimProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_btio(const BtioConfig& cfg) {
  return std::make_unique<BtioProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_dependent(const DependentConfig& cfg) {
  return std::make_unique<DependentProgram>(cfg);
}
std::unique_ptr<mpi::Program> make_master_worker(const MasterWorkerConfig& cfg) {
  return std::make_unique<MasterWorkerProgram>(cfg);
}

}  // namespace dpar::wl
