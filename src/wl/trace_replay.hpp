// Trace-driven workload replay.
//
// Runs a recorded per-rank op trace (compute / read / write / barrier)
// through the simulator, so real applications' I/O logs (e.g. Darshan-style
// extracts) can be evaluated under every MPI-IO variant. Traces are plain
// CSV: `rank,op,file,offset,length,duration_us` with op one of
// compute|read|write|barrier (file/offset/length ignored for compute and
// barrier, duration ignored for I/O).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mpi/program.hpp"

namespace dpar::wl {

struct TraceOp {
  enum class Kind { kCompute, kRead, kWrite, kBarrier };
  std::uint32_t rank = 0;
  Kind kind = Kind::kCompute;
  pfs::FileId file = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  sim::Time duration = 0;
  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

/// Parse the CSV format; throws std::invalid_argument on malformed rows.
/// Lines starting with '#' and the optional header row are skipped.
std::vector<TraceOp> parse_trace_csv(const std::string& text);

/// Serialize ops back to CSV (round-trips through parse_trace_csv).
std::string format_trace_csv(const std::vector<TraceOp>& ops);

/// Program replaying the ops recorded for `rank` (in trace order).
std::unique_ptr<mpi::Program> make_trace_replay(std::vector<TraceOp> ops,
                                                std::uint32_t rank);

}  // namespace dpar::wl
