#include "wl/trace_replay.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dpar::wl {
namespace {

TraceOp::Kind kind_of(const std::string& s) {
  if (s == "compute") return TraceOp::Kind::kCompute;
  if (s == "read") return TraceOp::Kind::kRead;
  if (s == "write") return TraceOp::Kind::kWrite;
  if (s == "barrier") return TraceOp::Kind::kBarrier;
  throw std::invalid_argument("trace: unknown op '" + s + "'");
}

const char* kind_name(TraceOp::Kind k) {
  switch (k) {
    case TraceOp::Kind::kCompute: return "compute";
    case TraceOp::Kind::kRead: return "read";
    case TraceOp::Kind::kWrite: return "write";
    case TraceOp::Kind::kBarrier: return "barrier";
  }
  return "?";
}

class TraceReplayProgram final : public mpi::Program {
 public:
  TraceReplayProgram(std::vector<TraceOp> ops, std::uint32_t rank)
      : ops_(std::move(ops)), rank_(rank) {}

  mpi::Op next(mpi::ProgramContext&) override {
    while (pos_ < ops_.size() && ops_[pos_].rank != rank_) ++pos_;
    if (pos_ >= ops_.size()) return mpi::OpEnd{};
    const TraceOp& op = ops_[pos_++];
    switch (op.kind) {
      case TraceOp::Kind::kCompute:
        return mpi::OpCompute{op.duration};
      case TraceOp::Kind::kBarrier:
        return mpi::OpBarrier{};
      case TraceOp::Kind::kRead:
      case TraceOp::Kind::kWrite: {
        mpi::IoCall call;
        call.file = op.file;
        call.is_write = (op.kind == TraceOp::Kind::kWrite);
        call.segments.push_back(pfs::Segment{op.offset, op.length});
        return mpi::OpIo{std::move(call)};
      }
    }
    return mpi::OpEnd{};
  }

  std::unique_ptr<mpi::Program> clone() const override {
    return std::make_unique<TraceReplayProgram>(*this);
  }

 private:
  std::vector<TraceOp> ops_;
  std::uint32_t rank_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<TraceOp> parse_trace_csv(const std::string& text) {
  std::vector<TraceOp> ops;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("rank,", 0) == 0) continue;  // header
    std::istringstream row(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(row, cell, ',')) cells.push_back(cell);
    if (cells.size() != 6)
      throw std::invalid_argument("trace: expected 6 columns, got '" + line + "'");
    TraceOp op;
    op.rank = static_cast<std::uint32_t>(std::stoul(cells[0]));
    op.kind = kind_of(cells[1]);
    op.file = static_cast<pfs::FileId>(std::stoul(cells[2]));
    op.offset = std::stoull(cells[3]);
    op.length = std::stoull(cells[4]);
    op.duration = sim::usec(std::stoll(cells[5]));
    ops.push_back(op);
  }
  return ops;
}

std::string format_trace_csv(const std::vector<TraceOp>& ops) {
  std::string out = "rank,op,file,offset,length,duration_us\n";
  char buf[160];
  for (const TraceOp& op : ops) {
    std::snprintf(buf, sizeof buf, "%u,%s,%u,%llu,%llu,%lld\n", op.rank,
                  kind_name(op.kind), op.file,
                  static_cast<unsigned long long>(op.offset),
                  static_cast<unsigned long long>(op.length),
                  static_cast<long long>(op.duration / sim::kNsPerUs));
    out += buf;
  }
  return out;
}

std::unique_ptr<mpi::Program> make_trace_replay(std::vector<TraceOp> ops,
                                                std::uint32_t rank) {
  return std::make_unique<TraceReplayProgram>(std::move(ops), rank);
}

}  // namespace dpar::wl
