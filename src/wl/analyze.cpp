#include "wl/analyze.hpp"

#include <cstdio>
#include <variant>

#include "sim/rng.hpp"

namespace dpar::wl {

AccessPattern analyze(mpi::Program& prog, std::uint32_t rank, std::uint32_t nprocs,
                      std::uint64_t max_ops) {
  AccessPattern p;
  mpi::ProgramContext ctx;
  ctx.rank = rank;
  ctx.nprocs = nprocs;
  std::map<pfs::FileId, std::uint64_t> last_end;
  std::map<std::uint64_t, std::uint64_t> stride_votes;

  for (std::uint64_t i = 0; i < max_ops; ++i) {
    mpi::Op op = prog.next(ctx);
    if (std::holds_alternative<mpi::OpEnd>(op)) break;
    if (auto* comp = std::get_if<mpi::OpCompute>(&op)) {
      p.compute += comp->duration;
      continue;
    }
    if (std::holds_alternative<mpi::OpBarrier>(op) ||
        std::holds_alternative<mpi::OpAllreduce>(op)) {
      ++p.barriers;
      continue;
    }
    if (std::holds_alternative<mpi::OpSend>(op)) {
      ++p.sends;
      continue;
    }
    if (std::holds_alternative<mpi::OpRecv>(op)) {
      ++p.recvs;
      continue;
    }
    auto& call = std::get<mpi::OpIo>(op).call;
    ++p.calls;
    for (const auto& s : call.segments) {
      ++p.segments;
      (call.is_write ? p.write_bytes : p.read_bytes) += s.length;
      p.min_segment = std::min(p.min_segment, s.length);
      p.max_segment = std::max(p.max_segment, s.length);
      auto it = last_end.find(call.file);
      if (it != last_end.end()) {
        if (s.offset == it->second) ++p.sequential_segments;
        if (s.offset > it->second) ++stride_votes[s.offset - it->second];
      }
      last_end[call.file] = s.end();
    }
    if (!call.is_write && !call.segments.empty())
      ctx.last_read_value = sim::content_hash(call.file, call.segments[0].offset);
  }
  if (p.segments == 0) p.min_segment = 0;
  std::uint64_t best = 0;
  for (const auto& [stride, votes] : stride_votes) {
    if (votes > best) {
      best = votes;
      p.dominant_stride = stride;
    }
  }
  return p;
}

std::string describe(const AccessPattern& p) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "  calls %llu, segments %llu (%.0f B mean, %llu..%llu)\n"
      "  read %.2f MB, write %.2f MB, compute %.3f s\n"
      "  sequentiality %.0f%%, dominant stride %llu B\n"
      "  barriers %llu, sends %llu, recvs %llu\n",
      static_cast<unsigned long long>(p.calls),
      static_cast<unsigned long long>(p.segments), p.mean_segment(),
      static_cast<unsigned long long>(p.min_segment),
      static_cast<unsigned long long>(p.max_segment),
      static_cast<double>(p.read_bytes) / 1e6,
      static_cast<double>(p.write_bytes) / 1e6, sim::to_seconds(p.compute),
      p.sequentiality() * 100.0, static_cast<unsigned long long>(p.dominant_stride),
      static_cast<unsigned long long>(p.barriers),
      static_cast<unsigned long long>(p.sends),
      static_cast<unsigned long long>(p.recvs));
  return buf;
}

}  // namespace dpar::wl
