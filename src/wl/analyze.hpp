// Offline workload characterization: run a Program's op stream without any
// simulation and summarize its access pattern — request sizes, read/write
// mix, sequentiality, strides — the §V-A description of each benchmark, as
// a tool.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "mpi/program.hpp"

namespace dpar::wl {

struct AccessPattern {
  std::uint64_t calls = 0;
  std::uint64_t segments = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  std::uint64_t barriers = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  sim::Time compute = 0;
  std::uint64_t min_segment = UINT64_MAX;
  std::uint64_t max_segment = 0;
  /// Segments immediately following the previous segment of the same file.
  std::uint64_t sequential_segments = 0;
  /// Most common gap between consecutive segments of a file (the stride).
  std::uint64_t dominant_stride = 0;

  double mean_segment() const {
    return segments ? static_cast<double>(read_bytes + write_bytes) /
                          static_cast<double>(segments)
                    : 0.0;
  }
  double sequentiality() const {
    return segments > 1 ? static_cast<double>(sequential_segments) /
                              static_cast<double>(segments - 1)
                        : 0.0;
  }
};

/// Drain `prog` as `rank` of `nprocs` (no I/O is performed; reads get
/// synthesized contents so data-dependent programs advance) and accumulate
/// the pattern. `max_ops` bounds runaway programs.
AccessPattern analyze(mpi::Program& prog, std::uint32_t rank, std::uint32_t nprocs,
                      std::uint64_t max_ops = 10'000'000);

/// Multi-line human-readable summary.
std::string describe(const AccessPattern& p);

}  // namespace dpar::wl
