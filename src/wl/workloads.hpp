// Workload programs reproducing the access patterns of the paper's
// benchmarks (§V-A). Each is a cloneable op-stream; the factory functions
// return per-rank program instances.
//
//  demo        — §II motivating program: each call reads 16 segments at
//                offsets (k*N + rank) with adjustable compute per call.
//  mpi-io-test — PVFS2's benchmark: process i accesses segment (i + N*j) at
//                call j; globally fully sequential; barrier between calls.
//  hpio        — region-structured accesses (region count / spacing / size).
//  ior-mpi-io  — each process sequentially reads its own 1/N block of the
//                file; random across processes at the servers.
//  noncontig   — vector-derived datatype: the file is a 2D array with 64
//                columns; each process reads one column.
//  S3asim      — sequence-similarity search: fragment reads of varying size,
//                compute, result writes.
//  BTIO        — NAS BT: interleaved tiny cells (size shrinks with process
//                count), write phase then read-back verification.
//  dependent   — adversarial Table III program: every next offset depends on
//                the data just read, so pre-execution mis-predicts.
#pragma once

#include <cstdint>
#include <memory>

#include "mpi/program.hpp"
#include "sim/rng.hpp"

namespace dpar::wl {

struct DemoConfig {
  pfs::FileId file = 0;
  std::uint64_t file_size = 1ull << 30;
  std::uint64_t segment_size = 4 * 1024;
  std::uint32_t segments_per_call = 16;
  sim::Time compute_per_call = 0;
  bool is_write = false;
};
std::unique_ptr<mpi::Program> make_demo(const DemoConfig& cfg);

struct MpiIoTestConfig {
  pfs::FileId file = 0;
  std::uint64_t file_size = 2ull << 30;
  std::uint64_t request_size = 16 * 1024;
  bool is_write = false;
  bool barrier_every_call = true;  ///< "a barrier routine is frequently called"
  sim::Time compute_per_call = 0;
  bool collective = false;
};
std::unique_ptr<mpi::Program> make_mpi_io_test(const MpiIoTestConfig& cfg);

struct HpioConfig {
  pfs::FileId file = 0;
  std::uint64_t region_count = 4096;
  std::uint64_t region_spacing = 1024;
  std::uint64_t region_size = 32 * 1024;
  std::uint64_t regions_per_call = 8;
  bool is_write = false;
  sim::Time compute_per_call = 0;
};
std::unique_ptr<mpi::Program> make_hpio(const HpioConfig& cfg);

struct IorConfig {
  pfs::FileId file = 0;
  std::uint64_t file_size = 16ull << 30;  ///< each rank owns 1/N of it
  std::uint64_t request_size = 32 * 1024;
  bool is_write = false;
  sim::Time compute_per_call = 0;
  bool collective = false;
};
std::unique_ptr<mpi::Program> make_ior(const IorConfig& cfg);

struct NoncontigConfig {
  pfs::FileId file = 0;
  std::uint64_t columns = 64;
  std::uint64_t elmt_count = 128;      ///< ints per element -> column width
  std::uint64_t rows = 16384;
  std::uint64_t bytes_per_call = 4ull << 20;  ///< total across processes
  bool is_write = false;
  bool collective = false;
  sim::Time compute_per_call = 0;
};
std::unique_ptr<mpi::Program> make_noncontig(const NoncontigConfig& cfg);

struct S3asimConfig {
  pfs::FileId database_file = 0;
  pfs::FileId result_file = 0;
  std::uint64_t database_size = 1ull << 30;
  std::uint32_t fragments = 16;
  std::uint32_t queries = 16;
  std::uint64_t min_size = 100;       ///< min query/db sequence size
  std::uint64_t max_size = 100'000;   ///< max query/db sequence size
  sim::Time compute_per_fragment = sim::usec(200);
  std::uint64_t seed = 1;
};
std::unique_ptr<mpi::Program> make_s3asim(const S3asimConfig& cfg);

struct BtioConfig {
  pfs::FileId file = 0;
  std::uint64_t total_bytes = 400ull << 20;  ///< dataset (class C ~6.8 GB)
  std::uint64_t row_bytes = 10240;  ///< bytes per interleaved row; cell = row/N
  std::uint32_t write_steps = 40;   ///< solution dumps
  bool read_back = true;            ///< verification pass at the end
  bool collective = false;
  sim::Time compute_per_step = sim::msec(2);
  /// BT's per-iteration residual allreduce; 0 uses a plain barrier.
  std::uint64_t allreduce_bytes = 0;
};
std::unique_ptr<mpi::Program> make_btio(const BtioConfig& cfg);

/// Master/worker sequence search with explicit MPI messaging (S3asim's real
/// structure): rank 0 dispatches queries to workers and writes their result
/// sizes; workers read database fragments, compute, and send results back.
/// Exercises the point-to-point layer under every MPI-IO driver.
struct MasterWorkerConfig {
  pfs::FileId database_file = 0;
  pfs::FileId result_file = 0;
  std::uint64_t database_size = 1ull << 30;
  std::uint32_t fragments = 16;
  std::uint32_t queries = 32;
  std::uint64_t min_size = 1000;
  std::uint64_t max_size = 100'000;
  sim::Time compute_per_query = sim::msec(1);
  std::uint64_t seed = 1;
};
std::unique_ptr<mpi::Program> make_master_worker(const MasterWorkerConfig& cfg);

struct DependentConfig {
  pfs::FileId file = 0;
  std::uint64_t file_size = 2ull << 30;
  std::uint64_t request_size = 64 * 1024;
  std::uint64_t requests = 1000;
  sim::Time compute_per_call = 0;
};
std::unique_ptr<mpi::Program> make_dependent(const DependentConfig& cfg);

}  // namespace dpar::wl
