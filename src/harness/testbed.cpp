#include "harness/testbed.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dpar::harness {

unsigned pdes_workers_from_env() {
  const char* s = std::getenv("DPAR_PDES_WORKERS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0 || v > 1024)
    throw std::invalid_argument(
        "DPAR_PDES_WORKERS must be an integer in [0, 1024]");
  return static_cast<unsigned>(v);
}

namespace {
std::unique_ptr<disk::BlockDevice> make_device(sim::Engine& eng,
                                               const TestbedConfig& cfg,
                                               std::uint32_t server) {
  const disk::DiskParams& params = server < cfg.per_server_disk.size()
                                       ? cfg.per_server_disk[server]
                                       : cfg.disk;
  if (cfg.raid0) {
    return std::make_unique<disk::Raid0Device>(eng, params,
                                               disk::make_scheduler(cfg.scheduler),
                                               disk::make_scheduler(cfg.scheduler));
  }
  return std::make_unique<disk::DiskDevice>(eng, params,
                                            disk::make_scheduler(cfg.scheduler));
}
}  // namespace

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg) {
  if (cfg_.data_servers == 0) throw std::invalid_argument("Testbed: no data servers");
  if (cfg_.compute_nodes == 0) throw std::invalid_argument("Testbed: no compute nodes");
  if (cfg_.cores_per_node == 0) throw std::invalid_argument("Testbed: no cores");
  if (cfg_.stripe_unit == 0) throw std::invalid_argument("Testbed: zero stripe unit");
  if (cfg_.dualpar.cache_quota == 0)
    throw std::invalid_argument("Testbed: zero cache quota (use the vanilla driver "
                                "to disable DualPar)");
  // Malformed fault plans are rejected loudly even when they could not fire.
  cfg_.fault.validate();
  // Node layout: data servers on [0, S), metadata server on S, compute nodes
  // on [S+1, S+1+C).
  const std::uint32_t total_nodes = cfg_.data_servers + 1 + cfg_.compute_nodes;
  net_ = std::make_unique<net::Network>(eng_, total_nodes, cfg_.net);

  // Conservative PDES: one lane per data server, one shared lane for the
  // compute/metadata side, one exclusive lane for the EMC and monitor ticks
  // that read cross-lane state. The fabric's switch latency is the lookahead
  // (every cross-lane interaction is a network message, and every message
  // pays at least the switch hop). Fault plans force the serial engine: the
  // robust I/O path cancels cross-server timeout events mid-flight, which
  // the lane protocol forbids.
  const unsigned pdes_workers = cfg_.pdes_workers >= 0
                                    ? static_cast<unsigned>(cfg_.pdes_workers)
                                    : pdes_workers_from_env();
  if (pdes_workers >= 1 && !cfg_.fault.enabled() && cfg_.net.switch_latency > 0) {
    std::vector<sim::LaneId> node_lane(total_nodes, 0);
    for (std::uint32_t s = 0; s < cfg_.data_servers; ++s)
      node_lane[s] = eng_.add_lane();
    eng_.add_exclusive_lane();
    eng_.set_lookahead(cfg_.net.switch_latency);
    eng_.set_pdes_workers(pdes_workers);
    net_->set_node_lanes(std::move(node_lane));
  }

  std::vector<pfs::DataServer*> raw_servers;
  for (std::uint32_t s = 0; s < cfg_.data_servers; ++s) {
    servers_.push_back(std::make_unique<pfs::DataServer>(eng_, s,
                                                         make_device(eng_, cfg_, s),
                                                         cfg_.server));
    servers_.back()->trace().set_keep_events(cfg_.keep_traces);
    raw_servers.push_back(servers_.back().get());
  }

  std::vector<net::NodeId> compute_node_ids;
  for (std::uint32_t c = 0; c < cfg_.compute_nodes; ++c) {
    const net::NodeId id = cfg_.data_servers + 1 + c;
    nodes_.push_back(std::make_unique<cluster::ComputeNode>(eng_, id, cfg_.cores_per_node));
    compute_node_ids.push_back(id);
  }

  fs_ = std::make_unique<pfs::FileSystem>(
      eng_, *net_, /*metadata_node=*/cfg_.data_servers, raw_servers,
      pfs::StripeLayout{cfg_.stripe_unit, cfg_.data_servers});
  clients_ = std::make_unique<mpiio::ClientPool>(*fs_);
  cache::CacheParams cp = cfg_.cache;
  cp.chunk_bytes = cfg_.stripe_unit;  // chunk == stripe unit (§IV-D)
  cache_ = std::make_unique<cache::GlobalCache>(eng_, *net_, compute_node_ids, cp);
  emc_ = std::make_unique<dualpar::Emc>(eng_, cfg_.dualpar, raw_servers);
  monitor_ = std::make_unique<metrics::SystemMonitor>(
      eng_, raw_servers, [this] { return !all_jobs_finished(); });

  const mpiio::IoEnv env{*fs_, *clients_, *net_, emc_.get()};
  vanilla_ = std::make_unique<mpiio::VanillaDriver>(env);
  collective_ = std::make_unique<mpiio::CollectiveDriver>(env, cfg_.collective);
  dualpar_ = std::make_unique<dualpar::DualParDriver>(env, *cache_, *emc_, cfg_.dualpar);
  preexec_ = std::make_unique<dualpar::PreexecDriver>(env, *cache_, cfg_.dualpar);

  if (cfg_.fault.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(eng_, cfg_.fault,
                                                       cfg_.data_servers);
    net_->set_fault_injector(injector_.get());
    fs_->set_fault_injector(injector_.get());
    emc_->set_fault_injector(injector_.get());
    for (auto& s : servers_) s->set_fault_injector(injector_.get());
    // Server up/down transitions fan out from the injector: EMC degrades (or
    // re-engages) first, then the global cache drops every clean range that
    // was sourced from the failed server's stripes.
    injector_->add_server_listener([this](std::uint32_t server, bool down) {
      emc_->note_server_state(server, down);
      if (down) {
        injector_->counters().cache_invalidated_bytes +=
            cache_->invalidate_server(fs_->layout(), server);
      }
    });
    // The crash/restart schedule is part of the plan: pin the events now.
    for (const auto& c : cfg_.fault.server.crashes) {
      pfs::DataServer* srv = servers_[c.server].get();
      eng_.at(c.at, [srv] { srv->crash(); });
      eng_.at(c.restart_at, [srv] { srv->restart(); });
    }
  }
}

Testbed::~Testbed() = default;

std::vector<cluster::ComputeNode*> Testbed::compute_nodes() {
  std::vector<cluster::ComputeNode*> out;
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

pfs::FileId Testbed::create_file(const std::string& name, std::uint64_t size) {
  return fs_->create(name, size);
}

mpi::Job& Testbed::add_job(const std::string& name, std::uint32_t nprocs,
                           mpi::IoDriver& driver, const mpi::Job::ProgramFactory& factory,
                           dualpar::Policy policy, sim::Time start_at) {
  jobs_.push_back(
      std::make_unique<mpi::Job>(eng_, next_job_id_++, name, driver, net_.get()));
  mpi::Job& job = *jobs_.back();
  job.spawn(nprocs, compute_nodes(), factory, next_gid_);
  next_gid_ += nprocs;
  emc_->register_job(job, policy);
  mpi::Job* jp = &job;
  if (start_at <= eng_.now()) {
    // Defer to an event so construction order never matters.
    eng_.after(0, [jp] { jp->start(); });
  } else {
    eng_.at(start_at, [jp] { jp->start(); });
  }
  return job;
}

std::uint64_t Testbed::run(std::uint64_t max_events) {
  emc_->start();
  monitor_->start();
  // Periodic idle eviction ("a chunk will be evicted if it is not used for a
  // certain period of time", §IV-D); re-arms only while jobs live so the
  // queue can drain.
  std::function<void()> evict_tick = [this, &evict_tick] {
    cache_->evict_idle(eng_.now());
    if (!all_jobs_finished()) eng_.after(cfg_.cache.idle_eviction / 2, evict_tick);
  };
  eng_.after(cfg_.cache.idle_eviction / 2, evict_tick);
  const std::uint64_t fired = eng_.run(max_events);
  if (!all_jobs_finished())
    throw std::runtime_error("Testbed::run: event queue drained before all jobs "
                             "finished (deadlock?)");
  return fired;
}

bool Testbed::all_jobs_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& j) { return j->finished(); });
}

double Testbed::job_throughput_mbs(const mpi::Job& job) const {
  const sim::Time dur = job.completion_time() - job.start_time();
  if (dur <= 0) return 0.0;
  return static_cast<double>(job.total_bytes()) / sim::to_seconds(dur) / 1e6;
}

double Testbed::system_throughput_mbs() const {
  if (jobs_.empty()) return 0.0;
  sim::Time first = INT64_MAX, last = 0;
  std::uint64_t bytes = 0;
  for (const auto& j : jobs_) {
    first = std::min(first, j->start_time());
    last = std::max(last, j->completion_time());
    bytes += j->total_bytes();
  }
  if (last <= first) return 0.0;
  return static_cast<double>(bytes) / sim::to_seconds(last - first) / 1e6;
}

double Testbed::total_io_time_s() const {
  sim::Time t = 0;
  for (const auto& j : jobs_) t += j->total_io_time();
  return sim::to_seconds(t);
}

}  // namespace dpar::harness
