#include "harness/testbed.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace dpar::harness {

unsigned pdes_workers_from_env() {
  const char* s = std::getenv("DPAR_PDES_WORKERS");
  if (s == nullptr || *s == '\0') return 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 0 || v > 1024)
    throw std::invalid_argument(
        "DPAR_PDES_WORKERS must be an integer in [0, 1024]");
  return static_cast<unsigned>(v);
}

namespace {
std::unique_ptr<disk::BlockDevice> make_device(sim::Engine& eng,
                                               const TestbedConfig& cfg,
                                               std::uint32_t server) {
  const disk::DiskParams& params = server < cfg.per_server_disk.size()
                                       ? cfg.per_server_disk[server]
                                       : cfg.disk;
  if (cfg.raid0) {
    return std::make_unique<disk::Raid0Device>(eng, params,
                                               disk::make_scheduler(cfg.scheduler),
                                               disk::make_scheduler(cfg.scheduler));
  }
  return std::make_unique<disk::DiskDevice>(eng, params,
                                            disk::make_scheduler(cfg.scheduler));
}
}  // namespace

Testbed::Testbed(TestbedConfig cfg) : cfg_(cfg) {
  if (cfg_.data_servers == 0) throw std::invalid_argument("Testbed: no data servers");
  if (cfg_.compute_nodes == 0) throw std::invalid_argument("Testbed: no compute nodes");
  if (cfg_.cores_per_node == 0) throw std::invalid_argument("Testbed: no cores");
  if (cfg_.stripe_unit == 0) throw std::invalid_argument("Testbed: zero stripe unit");
  if (cfg_.dualpar.cache_quota == 0)
    throw std::invalid_argument("Testbed: zero cache quota (use the vanilla driver "
                                "to disable DualPar)");
  // Malformed fault plans are rejected loudly even when they could not fire.
  cfg_.fault.validate();
  // Queue-kind selection must precede every schedule, so it happens before
  // any subsystem below touches the engine.
  eng_.set_queue_kind(cfg_.engine_queue);
  // Node layout: data servers on [0, S), metadata server on S, compute nodes
  // on [S+1, S+1+C).
  const std::uint32_t total_nodes = cfg_.data_servers + 1 + cfg_.compute_nodes;
  net_ = std::make_unique<net::Network>(eng_, total_nodes, cfg_.net);

  // The conservative-PDES lane partition is decided in finalize_partition_()
  // at the first run(), once every job (and hence every driver's
  // lane-splittability) is known. Only the worker count resolves here.
  pdes_workers_ = cfg_.pdes_workers >= 0 ? static_cast<unsigned>(cfg_.pdes_workers)
                                         : pdes_workers_from_env();

  std::vector<pfs::DataServer*> raw_servers;
  for (std::uint32_t s = 0; s < cfg_.data_servers; ++s) {
    servers_.push_back(std::make_unique<pfs::DataServer>(eng_, s,
                                                         make_device(eng_, cfg_, s),
                                                         cfg_.server));
    servers_.back()->trace().set_keep_events(cfg_.keep_traces);
    raw_servers.push_back(servers_.back().get());
  }

  std::vector<net::NodeId> compute_node_ids;
  for (std::uint32_t c = 0; c < cfg_.compute_nodes; ++c) {
    const net::NodeId id = cfg_.data_servers + 1 + c;
    nodes_.push_back(std::make_unique<cluster::ComputeNode>(eng_, id, cfg_.cores_per_node));
    compute_node_ids.push_back(id);
  }

  fs_ = std::make_unique<pfs::FileSystem>(
      eng_, *net_, /*metadata_node=*/cfg_.data_servers, raw_servers,
      pfs::StripeLayout{cfg_.stripe_unit, cfg_.data_servers});
  clients_ = std::make_unique<mpiio::ClientPool>(*fs_);
  // Pre-warm one client per compute node: with per-node lanes, for_node must
  // never mutate the pool's map from inside a parallel window.
  for (const net::NodeId id : compute_node_ids) clients_->ensure(id);
  cache::CacheParams cp = cfg_.cache;
  cp.chunk_bytes = cfg_.stripe_unit;  // chunk == stripe unit (§IV-D)
  cache_ = std::make_unique<cache::GlobalCache>(eng_, *net_, compute_node_ids, cp);
  emc_ = std::make_unique<dualpar::Emc>(eng_, cfg_.dualpar, raw_servers);
  monitor_ = std::make_unique<metrics::SystemMonitor>(
      eng_, raw_servers, [this] { return !all_jobs_finished(); });

  const mpiio::IoEnv env{*fs_, *clients_, *net_, emc_.get()};
  vanilla_ = std::make_unique<mpiio::VanillaDriver>(env);
  collective_ = std::make_unique<mpiio::CollectiveDriver>(env, cfg_.collective);
  dualpar_ = std::make_unique<dualpar::DualParDriver>(env, *cache_, *emc_, cfg_.dualpar);
  preexec_ = std::make_unique<dualpar::PreexecDriver>(env, *cache_, cfg_.dualpar);

  if (cfg_.fault.enabled()) {
    injector_ = std::make_unique<fault::FaultInjector>(eng_, cfg_.fault,
                                                       cfg_.data_servers, total_nodes);
    net_->set_fault_injector(injector_.get());
    fs_->set_fault_injector(injector_.get());
    emc_->set_fault_injector(injector_.get());
    for (auto& s : servers_) s->set_fault_injector(injector_.get());
    // Server up/down transitions fan out from the injector: EMC degrades (or
    // re-engages) first, then the global cache drops every clean range that
    // was sourced from the failed server's stripes. Crash/restart events run
    // on the exclusive lane (finalize_partition_ schedules them), so the
    // fan-out may touch any lane's state.
    injector_->add_server_listener([this](std::uint32_t server, bool down) {
      emc_->note_server_state(server, down);
      if (down) {
        injector_->counters().cache_invalidated_bytes +=
            cache_->invalidate_server(fs_->layout(), server);
      }
    });
  }

  if (cfg_.replica.enabled()) {
    cfg_.replica.validate(cfg_.data_servers);
    // Failure domains: server s (and compute node n) lives in rack id mod
    // num_racks — the deterministic assignment the rack-aware policy expects.
    std::vector<std::uint32_t> racks(cfg_.data_servers);
    for (std::uint32_t s = 0; s < cfg_.data_servers; ++s)
      racks[s] = s % cfg_.replica.num_racks;
    for (std::uint32_t c = 0; c < cfg_.compute_nodes; ++c)
      nodes_[c]->set_rack((cfg_.data_servers + 1 + c) % cfg_.replica.num_racks);
    // Built after the injector: the manager's ctor hooks the server up/down
    // listener, and listener order is part of the deterministic schedule.
    replicas_ = std::make_unique<replica::RepairManager>(
        eng_, *net_, *fs_,
        replica::ReplicaMap(pfs::StripeLayout{cfg_.stripe_unit, cfg_.data_servers},
                            cfg_.replica, std::move(racks)),
        injector_.get(), /*mds_node=*/cfg_.data_servers,
        [this] { return !all_jobs_finished(); });
    fs_->set_replicas(replicas_.get());
  }
}

void Testbed::finalize_partition_() {
  if (finalized_) return;
  finalized_ = true;

  // A run may split its compute side into per-node lanes only when every
  // job's driver is rank-local (vanilla I/O) and no program exchanges
  // point-to-point messages — the rendezvous queues, collective aggregation
  // and ghost coordination are job-global state. The predicate depends only
  // on the configuration and job set, never on the worker count, so eligible
  // runs follow the split-lane coordination protocol (and its exact event
  // timestamps) at every DPAR_PDES_WORKERS value, including 0. A pristine
  // engine is also required: if the caller already drove the engine
  // directly, jobs have started on the legacy schedule and lanes can no
  // longer be added.
  const bool pristine = eng_.events_fired() == 0 && eng_.now() == 0;
  bool splittable = cfg_.net.switch_latency > 0 && pristine;
  for (const auto& j : jobs_)
    splittable = splittable && j->driver().lane_splittable() && !j->uses_p2p();

  const bool lanes_on = pdes_workers_ >= 1 && cfg_.net.switch_latency > 0 && pristine;
  if (lanes_on) {
    const std::uint32_t total_nodes = cfg_.data_servers + 1 + cfg_.compute_nodes;
    std::vector<sim::LaneId> node_lane(total_nodes, 0);
    for (std::uint32_t s = 0; s < cfg_.data_servers; ++s)
      node_lane[s] = eng_.add_lane();
    if (splittable) {
      for (std::uint32_t c = 0; c < cfg_.compute_nodes; ++c)
        node_lane[cfg_.data_servers + 1 + c] = eng_.add_lane();
    }
    eng_.add_exclusive_lane();
    eng_.set_lookahead(cfg_.net.switch_latency);
    eng_.set_pdes_workers(pdes_workers_);
    net_->set_node_lanes(std::move(node_lane));
  }
  if (injector_) injector_->set_lane_count(eng_.num_lanes());
  if (replicas_) replicas_->set_lane_count(eng_.num_lanes());
  emc_->set_lane_count(eng_.num_lanes());

  // The crash/restart schedule is part of the plan: pin the events on the
  // exclusive lane, whose events see every lane quiescent — the crash
  // listener fan-out invalidates cache ranges and flips EMC degraded state.
  for (const auto& c : cfg_.fault.server.crashes) {
    pfs::DataServer* srv = servers_[c.server].get();
    eng_.at_in(eng_.exclusive_lane(), c.at, [srv] { srv->crash(); });
    // Fail-stop crashes never restart: scheduling an event at kNeverRestarts
    // would keep the queue alive forever.
    if (c.restart_at != fault::kNeverRestarts)
      eng_.at_in(eng_.exclusive_lane(), c.restart_at, [srv] { srv->restart(); });
  }

  coordinated_ = splittable;
  if (coordinated_) {
    // Re-route every start through the split-lane protocol: drop the legacy
    // lane-0 event and emit one batched start per compute node instead.
    for (const PendingStart& ps : pending_starts_) {
      eng_.cancel(ps.legacy_start);
      ps.job->enable_lane_coordination(cfg_.net.switch_latency);
      ps.job->start_lanes(std::max(ps.at, eng_.now()));
    }
  }
  pending_starts_.clear();
}

Testbed::~Testbed() = default;

std::vector<cluster::ComputeNode*> Testbed::compute_nodes() {
  std::vector<cluster::ComputeNode*> out;
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

pfs::FileId Testbed::create_file(const std::string& name, std::uint64_t size) {
  return fs_->create(name, size);
}

mpi::Job& Testbed::add_job(const std::string& name, std::uint32_t nprocs,
                           mpi::IoDriver& driver, const mpi::Job::ProgramFactory& factory,
                           dualpar::Policy policy, sim::Time start_at) {
  jobs_.push_back(
      std::make_unique<mpi::Job>(eng_, next_job_id_++, name, driver, net_.get()));
  mpi::Job& job = *jobs_.back();
  job.spawn(nprocs, compute_nodes(), factory, next_gid_);
  next_gid_ += nprocs;
  emc_->register_job(job, policy);
  mpi::Job* jp = &job;
  if (finalized_ && coordinated_) {
    // Job added after the first run(): the partition chose the split-lane
    // protocol, so the new job follows it too.
    jp->enable_lane_coordination(cfg_.net.switch_latency);
    jp->start_lanes(std::max(start_at, eng_.now()));
    return job;
  }
  sim::EventId ev;
  if (start_at <= eng_.now()) {
    // Defer to an event so construction order never matters.
    ev = eng_.after(0, [jp] { jp->start(); });
  } else {
    ev = eng_.at(start_at, [jp] { jp->start(); });
  }
  // Until the first run() decides the lane partition, the start may still be
  // re-routed through the split-lane protocol (finalize_partition_ cancels
  // the legacy event). Driving the engine directly instead of Testbed::run
  // keeps this legacy schedule — introspection tests rely on it.
  if (!finalized_) pending_starts_.push_back(PendingStart{&job, start_at, ev});
  return job;
}

std::uint64_t Testbed::run(std::uint64_t max_events) {
  finalize_partition_();
  emc_->start();
  if (replicas_) replicas_->start();
  monitor_->start();
  // Periodic idle eviction ("a chunk will be evicted if it is not used for a
  // certain period of time", §IV-D); re-arms only while jobs live so the
  // queue can drain. Runs on the exclusive lane: the cache holds chunks on
  // every compute node, so eviction is cross-lane state by nature.
  eng_.after_in(eng_.exclusive_lane(), cfg_.cache.idle_eviction / 2,
                [this] { evict_tick_(); });
  const std::uint64_t fired = eng_.run(max_events);
  if (!all_jobs_finished())
    throw std::runtime_error("Testbed::run: event queue drained before all jobs "
                             "finished (deadlock?)");
  return fired;
}

void Testbed::evict_tick_() {
  cache_->evict_idle(eng_.now());
  if (!all_jobs_finished())
    eng_.after_in(eng_.exclusive_lane(), cfg_.cache.idle_eviction / 2,
                  [this] { evict_tick_(); });
}

bool Testbed::all_jobs_finished() const {
  return std::all_of(jobs_.begin(), jobs_.end(),
                     [](const auto& j) { return j->finished(); });
}

double Testbed::job_throughput_mbs(const mpi::Job& job) const {
  const sim::Time dur = job.completion_time() - job.start_time();
  if (dur <= 0) return 0.0;
  return static_cast<double>(job.total_bytes()) / sim::to_seconds(dur) / 1e6;
}

double Testbed::system_throughput_mbs() const {
  if (jobs_.empty()) return 0.0;
  sim::Time first = INT64_MAX, last = 0;
  std::uint64_t bytes = 0;
  for (const auto& j : jobs_) {
    first = std::min(first, j->start_time());
    last = std::max(last, j->completion_time());
    bytes += j->total_bytes();
  }
  if (last <= first) return 0.0;
  return static_cast<double>(bytes) / sim::to_seconds(last - first) / 1e6;
}

double Testbed::total_io_time_s() const {
  sim::Time t = 0;
  for (const auto& j : jobs_) t += j->total_io_time();
  return sim::to_seconds(t);
}

}  // namespace dpar::harness
