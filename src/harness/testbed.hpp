// Testbed: assembles a complete simulated cluster in the image of the
// paper's platform (§V): N data servers (one disk RAID each) + a metadata
// server + compute nodes, PVFS2-style striping, Gigabit Ethernet, memcached
// global cache, EMC daemon, and the four MPI-IO driver variants.
//
// This is the public top-level API — examples and benches build everything
// through it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/global_cache.hpp"
#include "cluster/node.hpp"
#include "disk/device.hpp"
#include "fault/injector.hpp"
#include "dualpar/driver.hpp"
#include "dualpar/emc.hpp"
#include "dualpar/params.hpp"
#include "dualpar/preexec.hpp"
#include "metrics/monitor.hpp"
#include "mpi/job.hpp"
#include "mpiio/collective.hpp"
#include "mpiio/vanilla.hpp"
#include "net/network.hpp"
#include "pfs/file_system.hpp"
#include "replica/manager.hpp"
#include "sim/engine.hpp"

namespace dpar::harness {

struct TestbedConfig {
  std::uint32_t data_servers = 9;      ///< paper: 9 PVFS2 data servers
  std::uint32_t compute_nodes = 4;     ///< nodes running MPI processes
  std::uint32_t cores_per_node = 48;   ///< paper: 48-core Opteron nodes
  std::uint64_t stripe_unit = 64 * 1024;
  bool raid0 = true;                   ///< per-server RAID of two drives
  disk::DiskParams disk;
  /// Optional per-server disk overrides (index = server id); servers beyond
  /// the vector use `disk`. Models heterogeneous or degraded storage (the
  /// I/O-variability setting of Lofstead et al., the paper's [11]).
  std::vector<disk::DiskParams> per_server_disk;
  disk::SchedulerKind scheduler = disk::SchedulerKind::kCfq;
  pfs::ServerParams server;
  net::NetParams net;
  cache::CacheParams cache;
  dualpar::Params dualpar;
  mpiio::CollectiveParams collective;
  /// Retain full blktrace event lists (disable for long sweeps).
  bool keep_traces = true;
  /// Fault plan for the run. Default-constructed = disabled: no injector is
  /// created, every layer keeps its fault-free fast path and the simulation
  /// output is byte-identical to a build without the fault subsystem.
  fault::FaultPlan fault;
  /// N-way chunk replication. Default (replication_factor == 1) = disabled:
  /// no repair manager is created and the PFS keeps its pre-replication
  /// allocation and request paths byte-for-byte.
  replica::ReplicaConfig replica;
  /// Conservative-PDES worker count. -1 (default) reads DPAR_PDES_WORKERS;
  /// 0 keeps the serial single-heap engine; N >= 1 partitions the engine
  /// into one lane per data server — plus, when every job's driver is
  /// lane-splittable and no program uses point-to-point messaging, one lane
  /// per compute node — plus an exclusive lane for EMC/monitor ticks,
  /// executed by N workers with the fabric's switch latency as lookahead.
  /// Output is byte-identical at every N by construction: split-eligible
  /// runs use the same exclusive-lane job-coordination protocol at every
  /// worker count (including 0), and fault plans shard their RNG streams
  /// and counters per lane, so `fault.enabled()` no longer forces the
  /// serial engine. Forced back to 0 only when switch_latency is 0 (no
  /// lookahead).
  int pdes_workers = -1;
  /// Event-queue implementation for the engine (see sim/event_queue.hpp).
  /// Defaults to DPAR_ENGINE_QUEUE (ladder when unset); set explicitly to
  /// pin a run to one queue kind regardless of the environment — the
  /// differential tests pin kHeap vs kLadder this way. Either kind yields
  /// byte-identical simulation output; only wall-clock differs.
  sim::QueueKind engine_queue = sim::queue_kind_from_env();
};

/// Parse DPAR_PDES_WORKERS (see TestbedConfig::pdes_workers). Unset or
/// empty = 0. Throws std::invalid_argument on garbage.
unsigned pdes_workers_from_env();

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Engine& engine() { return eng_; }
  net::Network& network() { return *net_; }
  pfs::FileSystem& fs() { return *fs_; }
  cache::GlobalCache& cache() { return *cache_; }
  dualpar::Emc& emc() { return *emc_; }
  metrics::SystemMonitor& monitor() { return *monitor_; }
  const TestbedConfig& config() const { return cfg_; }
  /// The run's fault injector, or null when the plan is disabled.
  fault::FaultInjector* fault_injector() { return injector_.get(); }
  /// The run's re-replication manager, or null when replication_factor == 1.
  replica::RepairManager* replica_manager() { return replicas_.get(); }

  mpiio::VanillaDriver& vanilla() { return *vanilla_; }
  mpiio::CollectiveDriver& collective() { return *collective_; }
  dualpar::DualParDriver& dualpar() { return *dualpar_; }
  dualpar::PreexecDriver& preexec() { return *preexec_; }

  pfs::DataServer& server(std::uint32_t i) { return *servers_[i]; }
  std::uint32_t num_servers() const { return static_cast<std::uint32_t>(servers_.size()); }
  cluster::ComputeNode& compute_node(std::uint32_t i) { return *nodes_[i]; }
  std::vector<cluster::ComputeNode*> compute_nodes();

  /// Create a file of `size` bytes.
  pfs::FileId create_file(const std::string& name, std::uint64_t size);

  /// Create a job running `factory`-built programs on all compute nodes with
  /// the given driver; registers it with EMC under `policy` and starts it at
  /// `start_at` (simulated time).
  mpi::Job& add_job(const std::string& name, std::uint32_t nprocs, mpi::IoDriver& driver,
                    const mpi::Job::ProgramFactory& factory,
                    dualpar::Policy policy = dualpar::Policy::kForcedDataDriven,
                    sim::Time start_at = 0);

  /// Run to completion of all jobs (drains the event queue).
  /// Returns the number of events fired.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  bool all_jobs_finished() const;

  /// Aggregate application I/O throughput of a job in MB/s over its runtime.
  double job_throughput_mbs(const mpi::Job& job) const;
  /// Aggregate across jobs: total bytes / time from first start to last end.
  double system_throughput_mbs() const;
  /// Aggregate of all jobs' per-process I/O time, seconds.
  double total_io_time_s() const;

 private:
  /// Decide the lane partition once every job is known, create the lanes,
  /// and schedule the deferred work (job starts, fault crash/restart events,
  /// injector/EMC shard sizing). Called from the first run(); idempotent.
  void finalize_partition_();

  /// One idle-eviction sweep on the exclusive lane; re-arms itself while
  /// jobs live so the event queue can drain at the end of the run.
  void evict_tick_();

  TestbedConfig cfg_;
  sim::Engine eng_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<pfs::DataServer>> servers_;
  std::vector<std::unique_ptr<cluster::ComputeNode>> nodes_;
  std::unique_ptr<pfs::FileSystem> fs_;
  std::unique_ptr<mpiio::ClientPool> clients_;
  std::unique_ptr<replica::RepairManager> replicas_;
  std::unique_ptr<cache::GlobalCache> cache_;
  std::unique_ptr<dualpar::Emc> emc_;
  std::unique_ptr<metrics::SystemMonitor> monitor_;
  std::unique_ptr<mpiio::VanillaDriver> vanilla_;
  std::unique_ptr<mpiio::CollectiveDriver> collective_;
  std::unique_ptr<dualpar::DualParDriver> dualpar_;
  std::unique_ptr<dualpar::PreexecDriver> preexec_;
  std::vector<std::unique_ptr<mpi::Job>> jobs_;
  std::uint32_t next_gid_ = 1;
  std::uint32_t next_job_id_ = 1;
  unsigned pdes_workers_ = 0;  ///< resolved (env applied) worker count
  bool finalized_ = false;
  bool coordinated_ = false;  ///< jobs use the split-lane protocol
  struct PendingStart {
    mpi::Job* job;
    sim::Time at;
    sim::EventId legacy_start;  ///< cancelled if coordination engages
  };
  std::vector<PendingStart> pending_starts_;
};

}  // namespace dpar::harness
