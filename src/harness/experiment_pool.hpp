// ExperimentPool — fixed-thread runner for independent deterministic
// experiments (one sweep point / variant / figure cell each).
//
// The bench suite's experiments are fully independent: each builds its own
// Testbed (engine, servers, RNG streams) and returns numbers. The pool runs
// them on DPAR_JOBS worker threads (default: all hardware threads) off one
// shared FIFO — no work stealing, no shared simulator state — and stores
// results by submission index, so consuming them in submission order yields
// tables and CSVs byte-identical to a sequential run at any thread count.
//
// Lives in the library (not bench/) so the determinism property tests can
// drive it; the namespace is dpar::bench because it is the experiment-runner
// contract of the bench layer.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dpar::bench {

/// What an experiment hands back: its headline metric, optional secondary
/// metrics, and the number of engine events it fired (for perf accounting).
struct ExperimentStats {
  double value = 0;
  std::uint64_t events = 0;
  std::vector<double> aux;  ///< extra metrics (e.g. latency percentiles)
};

/// A finished experiment, as recorded by the pool.
struct ExperimentRecord {
  std::string label;
  ExperimentStats stats;
  double wall_s = 0;  ///< wall-clock seconds the experiment ran for
};

class ExperimentPool {
 public:
  using Task = std::function<ExperimentStats()>;

  /// Thread count from the DPAR_JOBS env var (clamped to >= 1), else
  /// std::thread::hardware_concurrency().
  static unsigned jobs_from_env();

  explicit ExperimentPool(unsigned jobs = jobs_from_env());
  ~ExperimentPool();

  ExperimentPool(const ExperimentPool&) = delete;
  ExperimentPool& operator=(const ExperimentPool&) = delete;

  /// Enqueue an independent experiment; returns its submission index.
  std::size_t submit(std::string label, Task fn);

  /// Block until experiment `index` finishes; rethrows its exception if any.
  /// The reference is invalidated by a later submit().
  const ExperimentRecord& record(std::size_t index);

  /// Shorthand: the headline metric of experiment `index`.
  double value(std::size_t index) { return record(index).stats.value; }

  /// Wait for every submitted experiment; records in submission order.
  const std::vector<ExperimentRecord>& wait_all();

  unsigned jobs() const { return jobs_; }

  /// Wall-clock seconds from construction to the end of the last wait_all().
  double suite_wall_s() const { return suite_wall_s_; }

 private:
  void worker_();

  unsigned jobs_;
  std::vector<std::thread> threads_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for tasks
  std::condition_variable done_cv_;   ///< waiters wait for results
  std::vector<Task> tasks_;           ///< tasks_[i] empty once claimed
  std::vector<ExperimentRecord> records_;
  std::vector<std::exception_ptr> errors_;
  std::vector<bool> done_;
  std::size_t next_task_ = 0;
  std::size_t done_count_ = 0;
  bool stopping_ = false;
  std::chrono::steady_clock::time_point start_;
  double suite_wall_s_ = 0;
};

}  // namespace dpar::bench
