#include "harness/experiment_pool.hpp"

#include <cstdlib>
#include <utility>

namespace dpar::bench {

unsigned ExperimentPool::jobs_from_env() {
  if (const char* env = std::getenv("DPAR_JOBS")) {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<unsigned>(v);
    return 1;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ExperimentPool::ExperimentPool(unsigned jobs)
    : jobs_(jobs >= 1 ? jobs : 1), start_(std::chrono::steady_clock::now()) {
  threads_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i)
    threads_.emplace_back([this] { worker_(); });
}

ExperimentPool::~ExperimentPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ExperimentPool::submit(std::string label, Task fn) {
  std::size_t index;
  {
    std::lock_guard<std::mutex> lock(mu_);
    index = tasks_.size();
    tasks_.push_back(std::move(fn));
    records_.push_back(ExperimentRecord{std::move(label), {}, 0});
    errors_.emplace_back();
    done_.push_back(false);
  }
  work_cv_.notify_one();
  return index;
}

void ExperimentPool::worker_() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return next_task_ < tasks_.size() || stopping_; });
    if (next_task_ >= tasks_.size()) {
      if (stopping_) return;
      continue;
    }
    const std::size_t index = next_task_++;
    Task task = std::move(tasks_[index]);
    lock.unlock();
    const auto t0 = std::chrono::steady_clock::now();
    ExperimentStats stats;
    std::exception_ptr error;
    try {
      stats = task();
    } catch (...) {
      error = std::current_exception();
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    lock.lock();
    records_[index].stats = std::move(stats);
    records_[index].wall_s = wall;
    errors_[index] = error;
    done_[index] = true;
    ++done_count_;
    done_cv_.notify_all();
  }
}

const ExperimentRecord& ExperimentPool::record(std::size_t index) {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, index] { return done_[index]; });
  if (errors_[index]) std::rethrow_exception(errors_[index]);
  return records_[index];
}

const std::vector<ExperimentRecord>& ExperimentPool::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return done_count_ == tasks_.size(); });
  suite_wall_s_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  for (const std::exception_ptr& e : errors_)
    if (e) std::rethrow_exception(e);
  return records_;
}

}  // namespace dpar::bench
