// Switched-Ethernet fabric model.
//
// Every node owns a NIC with separate transmit and receive paths, each a
// serially-served FIFO at the link bandwidth (the paper's testbed: switched
// Gigabit Ethernet). A message occupies the sender's TX path, crosses the
// switch with a fixed latency, then occupies the receiver's RX path — so
// incast at a data server or a memcached home node queues naturally.
//
// The TX path is computed in closed form rather than simulated with events:
// messages leave a NIC in submission order, so the transmit-finish time is
// just max(tx_free_at, now) + tx_time — one running register per NIC instead
// of one completion event per message. Only the arrival (switch hop + RX
// FIFO) is an event, and it is scheduled directly into the *receiver's*
// lane, which makes `send` the designated cross-LP channel of the
// conservative-PDES engine: the switch latency is the lookahead, so every
// arrival lands safely past the current window.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/func.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dpar::fault {
class FaultInjector;
}

namespace dpar::net {

using NodeId = std::uint32_t;

struct NetParams {
  double bandwidth_bytes_per_s = 125e6;  ///< 1 Gb/s
  sim::Time switch_latency = sim::usec(50);
  /// Uniform extra delay in [0, jitter): TCP stack + server thread wakeup
  /// variance. This scrambles the arrival order of a synchronized round of
  /// requests from many processes — the reason the disk scheduler cannot
  /// reconstruct a sequential order from vanilla MPI-IO traffic (§II).
  sim::Time latency_jitter = sim::usec(400);
  std::uint64_t per_message_header = 64;  ///< framing overhead bytes
  std::uint64_t seed = 0x5eed;
};

class Network {
 public:
  Network(sim::Engine& eng, std::uint32_t num_nodes, NetParams params = {});

  /// Deliver `bytes` from `from` to `to`; `delivered` fires at the receiver
  /// once the payload has fully arrived. Loopback messages skip the fabric
  /// and cost only a small local copy.
  DPAR_CROSS_LANE_API void send(NodeId from, NodeId to, std::uint64_t bytes,
                           sim::UniqueFunction delivered);

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(nics_.size()); }
  const NetParams& params() const { return params_; }

  /// Map each node to the engine lane that owns its state. Arrivals are
  /// scheduled into the receiving node's lane; `send` is then the inter-LP
  /// channel of a partitioned engine. Unset (or on an unpartitioned engine)
  /// everything runs in lane 0.
  void set_node_lanes(std::vector<sim::LaneId> lanes);
  sim::LaneId lane_of(NodeId n) const {
    return node_lane_.empty() ? 0 : node_lane_[n];
  }

  /// Arm fault injection: remote messages may be dropped (the callback is
  /// destroyed unfired — the sender learns via its own timeout) or delayed.
  /// Loopback delivery is exempt. Null (the default) disables the hook.
  void set_fault_injector(fault::FaultInjector* inj) { injector_ = inj; }

  std::uint64_t messages_sent() const;
  std::uint64_t bytes_sent() const;
  /// TX busy time of one node, for utilization reporting.
  sim::Time tx_busy_time(NodeId n) const { return nics_[n].tx_busy; }

 private:
  struct Nic {
    /// Closed-form TX path: when the transmit FIFO drains. Messages leave in
    /// submission order, so no per-message completion event is needed.
    sim::Time tx_free_at = 0;
    sim::Time tx_busy = 0;
    std::uint64_t messages = 0;  ///< messages sent by this node
    std::uint64_t bytes = 0;     ///< payload bytes sent by this node
    /// Per-sender jitter stream. A single shared stream would make draw
    /// order (and thus every latency) depend on cross-lane event
    /// interleaving; one stream per sender is touched only by the lane that
    /// owns the sender, keeping jitter identical at every worker count.
    sim::Rng jitter;
    std::unique_ptr<sim::FifoResource> rx;
  };

  sim::Engine& eng_;
  NetParams params_;
  std::vector<Nic> nics_;
  std::vector<sim::LaneId> node_lane_;  ///< empty = everything in lane 0
  fault::FaultInjector* injector_ = nullptr;
};

}  // namespace dpar::net
