// Switched-Ethernet fabric model.
//
// Every node owns a NIC with separate transmit and receive paths, each a
// serially-served FIFO at the link bandwidth (the paper's testbed: switched
// Gigabit Ethernet). A message occupies the sender's TX path, crosses the
// switch with a fixed latency, then occupies the receiver's RX path — so
// incast at a data server or a memcached home node queues naturally.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/func.hpp"
#include "sim/resource.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace dpar::fault {
class FaultInjector;
}

namespace dpar::net {

using NodeId = std::uint32_t;

struct NetParams {
  double bandwidth_bytes_per_s = 125e6;  ///< 1 Gb/s
  sim::Time switch_latency = sim::usec(50);
  /// Uniform extra delay in [0, jitter): TCP stack + server thread wakeup
  /// variance. This scrambles the arrival order of a synchronized round of
  /// requests from many processes — the reason the disk scheduler cannot
  /// reconstruct a sequential order from vanilla MPI-IO traffic (§II).
  sim::Time latency_jitter = sim::usec(400);
  std::uint64_t per_message_header = 64;  ///< framing overhead bytes
  std::uint64_t seed = 0x5eed;
};

class Network {
 public:
  Network(sim::Engine& eng, std::uint32_t num_nodes, NetParams params = {});

  /// Deliver `bytes` from `from` to `to`; `delivered` fires at the receiver
  /// once the payload has fully arrived. Loopback messages skip the fabric
  /// and cost only a small local copy.
  void send(NodeId from, NodeId to, std::uint64_t bytes,
            sim::UniqueFunction delivered);

  std::uint32_t num_nodes() const { return static_cast<std::uint32_t>(nics_.size()); }
  const NetParams& params() const { return params_; }

  /// Arm fault injection: remote messages may be dropped (the callback is
  /// destroyed unfired — the sender learns via its own timeout) or delayed.
  /// Loopback delivery is exempt. Null (the default) disables the hook.
  void set_fault_injector(fault::FaultInjector* inj) { injector_ = inj; }

  std::uint64_t messages_sent() const { return messages_; }
  std::uint64_t bytes_sent() const { return bytes_; }
  /// TX busy time of one node, for utilization reporting.
  sim::Time tx_busy_time(NodeId n) const { return nics_[n].tx->busy_time(); }

 private:
  struct Nic {
    std::unique_ptr<sim::FifoResource> tx;
    std::unique_ptr<sim::FifoResource> rx;
  };

  sim::Engine& eng_;
  NetParams params_;
  std::vector<Nic> nics_;
  fault::FaultInjector* injector_ = nullptr;
  sim::Rng jitter_rng_;
  std::uint64_t messages_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dpar::net
