#include "net/network.hpp"

#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "sim/debug.hpp"

namespace dpar::net {

Network::Network(sim::Engine& eng, std::uint32_t num_nodes, NetParams params)
    : eng_(eng), params_(params) {
  nics_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    Nic nic;
    // Independent per-sender streams off the one configured seed.
    nic.jitter = sim::Rng(sim::splitmix64(params_.seed ^ (0xa076'1d64'78bd'642fULL + i)));
    nic.rx = std::make_unique<sim::FifoResource>(eng_);
    nics_.push_back(std::move(nic));
  }
}

void Network::set_node_lanes(std::vector<sim::LaneId> lanes) {
  if (!lanes.empty() && lanes.size() != nics_.size())
    throw std::invalid_argument("Network::set_node_lanes: one lane per node");
  node_lane_ = std::move(lanes);
}

std::uint64_t Network::messages_sent() const {
  std::uint64_t n = 0;
  for (const Nic& nic : nics_) n += nic.messages;
  return n;
}

std::uint64_t Network::bytes_sent() const {
  std::uint64_t n = 0;
  for (const Nic& nic : nics_) n += nic.bytes;
  return n;
}

namespace {

/// In-flight remote message. A UniqueFunction is too big to re-capture at
/// the arrival stage without spilling past the inline buffers, so the
/// callback and routing state live in one heap record and the arrival
/// lambda captures a single pointer.
struct Transit {
  Network* net;
  sim::FifoResource* rx;
  sim::Time rx_time;
  sim::UniqueFunction cb;
};

}  // namespace

void Network::send(NodeId from, NodeId to, std::uint64_t bytes,
                   sim::UniqueFunction delivered) {
  if (from >= nics_.size() || to >= nics_.size())
    throw std::out_of_range("Network::send: bad node id");
  Nic& src = nics_[from];
  ++src.messages;
  src.bytes += bytes;
  if (from == to) {
    // Local delivery: memory copy, no NIC involvement. Charge a token cost so
    // that local cache hits are cheap but not free. Stays in the sender's own
    // lane, so the plain scheduling call is lane-safe.
    // dpar-lint: allow(pdes-lane-channel) loopback never crosses a lane
    eng_.after(sim::usec(5) + sim::transfer_time(bytes, 4e9), std::move(delivered));
    return;
  }
  const sim::Time now = eng_.now();
  const std::uint64_t wire_bytes = bytes + params_.per_message_header;
  const sim::Time tx_time = sim::transfer_time(wire_bytes, params_.bandwidth_bytes_per_s);
  // Closed-form TX FIFO: messages leave in submission order, so the finish
  // time needs no completion event — just the running free-at register.
  const sim::Time tx_start = src.tx_free_at > now ? src.tx_free_at : now;
  const sim::Time tx_finish = tx_start + tx_time;
  src.tx_free_at = tx_finish;
  src.tx_busy += tx_time;
  sim::Time hop =
      params_.switch_latency +
      (params_.latency_jitter > 0
           ? static_cast<sim::Time>(src.jitter.uniform(
                 static_cast<std::uint64_t>(params_.latency_jitter)))
           : 0);
  if (injector_) {
    sim::Time extra = 0;
    if (!injector_->net_deliver(from, to, now, extra)) {
      // The message still burned the sender's TX path (accounted above),
      // then vanishes in the fabric: `delivered` is destroyed unfired and
      // the sender finds out by timing out. Jitter was already drawn, so a
      // dropped message perturbs no later message's latency.
      return;
    }
    hop += extra;
  }
  // Arrival = TX drain + switch hop, scheduled straight into the receiver's
  // lane. hop >= switch_latency == the engine lookahead, so the arrival is
  // provably outside the current safe window — this is the cross-LP channel.
  const sim::Time rx_time =
      sim::transfer_time(wire_bytes, params_.bandwidth_bytes_per_s);
  auto* t = new Transit{this, nics_[to].rx.get(), rx_time, std::move(delivered)};
  eng_.at_in(lane_of(to), tx_finish + hop, [t] {
    const sim::Time rx_time = t->rx_time;
    sim::FifoResource& rx = *t->rx;
    sim::UniqueFunction cb = std::move(t->cb);
    delete t;
    rx.submit(rx_time, std::move(cb));
  });
}

}  // namespace dpar::net
