#include "net/network.hpp"

#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"

namespace dpar::net {

Network::Network(sim::Engine& eng, std::uint32_t num_nodes, NetParams params)
    : eng_(eng), params_(params), jitter_rng_(params.seed) {
  nics_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    Nic nic;
    nic.tx = std::make_unique<sim::FifoResource>(eng_);
    nic.rx = std::make_unique<sim::FifoResource>(eng_);
    nics_.push_back(std::move(nic));
  }
}

namespace {

/// In-flight remote message. A UniqueFunction is too big to re-capture at
/// each stage (tx -> switch hop -> rx) without spilling past the inline
/// buffers, so the callback and routing state live in one heap record and
/// every stage's lambda captures a single pointer.
struct Transit {
  Network* net;
  NodeId to;
  std::uint64_t wire_bytes;
  sim::Time hop;
  sim::UniqueFunction cb;
};

}  // namespace

void Network::send(NodeId from, NodeId to, std::uint64_t bytes,
                   sim::UniqueFunction delivered) {
  if (from >= nics_.size() || to >= nics_.size())
    throw std::out_of_range("Network::send: bad node id");
  ++messages_;
  bytes_ += bytes;
  if (from == to) {
    // Local delivery: memory copy, no NIC involvement. Charge a token cost so
    // that local cache hits are cheap but not free.
    eng_.after(sim::usec(5) + sim::transfer_time(bytes, 4e9), std::move(delivered));
    return;
  }
  const std::uint64_t wire_bytes = bytes + params_.per_message_header;
  const sim::Time tx_time = sim::transfer_time(wire_bytes, params_.bandwidth_bytes_per_s);
  sim::Time hop =
      params_.switch_latency +
      (params_.latency_jitter > 0
           ? static_cast<sim::Time>(jitter_rng_.uniform(
                 static_cast<std::uint64_t>(params_.latency_jitter)))
           : 0);
  if (injector_) {
    sim::Time extra = 0;
    if (!injector_->net_deliver(from, to, eng_.now(), extra)) {
      // The message still burns the sender's TX path, then vanishes in the
      // fabric: `delivered` is destroyed unfired and the sender finds out by
      // timing out. Jitter was already drawn above, so a dropped message
      // perturbs no later message's latency.
      nics_[from].tx->submit(tx_time, [] {});
      return;
    }
    hop += extra;
  }
  auto* t = new Transit{this, to, wire_bytes, hop, std::move(delivered)};
  nics_[from].tx->submit(tx_time, [t] {
    t->net->eng_.after(t->hop, [t] {
      const sim::Time rx_time = sim::transfer_time(
          t->wire_bytes, t->net->params_.bandwidth_bytes_per_s);
      sim::FifoResource& rx = *t->net->nics_[t->to].rx;
      sim::UniqueFunction cb = std::move(t->cb);
      delete t;
      rx.submit(rx_time, std::move(cb));
    });
  });
}

}  // namespace dpar::net
