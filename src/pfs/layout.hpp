// File striping math (PVFS2-style round-robin striping, 64 KB default unit).
#pragma once

#include <cstdint>
#include <vector>

#include "disk/request.hpp"

namespace dpar::pfs {

using FileId = std::uint32_t;

/// A contiguous byte range of a file.
struct Segment {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t end() const { return offset + length; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

struct StripeLayout {
  std::uint64_t unit_bytes = 64 * 1024;
  std::uint32_t num_servers = 1;
  /// Route decompose_segment through the frozen per-chunk loop
  /// (layout_reference.cpp) instead of the closed form. The two produce
  /// identical runs; benches flip this to measure the closed form against
  /// the pre-change code path end to end.
  bool reference_decompose = false;

  std::uint64_t stripe_of(std::uint64_t offset) const { return offset / unit_bytes; }
  std::uint32_t server_of(std::uint64_t offset) const {
    return static_cast<std::uint32_t>(stripe_of(offset) % num_servers);
  }
  /// Byte offset within the owning server's portion of the file. Consecutive
  /// stripes kept by the same server are contiguous there, which preserves
  /// the file-level/disk-level address correspondence the paper relies on.
  std::uint64_t server_local_offset(std::uint64_t offset) const {
    const std::uint64_t stripe = stripe_of(offset);
    return (stripe / num_servers) * unit_bytes + offset % unit_bytes;
  }
  /// Bytes a server stores for a file of `size` bytes.
  std::uint64_t server_share(std::uint32_t server, std::uint64_t size) const {
    const std::uint64_t full_rounds = size / (unit_bytes * num_servers);
    std::uint64_t share = full_rounds * unit_bytes;
    std::uint64_t rest = size % (unit_bytes * num_servers);
    const std::uint64_t skip = std::uint64_t{server} * unit_bytes;
    if (rest > skip) share += std::min(unit_bytes, rest - skip);
    return share;
  }
};

/// One contiguous byte run in a server's local address space for a file.
struct ServerRun {
  std::uint64_t local_offset = 0;
  std::uint64_t length = 0;
  friend bool operator==(const ServerRun&, const ServerRun&) = default;
};

/// Reusable scratch for repeated decompositions on one client. Holds the
/// per-server run lists plus the ascending-insertion list of servers that
/// actually received runs, so the send path iterates O(involved servers)
/// instead of O(num_servers) and the outer vector is allocated once per
/// client, not once per I/O call.
struct DecomposeScratch {
  std::vector<std::vector<ServerRun>> per_server;
  std::vector<std::uint32_t> touched;  ///< servers with runs, first-touch order

  /// Prepare for a new decomposition over `num_servers` servers: clears the
  /// previously touched run lists (O(touched), not O(servers)) and keeps
  /// every vector's capacity for reuse.
  void reset(std::uint32_t num_servers);
};

/// Decompose a file segment into per-server runs, coalescing runs that are
/// contiguous in a server's local space. Closed form: each involved server's
/// bytes within one contiguous segment form a single contiguous local run
/// (interior stripes of one server map to adjacent local units), so the
/// decomposition emits O(min(stripes, servers)) runs directly instead of
/// walking one iteration per stripe chunk.
void decompose_segment(const StripeLayout& layout, const Segment& seg,
                       std::vector<std::vector<ServerRun>>& per_server);

/// Scratch-based variant used by the client send path: additionally records
/// which servers received their first run in `scratch.touched`.
void decompose_segment(const StripeLayout& layout, const Segment& seg,
                       DecomposeScratch& scratch);

/// The pre-closed-form decomposition, one loop iteration per stripe chunk,
/// frozen verbatim as the differential oracle (same pattern as the scheduler
/// references in sched_reference.cpp). Produces byte-identical runs.
void decompose_segment_reference(const StripeLayout& layout, const Segment& seg,
                                 std::vector<std::vector<ServerRun>>& per_server);

}  // namespace dpar::pfs
