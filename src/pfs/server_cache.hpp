// Server-side page cache with sequential read-ahead.
//
// PVFS2 data servers sit on the kernel page cache: recently read or written
// file ranges are served from memory, and a detected sequential stream
// triggers read-ahead. The paper's evaluation *flushed* caches before every
// run ("to ensure that all data were accessed from the disk"), so the
// Testbed default keeps this disabled; enabling it shows how much of
// DualPar's benefit survives a warm, read-ahead-capable server.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>

#include "cache/rangeset.hpp"
#include "pfs/layout.hpp"

namespace dpar::pfs {

struct ServerCacheParams {
  std::uint64_t capacity_bytes = 0;             ///< 0 disables the cache
  std::uint64_t readahead_bytes = 512 * 1024;   ///< window appended to
                                                ///< sequential misses
  /// A read continuing within this distance of the previous end of stream
  /// counts as sequential.
  std::uint64_t sequential_slack = 64 * 1024;
};

class ServerCache {
 public:
  explicit ServerCache(ServerCacheParams p = {}) : p_(p) {}

  bool enabled() const { return p_.capacity_bytes > 0; }
  const ServerCacheParams& params() const { return p_; }

  /// True when [offset, offset+length) of `file` is fully resident.
  bool covers(FileId file, std::uint64_t offset, std::uint64_t length) const;

  /// Insert a range (after a disk read or a write-through).
  void insert(FileId file, std::uint64_t offset, std::uint64_t length);

  /// Read-ahead decision: if this miss continues a sequential stream of
  /// `file`, returns the number of bytes to read beyond the request
  /// (clamped to the window); otherwise 0. Also updates the stream tracker.
  std::uint64_t readahead_hint(FileId file, std::uint64_t offset,
                               std::uint64_t length);

  std::uint64_t resident_bytes() const { return resident_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evicted_bytes() const { return evicted_; }
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }

 private:
  void evict_to_fit();

  ServerCacheParams p_;
  std::unordered_map<FileId, cache::RangeSet> resident_ranges_;
  /// FIFO of inserted ranges for approximate LRU eviction.
  std::deque<std::tuple<FileId, std::uint64_t, std::uint64_t>> insert_order_;
  std::unordered_map<FileId, std::uint64_t> stream_end_;  ///< per-file cursor
  std::uint64_t resident_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace dpar::pfs
