#include "pfs/server_cache.hpp"

#include <algorithm>

namespace dpar::pfs {

bool ServerCache::covers(FileId file, std::uint64_t offset,
                         std::uint64_t length) const {
  if (!enabled()) return false;
  auto it = resident_ranges_.find(file);
  return it != resident_ranges_.end() && it->second.covers(offset, offset + length);
}

void ServerCache::insert(FileId file, std::uint64_t offset, std::uint64_t length) {
  if (!enabled() || length == 0) return;
  cache::RangeSet& rs = resident_ranges_[file];
  const std::uint64_t before = rs.total_bytes();
  rs.add(offset, offset + length);
  resident_ += rs.total_bytes() - before;
  insert_order_.emplace_back(file, offset, offset + length);
  evict_to_fit();
}

std::uint64_t ServerCache::readahead_hint(FileId file, std::uint64_t offset,
                                          std::uint64_t length) {
  if (!enabled()) return 0;
  auto it = stream_end_.find(file);
  const bool sequential =
      it != stream_end_.end() && offset >= it->second &&
      offset - it->second <= p_.sequential_slack;
  stream_end_[file] = offset + length;
  if (!sequential) return 0;
  stream_end_[file] += p_.readahead_bytes;
  return p_.readahead_bytes;
}

void ServerCache::evict_to_fit() {
  while (resident_ > p_.capacity_bytes && !insert_order_.empty()) {
    const auto [file, begin, end] = insert_order_.front();
    insert_order_.pop_front();
    auto it = resident_ranges_.find(file);
    if (it == resident_ranges_.end()) continue;
    const std::uint64_t before = it->second.total_bytes();
    it->second.remove(begin, end);
    const std::uint64_t freed = before - it->second.total_bytes();
    resident_ -= freed;
    evicted_ += freed;
    if (it->second.empty()) resident_ranges_.erase(it);
  }
}

}  // namespace dpar::pfs
