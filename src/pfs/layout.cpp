#include "pfs/layout.hpp"

#include "sim/debug.hpp"

namespace dpar::pfs {

namespace {

/// Closed-form emitter. Within one contiguous segment, server `srv` holds the
/// arithmetic progression of stripes k0, k0+S, ..., k1 (S = num_servers), and
/// consecutive stripes of one server map to adjacent units in its local
/// address space — so the server's share of the segment is exactly one
/// contiguous local run [begin, end), clipped at the segment's first and last
/// stripe. Emitting that run per involved server is O(min(stripes, S)),
/// independent of the segment's byte length.
void closed_form(const StripeLayout& layout, const Segment& seg,
                 std::vector<std::vector<ServerRun>>& per_server,
                 std::vector<std::uint32_t>* touched) {
  const std::uint64_t unit = layout.unit_bytes;
  const std::uint64_t nserv = layout.num_servers;
  const std::uint64_t first = seg.offset / unit;
  const std::uint64_t last = (seg.end() - 1) / unit;
  const std::uint64_t involved = std::min(last - first + 1, nserv);
  for (std::uint64_t i = 0; i < involved; ++i) {
    const std::uint64_t k0 = first + i;  // server's first stripe in the segment
    const std::uint64_t k1 = k0 + ((last - k0) / nserv) * nserv;  // its last
    const auto srv = static_cast<std::uint32_t>(k0 % nserv);
    const std::uint64_t begin =
        (k0 / nserv) * unit + (k0 == first ? seg.offset % unit : 0);
    const std::uint64_t end =
        (k1 / nserv) * unit + (k1 == last ? (seg.end() - 1) % unit + 1 : unit);
    auto& runs = per_server[srv];
    if (!runs.empty() && runs.back().local_offset + runs.back().length == begin) {
      runs.back().length += end - begin;
    } else {
      if (touched && runs.empty()) touched->push_back(srv);
      runs.push_back(ServerRun{begin, end - begin});
    }
  }
}

#if DPAR_CHECK_INVARIANTS
/// Debug invariant layer: spot-check the closed form against the frozen
/// per-chunk reference on bounded segments (the reference walks one iteration
/// per stripe, so huge segments are skipped to keep Debug runs tractable).
/// Decomposes into fresh local vectors so the check is independent of
/// whatever the caller has already accumulated in its scratch.
void spot_check_closed_form(const StripeLayout& layout, const Segment& seg) {
  const std::uint64_t stripes =
      (seg.end() - 1) / layout.unit_bytes - seg.offset / layout.unit_bytes + 1;
  if (stripes > 4096) return;
  std::vector<std::vector<ServerRun>> closed(layout.num_servers);
  std::vector<std::vector<ServerRun>> ref(layout.num_servers);
  closed_form(layout, seg, closed, nullptr);
  decompose_segment_reference(layout, seg, ref);
  DPAR_ASSERT(closed == ref,
              "striping: closed-form decomposition diverged from the frozen "
              "per-chunk reference");
}
#endif

}  // namespace

void decompose_segment(const StripeLayout& layout, const Segment& seg,
                       std::vector<std::vector<ServerRun>>& per_server) {
  per_server.resize(layout.num_servers);
  if (seg.length == 0) return;
  if (layout.reference_decompose) {
    decompose_segment_reference(layout, seg, per_server);
    return;
  }
  closed_form(layout, seg, per_server, nullptr);
  DPAR_IF_CHECKING(spot_check_closed_form(layout, seg));
}

void decompose_segment(const StripeLayout& layout, const Segment& seg,
                       DecomposeScratch& scratch) {
  if (scratch.per_server.size() < layout.num_servers)
    scratch.per_server.resize(layout.num_servers);
  if (seg.length == 0) return;
  if (layout.reference_decompose) {
    // The frozen loop does not track first touches; derive them from the
    // same closed-form stripe window so both paths fill `touched` alike.
    const std::uint64_t first = seg.offset / layout.unit_bytes;
    const std::uint64_t last = (seg.end() - 1) / layout.unit_bytes;
    const std::uint64_t involved =
        std::min(last - first + 1, std::uint64_t{layout.num_servers});
    for (std::uint64_t i = 0; i < involved; ++i) {
      const auto srv = static_cast<std::uint32_t>((first + i) % layout.num_servers);
      if (scratch.per_server[srv].empty()) scratch.touched.push_back(srv);
    }
    decompose_segment_reference(layout, seg, scratch.per_server);
    return;
  }
  closed_form(layout, seg, scratch.per_server, &scratch.touched);
  DPAR_IF_CHECKING(spot_check_closed_form(layout, seg));
}

void DecomposeScratch::reset(std::uint32_t num_servers) {
  if (per_server.size() != num_servers) {
    per_server.clear();
    per_server.resize(num_servers);
  } else {
    for (std::uint32_t s : touched) per_server[s].clear();
  }
  touched.clear();
}

}  // namespace dpar::pfs
