#include "pfs/layout.hpp"

namespace dpar::pfs {

void decompose_segment(const StripeLayout& layout, const Segment& seg,
                       std::vector<std::vector<ServerRun>>& per_server) {
  per_server.resize(layout.num_servers);
  std::uint64_t off = seg.offset;
  std::uint64_t remaining = seg.length;
  while (remaining > 0) {
    const std::uint64_t within = off % layout.unit_bytes;
    const std::uint64_t take = std::min(remaining, layout.unit_bytes - within);
    const std::uint32_t server = layout.server_of(off);
    const std::uint64_t local = layout.server_local_offset(off);
    auto& runs = per_server[server];
    if (!runs.empty() && runs.back().local_offset + runs.back().length == local) {
      runs.back().length += take;
    } else {
      runs.push_back(ServerRun{local, take});
    }
    off += take;
    remaining -= take;
  }
}

}  // namespace dpar::pfs
