#include "pfs/file_system.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/fanin.hpp"

namespace dpar::pfs {

FileSystem::FileSystem(sim::Engine& eng, net::Network& net, net::NodeId metadata_node,
                       std::vector<DataServer*> servers, StripeLayout layout)
    : eng_(eng),
      net_(net),
      metadata_node_(metadata_node),
      servers_(std::move(servers)),
      layout_(layout) {
  if (servers_.empty()) throw std::invalid_argument("FileSystem: no data servers");
  layout_.num_servers = static_cast<std::uint32_t>(servers_.size());
}

FileId FileSystem::create(const std::string& name, std::uint64_t size) {
  const FileId id = next_file_id_++;
  files_.emplace(id, FileInfo{id, name, size});
  for (std::uint32_t s = 0; s < layout_.num_servers; ++s) {
    // Allocate the server's striped share (rounded up one unit for slack).
    const std::uint64_t share = layout_.server_share(s, size) + layout_.unit_bytes;
    servers_[s]->allocate(id, share);
  }
  return id;
}

void Client::open(FileId file, sim::UniqueFunction done) {
  (void)file;
  // Request to the metadata server and reply, both small messages.
  auto& net = fs_.network();
  const auto mds = fs_.metadata_node();
  net.send(node_, mds, 128, [this, &net, mds, done = std::move(done)]() mutable {
    net.send(mds, node_, 256, std::move(done));
  });
}

void Client::io(FileId file, const std::vector<Segment>& segments, bool is_write,
                std::uint64_t context, sim::UniqueFn<void(std::uint64_t)> done) {
  ++calls_;
  std::vector<std::vector<ServerRun>> per_server(fs_.num_servers());
  std::uint64_t total_bytes = 0;
  for (const Segment& seg : segments) {
    if (seg.length == 0) continue;
    total_bytes += seg.length;
    decompose_segment(fs_.layout(), seg, per_server);
  }

  std::uint32_t involved = 0;
  for (const auto& runs : per_server)
    if (!runs.empty()) ++involved;
  if (involved == 0) {
    fs_.engine().after(0, [done = std::move(done)]() mutable { done(0); });
    return;
  }

  auto* fan = sim::make_fanin(
      involved, [done = std::move(done), total_bytes]() mutable {
        done(total_bytes);
      });
  for (std::uint32_t s = 0; s < fs_.num_servers(); ++s) {
    if (per_server[s].empty()) continue;
    DataServer& srv = fs_.server(s);
    const std::uint64_t run_bytes = [&] {
      std::uint64_t sum = 0;
      for (const auto& r : per_server[s]) sum += r.length;
      return sum;
    }();
    // Request message: header + run descriptors (+ payload for writes).
    const std::uint64_t req_msg = 96 + 16 * per_server[s].size() + (is_write ? run_bytes : 0);
    const std::uint64_t reply_msg = is_write ? 64 : run_bytes + 64;

    ServerIoRequest req;
    req.file = file;
    req.is_write = is_write;
    req.context = context;
    req.runs = std::move(per_server[s]);

    auto& net = fs_.network();
    const net::NodeId srv_node = srv.node();
    const net::NodeId client_node = node_;
    req.done = [&net, srv_node, client_node, reply_msg, fan] {
      net.send(srv_node, client_node, reply_msg, [fan] { fan->complete(); });
    };
    net.send(client_node, srv_node, req_msg,
             [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
  }
}

}  // namespace dpar::pfs
