#include "pfs/file_system.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"
#include "replica/manager.hpp"

namespace dpar::pfs {

FileSystem::FileSystem(sim::Engine& eng, net::Network& net, net::NodeId metadata_node,
                       std::vector<DataServer*> servers, StripeLayout layout)
    : eng_(eng),
      net_(net),
      metadata_node_(metadata_node),
      servers_(std::move(servers)),
      layout_(layout) {
  if (servers_.empty()) throw std::invalid_argument("FileSystem: no data servers");
  layout_.num_servers = static_cast<std::uint32_t>(servers_.size());
}

FileId FileSystem::create(const std::string& name, std::uint64_t size) {
  const FileId id = next_file_id_++;
  files_.emplace(id, FileInfo{id, name, size});
  if (replicas_ != nullptr && replicas_->config().enabled()) {
    // Replicated file: every server gets the uniform primary + per-role
    // replica-region extent (any server can host any chunk's copy), and the
    // repair manager starts tracking the copies.
    const std::uint64_t extent = replicas_->map().extent_bytes(size);
    for (std::uint32_t s = 0; s < layout_.num_servers; ++s)
      servers_[s]->allocate(id, extent);
    replicas_->register_file(id, size);
    return id;
  }
  for (std::uint32_t s = 0; s < layout_.num_servers; ++s) {
    // Allocate the server's striped share (rounded up one unit for slack).
    const std::uint64_t share = layout_.server_share(s, size) + layout_.unit_bytes;
    servers_[s]->allocate(id, share);
  }
  return id;
}

void Client::open(FileId file, sim::UniqueFunction done) {
  (void)file;
  // Request to the metadata server and reply, both small messages.
  auto& net = fs_.network();
  const auto mds = fs_.metadata_node();
  net.send(node_, mds, 128, [this, &net, mds, done = std::move(done)]() mutable {
    net.send(mds, node_, 256, std::move(done));
  });
}

namespace {

/// Control block for one robust (fault-injected) client I/O call.
///
/// Ownership is reference-counted: every closure that can reach the op — the
/// per-shard timeout event, the request-delivery/reply chain through the
/// network — holds one ref via an RAII OpRef. A dropped message destroys its
/// closure unfired, which releases the ref automatically, so silent network
/// loss can never leak the op. `done` fires when every shard has finished
/// (reply, definitive error, or exhausted retries); the block itself is freed
/// when the last ref goes away (e.g. a stale retransmitted reply still in
/// flight after completion).
struct IoOp {
  FileSystem* fs;
  net::NodeId client_node;
  FileId file;
  bool is_write;
  std::uint64_t context;
  std::uint64_t total_bytes;
  fault::Status status = fault::Status::kOk;
  std::uint32_t pending;
  std::uint32_t refs = 0;
  IoDoneFn done;

  /// One per involved server.
  struct Shard {
    std::uint32_t server;
    std::vector<ServerRun> runs;  ///< kept across attempts for retransmission
    std::uint64_t req_msg;
    std::uint64_t reply_msg;
    std::uint32_t attempt = 0;  ///< attempts sent so far
    bool completed = false;
    sim::EventId timeout{};
  };
  std::vector<Shard> shards;

  void unref() {
    if (--refs == 0) delete this;
  }
};

/// Move-only RAII reference to an IoOp; safe to capture in closures that may
/// be destroyed without running (dropped messages, cancelled timeouts).
struct OpRef {
  IoOp* op;
  explicit OpRef(IoOp* o) : op(o) { ++o->refs; }
  OpRef(OpRef&& other) noexcept : op(other.op) { other.op = nullptr; }
  OpRef(const OpRef&) = delete;
  OpRef& operator=(const OpRef&) = delete;
  OpRef& operator=(OpRef&&) = delete;
  ~OpRef() {
    if (op) op->unref();
  }
};

void start_attempt(IoOp* op, std::size_t idx);

/// A shard is done for good (reply arrived or retries exhausted).
void finish_shard(IoOp* op, std::size_t idx, fault::Status st) {
  IoOp::Shard& sh = op->shards[idx];
  sh.completed = true;
  op->status = fault::combine(op->status, st);
  if (--op->pending == 0) {
    ++op->fs->fault_injector()->counters().client_ops_finished;
    // Move out first: `done` may start new I/O or otherwise re-enter.
    IoDoneFn done = std::move(op->done);
    if (done) done(op->total_bytes, op->status);
  }
}

void on_reply(IoOp* op, std::size_t idx, std::uint32_t attempt, fault::Status st) {
  IoOp::Shard& sh = op->shards[idx];
  fault::FaultInjector& inj = *op->fs->fault_injector();
  if (sh.completed || sh.attempt != attempt) {
    // A retransmission raced the original: this reply answers a question the
    // client is no longer asking.
    ++inj.counters().client_stale_replies;
    return;
  }
  if (sh.timeout) {
    op->fs->engine().cancel(sh.timeout);
    sh.timeout = {};
  }
  if (sh.attempt > 1) ++inj.counters().client_recoveries;
  // Definitive server answers (including media errors) are final: the server
  // already retried at the drive level, resending the request cannot help.
  finish_shard(op, idx, st);
}

void on_timeout(IoOp* op, std::size_t idx) {
  IoOp::Shard& sh = op->shards[idx];
  sh.timeout = {};
  if (sh.completed) return;
  fault::FaultInjector& inj = *op->fs->fault_injector();
  ++inj.counters().client_timeouts;
  if (sh.attempt > inj.max_retries()) {
    ++inj.counters().client_failures;
    fault::Status st = fault::Status::kTimeout;
    if (inj.server_down(sh.server)) {
      if (inj.permanently_down(sh.server, op->fs->engine().now())) {
        // Fail-stop server: "gone", not "slow" — the caller (and the repair
        // manager) must not keep hoping for a restart.
        ++inj.counters().client_permanent_failures;
        st = fault::Status::kPermanentFailure;
      } else {
        st = fault::Status::kServerDown;
      }
    }
    finish_shard(op, idx, st);
    return;
  }
  ++inj.counters().client_retries;
  op->fs->engine().after(inj.backoff(sh.attempt), [ref = OpRef(op), idx] {
    start_attempt(ref.op, idx);
  });
}

void start_attempt(IoOp* op, std::size_t idx) {
  IoOp::Shard& sh = op->shards[idx];
  ++sh.attempt;
  const std::uint32_t attempt = sh.attempt;
  fault::FaultInjector& inj = *op->fs->fault_injector();
  sim::Engine& eng = op->fs->engine();
  // Patience scales with the payload so large CRM batches are not declared
  // dead while legitimately streaming.
  sh.timeout = eng.after(inj.request_timeout(sh.req_msg + sh.reply_msg),
                         [ref = OpRef(op), idx] { on_timeout(ref.op, idx); });

  DataServer& srv = op->fs->server(sh.server);
  net::Network& net = op->fs->network();
  const net::NodeId srv_node = srv.node();
  const net::NodeId client_node = op->client_node;
  const std::uint64_t reply_msg = sh.reply_msg;

  ServerIoRequest req;
  req.file = op->file;
  req.is_write = op->is_write;
  req.context = op->context;
  req.runs = sh.runs;  // copy: retransmission may need them again
  req.done = [&net, srv_node, client_node, reply_msg, idx, attempt,
              ref = OpRef(op)](fault::Status st) mutable {
    net.send(srv_node, client_node, reply_msg,
             [ref = std::move(ref), idx, attempt, st] {
               on_reply(ref.op, idx, attempt, st);
             });
  };
  net.send(client_node, srv_node, sh.req_msg,
           [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
}

}  // namespace

namespace {

/// Wire sizes of one shard's request/reply pair. Request message: header +
/// run descriptors (+ payload for writes); reply: header (+ payload for
/// reads). The single summation site shared by the robust and fast paths.
struct ShardSizing {
  std::uint64_t req_msg;
  std::uint64_t reply_msg;
};

ShardSizing size_shard(const std::vector<ServerRun>& runs, bool is_write) {
  std::uint64_t run_bytes = 0;
  for (const auto& r : runs) run_bytes += r.length;
  return ShardSizing{96 + 16 * runs.size() + (is_write ? run_bytes : 0),
                     is_write ? 64 : run_bytes + 64};
}

}  // namespace

// ---------------------------------------------------------------------------
// Replicated request path (replication_factor > 1).
//
// Writes fan out one shard set per replica role — star (all roles at once)
// or chain (role r+1 starts when role r completed, each hop relayed through
// the previous copy's server). Reads start against the primaries (role 0)
// and transparently fail over, shard by shard, to the next surviving role
// when a shard comes back with a crash, media error, or exhausted timeout —
// a degraded read. Ownership follows the IoOp pattern above: refcounted
// control block, RAII references in every closure.
// ---------------------------------------------------------------------------

namespace {

struct RepOp {
  FileSystem* fs;
  replica::RepairManager* mgr;
  net::NodeId client_node;
  FileId file;
  std::uint64_t file_size;
  bool is_write;
  std::uint64_t context;
  std::uint64_t total_bytes;
  std::uint32_t pending;  ///< shards not yet terminal (grows on failover)
  std::uint32_t refs = 0;
  bool degraded_counted = false;
  IoDoneFn done;
  /// Writes: worst outcome per role; the op succeeds if ANY role's shard set
  /// fully succeeded (each role covers every chunk once, so one clean role
  /// means every chunk kept at least one valid copy).
  std::vector<fault::Status> role_status;
  /// Reads: worst outcome across shards that failed without a failover path.
  fault::Status read_status = fault::Status::kOk;
  /// Chain fan-out: outstanding shards per role stage.
  std::vector<std::uint32_t> stage_pending;

  struct Shard {
    std::uint32_t server;
    std::uint32_t role;
    std::vector<ServerRun> runs;
    /// File-space coverage, chunk-coalesced: failover re-decomposes these
    /// under the next role, and write failures invalidate their chunks.
    std::vector<Segment> ranges;
    std::uint64_t req_msg = 0;
    std::uint64_t reply_msg = 0;
    std::uint32_t attempt = 0;
    bool completed = false;
    sim::EventId timeout{};
    sim::Time first_sent = -1;  ///< failover-latency epoch
  };
  std::vector<Shard> shards;

  void unref() {
    if (--refs == 0) delete this;
  }
};

struct RepOpRef {
  RepOp* op;
  explicit RepOpRef(RepOp* o) : op(o) { ++o->refs; }
  RepOpRef(RepOpRef&& other) noexcept : op(other.op) { other.op = nullptr; }
  RepOpRef(const RepOpRef&) = delete;
  RepOpRef& operator=(const RepOpRef&) = delete;
  RepOpRef& operator=(RepOpRef&&) = delete;
  ~RepOpRef() {
    if (op) op->unref();
  }
};

/// Decompose `segments` under copy `role` into per-server shards: runs in
/// the role's replica-local address space (contiguous chunks on one server
/// coalesce — consecutive chunks are adjacent inside a replica region) plus
/// the chunk-coalesced file-space ranges each shard covers. Shards come out
/// sorted by server id.
void build_role_shards(const replica::ReplicaMap& map, std::uint64_t file_size,
                       const std::vector<Segment>& segments, std::uint32_t role,
                       bool is_write, std::uint64_t context_unused,
                       std::vector<RepOp::Shard>& out) {
  (void)context_unused;
  const std::uint64_t unit = map.layout().unit_bytes;
  auto shard_for = [&out, role](std::uint32_t server) -> RepOp::Shard& {
    for (auto& sh : out)
      if (sh.server == server && sh.role == role) return sh;
    RepOp::Shard sh;
    sh.server = server;
    sh.role = role;
    out.push_back(std::move(sh));
    return out.back();
  };
  for (const Segment& seg : segments) {
    std::uint64_t off = seg.offset;
    while (off < seg.end()) {
      const std::uint64_t chunk = off / unit;
      const std::uint64_t len = std::min(seg.end() - off, (chunk + 1) * unit - off);
      RepOp::Shard& sh = shard_for(map.server_of(chunk, role));
      const std::uint64_t local = map.replica_local_offset(file_size, off, role);
      if (!sh.runs.empty() &&
          sh.runs.back().local_offset + sh.runs.back().length == local) {
        sh.runs.back().length += len;
      } else {
        sh.runs.push_back(ServerRun{local, len});
      }
      if (!sh.ranges.empty() && sh.ranges.back().end() == off) {
        sh.ranges.back().length += len;
      } else {
        sh.ranges.push_back(Segment{off, len});
      }
      off += len;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RepOp::Shard& a, const RepOp::Shard& b) {
              return a.role != b.role ? a.role < b.role : a.server < b.server;
            });
  for (auto& sh : out) {
    const ShardSizing wire = size_shard(sh.runs, is_write);
    sh.req_msg = wire.req_msg;
    sh.reply_msg = wire.reply_msg;
  }
}

/// Chunk indices a shard's file ranges cover (for invalidation notes).
std::vector<std::uint64_t> chunks_of_ranges(const replica::ReplicaMap& map,
                                            const std::vector<Segment>& ranges) {
  const std::uint64_t unit = map.layout().unit_bytes;
  std::vector<std::uint64_t> chunks;
  for (const Segment& r : ranges)
    for (std::uint64_t k = r.offset / unit; k * unit < r.end(); ++k)
      if (chunks.empty() || chunks.back() != k) chunks.push_back(k);
  return chunks;
}

void start_rep_attempt(RepOp* op, std::size_t idx);
void start_rep_stage(RepOp* op, std::uint32_t role);

void finish_rep_op_if_done(RepOp* op) {
  if (op->pending != 0) return;
  if (fault::FaultInjector* inj = op->fs->fault_injector())
    ++inj->counters().client_ops_finished;
  fault::Status st;
  if (op->is_write) {
    // Best role wins: one fully-successful shard set means every chunk
    // landed at least one valid copy.
    st = op->role_status.front();
    for (fault::Status rs : op->role_status) st = st < rs ? st : rs;
  } else {
    st = op->read_status;
  }
  IoDoneFn done = std::move(op->done);
  if (done) done(op->total_bytes, st);
}

/// Read-shard failover: retire `idx` without folding its failure into the
/// op and aim a fresh shard set at the next role for the same file ranges.
void failover_shard(RepOp* op, std::size_t idx) {
  sim::Engine& eng = op->fs->engine();
  replica::Counters& rc = op->mgr->counters();
  const std::uint32_t next_role = op->shards[idx].role + 1;
  op->shards[idx].completed = true;
  ++rc.failover_shards;
  rc.failover_latency_ns += static_cast<std::uint64_t>(
      eng.now() - op->shards[idx].first_sent);
  if (!op->degraded_counted) {
    op->degraded_counted = true;
    ++rc.degraded_reads;
  }
  std::vector<RepOp::Shard> fresh;
  build_role_shards(op->mgr->map(), op->file_size, op->shards[idx].ranges,
                    next_role, /*is_write=*/false, op->context, fresh);
  const std::size_t base = op->shards.size();
  op->pending += static_cast<std::uint32_t>(fresh.size());
  for (auto& sh : fresh) op->shards.push_back(std::move(sh));
  --op->pending;  // the failed shard itself is done
  for (std::size_t i = base; i < op->shards.size(); ++i) start_rep_attempt(op, i);
  finish_rep_op_if_done(op);
}

/// A shard is done for good: fold its outcome and advance the chain stage.
void terminal_rep_shard(RepOp* op, std::size_t idx, fault::Status st) {
  RepOp::Shard& sh = op->shards[idx];
  sh.completed = true;
  if (op->is_write) {
    op->role_status[sh.role] = fault::combine(op->role_status[sh.role], st);
    if (!fault::ok(st)) {
      // This role's copies of the shard's chunks never landed: tell the
      // repair manager so re-replication can restore them.
      ++op->mgr->counters().copy_write_failures;
      op->mgr->post_invalid_copies(op->file, sh.role,
                                   chunks_of_ranges(op->mgr->map(), sh.ranges));
    }
    if (!op->stage_pending.empty()) {
      const std::uint32_t role = sh.role;
      if (--op->stage_pending[role] == 0 &&
          role + 1 < op->mgr->config().replication_factor)
        start_rep_stage(op, role + 1);
    }
  } else {
    // Only reads that ran out of replicas reach here with a failure.
    if (!fault::ok(st)) ++op->mgr->counters().out_of_replica_reads;
    op->read_status = fault::combine(op->read_status, st);
  }
  --op->pending;
  finish_rep_op_if_done(op);
}

void on_rep_reply(RepOp* op, std::size_t idx, std::uint32_t attempt,
                  fault::Status st) {
  RepOp::Shard& sh = op->shards[idx];
  fault::FaultInjector* inj = op->fs->fault_injector();
  if (sh.completed || sh.attempt != attempt) {
    if (inj) ++inj->counters().client_stale_replies;
    return;
  }
  if (sh.timeout) {
    op->fs->engine().cancel(sh.timeout);
    sh.timeout = {};
  }
  if (inj && sh.attempt > 1) ++inj->counters().client_recoveries;
  if (!op->is_write && !fault::ok(st) &&
      sh.role + 1 < op->mgr->config().replication_factor) {
    // Definitive failure (media error on the primary's region): the copy is
    // beyond retransmission, but a surviving replica can serve the read.
    failover_shard(op, idx);
    return;
  }
  terminal_rep_shard(op, idx, st);
}

void on_rep_timeout(RepOp* op, std::size_t idx) {
  RepOp::Shard& sh = op->shards[idx];
  sh.timeout = {};
  if (sh.completed) return;
  fault::FaultInjector& inj = *op->fs->fault_injector();
  ++inj.counters().client_timeouts;
  const std::uint32_t rf = op->mgr->config().replication_factor;
  if (!op->is_write && sh.role + 1 < rf &&
      sh.attempt > op->mgr->config().read_failover_after_retries) {
    // Reads give up on a silent copy quickly: surviving replicas make long
    // patience pointless.
    failover_shard(op, idx);
    return;
  }
  if (sh.attempt > inj.max_retries()) {
    ++inj.counters().client_failures;
    fault::Status st = fault::Status::kTimeout;
    if (inj.server_down(sh.server)) {
      if (inj.permanently_down(sh.server, op->fs->engine().now())) {
        ++inj.counters().client_permanent_failures;
        st = fault::Status::kPermanentFailure;
      } else {
        st = fault::Status::kServerDown;
      }
    }
    if (!op->is_write && sh.role + 1 < rf) {
      failover_shard(op, idx);
      return;
    }
    terminal_rep_shard(op, idx, st);
    return;
  }
  ++inj.counters().client_retries;
  op->fs->engine().after(inj.backoff(sh.attempt), [ref = RepOpRef(op), idx] {
    start_rep_attempt(ref.op, idx);
  });
}

void start_rep_attempt(RepOp* op, std::size_t idx) {
  RepOp::Shard& sh = op->shards[idx];
  ++sh.attempt;
  const std::uint32_t attempt = sh.attempt;
  sim::Engine& eng = op->fs->engine();
  if (sh.first_sent < 0) sh.first_sent = eng.now();
  if (fault::FaultInjector* inj = op->fs->fault_injector()) {
    sh.timeout = eng.after(inj->request_timeout(sh.req_msg + sh.reply_msg),
                           [ref = RepOpRef(op), idx] { on_rep_timeout(ref.op, idx); });
  }

  DataServer& srv = op->fs->server(sh.server);
  net::Network& net = op->fs->network();
  const net::NodeId srv_node = srv.node();
  const net::NodeId client_node = op->client_node;
  const std::uint64_t reply_msg = sh.reply_msg;

  ServerIoRequest req;
  req.file = op->file;
  req.is_write = op->is_write;
  req.context = op->context;
  req.runs = sh.runs;  // copy: retransmission may need them again
  req.done = [&net, srv_node, client_node, reply_msg, idx, attempt,
              ref = RepOpRef(op)](fault::Status st) mutable {
    net.send(srv_node, client_node, reply_msg,
             [ref = std::move(ref), idx, attempt, st] {
               on_rep_reply(ref.op, idx, attempt, st);
             });
  };

  const bool chained = op->is_write && sh.role > 0 &&
                       op->mgr->config().fanout == replica::WriteFanout::kChain;
  if (chained) {
    // Chain hop: route through the previous role's server for the shard's
    // first chunk. The relay runs in the forwarder's lane — its NIC, its TX
    // FIFO — and a crashed forwarder drops the hop (the client times out and
    // retransmits through it again).
    const std::uint64_t first_chunk =
        sh.ranges.front().offset / op->mgr->map().layout().unit_bytes;
    DataServer& fwd =
        op->fs->server(op->mgr->map().server_of(first_chunk, sh.role - 1));
    const net::NodeId fwd_node = fwd.node();
    replica::RepairManager* mgr = op->mgr;
    const std::uint64_t req_msg = sh.req_msg;
    net.send(client_node, fwd_node, req_msg,
             [&net, &fwd, &srv, fwd_node, srv_node, req_msg, mgr,
              req = std::move(req)]() mutable {
               if (fwd.is_down()) return;
               ++mgr->counters().chain_forwards;
               net.send(fwd_node, srv_node, req_msg,
                        [&srv, req = std::move(req)]() mutable {
                          srv.handle(std::move(req));
                        });
             });
    return;
  }
  net.send(client_node, srv_node, sh.req_msg,
           [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
}

void start_rep_stage(RepOp* op, std::uint32_t role) {
  for (std::size_t i = 0; i < op->shards.size(); ++i)
    if (op->shards[i].role == role && op->shards[i].attempt == 0)
      start_rep_attempt(op, i);
}

void replicated_io(FileSystem& fs, net::NodeId node, replica::RepairManager& mgr,
                   FileId file, const std::vector<Segment>& segments,
                   bool is_write, std::uint64_t context, IoDoneFn done) {
  const std::uint64_t file_size = fs.info(file).size;
  std::uint64_t total_bytes = 0;
  for (const Segment& seg : segments) total_bytes += seg.length;
  const std::uint32_t rf = mgr.config().replication_factor;

  std::vector<RepOp::Shard> shards;
  if (is_write) {
    for (std::uint32_t r = 0; r < rf; ++r)
      build_role_shards(mgr.map(), file_size, segments, r, true, context, shards);
  } else {
    build_role_shards(mgr.map(), file_size, segments, 0, false, context, shards);
  }
  if (shards.empty()) {
    fs.engine().after(0, [done = std::move(done)]() mutable {
      done(0, fault::Status::kOk);
    });
    return;
  }

  if (fault::FaultInjector* inj = fs.fault_injector())
    ++inj->counters().client_ops_started;
  auto* op = new RepOp{};
  op->fs = &fs;
  op->mgr = &mgr;
  op->client_node = node;
  op->file = file;
  op->file_size = file_size;
  op->is_write = is_write;
  op->context = context;
  op->total_bytes = total_bytes;
  op->pending = static_cast<std::uint32_t>(shards.size());
  op->done = std::move(done);
  op->shards = std::move(shards);

  if (is_write) {
    op->role_status.assign(rf, fault::Status::kOk);
    replica::Counters& rc = mgr.counters();
    ++rc.writes_replicated;
    for (const auto& sh : op->shards)
      if (sh.role > 0) ++rc.write_copy_shards;
    if (mgr.config().fanout == replica::WriteFanout::kChain) {
      op->stage_pending.assign(rf, 0);
      for (const auto& sh : op->shards) ++op->stage_pending[sh.role];
      start_rep_stage(op, 0);
      return;
    }
  }
  // Star fan-out (and all reads): every shard goes out at once.
  for (std::size_t i = 0; i < op->shards.size(); ++i) start_rep_attempt(op, i);
}

}  // namespace

void Client::io(FileId file, const std::vector<Segment>& segments, bool is_write,
                std::uint64_t context, IoDoneFn done) {
  ++calls_;
  if (replica::RepairManager* mgr = fs_.replicas();
      mgr != nullptr && mgr->config().enabled()) {
    replicated_io(fs_, node_, *mgr, file, segments, is_write, context,
                  std::move(done));
    return;
  }
  scratch_.reset(fs_.num_servers());
  std::uint64_t total_bytes = 0;
  for (const Segment& seg : segments) {
    if (seg.length == 0) continue;
    total_bytes += seg.length;
    decompose_segment(fs_.layout(), seg, scratch_);
  }

  // Servers are contacted in ascending id order (touched records first-touch
  // order); only the servers actually holding data are visited.
  std::sort(scratch_.touched.begin(), scratch_.touched.end());
  auto& per_server = scratch_.per_server;
  const auto involved = static_cast<std::uint32_t>(scratch_.touched.size());
  if (involved == 0) {
    fs_.engine().after(0, [done = std::move(done)]() mutable {
      done(0, fault::Status::kOk);
    });
    return;
  }

  if (fault::FaultInjector* inj = fs_.fault_injector()) {
    // Robust path: one retriable shard per involved server, per-request
    // timeouts, capped exponential backoff.
    ++inj->counters().client_ops_started;
    auto* op = new IoOp{&fs_,       node_,   file, is_write,
                        context,    total_bytes, fault::Status::kOk,
                        involved,   0,       std::move(done),
                        {}};
    op->shards.reserve(involved);
    for (std::uint32_t s : scratch_.touched) {
      const ShardSizing wire = size_shard(per_server[s], is_write);
      IoOp::Shard sh;
      sh.server = s;
      sh.runs = std::move(per_server[s]);
      sh.req_msg = wire.req_msg;
      sh.reply_msg = wire.reply_msg;
      op->shards.push_back(std::move(sh));
    }
    // First attempts start only after every shard exists: start_attempt may
    // index into op->shards from re-entered engine callbacks.
    for (std::size_t i = 0; i < op->shards.size(); ++i) start_attempt(op, i);
    return;
  }

  // Fault-free fast path: single fan-in, no timeout events, no control block.
  auto* fan = fault::make_status_fanin(
      involved, [done = std::move(done), total_bytes](fault::Status st) mutable {
        done(total_bytes, st);
      });
  for (std::uint32_t s : scratch_.touched) {
    DataServer& srv = fs_.server(s);
    const ShardSizing wire = size_shard(per_server[s], is_write);

    ServerIoRequest req;
    req.file = file;
    req.is_write = is_write;
    req.context = context;
    req.runs = std::move(per_server[s]);

    auto& net = fs_.network();
    const net::NodeId srv_node = srv.node();
    const net::NodeId client_node = node_;
    const std::uint64_t reply_msg = wire.reply_msg;
    req.done = [&net, srv_node, client_node, reply_msg, fan](fault::Status st) {
      net.send(srv_node, client_node, reply_msg, [fan, st] { fan->complete(st); });
    };
    net.send(client_node, srv_node, wire.req_msg,
             [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
  }
}

}  // namespace dpar::pfs
