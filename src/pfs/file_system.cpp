#include "pfs/file_system.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>

#include "fault/injector.hpp"

namespace dpar::pfs {

FileSystem::FileSystem(sim::Engine& eng, net::Network& net, net::NodeId metadata_node,
                       std::vector<DataServer*> servers, StripeLayout layout)
    : eng_(eng),
      net_(net),
      metadata_node_(metadata_node),
      servers_(std::move(servers)),
      layout_(layout) {
  if (servers_.empty()) throw std::invalid_argument("FileSystem: no data servers");
  layout_.num_servers = static_cast<std::uint32_t>(servers_.size());
}

FileId FileSystem::create(const std::string& name, std::uint64_t size) {
  const FileId id = next_file_id_++;
  files_.emplace(id, FileInfo{id, name, size});
  for (std::uint32_t s = 0; s < layout_.num_servers; ++s) {
    // Allocate the server's striped share (rounded up one unit for slack).
    const std::uint64_t share = layout_.server_share(s, size) + layout_.unit_bytes;
    servers_[s]->allocate(id, share);
  }
  return id;
}

void Client::open(FileId file, sim::UniqueFunction done) {
  (void)file;
  // Request to the metadata server and reply, both small messages.
  auto& net = fs_.network();
  const auto mds = fs_.metadata_node();
  net.send(node_, mds, 128, [this, &net, mds, done = std::move(done)]() mutable {
    net.send(mds, node_, 256, std::move(done));
  });
}

namespace {

/// Control block for one robust (fault-injected) client I/O call.
///
/// Ownership is reference-counted: every closure that can reach the op — the
/// per-shard timeout event, the request-delivery/reply chain through the
/// network — holds one ref via an RAII OpRef. A dropped message destroys its
/// closure unfired, which releases the ref automatically, so silent network
/// loss can never leak the op. `done` fires when every shard has finished
/// (reply, definitive error, or exhausted retries); the block itself is freed
/// when the last ref goes away (e.g. a stale retransmitted reply still in
/// flight after completion).
struct IoOp {
  FileSystem* fs;
  net::NodeId client_node;
  FileId file;
  bool is_write;
  std::uint64_t context;
  std::uint64_t total_bytes;
  fault::Status status = fault::Status::kOk;
  std::uint32_t pending;
  std::uint32_t refs = 0;
  IoDoneFn done;

  /// One per involved server.
  struct Shard {
    std::uint32_t server;
    std::vector<ServerRun> runs;  ///< kept across attempts for retransmission
    std::uint64_t req_msg;
    std::uint64_t reply_msg;
    std::uint32_t attempt = 0;  ///< attempts sent so far
    bool completed = false;
    sim::EventId timeout{};
  };
  std::vector<Shard> shards;

  void unref() {
    if (--refs == 0) delete this;
  }
};

/// Move-only RAII reference to an IoOp; safe to capture in closures that may
/// be destroyed without running (dropped messages, cancelled timeouts).
struct OpRef {
  IoOp* op;
  explicit OpRef(IoOp* o) : op(o) { ++o->refs; }
  OpRef(OpRef&& other) noexcept : op(other.op) { other.op = nullptr; }
  OpRef(const OpRef&) = delete;
  OpRef& operator=(const OpRef&) = delete;
  OpRef& operator=(OpRef&&) = delete;
  ~OpRef() {
    if (op) op->unref();
  }
};

void start_attempt(IoOp* op, std::size_t idx);

/// A shard is done for good (reply arrived or retries exhausted).
void finish_shard(IoOp* op, std::size_t idx, fault::Status st) {
  IoOp::Shard& sh = op->shards[idx];
  sh.completed = true;
  op->status = fault::combine(op->status, st);
  if (--op->pending == 0) {
    ++op->fs->fault_injector()->counters().client_ops_finished;
    // Move out first: `done` may start new I/O or otherwise re-enter.
    IoDoneFn done = std::move(op->done);
    if (done) done(op->total_bytes, op->status);
  }
}

void on_reply(IoOp* op, std::size_t idx, std::uint32_t attempt, fault::Status st) {
  IoOp::Shard& sh = op->shards[idx];
  fault::FaultInjector& inj = *op->fs->fault_injector();
  if (sh.completed || sh.attempt != attempt) {
    // A retransmission raced the original: this reply answers a question the
    // client is no longer asking.
    ++inj.counters().client_stale_replies;
    return;
  }
  if (sh.timeout) {
    op->fs->engine().cancel(sh.timeout);
    sh.timeout = {};
  }
  if (sh.attempt > 1) ++inj.counters().client_recoveries;
  // Definitive server answers (including media errors) are final: the server
  // already retried at the drive level, resending the request cannot help.
  finish_shard(op, idx, st);
}

void on_timeout(IoOp* op, std::size_t idx) {
  IoOp::Shard& sh = op->shards[idx];
  sh.timeout = {};
  if (sh.completed) return;
  fault::FaultInjector& inj = *op->fs->fault_injector();
  ++inj.counters().client_timeouts;
  if (sh.attempt > inj.max_retries()) {
    ++inj.counters().client_failures;
    finish_shard(op, idx,
                 inj.server_down(sh.server) ? fault::Status::kServerDown
                                            : fault::Status::kTimeout);
    return;
  }
  ++inj.counters().client_retries;
  op->fs->engine().after(inj.backoff(sh.attempt), [ref = OpRef(op), idx] {
    start_attempt(ref.op, idx);
  });
}

void start_attempt(IoOp* op, std::size_t idx) {
  IoOp::Shard& sh = op->shards[idx];
  ++sh.attempt;
  const std::uint32_t attempt = sh.attempt;
  fault::FaultInjector& inj = *op->fs->fault_injector();
  sim::Engine& eng = op->fs->engine();
  // Patience scales with the payload so large CRM batches are not declared
  // dead while legitimately streaming.
  sh.timeout = eng.after(inj.request_timeout(sh.req_msg + sh.reply_msg),
                         [ref = OpRef(op), idx] { on_timeout(ref.op, idx); });

  DataServer& srv = op->fs->server(sh.server);
  net::Network& net = op->fs->network();
  const net::NodeId srv_node = srv.node();
  const net::NodeId client_node = op->client_node;
  const std::uint64_t reply_msg = sh.reply_msg;

  ServerIoRequest req;
  req.file = op->file;
  req.is_write = op->is_write;
  req.context = op->context;
  req.runs = sh.runs;  // copy: retransmission may need them again
  req.done = [&net, srv_node, client_node, reply_msg, idx, attempt,
              ref = OpRef(op)](fault::Status st) mutable {
    net.send(srv_node, client_node, reply_msg,
             [ref = std::move(ref), idx, attempt, st] {
               on_reply(ref.op, idx, attempt, st);
             });
  };
  net.send(client_node, srv_node, sh.req_msg,
           [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
}

}  // namespace

namespace {

/// Wire sizes of one shard's request/reply pair. Request message: header +
/// run descriptors (+ payload for writes); reply: header (+ payload for
/// reads). The single summation site shared by the robust and fast paths.
struct ShardSizing {
  std::uint64_t req_msg;
  std::uint64_t reply_msg;
};

ShardSizing size_shard(const std::vector<ServerRun>& runs, bool is_write) {
  std::uint64_t run_bytes = 0;
  for (const auto& r : runs) run_bytes += r.length;
  return ShardSizing{96 + 16 * runs.size() + (is_write ? run_bytes : 0),
                     is_write ? 64 : run_bytes + 64};
}

}  // namespace

void Client::io(FileId file, const std::vector<Segment>& segments, bool is_write,
                std::uint64_t context, IoDoneFn done) {
  ++calls_;
  scratch_.reset(fs_.num_servers());
  std::uint64_t total_bytes = 0;
  for (const Segment& seg : segments) {
    if (seg.length == 0) continue;
    total_bytes += seg.length;
    decompose_segment(fs_.layout(), seg, scratch_);
  }

  // Servers are contacted in ascending id order (touched records first-touch
  // order); only the servers actually holding data are visited.
  std::sort(scratch_.touched.begin(), scratch_.touched.end());
  auto& per_server = scratch_.per_server;
  const auto involved = static_cast<std::uint32_t>(scratch_.touched.size());
  if (involved == 0) {
    fs_.engine().after(0, [done = std::move(done)]() mutable {
      done(0, fault::Status::kOk);
    });
    return;
  }

  if (fault::FaultInjector* inj = fs_.fault_injector()) {
    // Robust path: one retriable shard per involved server, per-request
    // timeouts, capped exponential backoff.
    ++inj->counters().client_ops_started;
    auto* op = new IoOp{&fs_,       node_,   file, is_write,
                        context,    total_bytes, fault::Status::kOk,
                        involved,   0,       std::move(done),
                        {}};
    op->shards.reserve(involved);
    for (std::uint32_t s : scratch_.touched) {
      const ShardSizing wire = size_shard(per_server[s], is_write);
      IoOp::Shard sh;
      sh.server = s;
      sh.runs = std::move(per_server[s]);
      sh.req_msg = wire.req_msg;
      sh.reply_msg = wire.reply_msg;
      op->shards.push_back(std::move(sh));
    }
    // First attempts start only after every shard exists: start_attempt may
    // index into op->shards from re-entered engine callbacks.
    for (std::size_t i = 0; i < op->shards.size(); ++i) start_attempt(op, i);
    return;
  }

  // Fault-free fast path: single fan-in, no timeout events, no control block.
  auto* fan = fault::make_status_fanin(
      involved, [done = std::move(done), total_bytes](fault::Status st) mutable {
        done(total_bytes, st);
      });
  for (std::uint32_t s : scratch_.touched) {
    DataServer& srv = fs_.server(s);
    const ShardSizing wire = size_shard(per_server[s], is_write);

    ServerIoRequest req;
    req.file = file;
    req.is_write = is_write;
    req.context = context;
    req.runs = std::move(per_server[s]);

    auto& net = fs_.network();
    const net::NodeId srv_node = srv.node();
    const net::NodeId client_node = node_;
    const std::uint64_t reply_msg = wire.reply_msg;
    req.done = [&net, srv_node, client_node, reply_msg, fan](fault::Status st) {
      net.send(srv_node, client_node, reply_msg, [fan, st] { fan->complete(st); });
    };
    net.send(client_node, srv_node, wire.req_msg,
             [&srv, req = std::move(req)]() mutable { srv.handle(std::move(req)); });
  }
}

}  // namespace dpar::pfs
