// Parallel file system front: file creation/striping metadata plus the
// client-side request path (list I/O decomposition, per-server messages).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "pfs/server.hpp"
#include "sim/engine.hpp"
#include "sim/func.hpp"

namespace dpar::replica {
class RepairManager;
}

namespace dpar::pfs {

struct FileInfo {
  FileId id = 0;
  std::string name;
  std::uint64_t size = 0;
};

/// Metadata + data-server ensemble. One instance per simulated cluster.
class FileSystem {
 public:
  FileSystem(sim::Engine& eng, net::Network& net, net::NodeId metadata_node,
             std::vector<DataServer*> servers, StripeLayout layout);

  /// Create a file of `size` bytes: allocates extents on every data server.
  FileId create(const std::string& name, std::uint64_t size);

  const FileInfo& info(FileId id) const { return files_.at(id); }
  const StripeLayout& layout() const { return layout_; }
  std::uint32_t num_servers() const { return static_cast<std::uint32_t>(servers_.size()); }
  DataServer& server(std::uint32_t i) { return *servers_[i]; }
  net::NodeId metadata_node() const { return metadata_node_; }
  net::Network& network() { return net_; }
  sim::Engine& engine() { return eng_; }

  /// Arm fault injection: clients switch to the timeout/retry request path.
  /// Null (the default) keeps the fan-in fast path.
  void set_fault_injector(fault::FaultInjector* inj) { injector_ = inj; }
  fault::FaultInjector* fault_injector() { return injector_; }

  /// Arm n-way replication: create() allocates per-role replica regions and
  /// clients switch to the replicated request path (write fan-out to every
  /// copy, degraded reads with transparent failover). Null, or a manager
  /// whose config has replication_factor == 1, keeps every pre-replication
  /// path byte-for-byte.
  void set_replicas(replica::RepairManager* r) { replicas_ = r; }
  replica::RepairManager* replicas() { return replicas_; }

 private:
  sim::Engine& eng_;
  net::Network& net_;
  net::NodeId metadata_node_;
  std::vector<DataServer*> servers_;
  StripeLayout layout_;
  std::unordered_map<FileId, FileInfo> files_;
  FileId next_file_id_ = 1;
  fault::FaultInjector* injector_ = nullptr;
  replica::RepairManager* replicas_ = nullptr;
};

/// Completion of one client I/O call: the bytes the call covered plus the
/// worst per-server outcome (kOk always, unless fault injection is armed).
using IoDoneFn = sim::UniqueFn<void(std::uint64_t, fault::Status)>;

/// Client-side PFS access from one compute node.
class Client {
 public:
  Client(FileSystem& fs, net::NodeId node) : fs_(fs), node_(node) {}

  /// Metadata round trip (open/stat).
  void open(FileId file, sim::UniqueFunction done);

  /// List I/O: read or write `segments` of `file`. Segments are decomposed
  /// into per-server runs (order-preserving, contiguity-coalescing) and one
  /// request message goes to each involved server. `done(bytes, status)`
  /// fires when every server has replied — or, under fault injection, when
  /// every server has replied, failed definitively, or exhausted the retry
  /// budget (per-request timeout, capped exponential backoff).
  void io(FileId file, const std::vector<Segment>& segments, bool is_write,
          std::uint64_t context, IoDoneFn done);

  net::NodeId node() const { return node_; }
  std::uint64_t calls() const { return calls_; }

 private:
  FileSystem& fs_;
  net::NodeId node_;
  std::uint64_t calls_ = 0;
  /// Per-client decomposition scratch: the per-server outer vector is sized
  /// once and the send path walks only the servers a call actually touches —
  /// at 256+ servers the old per-call allocation and full-width scans
  /// dominated small requests.
  DecomposeScratch scratch_;
};

}  // namespace dpar::pfs
