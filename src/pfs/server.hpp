// PVFS2-style data server: owns a block device, an extent table mapping
// (file, server-local offset) to LBNs, and a request-handling service thread.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "disk/device.hpp"
#include "fault/status.hpp"
#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "pfs/server_cache.hpp"
#include "sim/func.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/resource.hpp"

namespace dpar::fault {
class FaultInjector;
}

namespace dpar::pfs {

/// Server-side completion of one list-I/O request; carries the worst outcome
/// across the request's runs.
using ReplyFn = sim::UniqueFn<void(fault::Status)>;

/// A list-I/O request as received by a data server: runs are in the file's
/// server-local address space, already sorted by the client.
struct ServerIoRequest {
  FileId file = 0;
  bool is_write = false;
  std::uint64_t context = 0;  ///< I/O context for the disk scheduler
  std::vector<ServerRun> runs;
  ReplyFn done;  ///< invoked at the server when disk I/O completes

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const auto& r : runs) sum += r.length;
    return sum;
  }
};

struct ServerParams {
  sim::Time request_base_cost = sim::usec(30);   ///< per-message handling CPU
  sim::Time per_run_cost = sim::usec(3);         ///< per list-I/O run CPU
  /// PVFS2 data servers issue all disk I/O from one user-space server
  /// process, so the kernel disk scheduler sees a single I/O context and can
  /// only reorder what is simultaneously queued (§II: "the disk scheduler
  /// sees a limited number of outstanding requests"). Set false to tag disk
  /// requests with the originating MPI process instead (kernel-level I/O
  /// path; used by the ablation bench).
  bool single_disk_context = true;
  /// Server page cache with read-ahead; capacity 0 (the default) keeps it
  /// off, matching the paper's cache-flushed runs.
  ServerCacheParams page_cache;
};

class DataServer {
 public:
  DataServer(sim::Engine& eng, net::NodeId node, std::unique_ptr<disk::BlockDevice> dev,
             ServerParams params = {});

  /// Reserve an on-disk extent of `bytes` for `file`. The allocator is a
  /// bump allocator with an inter-file gap, so files created in sequence
  /// occupy disjoint disk regions — seeks between two programs' files are
  /// then long, as on a real aged file system.
  void allocate(FileId file, std::uint64_t bytes);
  bool has_file(FileId file) const { return extents_.count(file) != 0; }
  void set_inter_file_gap(std::uint64_t bytes) { gap_bytes_ = bytes; }

  /// Handle a request that has already been delivered to this node.
  void handle(ServerIoRequest req);

  // ---- Fault injection ----
  /// Arm fault injection for this server and its block device.
  void set_fault_injector(fault::FaultInjector* inj);
  /// Crash: refuse new requests and lose all accepted-but-unreplied work
  /// (their replies are squashed; clients find out by timing out).
  /// Crash/restart events are scheduled on the engine's exclusive lane (the
  /// fault plan pins them there), so the epoch flip and listener fan-out run
  /// with every lane quiescent.
  DPAR_EXCLUSIVE_LANE void crash();
  /// Restart after a crash with an empty queue.
  DPAR_EXCLUSIVE_LANE void restart();
  bool is_down() const { return down_; }
  /// Internal plumbing: deliver a finished request's reply, or squash it when
  /// the server crashed (epoch changed) since the request was accepted.
  void deliver_reply(ReplyFn done, fault::Status st, std::uint64_t epoch);

  net::NodeId node() const { return node_; }
  disk::BlockDevice& device() { return *dev_; }
  ServerCache& page_cache() { return cache_; }
  /// The blktrace of the underlying device (first member for RAID).
  disk::BlkTrace& trace();
  /// Bytes served to clients (from disk or the page cache).
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Bytes actually read from the disk (includes read-ahead).
  std::uint64_t disk_bytes_read() const { return disk_bytes_read_; }
  std::uint64_t requests_handled() const { return requests_; }

 private:
  struct Extent {
    std::uint64_t base_lba;
    std::uint64_t sectors;
  };

  sim::Engine& eng_;
  net::NodeId node_;
  std::unique_ptr<disk::BlockDevice> dev_;
  ServerParams params_;
  ServerCache cache_;
  sim::FifoResource service_;
  fault::FaultInjector* injector_ = nullptr;
  bool down_ = false;
  /// Bumped on every crash; requests remember the epoch they were accepted in
  /// and replies from a dead epoch are squashed (queue loss without touching
  /// the disk scheduler's state).
  std::uint64_t epoch_ = 0;
  std::unordered_map<FileId, Extent> extents_;
  std::uint64_t next_free_sector_ = 2048;  ///< leave a small metadata region
  std::uint64_t gap_bytes_ = 1ull << 20;
  std::uint64_t next_req_id_ = 1;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t disk_bytes_read_ = 0;
  std::uint64_t requests_ = 0;
};

}  // namespace dpar::pfs
