#include "pfs/server.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

namespace dpar::pfs {

DataServer::DataServer(sim::Engine& eng, net::NodeId node,
                       std::unique_ptr<disk::BlockDevice> dev, ServerParams params)
    : eng_(eng),
      node_(node),
      dev_(std::move(dev)),
      params_(params),
      cache_(params.page_cache),
      service_(eng) {}

void DataServer::allocate(FileId file, std::uint64_t bytes) {
  if (extents_.count(file) != 0) return;  // idempotent
  const std::uint64_t sectors = disk::bytes_to_sectors(bytes);
  Extent e{next_free_sector_, sectors};
  next_free_sector_ += sectors + disk::bytes_to_sectors(gap_bytes_);
  if (next_free_sector_ > dev_->capacity_sectors())
    throw std::runtime_error("DataServer: disk full");
  extents_.emplace(file, e);
}

disk::BlkTrace& DataServer::trace() {
  if (auto* d = dynamic_cast<disk::DiskDevice*>(dev_.get())) return d->trace();
  auto* raid = dynamic_cast<disk::Raid0Device*>(dev_.get());
  return raid->member(0).trace();
}

void DataServer::handle(ServerIoRequest req) {
  ++requests_;
  const sim::Time cpu =
      params_.request_base_cost + params_.per_run_cost * static_cast<sim::Time>(req.runs.size());
  // Request handling passes through the server's service thread first, then
  // fans out to the disk.
  auto shared = std::make_shared<ServerIoRequest>(std::move(req));
  service_.submit(cpu, [this, shared] {
    auto it = extents_.find(shared->file);
    if (it == extents_.end())
      throw std::runtime_error("DataServer::handle: unknown file");
    const Extent extent = it->second;

    if (shared->is_write) {
      bytes_written_ += shared->total_bytes();
    } else {
      bytes_read_ += shared->total_bytes();
    }

    auto outstanding = std::make_shared<std::size_t>(shared->runs.size());
    if (shared->runs.empty()) {
      if (shared->done) shared->done();
      return;
    }
    for (const ServerRun& run : shared->runs) {
      // Page cache: resident reads skip the disk entirely; misses may be
      // extended by a read-ahead window when they continue a sequential
      // stream. Writes go through to the disk and populate the cache.
      std::uint64_t length = run.length;
      if (!shared->is_write && cache_.enabled()) {
        if (cache_.covers(shared->file, run.local_offset, run.length)) {
          cache_.note_hit();
          if (--*outstanding == 0 && shared->done) shared->done();
          continue;
        }
        cache_.note_miss();
        const std::uint64_t extent_bytes = extent.sectors * disk::kSectorBytes;
        std::uint64_t ra = cache_.readahead_hint(shared->file, run.local_offset,
                                                 run.length);
        if (run.local_offset + length + ra > extent_bytes)
          ra = extent_bytes > run.local_offset + length
                   ? extent_bytes - run.local_offset - length
                   : 0;
        length += ra;
      }
      if (!shared->is_write) disk_bytes_read_ += length;
      disk::Request dr;
      dr.id = next_req_id_++;
      dr.lba = extent.base_lba + run.local_offset / disk::kSectorBytes;
      dr.sectors = static_cast<std::uint32_t>(disk::bytes_to_sectors(length));
      if (dr.lba + dr.sectors > extent.base_lba + extent.sectors + 8)
        throw std::runtime_error("DataServer::handle: run beyond extent");
      dr.is_write = shared->is_write;
      dr.context = params_.single_disk_context ? 0 : shared->context;
      const std::uint64_t local_offset = run.local_offset;
      dr.done = [this, shared, outstanding, local_offset, length] {
        if (cache_.enabled()) cache_.insert(shared->file, local_offset, length);
        if (--*outstanding == 0 && shared->done) shared->done();
      };
      dev_->submit(std::move(dr));
    }
  });
}

}  // namespace dpar::pfs
