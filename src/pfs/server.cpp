#include "pfs/server.hpp"

#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fault/injector.hpp"

namespace dpar::pfs {

namespace {

/// Control block for one in-service request: the request itself plus the
/// fan-in count over its runs. One allocation per server request (the old
/// idiom was a shared_ptr<ServerIoRequest> plus a shared_ptr<size_t> counter,
/// with every per-run callback holding both refcounts).
struct IoCtx {
  ServerIoRequest req;
  std::size_t outstanding;
  /// Worst outcome across the request's runs.
  fault::Status status = fault::Status::kOk;
  /// Set only when fault injection is armed: the owning server and the crash
  /// epoch the request was accepted in, so the reply can be squashed if the
  /// server crashed while the disk work was in flight.
  DataServer* srv = nullptr;
  std::uint64_t epoch = 0;

  /// One run finished (cache hit or disk completion).
  void complete_one(fault::Status st = fault::Status::kOk) {
    status = fault::combine(status, st);
    if (--outstanding == 0) {
      ReplyFn done = std::move(req.done);
      DataServer* s = srv;
      const std::uint64_t e = epoch;
      const fault::Status out = status;
      delete this;
      if (s) {
        s->deliver_reply(std::move(done), out, e);
      } else if (done) {
        done(out);
      }
    }
  }
};

}  // namespace

DataServer::DataServer(sim::Engine& eng, net::NodeId node,
                       std::unique_ptr<disk::BlockDevice> dev, ServerParams params)
    : eng_(eng),
      node_(node),
      dev_(std::move(dev)),
      params_(params),
      cache_(params.page_cache),
      service_(eng) {}

void DataServer::allocate(FileId file, std::uint64_t bytes) {
  if (extents_.count(file) != 0) return;  // idempotent
  const std::uint64_t sectors = disk::bytes_to_sectors(bytes);
  Extent e{next_free_sector_, sectors};
  next_free_sector_ += sectors + disk::bytes_to_sectors(gap_bytes_);
  if (next_free_sector_ > dev_->capacity_sectors())
    throw std::runtime_error("DataServer: disk full");
  extents_.emplace(file, e);
}

disk::BlkTrace& DataServer::trace() {
  if (auto* d = dynamic_cast<disk::DiskDevice*>(dev_.get())) return d->trace();
  auto* raid = dynamic_cast<disk::Raid0Device*>(dev_.get());
  return raid->member(0).trace();
}

void DataServer::set_fault_injector(fault::FaultInjector* inj) {
  injector_ = inj;
  dev_->set_fault_injector(inj, node_);
}

void DataServer::crash() {
  if (down_) return;
  down_ = true;
  ++epoch_;
  if (injector_) injector_->note_server_state(node_, true);
}

void DataServer::restart() {
  if (!down_) return;
  down_ = false;
  if (injector_) injector_->note_server_state(node_, false);
}

void DataServer::deliver_reply(ReplyFn done, fault::Status st, std::uint64_t epoch) {
  if (epoch != epoch_) {
    // The server crashed after accepting this request: its queued work is
    // gone and the reply is never sent. The client's timeout fires instead.
    if (injector_) ++injector_->counters().server_lost_completions;
    return;
  }
  if (done) done(st);
}

void DataServer::handle(ServerIoRequest req) {
  if (down_) {
    // A dead server answers nothing: the request's callback is destroyed
    // unfired and the client times out.
    if (injector_) ++injector_->counters().server_refused_requests;
    return;
  }
  ++requests_;
  sim::Time cpu =
      params_.request_base_cost + params_.per_run_cost * static_cast<sim::Time>(req.runs.size());
  // Request handling passes through the server's service thread first, then
  // fans out to the disk.
  auto* ctx = new IoCtx{std::move(req), 0};
  if (injector_) {
    cpu += injector_->server_stall(node_);
    ctx->srv = this;
    ctx->epoch = epoch_;
  }
  service_.submit(cpu, [this, ctx] {
    auto it = extents_.find(ctx->req.file);
    if (it == extents_.end())
      throw std::runtime_error("DataServer::handle: unknown file");
    const Extent extent = it->second;

    if (ctx->req.is_write) {
      bytes_written_ += ctx->req.total_bytes();
    } else {
      bytes_read_ += ctx->req.total_bytes();
    }

    if (ctx->req.runs.empty()) {
      ctx->outstanding = 1;
      ctx->complete_one();
      return;
    }
    // The +1 keeps ctx alive through the loop even if every run is a cache
    // hit (the matching complete_one is below, after submit_batch); nothing
    // between here and there fires engine events, so completion order is
    // unchanged.
    ctx->outstanding = ctx->req.runs.size() + 1;
    // Decompose the whole list-I/O request first, then hand the disk every
    // miss in one submit_batch() call — the scheduler sorts the batch as a
    // unit instead of paying a queue walk per run. Runs that are exactly
    // adjacent on this server's extent (a striped client segment lands here
    // as a train of locally-contiguous chunks) coalesce into one disk
    // request, so the train costs one completion event per (server, request)
    // span instead of one per chunk.
    std::vector<disk::Request> batch;
    // Byte span and merged-run count of the batch's trailing request, for
    // the coalesced cache insert and fan-in.
    std::uint64_t tail_offset = 0, tail_end = 0, tail_runs = 0;
    auto seal_tail = [this, ctx, &batch, &tail_offset, &tail_end, &tail_runs] {
      if (batch.empty() || tail_runs == 0) return;
      const std::uint64_t off = tail_offset, len = tail_end - tail_offset,
                          n = tail_runs;
      batch.back().done = [this, ctx, off, len, n](fault::Status st) {
        // A failed span caches nothing: the sectors never produced data.
        if (cache_.enabled() && fault::ok(st)) cache_.insert(ctx->req.file, off, len);
        // One decrement per coalesced run keeps the fan-in count identical
        // to the uncoalesced layout.
        for (std::uint64_t i = 0; i < n; ++i) ctx->complete_one(st);
      };
      tail_runs = 0;
    };
    batch.reserve(ctx->req.runs.size());
    for (const ServerRun& run : ctx->req.runs) {
      // Page cache: resident reads skip the disk entirely; misses may be
      // extended by a read-ahead window when they continue a sequential
      // stream. Writes go through to the disk and populate the cache.
      std::uint64_t length = run.length;
      if (!ctx->req.is_write && cache_.enabled()) {
        if (cache_.covers(ctx->req.file, run.local_offset, run.length)) {
          cache_.note_hit();
          ctx->complete_one();
          continue;
        }
        cache_.note_miss();
        const std::uint64_t extent_bytes = extent.sectors * disk::kSectorBytes;
        std::uint64_t ra = cache_.readahead_hint(ctx->req.file, run.local_offset,
                                                 run.length);
        if (run.local_offset + length + ra > extent_bytes)
          ra = extent_bytes > run.local_offset + length
                   ? extent_bytes - run.local_offset - length
                   : 0;
        length += ra;
      }
      if (!ctx->req.is_write) disk_bytes_read_ += length;
      const std::uint64_t lba = extent.base_lba + run.local_offset / disk::kSectorBytes;
      const std::uint64_t sectors = disk::bytes_to_sectors(length);
      if (lba + sectors > extent.base_lba + extent.sectors + 8)
        throw std::runtime_error("DataServer::handle: run beyond extent");
      if (tail_runs > 0 && batch.back().lba + batch.back().sectors == lba &&
          tail_end == run.local_offset) {
        // Contiguous with the previous miss: grow that disk request in place.
        batch.back().sectors += static_cast<std::uint32_t>(sectors);
        tail_end = run.local_offset + length;
        ++tail_runs;
        continue;
      }
      seal_tail();
      disk::Request dr;
      dr.id = next_req_id_++;
      dr.lba = lba;
      dr.sectors = static_cast<std::uint32_t>(sectors);
      dr.is_write = ctx->req.is_write;
      dr.context = params_.single_disk_context ? 0 : ctx->req.context;
      batch.push_back(std::move(dr));
      tail_offset = run.local_offset;
      tail_end = run.local_offset + length;
      tail_runs = 1;
    }
    seal_tail();
    if (!batch.empty()) dev_->submit_batch(std::move(batch));
    ctx->complete_one();
  });
}

}  // namespace dpar::pfs
