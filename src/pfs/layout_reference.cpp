// The pre-closed-form striping decomposition, frozen verbatim as a
// differential oracle (the same pattern as the retained multimap schedulers
// in sched_reference.cpp). It walks one loop iteration per stripe chunk —
// O(bytes / unit_bytes) per segment — which the closed form in layout.cpp
// replaced; tests compare the two over randomized layouts, and benches flip
// StripeLayout::reference_decompose to measure the pre-change code path.
#include "pfs/layout.hpp"

namespace dpar::pfs {

void decompose_segment_reference(const StripeLayout& layout, const Segment& seg,
                                 std::vector<std::vector<ServerRun>>& per_server) {
  per_server.resize(layout.num_servers);
  std::uint64_t off = seg.offset;
  std::uint64_t remaining = seg.length;
  while (remaining > 0) {
    const std::uint64_t within = off % layout.unit_bytes;
    const std::uint64_t take = std::min(remaining, layout.unit_bytes - within);
    const std::uint32_t server = layout.server_of(off);
    const std::uint64_t local = layout.server_local_offset(off);
    auto& runs = per_server[server];
    if (!runs.empty() && runs.back().local_offset + runs.back().length == local) {
      runs.back().length += take;
    } else {
      runs.push_back(ServerRun{local, take});
    }
    off += take;
    remaining -= take;
  }
}

}  // namespace dpar::pfs
