// Deterministic, seed-driven fault plans.
//
// A FaultPlan describes everything that can go wrong in one simulated run:
// disk media errors and latent bad sectors, data-server crash/restart
// schedules, network message loss/delay and transient partitions, and the
// client-side retry policy that turns those raw faults into end-to-end
// Status values. Probabilistic faults draw from per-layer RNG streams seeded
// from `seed`, so a given (seed, plan) reproduces the same fault sequence
// byte-for-byte on every run and at any DPAR_JOBS. A default-constructed plan
// is inert (enabled() == false) and the whole stack takes the exact same code
// path as before the fault subsystem existed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace dpar::fault {

/// Index value meaning "every data server" in per-server fault entries.
inline constexpr std::uint32_t kAllServers = UINT32_MAX;

/// Sentinel restart time for a crash the server never comes back from (a
/// fail-stop failure). Clients surface Status::kPermanentFailure once their
/// retry budget is exhausted against such a server, and the re-replication
/// manager treats its copies as unrecoverable instead of waiting.
inline constexpr sim::Time kNeverRestarts = INT64_MAX;

struct DiskFaults {
  /// Probability that a dispatched request fails with a media error.
  double media_error_rate = 0.0;
  /// Probability that a dispatched request stalls (drive-internal retries,
  /// thermal recalibration) for `stall_time` on top of its service time.
  double stall_rate = 0.0;
  sim::Time stall_time = sim::msec(40);

  /// A latent bad-sector range: any request overlapping it fails with a
  /// media error, deterministically, on every attempt.
  struct BadRange {
    std::uint32_t server = kAllServers;  ///< owning data server, or all
    std::uint64_t lba = 0;
    std::uint64_t sectors = 0;
  };
  std::vector<BadRange> bad_sectors;
};

struct NetFaults {
  /// Probability that a remote message vanishes in the fabric (after
  /// occupying the sender's TX path). Loopback messages never drop.
  double drop_rate = 0.0;
  /// Probability that a remote message is delayed by `delay_time` extra.
  double delay_rate = 0.0;
  sim::Time delay_time = sim::msec(5);

  /// Transient partition: messages between the two nodes (either direction)
  /// are dropped during [start, end).
  struct Partition {
    std::uint32_t node_a = 0;
    std::uint32_t node_b = 0;
    sim::Time start = 0;
    sim::Time end = 0;
  };
  std::vector<Partition> partitions;
};

struct ServerFaults {
  /// Crash/restart event: the server refuses new requests and loses its
  /// queued work (accepted-but-unreplied requests never answer) during
  /// [at, restart_at). restart_at == kNeverRestarts marks a fail-stop crash:
  /// no restart event is ever scheduled and the server stays down forever.
  struct Crash {
    std::uint32_t server = 0;
    sim::Time at = 0;
    sim::Time restart_at = 0;
  };
  std::vector<Crash> crashes;

  /// Probability that request handling stalls for `stall_time` extra CPU.
  double stall_rate = 0.0;
  sim::Time stall_time = sim::msec(20);
};

/// Client-side per-request timeout + capped exponential backoff. Only armed
/// when fault injection is enabled; the fault-free fast path never schedules
/// timeout events.
struct RetryPolicy {
  /// Base patience for a request, before the size-dependent term.
  sim::Time timeout_base = sim::msec(100);
  /// The timeout grows with the request's payload: bytes / this bandwidth
  /// floor is added to timeout_base, so multi-megabyte CRM batches are not
  /// declared dead while legitimately streaming.
  double timeout_min_bandwidth = 20e6;  ///< bytes/s
  std::uint32_t max_retries = 6;
  /// Backoff before retry k (1-based): backoff_base * backoff_factor^(k-1),
  /// capped at backoff_max.
  sim::Time backoff_base = sim::msec(50);
  double backoff_factor = 2.0;
  sim::Time backoff_max = sim::secs(2);
};

struct FaultPlan {
  std::uint64_t seed = 0xfa017;
  DiskFaults disk;
  NetFaults net;
  ServerFaults server;
  RetryPolicy retry;

  /// True when the plan can produce any fault at all. A disabled plan keeps
  /// the whole stack on the pre-fault fast path (no hooks, no timeout
  /// events, byte-identical simulation output).
  bool enabled() const;

  /// Reject malformed plans loudly (negative rates, probabilities > 1, zero
  /// timeouts, crash windows ending before they start, ...). Permanent
  /// crashes are expressed with restart_at == kNeverRestarts, not with an
  /// inverted window. Throws std::invalid_argument.
  void validate() const;
};

}  // namespace dpar::fault
