#include "fault/plan.hpp"

#include <stdexcept>
#include <string>

namespace dpar::fault {

namespace {

void check_probability(double p, const char* what) {
  if (p < 0.0 || p > 1.0 || p != p)
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be a probability in [0, 1], got " +
                                std::to_string(p));
}

void check_nonnegative(sim::Time t, const char* what) {
  if (t < 0)
    throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                " must be >= 0");
}

}  // namespace

bool FaultPlan::enabled() const {
  return disk.media_error_rate > 0.0 || disk.stall_rate > 0.0 ||
         !disk.bad_sectors.empty() || net.drop_rate > 0.0 ||
         net.delay_rate > 0.0 || !net.partitions.empty() ||
         !server.crashes.empty() || server.stall_rate > 0.0;
}

void FaultPlan::validate() const {
  check_probability(disk.media_error_rate, "disk.media_error_rate");
  check_probability(disk.stall_rate, "disk.stall_rate");
  check_nonnegative(disk.stall_time, "disk.stall_time");
  for (const auto& b : disk.bad_sectors)
    if (b.sectors == 0)
      throw std::invalid_argument("FaultPlan: bad-sector range with zero sectors");

  check_probability(net.drop_rate, "net.drop_rate");
  check_probability(net.delay_rate, "net.delay_rate");
  check_nonnegative(net.delay_time, "net.delay_time");
  for (const auto& p : net.partitions) {
    if (p.end <= p.start)
      throw std::invalid_argument("FaultPlan: partition window is empty");
    if (p.node_a == p.node_b)
      throw std::invalid_argument("FaultPlan: partition of a node with itself");
  }

  check_probability(server.stall_rate, "server.stall_rate");
  check_nonnegative(server.stall_time, "server.stall_time");
  for (const auto& c : server.crashes) {
    if (c.at < 0)
      throw std::invalid_argument("FaultPlan: crash time must be >= 0");
    if (c.restart_at <= c.at)
      throw std::invalid_argument(
          "FaultPlan: crash must restart after it happens (restart_at > at; "
          "use kNeverRestarts for a fail-stop crash)");
    if (c.server == kAllServers)
      throw std::invalid_argument("FaultPlan: crash needs a concrete server index");
  }

  if (!enabled()) return;
  // The retry policy only matters when faults can happen, but when they can
  // it must be able to make progress.
  if (retry.timeout_base <= 0)
    throw std::invalid_argument("FaultPlan: retry.timeout_base must be > 0");
  if (retry.timeout_min_bandwidth <= 0.0)
    throw std::invalid_argument("FaultPlan: retry.timeout_min_bandwidth must be > 0");
  if (retry.backoff_base < 0)
    throw std::invalid_argument("FaultPlan: retry.backoff_base must be >= 0");
  if (retry.backoff_factor < 1.0)
    throw std::invalid_argument("FaultPlan: retry.backoff_factor must be >= 1");
  if (retry.backoff_max <= 0)
    throw std::invalid_argument("FaultPlan: retry.backoff_max must be > 0");
}

}  // namespace dpar::fault
