#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dpar::fault {

FaultInjector::FaultInjector(sim::Engine& eng, FaultPlan plan,
                             std::uint32_t num_servers)
    : eng_(eng),
      plan_(std::move(plan)),
      disk_rng_(sim::splitmix64(plan_.seed ^ 0xd15c0000u)),
      net_rng_(sim::splitmix64(plan_.seed ^ 0x0e70000u)),
      server_rng_(sim::splitmix64(plan_.seed ^ 0x5e77e000u)),
      down_(num_servers, false) {
  plan_.validate();
  for (const auto& c : plan_.server.crashes)
    if (c.server >= num_servers)
      throw std::invalid_argument("FaultPlan: crash names a server that does not exist");
  for (const auto& b : plan_.disk.bad_sectors)
    if (b.server != kAllServers && b.server >= num_servers)
      throw std::invalid_argument(
          "FaultPlan: bad-sector range names a server that does not exist");
}

FaultInjector::DiskVerdict FaultInjector::disk_verdict(std::uint32_t server,
                                                       std::uint64_t lba,
                                                       std::uint32_t sectors) {
  DiskVerdict v;
  for (const auto& b : plan_.disk.bad_sectors) {
    if (b.server != kAllServers && b.server != server) continue;
    if (lba < b.lba + b.sectors && b.lba < lba + sectors) {
      ++counters_.disk_bad_sector_hits;
      ++counters_.disk_media_errors;
      v.status = Status::kMediaError;
      return v;
    }
  }
  if (plan_.disk.media_error_rate > 0.0 &&
      disk_rng_.chance(plan_.disk.media_error_rate)) {
    ++counters_.disk_media_errors;
    v.status = Status::kMediaError;
    return v;
  }
  if (plan_.disk.stall_rate > 0.0 && disk_rng_.chance(plan_.disk.stall_rate)) {
    ++counters_.disk_stalls;
    v.stall = plan_.disk.stall_time;
  }
  return v;
}

bool FaultInjector::net_deliver(std::uint32_t from, std::uint32_t to,
                                sim::Time now, sim::Time& extra_delay) {
  extra_delay = 0;
  for (const auto& p : plan_.net.partitions) {
    const bool pair = (p.node_a == from && p.node_b == to) ||
                      (p.node_a == to && p.node_b == from);
    if (pair && now >= p.start && now < p.end) {
      ++counters_.net_partition_drops;
      ++counters_.net_dropped;
      return false;
    }
  }
  if (plan_.net.drop_rate > 0.0 && net_rng_.chance(plan_.net.drop_rate)) {
    ++counters_.net_dropped;
    return false;
  }
  if (plan_.net.delay_rate > 0.0 && net_rng_.chance(plan_.net.delay_rate)) {
    ++counters_.net_delayed;
    extra_delay = plan_.net.delay_time;
  }
  return true;
}

sim::Time FaultInjector::server_stall() {
  if (plan_.server.stall_rate > 0.0 &&
      server_rng_.chance(plan_.server.stall_rate)) {
    ++counters_.server_stalls;
    return plan_.server.stall_time;
  }
  return 0;
}

void FaultInjector::note_server_state(std::uint32_t server, bool down) {
  if (server >= down_.size() || down_[server] == down) return;
  down_[server] = down;
  if (down) {
    ++servers_down_;
    ++counters_.server_crashes;
  } else {
    --servers_down_;
    ++counters_.server_restarts;
  }
  for (const auto& l : listeners_) l(server, down);
}

sim::Time FaultInjector::request_timeout(std::uint64_t bytes) const {
  return plan_.retry.timeout_base +
         sim::transfer_time(bytes, plan_.retry.timeout_min_bandwidth);
}

sim::Time FaultInjector::backoff(std::uint32_t attempt) const {
  double b = static_cast<double>(plan_.retry.backoff_base);
  for (std::uint32_t i = 1; i < attempt; ++i) b *= plan_.retry.backoff_factor;
  b = std::min(b, static_cast<double>(plan_.retry.backoff_max));
  return static_cast<sim::Time>(b);
}

}  // namespace dpar::fault
