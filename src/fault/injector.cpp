#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/engine.hpp"

namespace dpar::fault {

namespace {
// Layer tags folded into the plan seed; each (layer, locality) stream gets
// splitmix64(seed ^ (tag + index)) so enabling faults in one layer — or
// adding a server/node — never perturbs another stream's sequence.
constexpr std::uint64_t kDiskTag = 0xd15c0000u;
constexpr std::uint64_t kNetTag = 0x0e70000u;
constexpr std::uint64_t kServerTag = 0x5e77e000u;

std::vector<sim::Rng> make_streams(std::uint64_t seed, std::uint64_t tag,
                                   std::uint32_t n) {
  std::vector<sim::Rng> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i)
    out.emplace_back(sim::splitmix64(seed ^ (tag + i)));
  return out;
}
}  // namespace

FaultInjector::FaultInjector(sim::Engine& eng, FaultPlan plan,
                             std::uint32_t num_servers, std::uint32_t num_nodes)
    : eng_(eng),
      plan_(std::move(plan)),
      shards_(1),
      disk_rngs_(make_streams(plan_.seed, kDiskTag, num_servers)),
      server_rngs_(make_streams(plan_.seed, kServerTag, num_servers)),
      net_rngs_(make_streams(plan_.seed, kNetTag,
                             num_nodes > 0 ? num_nodes : num_servers)),
      down_(num_servers, false) {
  plan_.validate();
  for (const auto& c : plan_.server.crashes)
    if (c.server >= num_servers)
      throw std::invalid_argument("FaultPlan: crash names a server that does not exist");
  for (const auto& b : plan_.disk.bad_sectors)
    if (b.server != kAllServers && b.server >= num_servers)
      throw std::invalid_argument(
          "FaultPlan: bad-sector range names a server that does not exist");
}

Counters& FaultInjector::counters() {
  const sim::LaneId l = eng_.current_lane();
  return shards_[l < shards_.size() ? l : 0];
}

void FaultInjector::set_lane_count(std::uint32_t lanes) {
  if (lanes > shards_.size()) shards_.resize(lanes);
}

Counters FaultInjector::total() const {
  Counters t;
  for (const Counters& c : shards_) {
    t.disk_media_errors += c.disk_media_errors;
    t.disk_bad_sector_hits += c.disk_bad_sector_hits;
    t.disk_stalls += c.disk_stalls;
    t.net_dropped += c.net_dropped;
    t.net_partition_drops += c.net_partition_drops;
    t.net_delayed += c.net_delayed;
    t.server_crashes += c.server_crashes;
    t.server_restarts += c.server_restarts;
    t.server_refused_requests += c.server_refused_requests;
    t.server_lost_completions += c.server_lost_completions;
    t.server_stalls += c.server_stalls;
    t.client_ops_started += c.client_ops_started;
    t.client_ops_finished += c.client_ops_finished;
    t.client_timeouts += c.client_timeouts;
    t.client_retries += c.client_retries;
    t.client_recoveries += c.client_recoveries;
    t.client_failures += c.client_failures;
    t.client_permanent_failures += c.client_permanent_failures;
    t.client_stale_replies += c.client_stale_replies;
    t.driver_io_errors += c.driver_io_errors;
    t.dualpar_aborted_batches += c.dualpar_aborted_batches;
    t.cache_invalidated_bytes += c.cache_invalidated_bytes;
    t.emc_degraded_entries += c.emc_degraded_entries;
    t.emc_degraded_exits += c.emc_degraded_exits;
  }
  return t;
}

FaultInjector::DiskVerdict FaultInjector::disk_verdict(std::uint32_t server,
                                                       std::uint64_t lba,
                                                       std::uint32_t sectors) {
  DiskVerdict v;
  for (const auto& b : plan_.disk.bad_sectors) {
    if (b.server != kAllServers && b.server != server) continue;
    if (lba < b.lba + b.sectors && b.lba < lba + sectors) {
      ++counters().disk_bad_sector_hits;
      ++counters().disk_media_errors;
      v.status = Status::kMediaError;
      return v;
    }
  }
  sim::Rng& rng = disk_rngs_[server];
  if (plan_.disk.media_error_rate > 0.0 && rng.chance(plan_.disk.media_error_rate)) {
    ++counters().disk_media_errors;
    v.status = Status::kMediaError;
    return v;
  }
  if (plan_.disk.stall_rate > 0.0 && rng.chance(plan_.disk.stall_rate)) {
    ++counters().disk_stalls;
    v.stall = plan_.disk.stall_time;
  }
  return v;
}

bool FaultInjector::net_deliver(std::uint32_t from, std::uint32_t to,
                                sim::Time now, sim::Time& extra_delay) {
  extra_delay = 0;
  for (const auto& p : plan_.net.partitions) {
    const bool pair = (p.node_a == from && p.node_b == to) ||
                      (p.node_a == to && p.node_b == from);
    if (pair && now >= p.start && now < p.end) {
      ++counters().net_partition_drops;
      ++counters().net_dropped;
      return false;
    }
  }
  sim::Rng& rng = net_rngs_[from < net_rngs_.size() ? from : 0];
  if (plan_.net.drop_rate > 0.0 && rng.chance(plan_.net.drop_rate)) {
    ++counters().net_dropped;
    return false;
  }
  if (plan_.net.delay_rate > 0.0 && rng.chance(plan_.net.delay_rate)) {
    ++counters().net_delayed;
    extra_delay = plan_.net.delay_time;
  }
  return true;
}

sim::Time FaultInjector::server_stall(std::uint32_t server) {
  if (plan_.server.stall_rate > 0.0 &&
      server_rngs_[server].chance(plan_.server.stall_rate)) {
    ++counters().server_stalls;
    return plan_.server.stall_time;
  }
  return 0;
}

bool FaultInjector::permanently_down(std::uint32_t server, sim::Time now) const {
  if (!server_down(server)) return false;
  // Down right now; still recoverable only if some plan entry restarts this
  // server strictly after `now`. The crash list is tiny (hand-written plans),
  // so a linear scan beats carrying extra state.
  for (const auto& c : plan_.server.crashes)
    if (c.server == server && c.restart_at != kNeverRestarts &&
        c.restart_at > now)
      return false;
  return true;
}

void FaultInjector::note_server_state(std::uint32_t server, bool down) {
  if (server >= down_.size() || down_[server] == down) return;
  down_[server] = down;
  if (down) {
    ++servers_down_;
    ++counters().server_crashes;
  } else {
    --servers_down_;
    ++counters().server_restarts;
  }
  for (const auto& l : listeners_) l(server, down);
}

sim::Time FaultInjector::request_timeout(std::uint64_t bytes) const {
  return plan_.retry.timeout_base +
         sim::transfer_time(bytes, plan_.retry.timeout_min_bandwidth);
}

sim::Time FaultInjector::backoff(std::uint32_t attempt) const {
  double b = static_cast<double>(plan_.retry.backoff_base);
  for (std::uint32_t i = 1; i < attempt; ++i) b *= plan_.retry.backoff_factor;
  b = std::min(b, static_cast<double>(plan_.retry.backoff_max));
  return static_cast<sim::Time>(b);
}

}  // namespace dpar::fault
