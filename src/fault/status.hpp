// Failure semantics of the I/O stack.
//
// Every completion callback below the MPI-IO layer carries a Status: the disk
// reports media errors, the data server reports crash-lost work, and the PFS
// client adds timeouts for requests whose replies never arrive (dropped
// messages, crashed servers). kOk is the only value ever seen when fault
// injection is disabled, and the enum is ordered by severity so fan-in paths
// can combine branch outcomes with a max.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

namespace dpar::fault {

enum class Status : std::uint8_t {
  kOk = 0,
  kMediaError = 1,  ///< disk-level unrecoverable sector error
  kTimeout = 2,     ///< no reply within the retry budget
  kServerDown = 3,  ///< request refused or lost by a crashed data server
  /// Retries exhausted against a server whose crash never restarts (a plan
  /// entry with restart_at == kNeverRestarts): the target is gone, not slow.
  /// Callers — and the re-replication manager — treat this as terminal and
  /// stop waiting for a recovery that cannot come.
  kPermanentFailure = 4,
};

constexpr const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kMediaError: return "media-error";
    case Status::kTimeout: return "timeout";
    case Status::kServerDown: return "server-down";
    case Status::kPermanentFailure: return "permanent-failure";
  }
  return "?";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

/// Worst of two outcomes (severity order of the enum values).
constexpr Status combine(Status a, Status b) { return a < b ? b : a; }

/// Fan-in over N branches that each complete with a Status; the continuation
/// receives the worst branch outcome. Same ownership contract as
/// sim::FanInT: exactly n complete() calls, the block frees itself on the
/// last one, and the continuation may re-enter or deallocate freely.
template <class F>
class StatusFanIn {
 public:
  StatusFanIn(std::size_t n, F f) : remaining_(n), done_(std::move(f)) {}

  void complete(Status s) {
    status_ = combine(status_, s);
    if (--remaining_ == 0) {
      F d = std::move(done_);
      const Status st = status_;
      delete this;
      d(st);
    }
  }

 private:
  std::size_t remaining_;
  Status status_ = Status::kOk;
  F done_;
};

/// Heap-allocate a status fan-in of `n` branches completing into `f`.
/// n == 0 runs `f(kOk)` immediately and returns nullptr.
template <class F>
StatusFanIn<F>* make_status_fanin(std::size_t n, F f) {
  if (n == 0) {
    f(Status::kOk);
    return nullptr;
  }
  return new StatusFanIn<F>(n, std::move(f));
}

}  // namespace dpar::fault
