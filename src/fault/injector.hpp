// Fault injector: the one place a simulated run decides what goes wrong.
//
// The Testbed creates one injector per run when its FaultPlan is enabled and
// hands a pointer to every layer; a null injector pointer is the contract for
// "fault-free" and keeps each layer on its original fast path. Probabilistic
// decisions draw from one RNG stream per (layer, locality) — per-server disk
// and server streams, per-sender-node network streams — all derived from the
// plan seed with splitmix64. Each stream is consumed from exactly one PDES
// lane in that lane's deterministic event order, so the whole fault history
// is a pure function of (seed, plan) at every DPAR_PDES_WORKERS value,
// including the unpartitioned engine.
//
// The injector is also the run's fault ledger: every layer bumps Counters.
// The ledger is sharded per lane (counters() returns the calling lane's
// shard; total() folds the shards), so concurrent lanes never contend.
// Server up/down transitions fan out to registered listeners (EMC
// degradation, cache invalidation) from here; they must run on the
// exclusive lane, which sees every lane quiescent.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fault/plan.hpp"
#include "fault/status.hpp"
#include "sim/lane_annotations.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace dpar::sim {
class Engine;
}

namespace dpar::fault {

/// Fault/retry/recovery counters, one block per run, grouped by layer.
struct Counters {
  // disk
  std::uint64_t disk_media_errors = 0;
  std::uint64_t disk_bad_sector_hits = 0;
  std::uint64_t disk_stalls = 0;
  // net
  std::uint64_t net_dropped = 0;
  std::uint64_t net_partition_drops = 0;
  std::uint64_t net_delayed = 0;
  // server
  std::uint64_t server_crashes = 0;
  std::uint64_t server_restarts = 0;
  std::uint64_t server_refused_requests = 0;   ///< arrived while down
  std::uint64_t server_lost_completions = 0;   ///< queued work lost by a crash
  std::uint64_t server_stalls = 0;
  // pfs client
  std::uint64_t client_ops_started = 0;
  std::uint64_t client_ops_finished = 0;
  std::uint64_t client_timeouts = 0;
  std::uint64_t client_retries = 0;
  std::uint64_t client_recoveries = 0;  ///< server requests that succeeded after a retry
  std::uint64_t client_failures = 0;    ///< server requests that exhausted retries
  std::uint64_t client_permanent_failures = 0;  ///< ... against a fail-stop server
  std::uint64_t client_stale_replies = 0;
  // MPI-IO drivers / DualPar degraded mode
  std::uint64_t driver_io_errors = 0;
  std::uint64_t dualpar_aborted_batches = 0;
  std::uint64_t cache_invalidated_bytes = 0;
  std::uint64_t emc_degraded_entries = 0;
  std::uint64_t emc_degraded_exits = 0;
};

class FaultInjector {
 public:
  /// Validates the plan (std::invalid_argument on a malformed one).
  /// `num_servers` bounds crash entries and sizes the down-state table and
  /// the per-server RNG streams; `num_nodes` sizes the per-sender network
  /// streams (0 falls back to `num_servers`, enough for server-only tests).
  FaultInjector(sim::Engine& eng, FaultPlan plan, std::uint32_t num_servers,
                std::uint32_t num_nodes = 0);

  const FaultPlan& plan() const { return plan_; }

  /// The calling lane's counter shard. Hot bump sites use this; aggregate
  /// readers must use total() — there is deliberately no const overload, so
  /// a read through a const injector fails to compile instead of silently
  /// seeing one shard.
  Counters& counters();
  /// Sum of every lane's shard — the run's complete ledger.
  Counters total() const;
  /// Size the shard table for a partitioned engine (one shard per lane).
  /// Counts already recorded stay in shard 0. Called at testbed finalize.
  void set_lane_count(std::uint32_t lanes);

  // ---- Disk hooks (DiskDevice dispatch path) ----
  struct DiskVerdict {
    Status status = Status::kOk;
    sim::Time stall = 0;  ///< added to the request's service time
  };
  DiskVerdict disk_verdict(std::uint32_t server, std::uint64_t lba,
                           std::uint32_t sectors);

  // ---- Network hooks (Network::send, remote messages only) ----
  /// False: the message is dropped (its callback must be destroyed unfired).
  /// True: deliver, with `extra_delay` added to the switch hop.
  bool net_deliver(std::uint32_t from, std::uint32_t to, sim::Time now,
                   sim::Time& extra_delay);

  // ---- Data-server hooks ----
  /// Extra service CPU for one request of `server` (0 most of the time).
  sim::Time server_stall(std::uint32_t server);
  /// Called by DataServer::crash()/restart(); fans out to listeners.
  /// Crash/restart events are pinned to the exclusive lane, so the fan-out
  /// (and every listener) runs with all lanes quiescent.
  DPAR_EXCLUSIVE_LANE void note_server_state(std::uint32_t server, bool down);
  bool server_down(std::uint32_t server) const {
    return server < down_.size() && down_[server];
  }
  /// Down with no restart still ahead of `now` in the plan: the server is
  /// gone for good (fail-stop crash, restart_at == kNeverRestarts) rather
  /// than mid-window. Clients report kPermanentFailure instead of kTimeout
  /// once retries exhaust, and the repair manager skips it as a copy source.
  bool permanently_down(std::uint32_t server, sim::Time now) const;
  std::uint32_t servers_down() const { return servers_down_; }

  /// Listener for server up/down transitions (EMC degradation, cache
  /// invalidation). Registered once at testbed assembly; called in
  /// registration order.
  using ServerStateListener = std::function<void(std::uint32_t server, bool down)>;
  DPAR_EXCLUSIVE_LANE void add_server_listener(ServerStateListener l) {
    listeners_.push_back(std::move(l));
  }

  // ---- Client retry policy ----
  /// Patience for one server request carrying `bytes` of payload.
  sim::Time request_timeout(std::uint64_t bytes) const;
  /// Backoff before retry `attempt` (1-based), capped.
  sim::Time backoff(std::uint32_t attempt) const;
  std::uint32_t max_retries() const { return plan_.retry.max_retries; }

 private:
  sim::Engine& eng_;
  FaultPlan plan_;
  /// Per-lane counter shards; shards_[0] doubles as the unpartitioned shard.
  DPAR_LANE_SAFE std::vector<Counters> shards_;
  /// Per-server streams, consumed from the server's lane only.
  DPAR_LANE_SAFE std::vector<sim::Rng> disk_rngs_;
  DPAR_LANE_SAFE std::vector<sim::Rng> server_rngs_;
  /// Per-sender-node streams, consumed from the sender's lane only.
  DPAR_LANE_SAFE std::vector<sim::Rng> net_rngs_;
  // Server up/down state: flipped only by the exclusive-lane crash/restart
  // events (read freely — every lane sees a quiescent-consistent value).
  DPAR_EXCLUSIVE_LANE std::vector<bool> down_;
  DPAR_EXCLUSIVE_LANE std::uint32_t servers_down_ = 0;
  DPAR_EXCLUSIVE_LANE std::vector<ServerStateListener> listeners_;
};

}  // namespace dpar::fault
