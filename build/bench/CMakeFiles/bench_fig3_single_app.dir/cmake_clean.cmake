file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_single_app.dir/bench_fig3_single_app.cpp.o"
  "CMakeFiles/bench_fig3_single_app.dir/bench_fig3_single_app.cpp.o.d"
  "CMakeFiles/bench_fig3_single_app.dir/harness.cpp.o"
  "CMakeFiles/bench_fig3_single_app.dir/harness.cpp.o.d"
  "bench_fig3_single_app"
  "bench_fig3_single_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_single_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
