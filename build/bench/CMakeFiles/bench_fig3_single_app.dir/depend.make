# Empty dependencies file for bench_fig3_single_app.
# This may be replaced when dependencies are built.
