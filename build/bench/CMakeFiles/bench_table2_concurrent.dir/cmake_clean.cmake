file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_concurrent.dir/bench_table2_concurrent.cpp.o"
  "CMakeFiles/bench_table2_concurrent.dir/bench_table2_concurrent.cpp.o.d"
  "CMakeFiles/bench_table2_concurrent.dir/harness.cpp.o"
  "CMakeFiles/bench_table2_concurrent.dir/harness.cpp.o.d"
  "bench_table2_concurrent"
  "bench_table2_concurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
