# Empty compiler generated dependencies file for bench_fig4_btio_scaling.
# This may be replaced when dependencies are built.
