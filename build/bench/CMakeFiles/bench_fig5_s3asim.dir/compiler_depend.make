# Empty compiler generated dependencies file for bench_fig5_s3asim.
# This may be replaced when dependencies are built.
