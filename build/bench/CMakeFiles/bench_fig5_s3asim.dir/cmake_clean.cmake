file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_s3asim.dir/bench_fig5_s3asim.cpp.o"
  "CMakeFiles/bench_fig5_s3asim.dir/bench_fig5_s3asim.cpp.o.d"
  "CMakeFiles/bench_fig5_s3asim.dir/harness.cpp.o"
  "CMakeFiles/bench_fig5_s3asim.dir/harness.cpp.o.d"
  "bench_fig5_s3asim"
  "bench_fig5_s3asim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_s3asim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
