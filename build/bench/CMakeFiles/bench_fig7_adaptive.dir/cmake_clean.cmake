file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_adaptive.dir/bench_fig7_adaptive.cpp.o"
  "CMakeFiles/bench_fig7_adaptive.dir/bench_fig7_adaptive.cpp.o.d"
  "CMakeFiles/bench_fig7_adaptive.dir/harness.cpp.o"
  "CMakeFiles/bench_fig7_adaptive.dir/harness.cpp.o.d"
  "bench_fig7_adaptive"
  "bench_fig7_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
