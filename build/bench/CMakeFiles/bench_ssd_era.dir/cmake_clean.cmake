file(REMOVE_RECURSE
  "CMakeFiles/bench_ssd_era.dir/bench_ssd_era.cpp.o"
  "CMakeFiles/bench_ssd_era.dir/bench_ssd_era.cpp.o.d"
  "CMakeFiles/bench_ssd_era.dir/harness.cpp.o"
  "CMakeFiles/bench_ssd_era.dir/harness.cpp.o.d"
  "bench_ssd_era"
  "bench_ssd_era.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ssd_era.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
