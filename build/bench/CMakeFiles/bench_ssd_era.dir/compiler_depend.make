# Empty compiler generated dependencies file for bench_ssd_era.
# This may be replaced when dependencies are built.
