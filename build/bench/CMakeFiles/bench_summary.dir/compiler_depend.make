# Empty compiler generated dependencies file for bench_summary.
# This may be replaced when dependencies are built.
