
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/global_cache.cpp" "src/CMakeFiles/dpar.dir/cache/global_cache.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/cache/global_cache.cpp.o.d"
  "/root/repo/src/cache/rangeset.cpp" "src/CMakeFiles/dpar.dir/cache/rangeset.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/cache/rangeset.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/dpar.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/cluster/node.cpp.o.d"
  "/root/repo/src/disk/device.cpp" "src/CMakeFiles/dpar.dir/disk/device.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/disk/device.cpp.o.d"
  "/root/repo/src/disk/sched_anticipatory.cpp" "src/CMakeFiles/dpar.dir/disk/sched_anticipatory.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/disk/sched_anticipatory.cpp.o.d"
  "/root/repo/src/disk/sched_cfq.cpp" "src/CMakeFiles/dpar.dir/disk/sched_cfq.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/disk/sched_cfq.cpp.o.d"
  "/root/repo/src/disk/sched_simple.cpp" "src/CMakeFiles/dpar.dir/disk/sched_simple.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/disk/sched_simple.cpp.o.d"
  "/root/repo/src/dualpar/crm.cpp" "src/CMakeFiles/dpar.dir/dualpar/crm.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/dualpar/crm.cpp.o.d"
  "/root/repo/src/dualpar/driver.cpp" "src/CMakeFiles/dpar.dir/dualpar/driver.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/dualpar/driver.cpp.o.d"
  "/root/repo/src/dualpar/emc.cpp" "src/CMakeFiles/dpar.dir/dualpar/emc.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/dualpar/emc.cpp.o.d"
  "/root/repo/src/dualpar/ghost.cpp" "src/CMakeFiles/dpar.dir/dualpar/ghost.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/dualpar/ghost.cpp.o.d"
  "/root/repo/src/dualpar/preexec.cpp" "src/CMakeFiles/dpar.dir/dualpar/preexec.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/dualpar/preexec.cpp.o.d"
  "/root/repo/src/harness/testbed.cpp" "src/CMakeFiles/dpar.dir/harness/testbed.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/harness/testbed.cpp.o.d"
  "/root/repo/src/metrics/csv.cpp" "src/CMakeFiles/dpar.dir/metrics/csv.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/metrics/csv.cpp.o.d"
  "/root/repo/src/metrics/monitor.cpp" "src/CMakeFiles/dpar.dir/metrics/monitor.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/metrics/monitor.cpp.o.d"
  "/root/repo/src/mpi/job.cpp" "src/CMakeFiles/dpar.dir/mpi/job.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/mpi/job.cpp.o.d"
  "/root/repo/src/mpiio/collective.cpp" "src/CMakeFiles/dpar.dir/mpiio/collective.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/mpiio/collective.cpp.o.d"
  "/root/repo/src/mpiio/vanilla.cpp" "src/CMakeFiles/dpar.dir/mpiio/vanilla.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/mpiio/vanilla.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/dpar.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/net/network.cpp.o.d"
  "/root/repo/src/pfs/file_system.cpp" "src/CMakeFiles/dpar.dir/pfs/file_system.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/pfs/file_system.cpp.o.d"
  "/root/repo/src/pfs/layout.cpp" "src/CMakeFiles/dpar.dir/pfs/layout.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/pfs/layout.cpp.o.d"
  "/root/repo/src/pfs/server.cpp" "src/CMakeFiles/dpar.dir/pfs/server.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/pfs/server.cpp.o.d"
  "/root/repo/src/pfs/server_cache.cpp" "src/CMakeFiles/dpar.dir/pfs/server_cache.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/pfs/server_cache.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/dpar.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/sim/engine.cpp.o.d"
  "/root/repo/src/wl/analyze.cpp" "src/CMakeFiles/dpar.dir/wl/analyze.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/wl/analyze.cpp.o.d"
  "/root/repo/src/wl/trace_replay.cpp" "src/CMakeFiles/dpar.dir/wl/trace_replay.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/wl/trace_replay.cpp.o.d"
  "/root/repo/src/wl/workloads.cpp" "src/CMakeFiles/dpar.dir/wl/workloads.cpp.o" "gcc" "src/CMakeFiles/dpar.dir/wl/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
