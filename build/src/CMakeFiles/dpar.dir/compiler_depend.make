# Empty compiler generated dependencies file for dpar.
# This may be replaced when dependencies are built.
