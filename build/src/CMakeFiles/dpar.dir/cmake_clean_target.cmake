file(REMOVE_RECURSE
  "libdpar.a"
)
