# Empty compiler generated dependencies file for dpar_tests.
# This may be replaced when dependencies are built.
