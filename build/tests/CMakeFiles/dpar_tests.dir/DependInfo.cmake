
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analyze.cpp" "tests/CMakeFiles/dpar_tests.dir/test_analyze.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_analyze.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/dpar_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_comm_and_replay.cpp" "tests/CMakeFiles/dpar_tests.dir/test_comm_and_replay.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_comm_and_replay.cpp.o.d"
  "/root/repo/tests/test_crm.cpp" "tests/CMakeFiles/dpar_tests.dir/test_crm.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_crm.cpp.o.d"
  "/root/repo/tests/test_disk.cpp" "tests/CMakeFiles/dpar_tests.dir/test_disk.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_disk.cpp.o.d"
  "/root/repo/tests/test_driver_details.cpp" "tests/CMakeFiles/dpar_tests.dir/test_driver_details.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_driver_details.cpp.o.d"
  "/root/repo/tests/test_dualpar.cpp" "tests/CMakeFiles/dpar_tests.dir/test_dualpar.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_dualpar.cpp.o.d"
  "/root/repo/tests/test_emc.cpp" "tests/CMakeFiles/dpar_tests.dir/test_emc.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_emc.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/dpar_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_figures.cpp" "tests/CMakeFiles/dpar_tests.dir/test_figures.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_figures.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/dpar_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_mpi.cpp" "tests/CMakeFiles/dpar_tests.dir/test_mpi.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_mpi.cpp.o.d"
  "/root/repo/tests/test_mpiio.cpp" "tests/CMakeFiles/dpar_tests.dir/test_mpiio.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_mpiio.cpp.o.d"
  "/root/repo/tests/test_net_cluster.cpp" "tests/CMakeFiles/dpar_tests.dir/test_net_cluster.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_net_cluster.cpp.o.d"
  "/root/repo/tests/test_pfs.cpp" "tests/CMakeFiles/dpar_tests.dir/test_pfs.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_pfs.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/dpar_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/dpar_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sched_edge.cpp" "tests/CMakeFiles/dpar_tests.dir/test_sched_edge.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_sched_edge.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/dpar_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_sweeps.cpp" "tests/CMakeFiles/dpar_tests.dir/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_sweeps.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/dpar_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/dpar_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dpar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
