# Empty dependencies file for analyze_workloads.
# This may be replaced when dependencies are built.
