file(REMOVE_RECURSE
  "CMakeFiles/analyze_workloads.dir/analyze_workloads.cpp.o"
  "CMakeFiles/analyze_workloads.dir/analyze_workloads.cpp.o.d"
  "analyze_workloads"
  "analyze_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analyze_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
