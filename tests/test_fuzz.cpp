// Randomized cross-checks against simple reference models: the global cache
// against a byte map, striping decomposition against brute force, the event
// engine under stress, and disk-model physics over parameter sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "cache/global_cache.hpp"
#include "disk/model.hpp"
#include "harness/testbed.hpp"
#include "net/network.hpp"
#include "pfs/layout.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

TEST(FuzzGlobalCache, MatchesByteMapModel) {
  sim::Engine eng;
  net::Network net(eng, 3);
  cache::GlobalCache cache(eng, net, {0, 1, 2},
                           cache::CacheParams{16 * 1024, sim::secs(1000), 0});
  sim::Rng rng(2024);
  // Reference model: byte -> {valid, dirty} for one file.
  std::map<std::uint64_t, std::pair<bool, bool>> model;
  const std::uint64_t space = 1 << 20;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t off = rng.uniform(space - 1);
    const std::uint64_t len = 1 + rng.uniform(40'000);
    const pfs::Segment seg{off, std::min(len, space - off)};
    switch (rng.uniform(3)) {
      case 0:
        cache.insert(7, seg, 1, false);
        for (std::uint64_t b = seg.offset; b < seg.end(); ++b) model[b].first = true;
        break;
      case 1:
        cache.write(7, seg, 1);
        for (std::uint64_t b = seg.offset; b < seg.end(); ++b)
          model[b] = {true, true};
        break;
      case 2:
        cache.clear_dirty(7, seg);
        for (std::uint64_t b = seg.offset; b < seg.end(); ++b)
          if (model.count(b)) model[b].second = false;
        break;
    }
    // Probe a few random ranges.
    for (int p = 0; p < 3; ++p) {
      const std::uint64_t po = rng.uniform(space - 100);
      const std::uint64_t pl = 1 + rng.uniform(99);
      bool model_covers = true;
      for (std::uint64_t b = po; b < po + pl; ++b)
        model_covers &= (model.count(b) && model[b].first);
      EXPECT_EQ(cache.covers(7, pfs::Segment{po, pl}), model_covers)
          << "step " << step << " probe [" << po << "," << po + pl << ")";
    }
  }
  // Dirty segments must exactly reproduce the model's dirty bytes.
  std::uint64_t model_dirty = 0;
  for (const auto& [b, vd] : model) model_dirty += vd.second;
  std::uint64_t cache_dirty = 0;
  for (const auto& seg : cache.dirty_segments(7)) cache_dirty += seg.length;
  EXPECT_EQ(cache_dirty, model_dirty);
}

TEST(FuzzLayout, DecomposeMatchesBruteForce) {
  sim::Rng rng(99);
  for (int round = 0; round < 60; ++round) {
    pfs::StripeLayout layout;
    layout.unit_bytes = 1024u << rng.uniform(7);  // 1K..64K
    layout.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform(12));
    const std::uint64_t off = rng.uniform(1 << 22);
    const std::uint64_t len = 1 + rng.uniform(1 << 20);
    std::vector<std::vector<pfs::ServerRun>> per_server;
    pfs::decompose_segment(layout, pfs::Segment{off, len}, per_server);

    // Brute force byte-by-byte (sampled for speed: every 97th byte + ends).
    std::uint64_t total = 0;
    for (const auto& runs : per_server)
      for (const auto& r : runs) total += r.length;
    ASSERT_EQ(total, len);
    for (std::uint64_t probe = off; probe < off + len;
         probe += 97) {
      const std::uint32_t srv = layout.server_of(probe);
      const std::uint64_t local = layout.server_local_offset(probe);
      bool found = false;
      for (const auto& r : per_server[srv])
        found |= (local >= r.local_offset && local < r.local_offset + r.length);
      ASSERT_TRUE(found) << "byte " << probe << " missing on server " << srv;
    }
  }
}

TEST(FuzzLayout, ClosedFormMatchesReferenceAtScale) {
  // Beyond the power-of-two units and small server counts above: arbitrary
  // units (down to 1 byte) and up to 300 servers, closed form against the
  // frozen per-chunk loop (see also tests/test_layout_model.cpp).
  sim::Rng rng(0x5caff);
  for (int round = 0; round < 150; ++round) {
    pfs::StripeLayout layout;
    layout.unit_bytes = 1 + rng.uniform(100'000);
    layout.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform(299));
    const std::uint64_t span = layout.unit_bytes * layout.num_servers;
    const pfs::Segment seg{rng.uniform(span * 6), 1 + rng.uniform(span * 3)};
    std::vector<std::vector<pfs::ServerRun>> closed, ref;
    pfs::decompose_segment(layout, seg, closed);
    pfs::decompose_segment_reference(layout, seg, ref);
    ASSERT_EQ(closed, ref) << "unit=" << layout.unit_bytes
                           << " servers=" << layout.num_servers
                           << " off=" << seg.offset << " len=" << seg.length;
  }
}

TEST(FuzzEngine, RandomCancellationsNeverFireOrLoseEvents) {
  sim::Rng rng(7);
  sim::Engine eng;
  int fired = 0;
  std::vector<sim::EventId> ids;
  for (int i = 0; i < 2000; ++i)
    ids.push_back(eng.at(sim::usec(rng.uniform(100'000)), [&] { ++fired; }));
  int cancelled = 0;
  for (auto& id : ids)
    if (rng.chance(0.4)) cancelled += eng.cancel(id) ? 1 : 0;
  eng.run();
  EXPECT_EQ(fired, 2000 - cancelled);
  EXPECT_TRUE(eng.empty());
}

TEST(FuzzEngine, InterleavedScheduleRunKeepsMonotonicTime) {
  sim::Rng rng(8);
  sim::Engine eng;
  sim::Time last = -1;
  std::function<void()> check = [&] {
    EXPECT_GE(eng.now(), last);
    last = eng.now();
  };
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 20; ++i)
      eng.at(eng.now() + static_cast<sim::Time>(rng.uniform(10'000)), check);
    eng.run(rng.uniform(15));
  }
  eng.run();
  EXPECT_TRUE(eng.empty());
}

class DiskModelSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DiskModelSweep, PhysicsInvariantsHold) {
  const auto [rpm, mbs] = GetParam();
  disk::DiskParams p;
  p.rpm = rpm;
  p.sustained_mb_s = mbs;
  disk::DiskModel m(p);
  sim::Rng rng(31);
  sim::Time prev_seek_cost = 0;
  // Reposition cost grows monotonically with distance and is bounded by a
  // full stroke plus one rotation.
  for (std::uint64_t frac = 1; frac <= 10; ++frac) {
    const std::uint64_t dist = p.capacity_sectors() * frac / 10;
    const sim::Time t = m.reposition_time(dist);
    EXPECT_GE(t, prev_seek_cost);
    prev_seek_cost = t;
    EXPECT_LE(t, sim::from_seconds(p.full_stroke_ms / 1e3) + p.full_rotation());
  }
  // Service time is always at least the pure transfer time.
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t lba = rng.uniform(p.capacity_sectors() - 1024);
    const std::uint32_t sectors = 8u << rng.uniform(6);
    const sim::Time t = m.service_time(lba, sectors);
    EXPECT_GE(t, sim::transfer_time(std::uint64_t{sectors} * disk::kSectorBytes,
                                    p.bytes_per_sec()));
    m.serve(lba, sectors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Drives, DiskModelSweep,
    ::testing::Combine(::testing::Values(5400.0, 7200.0, 15000.0),
                       ::testing::Values(60.0, 110.0, 200.0)),
    [](const ::testing::TestParamInfo<std::tuple<double, double>>& info) {
      return std::to_string(static_cast<int>(std::get<0>(info.param))) + "rpm_" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) + "mbs";
    });

TEST(FuzzFaults, RandomTransientPlansNeverHangOrLeakRequests) {
  // Randomized transient fault plans (rates kept below the level where
  // permanent failure is possible): every run must complete all jobs, leave
  // no in-flight client requests, and drain the event queue. Testbed::run
  // itself throws if the queue drains with jobs unfinished, and an internal
  // event cap turns a livelock into a loud failure instead of a hang.
  sim::Rng rng(0xfa57);
  for (int round = 0; round < 8; ++round) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 2 + static_cast<std::uint32_t>(rng.uniform(2));
    cfg.compute_nodes = 1 + static_cast<std::uint32_t>(rng.uniform(1));
    cfg.cores_per_node = 8;
    cfg.keep_traces = false;
    cfg.fault.seed = rng.uniform(UINT32_MAX);
    cfg.fault.disk.media_error_rate = 0.05 * rng.chance(0.5);
    cfg.fault.disk.stall_rate = 0.1 * rng.chance(0.5);
    cfg.fault.net.drop_rate = 0.02 + 0.04 * rng.chance(0.5);
    cfg.fault.net.delay_rate = 0.1 * rng.chance(0.5);
    cfg.fault.server.stall_rate = 0.05 * rng.chance(0.5);
    harness::Testbed tb(cfg);
    wl::DemoConfig dc;
    dc.file = tb.create_file("f", 2 << 20);
    dc.file_size = 2 << 20;
    dc.segment_size = 32 * 1024;
    const bool dualpar = rng.chance(0.5);
    auto& job = dualpar
                    ? tb.add_job("j", 2, tb.dualpar(),
                                 [dc](std::uint32_t) { return wl::make_demo(dc); },
                                 dualpar::Policy::kForcedDataDriven)
                    : tb.add_job("j", 2, tb.vanilla(),
                                 [dc](std::uint32_t) { return wl::make_demo(dc); },
                                 dualpar::Policy::kForcedNormal);
    ASSERT_NO_THROW(tb.run(50'000'000)) << "round " << round;
    EXPECT_TRUE(job.finished()) << "round " << round;
    EXPECT_TRUE(tb.engine().empty()) << "round " << round;
    const auto c = tb.fault_injector()->total();
    EXPECT_EQ(c.client_ops_started, c.client_ops_finished)
        << "round " << round << ": leaked in-flight requests";
  }
}

TEST(FuzzStripeShare, SharesAlwaysSumToFileSize) {
  sim::Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    pfs::StripeLayout l;
    l.unit_bytes = 512u << rng.uniform(10);
    l.num_servers = 1 + static_cast<std::uint32_t>(rng.uniform(16));
    const std::uint64_t size = rng.uniform(1ull << 32);
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < l.num_servers; ++s)
      total += l.server_share(s, size);
    ASSERT_EQ(total, size);
  }
}

}  // namespace
}  // namespace dpar
