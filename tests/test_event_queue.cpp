// Differential tests for the tiered event queue (sim/event_queue.hpp): the
// ladder/timer-wheel arm is driven op-for-op against the frozen heap oracle
// (queue_reference.cpp) under randomized schedule/cancel/batch/drain mixes,
// and whole-engine runs are byte-compared across queue kinds. Under
// DPAR_CHECK_INVARIANTS the bucket-monotonicity invariant is death-tested
// through the queue's corruption hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/debug.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace dpar {
namespace {

using sim::Engine;
using sim::EventKey;
using sim::EventQueue;
using sim::QueueKind;
using sim::Time;

// ---- direct queue differential ------------------------------------------

/// Both queue kinds over one shared slab-generation array, driven with
/// identical keys. Every observable (next_time, pop order, size after
/// purges) must agree exactly.
struct QueuePair {
  std::vector<std::uint32_t> gens;
  EventQueue heap{QueueKind::kHeap, &gens};
  EventQueue ladder{QueueKind::kLadder, &gens};
  std::uint64_t next_seq = 1;
  Time now = 0;

  std::uint32_t push(Time t) {
    gens.push_back(1);
    const auto slot = static_cast<std::uint32_t>(gens.size() - 1);
    const EventKey k{t, next_seq++, slot, 1};
    heap.push(k);
    ladder.push(k);
    return slot;
  }

  std::uint32_t append(Time t) {
    gens.push_back(1);
    const auto slot = static_cast<std::uint32_t>(gens.size() - 1);
    const EventKey k{t, next_seq++, slot, 1};
    heap.append(k);
    ladder.append(k);
    return slot;
  }

  void commit() {
    heap.commit_batch();
    ladder.commit_batch();
  }

  void cancel(std::uint32_t slot) {
    ++gens[slot];
    heap.note_cancel();
    ladder.note_cancel();
  }

  /// Pop one live key from both; returns false when both are drained.
  /// Asserts the popped keys match and marks the slot fired.
  bool pop_and_compare() {
    EXPECT_EQ(heap.next_time(), ladder.next_time());
    EventKey h{}, l{};
    const bool hh = heap.pop_min_live(h);
    const bool ll = ladder.pop_min_live(l);
    EXPECT_EQ(hh, ll);
    if (!hh || !ll) return false;
    EXPECT_EQ(h.t, l.t);
    EXPECT_EQ(h.seq, l.seq);
    EXPECT_EQ(h.slot, l.slot);
    EXPECT_GE(h.t, now);
    now = h.t;
    ++gens[h.slot];  // fired: the slot's generation moves on
    last_slot = h.slot;
    return true;
  }

  std::uint32_t last_slot = 0;  ///< slot of the most recent pop_and_compare

  void check_both() const {
    heap.check_invariants();
    ladder.check_invariants();
  }
};

/// One randomized mix: pushes spanning front/wheel/tail distances (including
/// the far-future tail and post-prefetch rewinds), cancels of pending keys,
/// outbox-style append batches, interleaved peeks and pops.
void run_differential_mix(std::uint64_t seed, int rounds, bool far_future) {
  sim::Rng rng(seed);
  QueuePair q;
  std::vector<std::uint32_t> pending;

  const auto random_delta = [&]() -> Time {
    const double pick = rng.uniform(100) / 100.0;
    if (pick < 0.40) return static_cast<Time>(rng.uniform(1 << 12));     // front/L0
    if (pick < 0.70) return static_cast<Time>(rng.uniform(1 << 17));     // L0..L1
    if (pick < 0.90) return static_cast<Time>(rng.uniform(1 << 25));     // mid wheel
    if (!far_future) return static_cast<Time>(rng.uniform(1 << 28));     // L3
    return static_cast<Time>(rng.uniform(std::uint64_t{1} << 36));       // tail
  };

  for (int round = 0; round < rounds; ++round) {
    // Schedule a burst. next_time() in between forces ladder prefetch, so
    // later same-window pushes land behind the advanced floor (the rewind
    // path a cross-lane barrier post exercises in the engine).
    const int burst = 1 + static_cast<int>(rng.uniform(24));
    for (int i = 0; i < burst; ++i) {
      pending.push_back(q.push(q.now + random_delta()));
      if (rng.chance(0.2)) {
        EXPECT_EQ(q.heap.next_time(), q.ladder.next_time());
      }
    }
    // Outbox-style batch: appended unsorted, committed once.
    if (rng.chance(0.5)) {
      const int batch = 1 + static_cast<int>(rng.uniform(40));
      for (int i = 0; i < batch; ++i)
        pending.push_back(q.append(q.now + random_delta()));
      q.commit();
    }
    // Cancel-heavy churn: kill a random slice of whatever is pending.
    const int kills = static_cast<int>(rng.uniform(pending.size() + 1));
    for (int i = 0; i < kills && !pending.empty(); ++i) {
      const std::size_t at = rng.uniform(pending.size());
      q.cancel(pending[at]);
      pending[at] = pending.back();
      pending.pop_back();
    }
    // Drain a few and compare. Fired slots leave the cancellable set:
    // note_cancel's contract is "a held key was invalidated", matching
    // Engine::cancel, which rejects already-fired events.
    const int pops = static_cast<int>(rng.uniform(20));
    for (int i = 0; i < pops; ++i) {
      if (!q.pop_and_compare()) break;
      pending.erase(std::remove(pending.begin(), pending.end(), q.last_slot),
                    pending.end());
    }
    q.check_both();
    // size() includes stale keys and the two arms shed them at different
    // moments (heap: lazily off the top; ladder: bulk purge on refill), so
    // raw sizes are not comparable — live counts must agree exactly.
    EXPECT_EQ(q.heap.size() - q.heap.stale(),
              q.ladder.size() - q.ladder.stale());
  }
  while (q.pop_and_compare()) {
  }
  EXPECT_EQ(q.heap.size(), 0u);
  EXPECT_EQ(q.ladder.size(), 0u);
  q.check_both();
}

TEST(EventQueueDifferential, RandomMixNearFuture) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    run_differential_mix(seed, 60, /*far_future=*/false);
}

TEST(EventQueueDifferential, RandomMixWithFarFutureTail) {
  for (std::uint64_t seed = 11; seed <= 14; ++seed)
    run_differential_mix(seed, 60, /*far_future=*/true);
}

TEST(EventQueueDifferential, CancelStormLeavesBoundedQueue) {
  QueuePair q;
  // Schedule/cancel churn with nothing ever firing: the amortized purge must
  // keep both arms' key counts bounded by ~2x live, so a million cancelled
  // timers cannot accumulate.
  std::vector<std::uint32_t> live;
  sim::Rng rng(99);
  for (int i = 0; i < 50000; ++i) {
    live.push_back(q.push(q.now + 1 + static_cast<Time>(rng.uniform(1 << 30))));
    if (live.size() > 64) {
      q.cancel(live.front());
      live.front() = live.back();
      live.pop_back();
    }
  }
  EXPECT_LE(q.heap.size(), 2 * live.size() + 128);
  EXPECT_LE(q.ladder.size(), 2 * live.size() + 128);
  q.check_both();
  while (q.pop_and_compare()) {
  }
}

// ---- engine-level differential ------------------------------------------

/// Deterministic multi-lane scenario recording every firing as
/// (lane, time, tag); cross-lane posts ride the outbox at the lookahead
/// horizon, timers are cancelled mid-flight, at_all batches fire in order.
std::vector<std::uint64_t> run_engine_scenario(QueueKind kind, unsigned workers) {
  Engine eng;
  eng.set_queue_kind(kind);
  const sim::LaneId l1 = eng.add_lane();
  const sim::LaneId l2 = eng.add_lane();
  eng.set_lookahead(1000);
  eng.set_pdes_workers(workers);

  // One trace per lane: inside a parallel window each lane is touched by
  // exactly one worker, so per-lane appends never race, and each lane's
  // event order is deterministic at every worker count (the global
  // interleaving across lanes is not — which is why the traces concatenate
  // lane-by-lane below).
  std::array<std::vector<std::uint64_t>, 3> traces;
  auto record = [&traces, &eng](sim::LaneId lane, Time t, std::uint32_t tag) {
    traces[eng.current_lane()].push_back(
        (std::uint64_t{lane} << 48) | (std::uint64_t{tag} << 32) |
        static_cast<std::uint64_t>(t) % (std::uint64_t{1} << 32));
  };

  sim::Rng rng(7);
  std::vector<sim::EventId> cancellable;
  for (int i = 0; i < 200; ++i) {
    const Time t = 1 + static_cast<Time>(rng.uniform(1 << 20));
    const sim::LaneId lane = i % 3 == 0 ? 0 : (i % 3 == 1 ? l1 : l2);
    const auto tag = static_cast<std::uint32_t>(i);
    cancellable.push_back(eng.at_in(lane, t, [&, lane, t, tag] {
      record(lane, t, tag);
      if (tag % 5 == 0) {
        // Cross-lane ping past the lookahead horizon; lands via the outbox
        // (heap bulk rebuild vs ladder bucket filing) when inside a window.
        const sim::LaneId to = lane == l1 ? l2 : l1;
        eng.after_in(to, 2000 + tag, [&, to, tag] { record(to, 0, 10000 + tag); });
      }
    }));
  }
  // Deterministic cancel slice: every 7th scheduled timer dies before firing.
  for (std::size_t i = 0; i < cancellable.size(); i += 7) eng.cancel(cancellable[i]);
  // Batched release: one event, callbacks in order.
  std::vector<Engine::Callback> batch;
  for (int i = 0; i < 4; ++i)
    batch.push_back([&record, i] { record(0, 999, 20000 + i); });
  eng.at_all(Time{1 << 21}, std::move(batch));

  eng.run_until(Time{1 << 19});  // mid-run cut exercises bounded windows
  eng.check_invariants();
  eng.run();
  eng.check_invariants();
  EXPECT_TRUE(eng.empty());
  std::vector<std::uint64_t> flat;
  for (const auto& t : traces) flat.insert(flat.end(), t.begin(), t.end());
  return flat;
}

TEST(EventQueueDifferential, EngineRunsAreIdenticalAcrossKindsAndWorkers) {
  const std::vector<std::uint64_t> oracle =
      run_engine_scenario(QueueKind::kHeap, 1);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(run_engine_scenario(QueueKind::kLadder, 1), oracle);
  EXPECT_EQ(run_engine_scenario(QueueKind::kHeap, 4), oracle);
  EXPECT_EQ(run_engine_scenario(QueueKind::kLadder, 4), oracle);
}

// ---- selection plumbing --------------------------------------------------

TEST(EventQueueConfig, EnvSelectionParsesAndRejectsGarbage) {
  ::unsetenv("DPAR_ENGINE_QUEUE");
  EXPECT_EQ(sim::queue_kind_from_env(), QueueKind::kLadder);
  ::setenv("DPAR_ENGINE_QUEUE", "", 1);
  EXPECT_EQ(sim::queue_kind_from_env(), QueueKind::kLadder);
  ::setenv("DPAR_ENGINE_QUEUE", "heap", 1);
  EXPECT_EQ(sim::queue_kind_from_env(), QueueKind::kHeap);
  ::setenv("DPAR_ENGINE_QUEUE", "ladder", 1);
  EXPECT_EQ(sim::queue_kind_from_env(), QueueKind::kLadder);
  ::setenv("DPAR_ENGINE_QUEUE", "splay", 1);
  EXPECT_THROW(sim::queue_kind_from_env(), std::invalid_argument);
  ::unsetenv("DPAR_ENGINE_QUEUE");
}

TEST(EventQueueConfig, SwitchRefusedOnceEventsExist) {
  Engine eng;
  eng.set_queue_kind(QueueKind::kHeap);  // fine while empty
  EXPECT_EQ(eng.queue_kind(), QueueKind::kHeap);
  eng.after(10, [] {});
  EXPECT_THROW(eng.set_queue_kind(QueueKind::kLadder), std::logic_error);
  eng.run();
  // Even drained, a lane that fired keeps its kind: reproducibility over
  // convenience.
  EXPECT_THROW(eng.set_queue_kind(QueueKind::kLadder), std::logic_error);
}

// ---- invariant death tests ----------------------------------------------

#if DPAR_CHECK_INVARIANTS

TEST(EventQueueDeath, LadderCatchesStrandedFrontBucket) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint32_t> gens{0, 1};
  EventQueue q(QueueKind::kLadder, &gens);
  q.push(EventKey{100, 1, 1, 1});  // lands in the floor's front bucket
  q.debug_strand_front_for_test();  // floor jumps a whole wheel span ahead
  EXPECT_DEATH(q.check_invariants(), "outside the floor bucket");
}

TEST(EventQueueDeath, HeapCatchesBrokenOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  std::vector<std::uint32_t> gens{0, 1, 1, 1};
  EventQueue q(QueueKind::kHeap, &gens);
  q.push(EventKey{100, 1, 1, 1});
  q.push(EventKey{200, 2, 2, 1});
  q.push(EventKey{300, 3, 3, 1});
  q.debug_corrupt_order_for_test();
  EXPECT_DEATH(q.check_invariants(), "child precedes its parent");
}

#else

TEST(EventQueueDeath, SkippedWithoutInvariantLayer) {
  GTEST_SKIP() << "DPAR_CHECK_INVARIANTS is compiled out in this build "
                  "(Release default); Debug/sanitizer legs run the death "
                  "tests.";
}

#endif  // DPAR_CHECK_INVARIANTS

}  // namespace
}  // namespace dpar
