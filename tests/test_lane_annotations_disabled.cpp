// The DPAR_NO_LANE_ANNOTATIONS escape: a build that defines it (say, a
// compiler that chokes on the annotate attribute) must still compile every
// macro use and produce identical types. This TU is the proof — it defines
// the opt-out before the header is ever seen, then exercises all four
// macros in every sanctioned position. Kept free of library headers so the
// per-TU macro state cannot create mixed definitions of shared classes.
#define DPAR_NO_LANE_ANNOTATIONS 1

#include <cstdint>
#include <type_traits>

#include <gtest/gtest.h>

#include "sim/lane_annotations.hpp"

namespace dpar {
namespace {

struct Plain {
  std::uint64_t tracked = 0;
  std::uint32_t shard = 0;
  void note() { ++tracked; }
};

class DPAR_LANE_OWNED(shard) Disabled {
 public:
  DPAR_EXCLUSIVE_LANE std::uint64_t tracked = 0;
  DPAR_LANE_SAFE std::uint32_t shard = 0;
  DPAR_CROSS_LANE_API void note() { ++tracked; }
  DPAR_EXCLUSIVE_LANE void fold() { tracked = 0; }
};

static_assert(sizeof(Disabled) == sizeof(Plain),
              "disabled annotations must be invisible to layout");
static_assert(std::is_trivially_copyable_v<Disabled> ==
              std::is_trivially_copyable_v<Plain>);

TEST(LaneAnnotationsDisabled, MacrosExpandToNothing) {
  Disabled d;
  d.note();
  EXPECT_EQ(d.tracked, 1u);
  d.fold();
  EXPECT_EQ(d.tracked, 0u);
}

}  // namespace
}  // namespace dpar
