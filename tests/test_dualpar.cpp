// End-to-end tests of the DualPar machinery: ghost pre-execution, the
// data-driven cycle, write-back, mis-prefetch handling, EMC adaptivity, and
// comparative behaviour against vanilla/collective I/O.
#include <gtest/gtest.h>

#include <memory>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar::dualpar {
namespace {

harness::TestbedConfig small_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  return cfg;
}

TEST(GhostRunner, RecordsReadsUpToQuota) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 64 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 64 << 20;
  dc.segment_size = 64 * 1024;
  // One process running vanilla, paused immediately; we drive the ghost
  // manually off its process.
  auto& job = tb.add_job("t", 1, tb.vanilla(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedNormal);
  tb.engine().run(1);  // start the job (first event only)
  bool paused = false;
  GhostRunner ghost(tb.engine(), job.process(0), /*quota=*/1 << 20,
                    [&] { paused = true; });
  mpi::IoCall first;
  first.file = f;
  first.segments.push_back(pfs::Segment{0, 64 * 1024});
  ghost.start(first);
  tb.engine().run();
  EXPECT_TRUE(paused);
  EXPECT_TRUE(ghost.paused());
  EXPECT_GE(ghost.recorded_bytes(), 1u << 20);
  // Quota 1 MB at 64 KB*16 per call -> exactly one extra call beyond quota
  // boundary at most.
  EXPECT_LE(ghost.recorded_bytes(), (1u << 20) + 16 * 64 * 1024);
  EXPECT_GE(ghost.predicted().size(), 1u);
}

TEST(GhostRunner, PausesAtProgramEnd) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 1 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 256 * 1024;  // tiny: ends before quota
  dc.segment_size = 4 * 1024;
  auto& job = tb.add_job("t", 1, tb.vanilla(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedNormal);
  tb.engine().run(1);
  bool paused = false;
  GhostRunner ghost(tb.engine(), job.process(0), /*quota=*/64 << 20,
                    [&] { paused = true; });
  mpi::IoCall first;
  first.file = f;
  first.segments.push_back(pfs::Segment{0, 4096});
  ghost.start(first);
  tb.engine().run();
  EXPECT_TRUE(paused);
  EXPECT_LT(ghost.recorded_bytes(), 64u << 20);
}

TEST(GhostRunner, StopRequestPausesPromptly) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 64 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 64 << 20;
  dc.segment_size = 4096;
  dc.compute_per_call = sim::msec(10);  // slow ghost
  auto& job = tb.add_job("t", 1, tb.vanilla(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedNormal);
  tb.engine().run(1);
  bool paused = false;
  GhostRunner ghost(tb.engine(), job.process(0), 64 << 20, [&] { paused = true; });
  mpi::IoCall first;
  first.file = f;
  first.segments.push_back(pfs::Segment{0, 4096});
  ghost.start(first);
  tb.engine().run_until(sim::msec(15));  // mid-computation
  ghost.stop();
  tb.engine().run();
  EXPECT_TRUE(paused);
  // Far less than the quota was recorded: stop interrupted the run-ahead.
  EXPECT_LT(ghost.recorded_bytes(), 1u << 20);
}

TEST(DualPar, ReadWorkloadCompletesWithCycles) {
  harness::Testbed tb(small_config());
  const std::uint64_t fsize = 32 << 20;
  const pfs::FileId f = tb.create_file("a", fsize);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = fsize;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("demo", 4, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  const auto& st = tb.dualpar().stats();
  EXPECT_GT(st.cycles, 0u);
  EXPECT_GT(st.ghost_forks, 0u);
  EXPECT_GT(st.prefetch_bytes, 0u);
  EXPECT_GT(st.cache_hit_bytes, 0u);
  // Every application byte was read exactly once at the application level.
  EXPECT_EQ(job.total_bytes(), fsize);
  // Prefetching is accurate for this program: hardly any direct misses.
  EXPECT_LT(st.miss_direct_bytes, fsize / 10);
}

TEST(DualPar, WriteWorkloadFlushesEverything) {
  harness::Testbed tb(small_config());
  const std::uint64_t fsize = 16 << 20;
  const pfs::FileId f = tb.create_file("a", fsize);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = fsize;
  dc.segment_size = 16 * 1024;
  dc.is_write = true;
  auto& job = tb.add_job("w", 4, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  // All dirty data reached the data servers (write-back cycles + final flush).
  std::uint64_t written = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    written += tb.server(s).bytes_written();
  EXPECT_GE(written, fsize);
  EXPECT_EQ(tb.cache().all_dirty_segments().size(), 0u);
  EXPECT_GT(tb.dualpar().stats().writeback_bytes, 0u);
}

TEST(DualPar, WritebackMergesIntoLargeServerRequests) {
  // 4 processes interleave 16 KB writes covering the file; at the disks the
  // write-back batch should appear as far fewer, larger requests than the
  // application issued.
  harness::Testbed tb(small_config());
  const std::uint64_t fsize = 8 << 20;
  const pfs::FileId f = tb.create_file("a", fsize);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = fsize;
  dc.segment_size = 16 * 1024;
  dc.is_write = true;
  tb.add_job("w", 4, tb.dualpar(), [&](std::uint32_t) { return wl::make_demo(dc); },
             Policy::kForcedDataDriven);
  tb.run();
  std::uint64_t disk_requests = 0, disk_bytes = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s) {
    disk_requests += tb.server(s).trace().dispatches();
    disk_bytes += tb.server(s).bytes_written();
  }
  const double mean_request = static_cast<double>(disk_bytes) /
                              static_cast<double>(disk_requests);
  EXPECT_GT(mean_request, 48.0 * 1024);  // ~chunk-sized or larger, not 16 KB
}

TEST(DualPar, BarrierWorkloadDoesNotDeadlock) {
  harness::Testbed tb(small_config());
  const std::uint64_t fsize = 8 << 20;
  const pfs::FileId f = tb.create_file("a", fsize);
  wl::MpiIoTestConfig mc;
  mc.file = f;
  mc.file_size = fsize;
  mc.request_size = 16 * 1024;
  mc.barrier_every_call = true;
  auto& job = tb.add_job("m", 4, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_mpi_io_test(mc);
  }, Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), fsize);
}

TEST(DualPar, MisprefetchLatchesJobBackToNormal) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 32 << 20);
  wl::DependentConfig dc;
  dc.file = f;
  dc.file_size = 32 << 20;
  dc.request_size = 64 * 1024;
  dc.requests = 100;
  auto& job = tb.add_job("dep", 1, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_dependent(dc);
  }, Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 100u * 64 * 1024);
  // The dependent chain defeated pre-execution and EMC turned the mode off.
  EXPECT_TRUE(tb.emc().latched_off(job.id()));
  // Only a bounded number of cycles ran before the latch.
  EXPECT_LE(tb.dualpar().stats().cycles, 6u);
}

TEST(DualPar, DeadlineBoundsSlowGhosts) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 32 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 32 << 20;
  dc.segment_size = 16 * 1024;
  dc.compute_per_call = sim::msec(200);  // ghost needs ages to fill its quota
  harness::TestbedConfig cfg = small_config();
  cfg.dualpar.preexec_deadline_max = sim::msec(300);
  harness::Testbed tb2(cfg);
  const pfs::FileId f2 = tb2.create_file("a", 32 << 20);
  dc.file = f2;
  auto& job = tb2.add_job("slow", 2, tb2.dualpar(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedDataDriven);
  tb2.run();
  EXPECT_TRUE(job.finished());
  EXPECT_GT(tb2.dualpar().stats().deadline_expiries, 0u);
}

TEST(DualPar, NormalModeBehavesLikeVanilla) {
  auto run = [&](bool use_dualpar_normal) {
    harness::Testbed tb(small_config());
    const std::uint64_t fsize = 8 << 20;
    const pfs::FileId f = tb.create_file("a", fsize);
    wl::DemoConfig dc;
    dc.file = f;
    dc.file_size = fsize;
    dc.segment_size = 64 * 1024;
    mpi::IoDriver& drv =
        use_dualpar_normal ? static_cast<mpi::IoDriver&>(tb.dualpar())
                           : static_cast<mpi::IoDriver&>(tb.vanilla());
    auto& job = tb.add_job("n", 2, drv, [&](std::uint32_t) { return wl::make_demo(dc); },
                           Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  const auto t_dualpar = run(true);
  const auto t_vanilla = run(false);
  EXPECT_EQ(t_dualpar, t_vanilla);  // identical path, deterministic engine
}

TEST(DualPar, DeterministicAcrossRuns) {
  auto run = [&] {
    harness::Testbed tb(small_config());
    const pfs::FileId f = tb.create_file("a", 16 << 20);
    wl::DemoConfig dc;
    dc.file = f;
    dc.file_size = 16 << 20;
    dc.segment_size = 16 * 1024;
    auto& job = tb.add_job("d", 4, tb.dualpar(), [&](std::uint32_t) {
      return wl::make_demo(dc);
    }, Policy::kForcedDataDriven);
    tb.run();
    return job.completion_time();
  };
  EXPECT_EQ(run(), run());
}

TEST(DualPar, BeatsVanillaOnNoncontiguousAccess) {
  auto run = [&](int which) {  // 0 vanilla, 1 collective, 2 dualpar
    harness::Testbed tb(small_config());
    wl::NoncontigConfig nc;
    nc.columns = 4;  // matches nprocs
    nc.elmt_count = 512;  // 2 KB-wide columns
    nc.rows = 1024;
    const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
    nc.file = tb.create_file("a", fsize);
    nc.collective = (which == 1);
    mpi::IoDriver& drv = which == 0 ? static_cast<mpi::IoDriver&>(tb.vanilla())
                       : which == 1 ? static_cast<mpi::IoDriver&>(tb.collective())
                                    : static_cast<mpi::IoDriver&>(tb.dualpar());
    auto& job = tb.add_job("nc", 4, drv, [&](std::uint32_t) {
      return wl::make_noncontig(nc);
    }, which == 2 ? Policy::kForcedDataDriven : Policy::kForcedNormal);
    tb.run();
    return tb.job_throughput_mbs(job);
  };
  const double vanilla = run(0);
  const double coll = run(1);
  const double dualpar = run(2);
  EXPECT_GT(coll, vanilla);     // collective I/O helps noncontig (§V-B)
  EXPECT_GT(dualpar, vanilla);  // and DualPar helps at least as much
}

TEST(DualPar, AdaptiveModeEngagesUnderInterference) {
  // Two strided-read jobs sharing the servers: seek distances explode,
  // ReqDist stays small, EMC must flip both jobs to data-driven mode.
  harness::TestbedConfig cfg = small_config();
  harness::Testbed tb(cfg);
  const std::uint64_t fsize = 24 << 20;
  wl::DemoConfig d1, d2;
  d1.file = tb.create_file("a", fsize);
  d2.file = tb.create_file("b", fsize);
  d1.file_size = d2.file_size = fsize;
  d1.segment_size = d2.segment_size = 16 * 1024;
  auto& j1 = tb.add_job("a", 2, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_demo(d1);
  }, Policy::kAdaptive);
  auto& j2 = tb.add_job("b", 2, tb.dualpar(), [&](std::uint32_t) {
    return wl::make_demo(d2);
  }, Policy::kAdaptive);
  tb.run();
  EXPECT_TRUE(j1.finished());
  EXPECT_TRUE(j2.finished());
  EXPECT_GT(tb.emc().mode_switches(), 0u);
  EXPECT_GT(tb.dualpar().stats().cycles, 0u);
}

TEST(Preexec, PrefetchesAheadAndCompletes) {
  harness::Testbed tb(small_config());
  const std::uint64_t fsize = 16 << 20;
  const pfs::FileId f = tb.create_file("a", fsize);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = fsize;
  dc.segment_size = 16 * 1024;
  dc.compute_per_call = sim::msec(2);
  auto& job = tb.add_job("s2", 2, tb.preexec(), [&](std::uint32_t) {
    return wl::make_demo(dc);
  }, Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), fsize);
  const auto& st = tb.preexec().stats();
  EXPECT_GT(st.prefetch_issued_bytes, 0u);
  EXPECT_GT(st.hits + st.waits, 0u);
}

TEST(Preexec, HidesIoUnderComputeAtLowIoRatio) {
  // With plenty of compute per call, Strategy 2 should beat Strategy 1
  // (vanilla) because prefetching overlaps I/O with computation (§II).
  auto run = [&](bool prefetch) {
    harness::Testbed tb(small_config());
    const std::uint64_t fsize = 8 << 20;
    const pfs::FileId f = tb.create_file("a", fsize);
    wl::DemoConfig dc;
    dc.file = f;
    dc.file_size = fsize;
    dc.segment_size = 16 * 1024;
    dc.compute_per_call = sim::msec(5);
    mpi::IoDriver& drv = prefetch ? static_cast<mpi::IoDriver&>(tb.preexec())
                                  : static_cast<mpi::IoDriver&>(tb.vanilla());
    auto& job = tb.add_job("s", 2, drv, [&](std::uint32_t) { return wl::make_demo(dc); },
                           Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  EXPECT_LT(run(true), run(false));
}

}  // namespace
}  // namespace dpar::dualpar
