// Fault-injection subsystem: plan validation, determinism of a faulted run,
// end-to-end failure semantics (media errors, drops + retry, bad sectors,
// crash/restart with queue loss), and the fault ledger.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "fault/status.hpp"
#include "harness/experiment_pool.hpp"
#include "harness/testbed.hpp"
#include "metrics/fault_report.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

harness::TestbedConfig small_cfg() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  cfg.keep_traces = false;
  return cfg;
}

/// Run one demo-read job against `cfg` with the given driver choice and
/// return (completion time, total bytes, events). The workload is long
/// enough that every server stays busy for the whole run.
struct RunOut {
  sim::Time completion = 0;
  std::uint64_t bytes = 0;
  std::uint64_t events = 0;
  fault::Counters counters;
  bool emc_degraded_at_end = false;
};

RunOut run_demo(harness::TestbedConfig cfg, bool use_dualpar,
                std::uint64_t file_size = 8ull << 20) {
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", file_size);
  dc.file_size = file_size;
  dc.segment_size = 64 * 1024;
  mpi::Job& job =
      use_dualpar
          ? tb.add_job("j", 4, tb.dualpar(),
                       [dc](std::uint32_t) { return wl::make_demo(dc); },
                       dualpar::Policy::kForcedDataDriven)
          : tb.add_job("j", 4, tb.vanilla(),
                       [dc](std::uint32_t) { return wl::make_demo(dc); },
                       dualpar::Policy::kForcedNormal);
  RunOut out;
  out.events = tb.run();
  out.completion = job.completion_time();
  out.bytes = job.total_bytes();
  if (tb.fault_injector()) out.counters = tb.fault_injector()->total();
  out.emc_degraded_at_end = tb.emc().degraded();
  return out;
}

// ---------------------------------------------------------------------------
// Status algebra
// ---------------------------------------------------------------------------

TEST(FaultStatus, CombineKeepsTheWorst) {
  using fault::Status;
  EXPECT_EQ(fault::combine(Status::kOk, Status::kOk), Status::kOk);
  EXPECT_EQ(fault::combine(Status::kOk, Status::kMediaError), Status::kMediaError);
  EXPECT_EQ(fault::combine(Status::kTimeout, Status::kMediaError), Status::kTimeout);
  EXPECT_EQ(fault::combine(Status::kServerDown, Status::kTimeout), Status::kServerDown);
  EXPECT_TRUE(fault::ok(Status::kOk));
  EXPECT_FALSE(fault::ok(Status::kTimeout));
}

TEST(FaultStatus, FanInReportsWorstOfAllBranches) {
  using fault::Status;
  Status got = Status::kOk;
  auto* fan = fault::make_status_fanin(3, [&](Status st) { got = st; });
  fan->complete(Status::kOk);
  fan->complete(Status::kMediaError);
  EXPECT_EQ(got, Status::kOk);  // not fired yet
  fan->complete(Status::kOk);
  EXPECT_EQ(got, Status::kMediaError);
}

TEST(FaultStatus, EmptyFanInFiresInlineWithOk) {
  using fault::Status;
  Status got = Status::kMediaError;
  auto* fan = fault::make_status_fanin(0, [&](Status st) { got = st; });
  EXPECT_EQ(fan, nullptr);
  EXPECT_EQ(got, Status::kOk);
}

// ---------------------------------------------------------------------------
// Plan validation
// ---------------------------------------------------------------------------

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  {
    fault::FaultPlan p;
    p.disk.media_error_rate = -0.1;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.net.drop_rate = 1.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.server.stall_rate = std::nan("");
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.disk.bad_sectors.push_back({0, 100, 0});  // zero sectors
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.net.partitions.push_back({1, 2, sim::msec(10), sim::msec(10)});  // empty
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.net.partitions.push_back({3, 3, 0, sim::msec(10)});  // self-partition
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.server.crashes.push_back({0, sim::msec(20), sim::msec(10)});  // never restarts
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.server.crashes.push_back({fault::kAllServers, 0, sim::msec(10)});
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.disk.media_error_rate = 0.1;  // enabled -> retry policy must work
    p.retry.timeout_base = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
  {
    fault::FaultPlan p;
    p.net.drop_rate = 0.1;
    p.retry.backoff_factor = 0.5;
    EXPECT_THROW(p.validate(), std::invalid_argument);
  }
}

TEST(FaultPlanValidation, TestbedRejectsMalformedPlanEvenWhenInert) {
  // A negative rate can never fire (enabled() is false), but the testbed
  // still refuses it loudly, like every other config error.
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.disk.stall_rate = -1.0;
  EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
}

TEST(FaultPlanValidation, TestbedRejectsCrashOfNonexistentServer) {
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.server.crashes.push_back({cfg.data_servers, 0, sim::msec(10)});
  EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
}

TEST(FaultPlanValidation, DefaultPlanIsInertAndCreatesNoInjector) {
  fault::FaultPlan p;
  EXPECT_FALSE(p.enabled());
  EXPECT_NO_THROW(p.validate());
  harness::Testbed tb(small_cfg());
  EXPECT_EQ(tb.fault_injector(), nullptr);
}

// ---------------------------------------------------------------------------
// End-to-end failure semantics
// ---------------------------------------------------------------------------

TEST(FaultInjection, MediaErrorsPropagateWithoutRetriesOrHangs) {
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.disk.media_error_rate = 0.2;
  const RunOut r = run_demo(cfg, /*use_dualpar=*/false);
  EXPECT_GT(r.counters.disk_media_errors, 0u);
  EXPECT_GT(r.counters.driver_io_errors, 0u);
  // Media errors are final: reported upward, never retried.
  EXPECT_EQ(r.counters.client_retries, 0u);
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  EXPECT_EQ(r.bytes, 8ull << 20);
}

TEST(FaultInjection, DroppedMessagesRecoverThroughTimeoutAndRetry) {
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.net.drop_rate = 0.05;
  const RunOut r = run_demo(cfg, /*use_dualpar=*/false);
  EXPECT_GT(r.counters.net_dropped, 0u);
  EXPECT_GT(r.counters.client_timeouts, 0u);
  EXPECT_GT(r.counters.client_retries, 0u);
  EXPECT_GT(r.counters.client_recoveries, 0u);
  EXPECT_EQ(r.counters.client_failures, 0u);  // 5% loss never exhausts 6 retries
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  EXPECT_EQ(r.bytes, 8ull << 20);
}

TEST(FaultInjection, BadSectorsAreDeterministicAcrossRuns) {
  harness::TestbedConfig cfg = small_cfg();
  // A latent bad range at the front of every server's extent region.
  cfg.fault.disk.bad_sectors.push_back({fault::kAllServers, 0, 1u << 14});
  const RunOut a = run_demo(cfg, false);
  const RunOut b = run_demo(cfg, false);
  EXPECT_GT(a.counters.disk_bad_sector_hits, 0u);
  EXPECT_EQ(a.counters.disk_bad_sector_hits, b.counters.disk_bad_sector_hits);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.events, b.events);
}

TEST(FaultInjection, StallsDelayButNeverCorrupt) {
  harness::TestbedConfig cfg = small_cfg();
  const RunOut clean = run_demo(cfg, false);
  cfg.fault.disk.stall_rate = 0.1;
  cfg.fault.server.stall_rate = 0.1;
  cfg.fault.net.delay_rate = 0.1;
  const RunOut slow = run_demo(cfg, false);
  EXPECT_GT(slow.counters.disk_stalls + slow.counters.server_stalls +
                slow.counters.net_delayed, 0u);
  EXPECT_EQ(slow.counters.driver_io_errors, 0u);
  EXPECT_EQ(slow.bytes, clean.bytes);
  EXPECT_GT(slow.completion, clean.completion);
}

TEST(FaultInjection, TransientPartitionHealsViaRetry) {
  harness::TestbedConfig cfg = small_cfg();
  const RunOut clean = run_demo(cfg, false);
  // Cut compute node 0 (node id S+1 = 4) off from data server 0 for the
  // middle third of the clean run.
  cfg.fault.net.partitions.push_back(
      {cfg.data_servers + 1, 0, clean.completion / 3, 2 * clean.completion / 3});
  const RunOut r = run_demo(cfg, false);
  EXPECT_GT(r.counters.net_partition_drops, 0u);
  EXPECT_GT(r.counters.client_retries, 0u);
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  EXPECT_EQ(r.bytes, clean.bytes);
}

TEST(FaultInjection, CrashLosesQueuedWorkAndRestartRecovers) {
  harness::TestbedConfig cfg = small_cfg();
  const RunOut clean = run_demo(cfg, false);
  fault::ServerFaults::Crash crash;
  crash.server = 1;
  crash.at = clean.completion / 3;
  crash.restart_at = clean.completion / 3 + sim::msec(120);
  cfg.fault.server.crashes.push_back(crash);
  const RunOut r = run_demo(cfg, false);
  EXPECT_EQ(r.counters.server_crashes, 1u);
  EXPECT_EQ(r.counters.server_restarts, 1u);
  // The outage was felt: requests refused while down and/or queued work lost.
  EXPECT_GT(r.counters.server_refused_requests +
                r.counters.server_lost_completions, 0u);
  EXPECT_GT(r.counters.client_timeouts, 0u);
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  EXPECT_EQ(r.bytes, clean.bytes);
  // EMC tracked the outage even though the job ran vanilla.
  EXPECT_EQ(r.counters.emc_degraded_entries, 1u);
  EXPECT_EQ(r.counters.emc_degraded_exits, 1u);
  EXPECT_FALSE(r.emc_degraded_at_end);
}

TEST(FaultInjection, FaultLedgerFormatsEveryCounter) {
  fault::Counters c;
  c.disk_media_errors = 3;
  c.client_retries = 7;
  const auto rows = metrics::fault_counter_rows(c);
  EXPECT_EQ(rows.size(), 24u);
  const std::string report = metrics::format_fault_report(c);
  EXPECT_NE(report.find("disk_media_errors: 3"), std::string::npos);
  EXPECT_NE(report.find("client_retries: 7"), std::string::npos);
  const std::string line = metrics::fault_summary_line(c);
  EXPECT_NE(line.find("disk=3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism: (seed, plan) fully decides a faulted run
// ---------------------------------------------------------------------------

TEST(FaultDeterminism, SameSeedSamePlanIsByteIdentical) {
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.net.drop_rate = 0.03;
  cfg.fault.disk.media_error_rate = 0.02;
  cfg.fault.disk.stall_rate = 0.05;
  const RunOut a = run_demo(cfg, true);
  const RunOut b = run_demo(cfg, true);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(metrics::format_fault_report(a.counters),
            metrics::format_fault_report(b.counters));
}

TEST(FaultDeterminism, DifferentSeedsDiverge) {
  harness::TestbedConfig cfg = small_cfg();
  cfg.fault.net.drop_rate = 0.05;
  const RunOut a = run_demo(cfg, false);
  cfg.fault.seed ^= 0x9e3779b9;
  const RunOut b = run_demo(cfg, false);
  // Same totals (all data delivered), different fault history.
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_NE(a.counters.net_dropped, b.counters.net_dropped);
}

TEST(FaultDeterminism, ExperimentPoolJobsDoNotChangeFaultedResults) {
  // The byte-determinism contract at any DPAR_JOBS: run the same faulted
  // experiments through a 1-thread pool and a 4-thread pool.
  auto submit_all = [](bench::ExperimentPool& pool) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
      pool.submit("faulted-" + std::to_string(seed), [seed] {
        harness::TestbedConfig cfg = small_cfg();
        cfg.fault.seed = seed;
        cfg.fault.net.drop_rate = 0.04;
        cfg.fault.disk.media_error_rate = 0.02;
        const RunOut r = run_demo(cfg, true, 4ull << 20);
        bench::ExperimentStats st;
        st.value = sim::to_seconds(r.completion);
        st.events = r.events;
        st.aux = {static_cast<double>(r.counters.net_dropped),
                  static_cast<double>(r.counters.client_retries),
                  static_cast<double>(r.counters.disk_media_errors)};
        return st;
      });
    }
  };
  bench::ExperimentPool p1(1), p4(4);
  submit_all(p1);
  submit_all(p4);
  const auto& r1 = p1.wait_all();
  const auto& r4 = p4.wait_all();
  ASSERT_EQ(r1.size(), r4.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].stats.value, r4[i].stats.value) << r1[i].label;
    EXPECT_EQ(r1[i].stats.events, r4[i].stats.events) << r1[i].label;
    EXPECT_EQ(r1[i].stats.aux, r4[i].stats.aux) << r1[i].label;
  }
}

}  // namespace
}  // namespace dpar
