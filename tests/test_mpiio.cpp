// Tests for the MPI-IO drivers: vanilla request flow and two-phase
// collective I/O (synchronization, aggregation, sieving, shuffle).
#include <gtest/gtest.h>

#include <memory>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar::mpiio {
namespace {

harness::TestbedConfig small_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  return cfg;
}

TEST(Vanilla, ObserverSeesEveryCall) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 8 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 1 << 20;
  dc.segment_size = 16 * 1024;
  tb.add_job("v", 2, tb.vanilla(), [&](std::uint32_t) { return wl::make_demo(dc); },
             dualpar::Policy::kForcedNormal);
  tb.run();
  // EMC collected request observations: the last evaluation has a ReqDist.
  tb.emc().tick();
  // (No assertion on the value; the hook path is what matters.)
  SUCCEED();
}

TEST(Collective, NoncollectiveCallsPassThrough) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 8 << 20);
  wl::DemoConfig dc;
  dc.file = f;
  dc.file_size = 1 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("c", 2, tb.collective(), [&](std::uint32_t) {
    return wl::make_demo(dc);  // demo never sets collective
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(tb.collective().collective_rounds(), 0u);
}

TEST(Collective, RoundCompletesOnlyWhenAllRanksArrive) {
  harness::Testbed tb(small_config());
  const pfs::FileId f = tb.create_file("a", 64 << 20);
  wl::NoncontigConfig nc;
  nc.file = f;
  nc.columns = 4;
  nc.elmt_count = 256;
  nc.rows = 256;
  nc.collective = true;
  auto& job = tb.add_job("c", 4, tb.collective(), [&](std::uint32_t) {
    return wl::make_noncontig(nc);
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_GT(tb.collective().collective_rounds(), 0u);
  // All application bytes arrived.
  EXPECT_EQ(job.total_bytes(), 4u * 256 * 256 * 4);
}

TEST(Collective, AggregationMergesServerRequests) {
  // Interleaved column reads: collective I/O should produce far fewer disk
  // requests than vanilla for the same bytes.
  auto disk_requests = [&](bool collective) {
    harness::Testbed tb(small_config());
    wl::NoncontigConfig nc;
    nc.columns = 4;
    nc.elmt_count = 64;  // 256-byte elements -> very fragmented vanilla I/O
    nc.rows = 512;
    nc.collective = collective;
    const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
    nc.file = tb.create_file("a", fsize);
    tb.add_job("c", 4,
               collective ? static_cast<mpi::IoDriver&>(tb.collective())
                          : static_cast<mpi::IoDriver&>(tb.vanilla()),
               [&](std::uint32_t) { return wl::make_noncontig(nc); },
               dualpar::Policy::kForcedNormal);
    tb.run();
    std::uint64_t n = 0;
    for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
      n += tb.server(s).trace().dispatches();
    return n;
  };
  EXPECT_LT(disk_requests(true) * 4, disk_requests(false));
}

TEST(Collective, ShuffleTrafficGrowsWithData) {
  harness::Testbed tb(small_config());
  wl::NoncontigConfig nc;
  nc.columns = 4;
  nc.elmt_count = 256;
  nc.rows = 256;
  nc.collective = true;
  const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
  nc.file = tb.create_file("a", fsize);
  auto& job = tb.add_job("c", 4, tb.collective(), [&](std::uint32_t) {
    return wl::make_noncontig(nc);
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  // Aggregators scattered (roughly) every byte that crossed node boundaries.
  EXPECT_GT(tb.collective().shuffle_bytes(), fsize / 4);
}

TEST(Collective, WritePathDeliversAllBytes) {
  harness::Testbed tb(small_config());
  wl::NoncontigConfig nc;
  nc.columns = 4;
  nc.elmt_count = 256;
  nc.rows = 256;
  nc.collective = true;
  nc.is_write = true;
  const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
  nc.file = tb.create_file("a", fsize);
  auto& job = tb.add_job("w", 4, tb.collective(), [&](std::uint32_t) {
    return wl::make_noncontig(nc);
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
  std::uint64_t written = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    written += tb.server(s).bytes_written();
  EXPECT_EQ(written, fsize);
}

TEST(Collective, WriteSievingDoesReadModifyWrite) {
  auto server_reads = [&](bool rmw) {
    harness::TestbedConfig cfg = small_config();
    cfg.collective.write_sieving = rmw;
    harness::Testbed tb(cfg);
    wl::NoncontigConfig nc;
    nc.columns = 4;
    nc.elmt_count = 256;
    nc.rows = 128;
    nc.collective = true;
    nc.is_write = true;
    const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
    nc.file = tb.create_file("a", fsize);
    auto& job = tb.add_job("w", 2, tb.collective(), [&](std::uint32_t) {
      return wl::make_noncontig(nc);  // 2 of 4 columns -> holes in the span
    }, dualpar::Policy::kForcedNormal);
    tb.run();
    EXPECT_TRUE(job.finished());
    std::uint64_t reads = 0;
    for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
      reads += tb.server(s).bytes_read();
    return reads;
  };
  EXPECT_EQ(server_reads(false), 0u);  // native list I/O: pure writes
  EXPECT_GT(server_reads(true), 0u);   // RMW path read the spans first
}

TEST(Collective, DataSievingReadsContiguousSpan) {
  // Dense interleaved reads within a small span: aggregators should sieve
  // (single span read), so servers see slightly MORE bytes than requested.
  harness::Testbed tb(small_config());
  wl::NoncontigConfig nc;
  nc.columns = 4;
  nc.elmt_count = 64;
  nc.rows = 128;
  nc.collective = true;
  const std::uint64_t fsize = nc.columns * nc.elmt_count * 4 * nc.rows;
  nc.file = tb.create_file("a", fsize);
  auto& job = tb.add_job("s", 2, tb.collective(), [&](std::uint32_t) {
    return wl::make_noncontig(nc);  // 2 ranks read columns 0,1 of 4 -> holes
  }, dualpar::Policy::kForcedNormal);
  tb.run();
  std::uint64_t served = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    served += tb.server(s).bytes_read();
  EXPECT_GT(served, job.total_bytes());  // holes were read along (sieving)
}

}  // namespace
}  // namespace dpar::mpiio
