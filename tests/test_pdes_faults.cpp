// Cross-lane fault determinism: with per-compute-node lanes, every fault
// stream (disk verdicts, net drops/delays, server stalls, crash schedules)
// and the client-side timeout/retry protocol must produce byte-identical
// results at every DPAR_PDES_WORKERS setting — workers=0 (unpartitioned
// serial engine) is the reference the partitioned runs are diffed against.
// Plans are randomized per seed so the suite sweeps many fault interleavings
// instead of one hand-picked schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "fault/plan.hpp"
#include "harness/testbed.hpp"
#include "metrics/fault_report.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

/// Randomized cross-lane fault plan: probabilistic disk + server stalls and
/// net faults, one transient partition between a compute node and a server,
/// and one crash/restart window. All drawn from `seed` so a plan is
/// reproducible and each seed exercises a different interleaving.
fault::FaultPlan random_plan(std::uint64_t seed, std::uint32_t servers,
                             std::uint32_t compute_nodes) {
  sim::Rng rng(sim::splitmix64(seed));
  fault::FaultPlan plan;
  plan.seed = seed;
  plan.disk.stall_rate = 0.02 + 0.08 * rng.uniform01();
  plan.disk.stall_time = sim::msec(1) + sim::msec(rng.uniform(4));
  plan.server.stall_rate = 0.01 + 0.04 * rng.uniform01();
  plan.server.stall_time = sim::msec(1) + sim::msec(rng.uniform(3));
  plan.net.drop_rate = 0.002 + 0.006 * rng.uniform01();
  plan.net.delay_rate = 0.01 + 0.04 * rng.uniform01();
  plan.net.delay_time = sim::msec(1) + sim::msec(rng.uniform(4));
  // Partition a (compute node, data server) pair mid-run. Node ids: servers
  // first, then compute nodes (testbed layout).
  fault::NetFaults::Partition part;
  part.node_a = rng.uniform(servers);
  part.node_b = servers + rng.uniform(compute_nodes);
  part.start = sim::msec(40 + rng.uniform(40));
  part.end = part.start + sim::msec(30 + rng.uniform(60));
  plan.net.partitions.push_back(part);
  // One crash/restart window on a random server.
  fault::ServerFaults::Crash crash;
  crash.server = rng.uniform(servers);
  crash.at = sim::msec(60 + rng.uniform(60));
  crash.restart_at = crash.at + sim::msec(80 + rng.uniform(80));
  plan.server.crashes.push_back(crash);
  plan.validate();
  return plan;
}

/// Everything a run can observably produce, flattened to a string: simulated
/// completion time, bytes, event count, the full fault ledger, and the
/// latency distributions (mean + tail). Two runs are "byte-identical" for
/// the determinism contract iff these strings match.
std::string run_signature(std::uint64_t seed, int workers, bool use_dualpar) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 4;
  cfg.compute_nodes = 3;
  cfg.cores_per_node = 4;
  cfg.keep_traces = false;
  cfg.pdes_workers = workers;
  cfg.fault = random_plan(seed, cfg.data_servers, cfg.compute_nodes);
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 6ull << 20);
  dc.file_size = 6ull << 20;
  dc.segment_size = 64 * 1024;
  mpi::Job& job =
      use_dualpar
          ? tb.add_job("j", 6, tb.dualpar(),
                       [dc](std::uint32_t) { return wl::make_demo(dc); },
                       dualpar::Policy::kForcedDataDriven)
          : tb.add_job("j", 6, tb.vanilla(),
                       [dc](std::uint32_t) { return wl::make_demo(dc); },
                       dualpar::Policy::kForcedNormal);
  const std::uint64_t events = tb.run();
  const sim::Histogram rd = job.read_latency();
  const sim::Histogram wr = job.write_latency();
  std::string sig;
  sig += "completion=" + std::to_string(job.completion_time());
  sig += " bytes=" + std::to_string(job.total_bytes());
  sig += " events=" + std::to_string(events);
  sig += " rd_n=" + std::to_string(rd.count());
  sig += " rd_mean=" + std::to_string(rd.mean());
  sig += " rd_p99=" + std::to_string(rd.percentile(0.99));
  sig += " wr_n=" + std::to_string(wr.count());
  sig += "\n" + metrics::format_fault_report(tb.fault_injector()->total());
  return sig;
}

TEST(PdesFaultDeterminism, VanillaByteIdenticalAcrossWorkerCounts) {
  for (std::uint64_t seed : {0xfadeull, 0xc0deull, 0xbeefull}) {
    const std::string w0 = run_signature(seed, 0, /*use_dualpar=*/false);
    for (int workers : {1, 2, 8}) {
      const std::string w = run_signature(seed, workers, false);
      EXPECT_EQ(w0, w) << "seed " << std::hex << seed << std::dec
                       << " workers=" << workers;
    }
  }
}

TEST(PdesFaultDeterminism, DualParByteIdenticalAcrossWorkerCounts) {
  // DualPar jobs keep the compute side on one lane (the driver is not
  // lane-splittable), but servers still get their own lanes and the whole
  // fault machinery — sharded RNGs, counters, EMC degraded mode — runs
  // partitioned. The reference is still the unpartitioned engine.
  for (std::uint64_t seed : {0xfadeull, 0xd00dull}) {
    const std::string w0 = run_signature(seed, 0, /*use_dualpar=*/true);
    for (int workers : {1, 2}) {
      const std::string w = run_signature(seed, workers, true);
      EXPECT_EQ(w0, w) << "seed " << std::hex << seed << std::dec
                       << " workers=" << workers;
    }
  }
}

TEST(PdesFaultDeterminism, FaultLedgerIsNonTrivialUnderThePlan) {
  // Guard against the suite silently passing because nothing ever faulted:
  // the randomized plans above must actually exercise the cross-lane paths.
  const fault::FaultPlan plan = random_plan(0xfade, 4, 3);
  ASSERT_TRUE(plan.enabled());
  const std::string sig = run_signature(0xfade, 1, /*use_dualpar=*/false);
  // The ledger rides inside the signature; spot-check the live streams.
  EXPECT_NE(sig.find("disk_stalls"), std::string::npos);
  EXPECT_NE(sig.find("server_crashes"), std::string::npos);
}

#if DPAR_CHECK_INVARIANTS
TEST(EnginePdesDeath, CrossLaneCancelInsideWindowTripsAssert) {
  // The cancel-safe timeout protocol requires every cancel to come from the
  // lane that owns the event; a cancel reaching across lanes inside a
  // parallel window races the target lane's execution cursor.
  EXPECT_DEATH(
      {
        sim::Engine eng;
        const sim::LaneId a = eng.add_lane();
        const sim::LaneId b = eng.add_lane();
        eng.set_lookahead(sim::usec(50));
        eng.set_pdes_workers(1);
        // Armed from setup (outside any window): a timeout-like event in b.
        const sim::EventId timeout = eng.at_in(b, sim::usec(500), [] {});
        eng.at_in(a, sim::usec(1), [&eng, timeout] {
          // Inside a's window: cancelling b's event crosses the lane
          // boundary mid-window — exactly what generation tags exist to
          // avoid. The invariant layer must abort, not corrupt b's heap.
          eng.cancel(timeout);
        });
        eng.run();
      },
      "cross-lane cancel");
}
#endif

}  // namespace
}  // namespace dpar
