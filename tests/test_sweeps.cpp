// Parameterized sweeps over cluster dimensions: process counts, server
// counts, network speeds, media types. Invariants: completion, byte
// conservation, and the expected qualitative orderings.
#include <gtest/gtest.h>

#include <tuple>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

class ProcCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ProcCountSweep, DemoCompletesAtEveryParallelism) {
  const std::uint32_t procs = GetParam();
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 4 << 20);
  dc.file_size = 4 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("d", procs, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 4u << 20);  // ranks partition the file exactly
}

INSTANTIATE_TEST_SUITE_P(Parallelism, ProcCountSweep,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 64u),
                         [](const auto& info) {
                           return "procs" + std::to_string(info.param);
                         });

class ServerCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ServerCountSweep, StripingScalesWithoutLoss) {
  const std::uint32_t servers = GetParam();
  harness::TestbedConfig cfg;
  cfg.data_servers = servers;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::MpiIoTestConfig mc;
  mc.file_size = 4 << 20;
  mc.file = tb.create_file("f", mc.file_size);
  mc.request_size = 16 * 1024;
  auto& job = tb.add_job("m", 4, tb.vanilla(),
                         [mc](std::uint32_t) { return wl::make_mpi_io_test(mc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 4u << 20);
  std::uint64_t served = 0;
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    served += tb.server(s).bytes_read();
  EXPECT_EQ(served, 4u << 20);
  // Every server participates (round-robin striping).
  for (std::uint32_t s = 0; s < tb.num_servers(); ++s)
    EXPECT_GT(tb.server(s).bytes_read(), 0u) << "server " << s;
}

INSTANTIATE_TEST_SUITE_P(Servers, ServerCountSweep,
                         ::testing::Values(1u, 2u, 5u, 9u, 16u),
                         [](const auto& info) {
                           return "servers" + std::to_string(info.param);
                         });

class BandwidthSweep : public ::testing::TestWithParam<double> {};

TEST_P(BandwidthSweep, FasterFabricNeverHurts) {
  auto runtime = [&](double gbps) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 3;
    cfg.compute_nodes = 2;
    cfg.net.bandwidth_bytes_per_s = gbps * 125e6;
    harness::Testbed tb(cfg);
    wl::DemoConfig dc;
    dc.file = tb.create_file("f", 8 << 20);
    dc.file_size = 8 << 20;
    dc.segment_size = 64 * 1024;
    auto& job = tb.add_job("d", 4, tb.dualpar(),
                           [dc](std::uint32_t) { return wl::make_demo(dc); },
                           dualpar::Policy::kForcedDataDriven);
    tb.run();
    return job.completion_time();
  };
  const double gbps = GetParam();
  EXPECT_LE(runtime(gbps * 2), runtime(gbps) + sim::msec(1));
}

INSTANTIATE_TEST_SUITE_P(Fabrics, BandwidthSweep, ::testing::Values(0.5, 1.0, 10.0),
                         [](const auto& info) {
                           return "gbps" + std::to_string(static_cast<int>(
                                               info.param * 10));
                         });

TEST(MediaSweep, SsdShrinksDualParAdvantage) {
  auto gain = [&](bool ssd) {
    auto run = [&](bool dualpar) {
      harness::TestbedConfig cfg;
      cfg.data_servers = 3;
      cfg.compute_nodes = 2;
      if (ssd) cfg.disk = disk::ssd_params();
      harness::Testbed tb(cfg);
      wl::NoncontigConfig nc;
      nc.columns = 4;
      nc.elmt_count = 128;
      nc.rows = 2048;
      nc.file = tb.create_file("f", nc.columns * nc.elmt_count * 4 * nc.rows);
      auto& job = tb.add_job(
          "n", 4,
          dualpar ? static_cast<mpi::IoDriver&>(tb.dualpar())
                  : static_cast<mpi::IoDriver&>(tb.vanilla()),
          [nc](std::uint32_t) { return wl::make_noncontig(nc); },
          dualpar ? dualpar::Policy::kForcedDataDriven
                  : dualpar::Policy::kForcedNormal);
      tb.run();
      return tb.job_throughput_mbs(job);
    };
    return run(true) / run(false);
  };
  const double disk_gain = gain(false);
  const double ssd_gain = gain(true);
  EXPECT_GT(disk_gain, ssd_gain);  // the paper's premise is mechanical
  EXPECT_GT(ssd_gain, 0.8);        // and DualPar never becomes a disaster
}

TEST(LatencyAccounting, DualParHasBimodalReadLatency) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 8 << 20);
  dc.file_size = 8 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("d", 4, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  const auto& h = job.read_latency();
  EXPECT_GT(h.count(), 0u);
  // Median call is a memcached hit (a few ms of gets at most); the tail
  // waited out a whole data-driven cycle.
  EXPECT_LE(h.percentile(0.5), 8192.0);  // bucketed: <= 8 ms
  EXPECT_GT(h.percentile(0.99), h.percentile(0.5) * 5);
}

TEST(LatencyAccounting, VanillaReadLatencyIsUnimodal) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 8 << 20);
  dc.file_size = 8 << 20;
  dc.segment_size = 64 * 1024;
  dc.segments_per_call = 1;
  auto& job = tb.add_job("v", 4, tb.vanilla(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  const auto& h = job.read_latency();
  EXPECT_GT(h.count(), 0u);
  // Log-bucketed percentiles: p99 within a few buckets of the median.
  EXPECT_LE(h.percentile(0.99), h.percentile(0.5) * 16);
}

}  // namespace
}  // namespace dpar
