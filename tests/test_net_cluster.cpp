// Tests for the network fabric and the compute-node CPU scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/node.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace dpar {
namespace {

using sim::Engine;
using sim::Time;

net::NetParams no_jitter() {
  net::NetParams p;
  p.latency_jitter = 0;
  return p;
}

TEST(Network, SingleMessageLatency) {
  Engine eng;
  net::Network net(eng, 2, no_jitter());
  Time delivered = -1;
  net.send(0, 1, 1'000'000, [&] { delivered = eng.now(); });
  eng.run();
  // 1 MB at 125 MB/s = 8 ms on TX and RX each, + 50 us switch latency.
  const Time expected = 2 * sim::transfer_time(1'000'064, 125e6) + sim::usec(50);
  EXPECT_NEAR(static_cast<double>(delivered), static_cast<double>(expected), 1e4);
}

TEST(Network, LoopbackIsCheap) {
  Engine eng;
  net::Network net(eng, 2);
  Time delivered = -1;
  net.send(1, 1, 1'000'000, [&] { delivered = eng.now(); });
  eng.run();
  EXPECT_LT(delivered, sim::msec(1));
}

TEST(Network, TxSerializesAtSender) {
  Engine eng;
  net::Network net(eng, 3, no_jitter());
  std::vector<Time> deliveries;
  // Two messages from node 0; the second waits for the first's TX.
  net.send(0, 1, 1'000'000, [&] { deliveries.push_back(eng.now()); });
  net.send(0, 2, 1'000'000, [&] { deliveries.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(deliveries.size(), 2u);
  const Time one_tx = sim::transfer_time(1'000'064, 125e6);
  EXPECT_GE(deliveries[1] - deliveries[0], one_tx - sim::usec(1));
}

TEST(Network, IncastSerializesAtReceiver) {
  Engine eng;
  net::Network net(eng, 5);
  std::vector<Time> deliveries;
  for (std::uint32_t s = 1; s <= 4; ++s)
    net.send(s, 0, 2'000'000, [&] { deliveries.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(deliveries.size(), 4u);
  // All senders transmit in parallel but the receiver's RX drains serially:
  // total completion is at least 4 RX times.
  const Time rx = sim::transfer_time(2'000'064, 125e6);
  EXPECT_GE(deliveries.back(), 4 * rx);
}

TEST(Network, CountsTraffic) {
  Engine eng;
  net::Network net(eng, 2);
  net.send(0, 1, 500, [] {});
  net.send(1, 0, 700, [] {});
  eng.run();
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.bytes_sent(), 1200u);
}

TEST(Network, BadNodeThrows) {
  Engine eng;
  net::Network net(eng, 2);
  EXPECT_THROW(net.send(0, 7, 100, [] {}), std::out_of_range);
}

TEST(ComputeNode, ParallelUpToCores) {
  Engine eng;
  cluster::ComputeNode node(eng, 0, 4);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i)
    node.run(sim::msec(10), cluster::CpuPriority::kNormal, [&] { done.push_back(eng.now()); });
  eng.run();
  for (Time t : done) EXPECT_EQ(t, sim::msec(10));  // all ran concurrently
}

TEST(ComputeNode, QueuesBeyondCores) {
  Engine eng;
  cluster::ComputeNode node(eng, 0, 2);
  std::vector<Time> done;
  for (int i = 0; i < 4; ++i)
    node.run(sim::msec(10), cluster::CpuPriority::kNormal, [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], sim::msec(10));
  EXPECT_EQ(done[1], sim::msec(10));
  EXPECT_EQ(done[2], sim::msec(20));
  EXPECT_EQ(done[3], sim::msec(20));
}

TEST(ComputeNode, NormalPriorityBeatsGhost) {
  Engine eng;
  cluster::ComputeNode node(eng, 0, 1);
  std::vector<int> order;
  // Occupy the core, then queue ghost before normal; normal must still win.
  node.run(sim::msec(1), cluster::CpuPriority::kNormal, [] {});
  node.run(sim::msec(1), cluster::CpuPriority::kGhost, [&] { order.push_back(2); });
  node.run(sim::msec(1), cluster::CpuPriority::kNormal, [&] { order.push_back(1); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ComputeNode, GhostUsesSpareCores) {
  Engine eng;
  cluster::ComputeNode node(eng, 0, 2);
  Time ghost_done = -1;
  node.run(sim::msec(10), cluster::CpuPriority::kNormal, [] {});
  node.run(sim::msec(5), cluster::CpuPriority::kGhost, [&] { ghost_done = eng.now(); });
  eng.run();
  EXPECT_EQ(ghost_done, sim::msec(5));  // ran on the idle second core
  EXPECT_EQ(node.normal_cpu_time(), sim::msec(10));
  EXPECT_EQ(node.ghost_cpu_time(), sim::msec(5));
}

}  // namespace
}  // namespace dpar
