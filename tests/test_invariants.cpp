// Debug invariant layer (src/sim/debug.hpp): the checks themselves, and —
// under DPAR_CHECK_INVARIANTS — proof that DPAR_ASSERT actually fires on
// deliberately corrupted structures. Death tests use the threadsafe style so
// they re-exec rather than fork mid-state.
#include <gtest/gtest.h>

#include "cache/rangeset.hpp"
#include "dualpar/emc.hpp"
#include "harness/testbed.hpp"
#include "pfs/layout.hpp"
#include "sim/debug.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

using cache::RangeSet;
using sim::Engine;

TEST(Invariants, EngineSurvivesScheduleCancelChurn) {
  Engine eng;
  sim::Rng rng(123);
  std::vector<sim::EventId> pending;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 40; ++i)
      pending.push_back(
          eng.after(static_cast<sim::Time>(rng.uniform(1000)), [] {}));
    // Cancel a deterministic half to force stale keys and compactions.
    for (std::size_t i = 0; i < pending.size(); i += 2) eng.cancel(pending[i]);
    pending.clear();
    eng.check_invariants();
    eng.run(30);
    eng.check_invariants();
  }
  eng.run();
  eng.check_invariants();
  EXPECT_TRUE(eng.empty());
}

TEST(Invariants, RangeSetStaysValidUnderRandomOps) {
  RangeSet rs;
  sim::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng.uniform(1 << 16);
    const std::uint64_t b = a + 1 + rng.uniform(1 << 10);
    if (rng.chance(0.6)) {
      rs.add(a, b);
    } else {
      rs.remove(a, b);
    }
    rs.check_invariants();
  }
}

TEST(Invariants, EmcIndexAgreesAfterRegistrations) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  tb.emc().check_invariants();  // empty table
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 0;
  dc.segment_size = 4096;
  const auto factory = [dc](std::uint32_t) { return wl::make_demo(dc); };
  for (int i = 0; i < 5; ++i) {
    auto& job = tb.add_job("j" + std::to_string(i), 1, tb.vanilla(), factory,
                           i % 2 ? dualpar::Policy::kForcedNormal
                                 : dualpar::Policy::kAdaptive);
    tb.emc().check_invariants();
    EXPECT_EQ(tb.emc().mode(job.id()), dualpar::Mode::kNormal);
  }
}

#if DPAR_CHECK_INVARIANTS

using InvariantsDeath = ::testing::Test;

TEST(InvariantsDeath, AssertFiresOnCorruptedRangeSetTotal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RangeSet rs;
  rs.add(0, 100);
  rs.add(200, 300);
  rs.debug_corrupt_total_for_test(1);
  EXPECT_DEATH(rs.check_invariants(),
               "incremental byte total diverged from range sum");
}

TEST(InvariantsDeath, AssertFiresOnCorruptedRangeSetOrder) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RangeSet rs;
  rs.add(0, 100);
  rs.add(200, 300);
  rs.add(400, 500);
  rs.debug_corrupt_order_for_test();
  EXPECT_DEATH(rs.check_invariants(),
               "out of order, overlapping, or adjacent");
}

TEST(InvariantsDeath, MutationPathCatchesCorruptedTotal) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  RangeSet rs;
  rs.add(0, 100);
  rs.add(200, 300);
  rs.debug_corrupt_total_for_test(7);
  // remove() re-validates after mutating: the corruption is caught on the
  // next structural operation, not only by an explicit call.
  EXPECT_DEATH(rs.remove(50, 250), "diverged from range sum");
}

#else

TEST(InvariantsDeath, SkippedWithoutInvariantLayer) {
  GTEST_SKIP() << "DPAR_CHECK_INVARIANTS is compiled out in this build "
                  "(Release default); Debug/sanitizer legs run the death "
                  "tests.";
}

#endif  // DPAR_CHECK_INVARIANTS

}  // namespace
}  // namespace dpar
