// Robustness: invalid configurations fail loudly, boundary workloads behave,
// and the public API rejects misuse instead of corrupting state.
#include <gtest/gtest.h>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

TEST(ConfigValidation, RejectsDegenerateClusters) {
  {
    harness::TestbedConfig cfg;
    cfg.data_servers = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.compute_nodes = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.cores_per_node = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.stripe_unit = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.dualpar.cache_quota = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
}

TEST(ConfigValidation, MinimalClusterWorks) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 1;
  cfg.compute_nodes = 1;
  cfg.cores_per_node = 1;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 1 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("j", 1, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 1u << 20);
}

TEST(Boundaries, ZeroLengthFileJobEndsCleanly) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 1;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 0;
  auto& job = tb.add_job("j", 4, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 0u);
}

TEST(Boundaries, SingleByteRequestsSurviveTheFullStack) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::NoncontigConfig nc;
  nc.columns = 4;
  nc.elmt_count = 1;  // 4-byte elements — BTIO-at-256-procs territory
  nc.rows = 64;
  nc.file = tb.create_file("f", nc.columns * 4 * nc.rows);
  auto& job = tb.add_job("tiny", 4, tb.dualpar(),
                         [nc](std::uint32_t) { return wl::make_noncontig(nc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 4u * 4 * 64);
}

TEST(Boundaries, RequestAtExactFileEnd) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 1;
  harness::Testbed tb(cfg);
  const std::uint64_t fsize = 3 * 64 * 1024 + 100;  // not unit-aligned
  wl::IorConfig ic;
  ic.file_size = fsize - fsize % (32 * 1024);
  ic.request_size = 32 * 1024;
  ic.file = tb.create_file("f", fsize);
  auto& job = tb.add_job("e", 1, tb.vanilla(),
                         [ic](std::uint32_t) { return wl::make_ior(ic); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
}

TEST(Boundaries, ManyJobsSequentially) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  for (int i = 0; i < 6; ++i) {
    wl::DemoConfig dc;
    dc.file = tb.create_file("f" + std::to_string(i), 1 << 20);
    dc.file_size = 1 << 20;
    dc.segment_size = 64 * 1024;
    tb.add_job("j" + std::to_string(i), 2, tb.dualpar(),
               [dc](std::uint32_t) { return wl::make_demo(dc); },
               dualpar::Policy::kForcedDataDriven, sim::msec(100 * i));
  }
  tb.run();
  EXPECT_TRUE(tb.all_jobs_finished());
}

TEST(Boundaries, HugeQuotaDoesNotOverrun) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 1;
  cfg.dualpar.cache_quota = 1ull << 40;  // quota far beyond the file
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 2 << 20);
  dc.file_size = 2 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("q", 2, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  // The whole remaining file fits in one prefetch batch — one cycle.
  EXPECT_EQ(tb.dualpar().stats().cycles, 1u);
}

// ---------------------------------------------------------------------------
// Degraded-mode DualPar: a data server crashes mid-run and restarts.
// ---------------------------------------------------------------------------

namespace crashdemo {

struct Out {
  sim::Time completion = 0;
  std::uint64_t bytes = 0;
  bool saw_degraded_mid_outage = false;
  bool degraded_at_end = false;
  fault::Counters counters;
};

/// Demo-read workload, optionally with a mid-run crash+restart of server 1.
/// `crash_at` of 0 means no crash: the plan stays inert and the run takes the
/// fault-free fast path, which is exactly the baseline we compare against.
Out run(bool use_dualpar, sim::Time crash_at, sim::Time restart_at) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  cfg.keep_traces = false;
  if (crash_at > 0) cfg.fault.server.crashes.push_back({1, crash_at, restart_at});
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 8 << 20);
  dc.file_size = 8 << 20;
  dc.segment_size = 64 * 1024;
  auto& job = use_dualpar
                  ? tb.add_job("j", 4, tb.dualpar(),
                               [dc](std::uint32_t) { return wl::make_demo(dc); },
                               dualpar::Policy::kForcedDataDriven)
                  : tb.add_job("j", 4, tb.vanilla(),
                               [dc](std::uint32_t) { return wl::make_demo(dc); },
                               dualpar::Policy::kForcedNormal);
  Out out;
  if (crash_at > 0) {
    // Probe the EMC in the middle of the outage: the scheduler must have
    // fallen back to vanilla independent execution by then.
    tb.engine().at((crash_at + restart_at) / 2, [&tb, &out] {
      out.saw_degraded_mid_outage = tb.emc().degraded();
    });
  }
  tb.run();
  out.completion = job.completion_time();
  out.bytes = job.total_bytes();
  out.degraded_at_end = tb.emc().degraded();
  if (tb.fault_injector()) out.counters = tb.fault_injector()->total();
  return out;
}

}  // namespace crashdemo

TEST(CrashRecovery, VanillaCompletesThroughMidRunCrashAndRestart) {
  const crashdemo::Out clean = crashdemo::run(false, 0, 0);
  const sim::Time at = clean.completion / 3;
  const crashdemo::Out r = crashdemo::run(false, at, at + sim::msec(120));
  EXPECT_EQ(r.bytes, clean.bytes);
  EXPECT_EQ(r.counters.server_crashes, 1u);
  EXPECT_EQ(r.counters.server_restarts, 1u);
  EXPECT_GT(r.counters.client_timeouts, 0u);
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  // The outage cost time but never data.
  EXPECT_GT(r.completion, clean.completion);
}

TEST(CrashRecovery, DualParFallsBackDuringOutageAndReengagesAfter) {
  const crashdemo::Out clean = crashdemo::run(true, 0, 0);
  const sim::Time at = clean.completion / 3;
  const crashdemo::Out r = crashdemo::run(true, at, at + sim::msec(120));
  // Correctness through the outage: every byte delivered, no leaked requests.
  EXPECT_EQ(r.bytes, clean.bytes);
  EXPECT_EQ(r.counters.client_ops_started, r.counters.client_ops_finished);
  // Degraded-mode state machine: entered on the crash, felt mid-outage,
  // exited after the restart, normal again by the end of the run.
  EXPECT_TRUE(r.saw_degraded_mid_outage);
  EXPECT_GE(r.counters.emc_degraded_entries, 1u);
  EXPECT_GE(r.counters.emc_degraded_exits, 1u);
  EXPECT_FALSE(r.degraded_at_end);
}

}  // namespace
}  // namespace dpar
