// Robustness: invalid configurations fail loudly, boundary workloads behave,
// and the public API rejects misuse instead of corrupting state.
#include <gtest/gtest.h>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

TEST(ConfigValidation, RejectsDegenerateClusters) {
  {
    harness::TestbedConfig cfg;
    cfg.data_servers = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.compute_nodes = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.cores_per_node = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.stripe_unit = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
  {
    harness::TestbedConfig cfg;
    cfg.dualpar.cache_quota = 0;
    EXPECT_THROW(harness::Testbed tb(cfg), std::invalid_argument);
  }
}

TEST(ConfigValidation, MinimalClusterWorks) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 1;
  cfg.compute_nodes = 1;
  cfg.cores_per_node = 1;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 1 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("j", 1, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 1u << 20);
}

TEST(Boundaries, ZeroLengthFileJobEndsCleanly) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 1;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 1 << 20);
  dc.file_size = 0;
  auto& job = tb.add_job("j", 4, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), 0u);
}

TEST(Boundaries, SingleByteRequestsSurviveTheFullStack) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  wl::NoncontigConfig nc;
  nc.columns = 4;
  nc.elmt_count = 1;  // 4-byte elements — BTIO-at-256-procs territory
  nc.rows = 64;
  nc.file = tb.create_file("f", nc.columns * 4 * nc.rows);
  auto& job = tb.add_job("tiny", 4, tb.dualpar(),
                         [nc](std::uint32_t) { return wl::make_noncontig(nc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 4u * 4 * 64);
}

TEST(Boundaries, RequestAtExactFileEnd) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 1;
  harness::Testbed tb(cfg);
  const std::uint64_t fsize = 3 * 64 * 1024 + 100;  // not unit-aligned
  wl::IorConfig ic;
  ic.file_size = fsize - fsize % (32 * 1024);
  ic.request_size = 32 * 1024;
  ic.file = tb.create_file("f", fsize);
  auto& job = tb.add_job("e", 1, tb.vanilla(),
                         [ic](std::uint32_t) { return wl::make_ior(ic); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_TRUE(job.finished());
}

TEST(Boundaries, ManyJobsSequentially) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  harness::Testbed tb(cfg);
  for (int i = 0; i < 6; ++i) {
    wl::DemoConfig dc;
    dc.file = tb.create_file("f" + std::to_string(i), 1 << 20);
    dc.file_size = 1 << 20;
    dc.segment_size = 64 * 1024;
    tb.add_job("j" + std::to_string(i), 2, tb.dualpar(),
               [dc](std::uint32_t) { return wl::make_demo(dc); },
               dualpar::Policy::kForcedDataDriven, sim::msec(100 * i));
  }
  tb.run();
  EXPECT_TRUE(tb.all_jobs_finished());
}

TEST(Boundaries, HugeQuotaDoesNotOverrun) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 1;
  cfg.dualpar.cache_quota = 1ull << 40;  // quota far beyond the file
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 2 << 20);
  dc.file_size = 2 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("q", 2, tb.dualpar(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  // The whole remaining file fits in one prefetch batch — one cycle.
  EXPECT_EQ(tb.dualpar().stats().cycles, 1u);
}

}  // namespace
}  // namespace dpar
