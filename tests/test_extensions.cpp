// Tests for the extension features: the anticipatory scheduler, per-server
// disk heterogeneity, cache capacity/LRU eviction, collective aggregator
// caps, and CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "disk/device.hpp"
#include "disk/scheduler.hpp"
#include "harness/testbed.hpp"
#include "metrics/csv.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

using sim::Engine;
using sim::Time;

disk::Request make_req(std::uint64_t id, std::uint64_t lba, std::uint32_t sectors,
                       std::uint64_t ctx = 0) {
  disk::Request r;
  r.id = id;
  r.lba = lba;
  r.sectors = sectors;
  r.context = ctx;
  return r;
}

TEST(AnticipatoryScheduler, ServesEverythingOnce) {
  auto s = disk::make_anticipatory_scheduler();
  sim::Rng rng(5);
  for (std::uint64_t i = 0; i < 200; ++i)
    s->enqueue(make_req(i, rng.uniform(1 << 22), 16, rng.uniform(4)), 0);
  std::uint64_t served = 0, head = 0;
  Time now = sim::secs(1);
  int guard = 0;
  while (s->pending() > 0 && guard++ < 3000) {
    auto d = s->next(head, now);
    if (d.kind == disk::Decision::Kind::kDispatch) {
      ++served;
      head = d.request.end_lba();
      s->completed(d.request, now);
    } else if (d.kind == disk::Decision::Kind::kWaitUntil) {
      now = std::max(now + 1, d.wait_until);
    } else {
      break;
    }
    now += sim::usec(200);
  }
  EXPECT_EQ(served, 200u);
}

TEST(AnticipatoryScheduler, WaitsForTheLastSyncContext) {
  auto s = disk::make_anticipatory_scheduler(sim::msec(6), sim::msec(10));
  Time now = 0;
  // Context 1 reads at LBA 1000; a far request from context 2 is queued.
  s->enqueue(make_req(1, 1000, 16, 1), now);
  auto d = s->next(0, now);
  ASSERT_EQ(d.kind, disk::Decision::Kind::kDispatch);
  s->enqueue(make_req(2, 9'000'000, 16, 2), now);
  now += sim::msec(1);
  s->completed(d.request, now);
  // Immediately after the sync completion the scheduler should anticipate
  // context 1 rather than jump to the far request.
  d = s->next(1016, now);
  EXPECT_EQ(d.kind, disk::Decision::Kind::kWaitUntil);
  // Context 1 delivers a nearby request within the window: it wins.
  now += sim::msec(2);
  s->enqueue(make_req(3, 1016, 16, 1), now);
  d = s->next(1016, now);
  ASSERT_EQ(d.kind, disk::Decision::Kind::kDispatch);
  EXPECT_EQ(d.request.lba, 1016u);
}

TEST(AnticipatoryScheduler, GivesUpAtTheDeadline) {
  auto s = disk::make_anticipatory_scheduler(sim::msec(6), sim::msec(10));
  Time now = 0;
  s->enqueue(make_req(1, 1000, 16, 1), now);
  auto d = s->next(0, now);
  s->enqueue(make_req(2, 9'000'000, 16, 2), now);
  now += sim::msec(1);
  s->completed(d.request, now);
  d = s->next(1016, now);
  ASSERT_EQ(d.kind, disk::Decision::Kind::kWaitUntil);
  now = d.wait_until;  // nothing arrives
  d = s->next(1016, now);
  ASSERT_EQ(d.kind, disk::Decision::Kind::kDispatch);
  EXPECT_EQ(d.request.lba, 9'000'000u);  // bet lost, serve the far request
}

TEST(AnticipatoryScheduler, EndToEndThroughTestbed) {
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  cfg.scheduler = disk::SchedulerKind::kAnticipatory;
  harness::Testbed tb(cfg);
  wl::DemoConfig dc;
  dc.file = tb.create_file("f", 4 << 20);
  dc.file_size = 4 << 20;
  dc.segment_size = 16 * 1024;
  auto& job = tb.add_job("j", 2, tb.vanilla(),
                         [dc](std::uint32_t) { return wl::make_demo(dc); },
                         dualpar::Policy::kForcedNormal);
  tb.run();
  EXPECT_EQ(job.total_bytes(), 4u << 20);
}

TEST(HeterogeneousServers, DegradedServerSlowsItsRequests) {
  auto run = [](bool degrade) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 3;
    cfg.compute_nodes = 2;
    if (degrade) {
      disk::DiskParams slow = cfg.disk;
      slow.sustained_mb_s /= 8;
      cfg.per_server_disk.assign(3, cfg.disk);
      cfg.per_server_disk[1] = slow;
    }
    harness::Testbed tb(cfg);
    wl::DemoConfig dc;
    dc.file = tb.create_file("f", 8 << 20);
    dc.file_size = 8 << 20;
    dc.segment_size = 64 * 1024;
    auto& job = tb.add_job("j", 2, tb.vanilla(),
                           [dc](std::uint32_t) { return wl::make_demo(dc); },
                           dualpar::Policy::kForcedNormal);
    tb.run();
    return job.completion_time();
  };
  EXPECT_GT(run(true), run(false));
}

TEST(CacheCapacity, LruEvictionKeepsNodeUnderLimit) {
  Engine eng;
  net::Network net(eng, 2);
  cache::CacheParams p;
  p.chunk_bytes = 64 * 1024;
  p.capacity_per_node = 256 * 1024;  // 4 chunks per node
  cache::GlobalCache cache(eng, net, {0}, p);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.insert(1, pfs::Segment{i * 64 * 1024, 64 * 1024}, 5, false);
    eng.run_until(sim::msec(static_cast<std::int64_t>(i + 1)));
  }
  EXPECT_LE(cache.node_bytes(0), 256u * 1024);
  EXPECT_GE(cache.capacity_evictions(), 4u);
  // The oldest chunks are gone, the newest survive.
  EXPECT_FALSE(cache.covers(1, pfs::Segment{0, 1}));
  EXPECT_TRUE(cache.covers(1, pfs::Segment{7 * 64 * 1024, 1}));
}

TEST(CacheCapacity, DirtyChunksAreNeverEvicted) {
  Engine eng;
  net::Network net(eng, 2);
  cache::CacheParams p;
  p.chunk_bytes = 64 * 1024;
  p.capacity_per_node = 128 * 1024;
  cache::GlobalCache cache(eng, net, {0}, p);
  for (std::uint64_t i = 0; i < 6; ++i) {
    cache.write(1, pfs::Segment{i * 64 * 1024, 64 * 1024}, 5);
    eng.run_until(sim::msec(static_cast<std::int64_t>(i + 1)));
  }
  // Over capacity but everything is dirty: nothing may be dropped.
  EXPECT_EQ(cache.dirty_segments(1).size(), 1u);
  EXPECT_EQ(cache.total_valid_bytes(), 6u * 64 * 1024);
}

TEST(CollectiveAggregators, CapLimitsAggregatorCount) {
  auto rounds_with_cap = [](std::uint32_t cap) {
    harness::TestbedConfig cfg;
    cfg.data_servers = 3;
    cfg.compute_nodes = 4;
    cfg.collective.max_aggregators = cap;
    harness::Testbed tb(cfg);
    wl::NoncontigConfig nc;
    nc.columns = 8;
    nc.elmt_count = 256;
    nc.rows = 128;
    nc.collective = true;
    nc.file = tb.create_file("f", nc.columns * nc.elmt_count * 4 * nc.rows);
    auto& job = tb.add_job("c", 8, tb.collective(),
                           [nc](std::uint32_t) { return wl::make_noncontig(nc); },
                           dualpar::Policy::kForcedNormal);
    tb.run();
    EXPECT_TRUE(job.finished());
    return job.total_bytes();
  };
  // Both configurations move all application bytes.
  EXPECT_EQ(rounds_with_cap(0), rounds_with_cap(1));
}

TEST(CacheEviction, IdleChunksExpireDuringLongRuns) {
  // Two widely separated jobs: the first job's chunks must be gone (idle
  // eviction tick) by the time the run ends, not accumulated forever.
  harness::TestbedConfig cfg;
  cfg.data_servers = 2;
  cfg.compute_nodes = 2;
  cfg.cache.idle_eviction = sim::secs(2);
  harness::Testbed tb(cfg);
  wl::DemoConfig d1;
  d1.file = tb.create_file("a", 4 << 20);
  d1.file_size = 4 << 20;
  d1.segment_size = 64 * 1024;
  tb.add_job("early", 2, tb.dualpar(), [d1](std::uint32_t) { return wl::make_demo(d1); },
             dualpar::Policy::kForcedDataDriven);
  // A late compute-only job keeps the clock running past the eviction TTL.
  wl::DemoConfig d2;
  d2.file = tb.create_file("b", 1 << 20);
  d2.file_size = 64 * 1024;
  d2.segment_size = 64 * 1024;
  d2.compute_per_call = sim::secs(1);
  tb.add_job("late", 1, tb.vanilla(), [d2](std::uint32_t) { return wl::make_demo(d2); },
             dualpar::Policy::kForcedNormal, sim::secs(5));
  tb.run();
  EXPECT_EQ(tb.cache().total_valid_bytes(), 0u);
}

TEST(CsvExport, SeriesRoundTrips) {
  sim::TimeSeries series;
  series.add(sim::secs(1), 10.5);
  series.add(sim::secs(2), 20.25);
  const std::string path = ::testing::TempDir() + "/series.csv";
  ASSERT_TRUE(metrics::write_series_csv(path, series, "mbps"));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  EXPECT_NE(text.find("time_s,mbps"), std::string::npos);
  EXPECT_NE(text.find("1.000000,10.500000"), std::string::npos);
  EXPECT_NE(text.find("2.000000,20.250000"), std::string::npos);
}

TEST(CsvExport, TraceRoundTrips) {
  std::vector<disk::TraceEvent> events;
  disk::TraceEvent ev;
  ev.time = sim::msec(1500);
  ev.lba = 4096;
  ev.sectors = 32;
  ev.is_write = true;
  ev.context = 7;
  ev.seek_distance = 123;
  events.push_back(ev);
  const std::string path = ::testing::TempDir() + "/trace.csv";
  ASSERT_TRUE(metrics::write_trace_csv(path, events));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("1.500000,4096,32,W,7,123"), std::string::npos);
}

TEST(CsvExport, FailsOnUnwritablePath) {
  sim::TimeSeries s;
  EXPECT_FALSE(metrics::write_series_csv("/nonexistent-dir/x.csv", s));
}

TEST(DiskPlugging, DelayedDispatchBatchesABurst) {
  // With plugging enabled, a burst arriving within the plug window is
  // dispatched in sorted order even under NOOP-free arrival order.
  Engine eng;
  disk::DiskParams p;
  p.plug_delay = sim::msec(2);
  disk::DiskDevice dev(eng, p, disk::make_cfq_scheduler());
  std::vector<std::uint64_t> lbas = {9000, 1000, 5000, 3000, 7000};
  for (std::uint64_t lba : lbas) {
    disk::Request r = make_req(lba, lba, 16, 0);
    dev.submit(std::move(r));
  }
  eng.run();
  const auto& evs = dev.trace().events();
  ASSERT_EQ(evs.size(), 5u);
  for (std::size_t i = 1; i < evs.size(); ++i) EXPECT_GT(evs[i].lba, evs[i - 1].lba);
  // Nothing dispatched before the plug window elapsed.
  EXPECT_GE(evs.front().time, sim::msec(2));
}

TEST(DiskPlugging, ThresholdUnplugsEarly) {
  Engine eng;
  disk::DiskParams p;
  p.plug_delay = sim::secs(10);  // absurdly long; threshold must fire first
  p.plug_threshold = 4;
  disk::DiskDevice dev(eng, p, disk::make_cfq_scheduler());
  for (std::uint64_t i = 0; i < 4; ++i) dev.submit(make_req(i, i * 1000, 16, 0));
  eng.run();
  EXPECT_EQ(dev.trace().events().size(), 4u);
  EXPECT_LT(dev.trace().events().front().time, sim::secs(1));
}

}  // namespace
}  // namespace dpar
