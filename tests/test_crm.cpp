// Tests for CRM's pure planning logic: sorting, merging, hole filling,
// write-back planning, ReqDist.
#include <gtest/gtest.h>

#include "dualpar/crm.hpp"
#include "sim/rng.hpp"

namespace dpar::dualpar {
namespace {

using pfs::Segment;

TEST(BuildReadBatch, SortsByOffset) {
  BatchOptions opt;
  opt.hole_fill_max = 0;
  auto out = build_read_batch({{300, 10}, {100, 10}, {200, 10}}, opt);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].offset, 100u);
  EXPECT_EQ(out[1].offset, 200u);
  EXPECT_EQ(out[2].offset, 300u);
}

TEST(BuildReadBatch, MergesAdjacentAndOverlapping) {
  BatchOptions opt;
  opt.hole_fill_max = 0;
  auto out = build_read_batch({{0, 100}, {100, 100}, {150, 100}}, opt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Segment{0, 250}));
}

TEST(BuildReadBatch, AbsorbsSmallHoles) {
  BatchOptions opt;
  opt.hole_fill_max = 50;
  auto out = build_read_batch({{0, 100}, {140, 100}, {500, 100}}, opt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Segment{0, 240}));  // 40-byte hole absorbed
  EXPECT_EQ(out[1], (Segment{500, 100}));  // 260-byte hole kept
}

TEST(BuildReadBatch, RespectsDisabledSort) {
  BatchOptions opt;
  opt.sort = false;
  opt.hole_fill_max = 0;
  auto out = build_read_batch({{300, 10}, {100, 10}}, opt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 300u);  // arrival order preserved
}

TEST(BuildReadBatch, RespectsDisabledMerge) {
  BatchOptions opt;
  opt.merge = false;
  auto out = build_read_batch({{100, 100}, {0, 100}}, opt);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 0u);  // sorted but not merged
}

TEST(BuildReadBatch, DropsEmptySegments) {
  BatchOptions opt;
  auto out = build_read_batch({{100, 0}, {0, 10}}, opt);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Segment{0, 10}));
}

TEST(BuildReadBatch, PropertyCoverageIsPreserved) {
  // Whatever the options, every input byte must be covered by the output.
  sim::Rng rng(13);
  for (int round = 0; round < 20; ++round) {
    std::vector<Segment> in;
    for (int i = 0; i < 50; ++i)
      in.push_back(Segment{rng.uniform(1 << 20), 1 + rng.uniform(4096)});
    BatchOptions opt;
    opt.sort = rng.chance(0.5);
    opt.merge = rng.chance(0.5);
    opt.hole_fill_max = rng.chance(0.5) ? 0 : 64 * 1024;
    auto out = build_read_batch(in, opt);
    for (const auto& s : in) {
      for (std::uint64_t probe : {s.offset, s.end() - 1}) {
        bool covered = false;
        for (const auto& o : out)
          covered |= (probe >= o.offset && probe < o.end());
        EXPECT_TRUE(covered) << "byte " << probe << " lost";
      }
    }
  }
}

TEST(PlanWriteback, ContiguousDirtyNeedsNoHoles) {
  BatchOptions opt;
  auto plan = plan_writeback({{0, 100}, {100, 100}}, opt);
  EXPECT_TRUE(plan.hole_reads.empty());
  ASSERT_EQ(plan.writes.size(), 1u);
  EXPECT_EQ(plan.writes[0], (Segment{0, 200}));
  EXPECT_EQ(plan.dirty_bytes, 200u);
}

TEST(PlanWriteback, SmallHolesAreReadAndMerged) {
  BatchOptions opt;
  opt.hole_fill_max = 64;
  auto plan = plan_writeback({{0, 100}, {150, 100}}, opt);
  ASSERT_EQ(plan.hole_reads.size(), 1u);
  EXPECT_EQ(plan.hole_reads[0], (Segment{100, 50}));
  ASSERT_EQ(plan.writes.size(), 1u);
  EXPECT_EQ(plan.writes[0], (Segment{0, 250}));
  EXPECT_EQ(plan.hole_bytes, 50u);
}

TEST(PlanWriteback, LargeHolesSplitTheWrites) {
  BatchOptions opt;
  opt.hole_fill_max = 64;
  auto plan = plan_writeback({{0, 100}, {1000, 100}}, opt);
  EXPECT_TRUE(plan.hole_reads.empty());
  EXPECT_EQ(plan.writes.size(), 2u);
}

TEST(PlanWriteback, UnsortedInputHandled) {
  BatchOptions opt;
  opt.hole_fill_max = 0;
  auto plan = plan_writeback({{500, 100}, {0, 100}}, opt);
  ASSERT_EQ(plan.writes.size(), 2u);
  EXPECT_EQ(plan.writes[0].offset, 0u);
}

TEST(MeanAdjacentDistance, SequentialRequests) {
  // 16 KB requests back to back: adjacent offset distance = 16 KB.
  std::vector<Segment> segs;
  for (int i = 0; i < 10; ++i)
    segs.push_back(Segment{static_cast<std::uint64_t>(i) * 16384, 16384});
  EXPECT_DOUBLE_EQ(mean_adjacent_distance(segs), 16384.0);
}

TEST(MeanAdjacentDistance, SortsBeforeMeasuring) {
  std::vector<Segment> segs = {{32768, 16384}, {0, 16384}, {16384, 16384}};
  EXPECT_DOUBLE_EQ(mean_adjacent_distance(segs), 16384.0);
}

TEST(MeanAdjacentDistance, DegenerateCases) {
  EXPECT_DOUBLE_EQ(mean_adjacent_distance({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_adjacent_distance({{100, 10}}), 0.0);
}

}  // namespace
}  // namespace dpar::dualpar
