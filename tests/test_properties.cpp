// Parameterized property suites: every (driver x workload) pair must
// complete without deadlock, conserve bytes, be deterministic, and leave the
// system in a clean state; every scheduler and every cache quota must
// preserve those invariants too.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "harness/testbed.hpp"
#include "wl/workloads.hpp"

namespace dpar {
namespace {

enum class Wl { kDemo, kMpiIoTest, kHpio, kIor, kNoncontig, kS3asim, kBtio, kDependent };
enum class Drv { kVanilla, kCollective, kDualPar, kPreexec };

const char* wl_name(Wl w) {
  switch (w) {
    case Wl::kDemo: return "demo";
    case Wl::kMpiIoTest: return "mpiiotest";
    case Wl::kHpio: return "hpio";
    case Wl::kIor: return "ior";
    case Wl::kNoncontig: return "noncontig";
    case Wl::kS3asim: return "s3asim";
    case Wl::kBtio: return "btio";
    case Wl::kDependent: return "dependent";
  }
  return "?";
}
const char* drv_name(Drv d) {
  switch (d) {
    case Drv::kVanilla: return "vanilla";
    case Drv::kCollective: return "collective";
    case Drv::kDualPar: return "dualpar";
    case Drv::kPreexec: return "preexec";
  }
  return "?";
}

struct Scenario {
  mpi::Job::ProgramFactory factory;
  std::uint64_t expected_bytes = 0;  ///< exact application bytes, 0 = skip check
  bool has_writes = false;
};

Scenario make_scenario(harness::Testbed& tb, Wl w, std::uint32_t procs) {
  Scenario s;
  switch (w) {
    case Wl::kDemo: {
      wl::DemoConfig c;
      c.file_size = 4 << 20;
      c.segment_size = 16 * 1024;
      c.file = tb.create_file("demo", c.file_size);
      s.factory = [c](std::uint32_t) { return wl::make_demo(c); };
      s.expected_bytes = c.file_size;
      break;
    }
    case Wl::kMpiIoTest: {
      wl::MpiIoTestConfig c;
      c.file_size = 4 << 20;
      c.request_size = 16 * 1024;
      c.file = tb.create_file("mit", c.file_size);
      s.factory = [c](std::uint32_t) { return wl::make_mpi_io_test(c); };
      s.expected_bytes = c.file_size;
      break;
    }
    case Wl::kHpio: {
      wl::HpioConfig c;
      c.region_count = 64;
      c.region_size = 16 * 1024;
      c.region_spacing = 1024;
      c.file = tb.create_file(
          "hpio", std::uint64_t{procs} * c.region_count *
                          (c.region_size + c.region_spacing) + (1 << 20));
      s.factory = [c](std::uint32_t) { return wl::make_hpio(c); };
      s.expected_bytes = std::uint64_t{procs} * 64 * 16 * 1024;
      break;
    }
    case Wl::kIor: {
      wl::IorConfig c;
      c.file_size = 4 << 20;
      c.request_size = 32 * 1024;
      c.file = tb.create_file("ior", c.file_size);
      s.factory = [c](std::uint32_t) { return wl::make_ior(c); };
      s.expected_bytes = c.file_size;
      break;
    }
    case Wl::kNoncontig: {
      wl::NoncontigConfig c;
      c.columns = procs;
      c.elmt_count = 64;
      c.rows = 256;
      c.file = tb.create_file("nc", c.columns * c.elmt_count * 4 * c.rows);
      s.factory = [c](std::uint32_t) { return wl::make_noncontig(c); };
      s.expected_bytes = std::uint64_t{procs} * 64 * 4 * 256;
      break;
    }
    case Wl::kS3asim: {
      wl::S3asimConfig c;
      c.database_size = 8 << 20;
      c.queries = 3;
      c.fragments = 4;
      c.max_size = 10'000;
      c.database_file = tb.create_file("db", c.database_size);
      c.result_file =
          tb.create_file("res", std::uint64_t{procs} * c.queries * c.max_size + (1 << 20));
      s.factory = [c](std::uint32_t) { return wl::make_s3asim(c); };
      s.has_writes = true;
      break;
    }
    case Wl::kBtio: {
      wl::BtioConfig c;
      c.total_bytes = 2 << 20;
      c.write_steps = 4;
      c.read_back = true;
      c.file = tb.create_file("btio", c.total_bytes * 2);
      s.factory = [c](std::uint32_t) { return wl::make_btio(c); };
      s.has_writes = true;
      break;
    }
    case Wl::kDependent: {
      wl::DependentConfig c;
      c.file_size = 16 << 20;
      c.request_size = 64 * 1024;
      c.requests = 20;
      c.file = tb.create_file("dep", c.file_size);
      s.factory = [c](std::uint32_t) { return wl::make_dependent(c); };
      s.expected_bytes = std::uint64_t{procs} * 20 * 64 * 1024;
      break;
    }
  }
  return s;
}

harness::TestbedConfig tiny_config() {
  harness::TestbedConfig cfg;
  cfg.data_servers = 3;
  cfg.compute_nodes = 2;
  cfg.cores_per_node = 8;
  return cfg;
}

struct RunResult {
  sim::Time completion;
  std::uint64_t app_bytes;
  std::uint64_t server_read;
  std::uint64_t server_written;
  std::uint64_t dirty_left;
};

RunResult run_matrix(Wl w, Drv d) {
  harness::Testbed tb(tiny_config());
  const std::uint32_t procs = 4;
  Scenario s = make_scenario(tb, w, procs);
  mpi::IoDriver& drv = d == Drv::kVanilla      ? static_cast<mpi::IoDriver&>(tb.vanilla())
                       : d == Drv::kCollective ? static_cast<mpi::IoDriver&>(tb.collective())
                       : d == Drv::kDualPar    ? static_cast<mpi::IoDriver&>(tb.dualpar())
                                               : static_cast<mpi::IoDriver&>(tb.preexec());
  auto& job = tb.add_job(wl_name(w), procs, drv, s.factory,
                         d == Drv::kDualPar ? dualpar::Policy::kForcedDataDriven
                                            : dualpar::Policy::kForcedNormal);
  tb.run(/*max_events=*/200'000'000);
  RunResult r{};
  r.completion = job.completion_time();
  r.app_bytes = job.total_bytes();
  for (std::uint32_t i = 0; i < tb.num_servers(); ++i) {
    r.server_read += tb.server(i).bytes_read();
    r.server_written += tb.server(i).bytes_written();
  }
  r.dirty_left = tb.cache().all_dirty_segments().size();
  if (s.expected_bytes > 0) {
    EXPECT_EQ(r.app_bytes, s.expected_bytes);
  }
  return r;
}

class DriverWorkloadMatrix : public ::testing::TestWithParam<std::tuple<Wl, Drv>> {};

TEST_P(DriverWorkloadMatrix, CompletesConservesAndFlushes) {
  const auto [w, d] = GetParam();
  const RunResult r = run_matrix(w, d);
  EXPECT_GT(r.completion, 0);
  EXPECT_GT(r.app_bytes, 0u);
  // Nothing dirty may remain after the job ends (write-back + final flush).
  EXPECT_EQ(r.dirty_left, 0u);
  // Every byte the application read was served by the servers (caches only
  // hold data fetched in this run) and every written byte reached them.
  EXPECT_GE(r.server_read + r.server_written + 1, 0u);
}

TEST_P(DriverWorkloadMatrix, Deterministic) {
  const auto [w, d] = GetParam();
  const RunResult a = run_matrix(w, d);
  const RunResult b = run_matrix(w, d);
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.app_bytes, b.app_bytes);
  EXPECT_EQ(a.server_read, b.server_read);
  EXPECT_EQ(a.server_written, b.server_written);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, DriverWorkloadMatrix,
    ::testing::Combine(::testing::Values(Wl::kDemo, Wl::kMpiIoTest, Wl::kHpio,
                                         Wl::kIor, Wl::kNoncontig, Wl::kS3asim,
                                         Wl::kBtio, Wl::kDependent),
                       ::testing::Values(Drv::kVanilla, Drv::kCollective,
                                         Drv::kDualPar, Drv::kPreexec)),
    [](const ::testing::TestParamInfo<std::tuple<Wl, Drv>>& info) {
      return std::string(wl_name(std::get<0>(info.param))) + "_" +
             drv_name(std::get<1>(info.param));
    });

class SchedulerSweep : public ::testing::TestWithParam<disk::SchedulerKind> {};

TEST_P(SchedulerSweep, EndToEndRunServesAllBytes) {
  harness::TestbedConfig cfg = tiny_config();
  cfg.scheduler = GetParam();
  harness::Testbed tb(cfg);
  Scenario s = make_scenario(tb, Wl::kDemo, 4);
  auto& job = tb.add_job("d", 4, tb.dualpar(), s.factory,
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(job.total_bytes(), s.expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerSweep,
                         ::testing::Values(disk::SchedulerKind::kNoop,
                                           disk::SchedulerKind::kDeadline,
                                           disk::SchedulerKind::kCscan,
                                           disk::SchedulerKind::kCfq),
                         [](const auto& info) {
                           switch (info.param) {
                             case disk::SchedulerKind::kNoop: return "noop";
                             case disk::SchedulerKind::kDeadline: return "deadline";
                             case disk::SchedulerKind::kCscan: return "cscan";
                             case disk::SchedulerKind::kCfq: return "cfq";
                             case disk::SchedulerKind::kAnticipatory:
                               return "anticipatory";
                           }
                           return "x";
                         });

class QuotaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuotaSweep, DualParInvariantsHoldAtEveryQuota) {
  harness::TestbedConfig cfg = tiny_config();
  cfg.dualpar.cache_quota = GetParam();
  harness::Testbed tb(cfg);
  Scenario s = make_scenario(tb, Wl::kBtio, 4);
  auto& job = tb.add_job("b", 4, tb.dualpar(), s.factory,
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_TRUE(job.finished());
  EXPECT_EQ(tb.cache().all_dirty_segments().size(), 0u);
  std::uint64_t app_written = 0;
  for (std::uint32_t i = 0; i < job.nprocs(); ++i)
    app_written += job.process(i).bytes_written();
  std::uint64_t server_written = 0;
  for (std::uint32_t i = 0; i < tb.num_servers(); ++i)
    server_written += tb.server(i).bytes_written();
  EXPECT_GT(app_written, 0u);
  // Every application byte reached the disks (hole filling may add more).
  EXPECT_GE(server_written, app_written);
}

INSTANTIATE_TEST_SUITE_P(Quotas, QuotaSweep,
                         ::testing::Values(16u * 1024, 64u * 1024, 256u * 1024,
                                           1024u * 1024, 8u * 1024 * 1024),
                         [](const auto& info) {
                           return std::to_string(info.param / 1024) + "KB";
                         });

class StripeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StripeSweep, LayoutAndCacheAgreeAtEveryUnit) {
  harness::TestbedConfig cfg = tiny_config();
  cfg.stripe_unit = GetParam();
  harness::Testbed tb(cfg);
  EXPECT_EQ(tb.cache().params().chunk_bytes, GetParam());  // chunk == unit
  Scenario s = make_scenario(tb, Wl::kDemo, 4);
  auto& job = tb.add_job("d", 4, tb.dualpar(), s.factory,
                         dualpar::Policy::kForcedDataDriven);
  tb.run();
  EXPECT_EQ(job.total_bytes(), s.expected_bytes);
}

INSTANTIATE_TEST_SUITE_P(Units, StripeSweep,
                         ::testing::Values(16u * 1024, 64u * 1024, 256u * 1024),
                         [](const auto& info) {
                           return std::to_string(info.param / 1024) + "KB";
                         });

}  // namespace
}  // namespace dpar
